#!/usr/bin/env python3
"""Beyond packets: scheduling threads onto a Tegra-style 4-plus-1 CPU.

The paper's conclusion suggests its algorithm applies wherever pooled
heterogeneous resources meet per-consumer preferences — e.g. NVIDIA's
Tegra 3, where four fast cores are packaged with one slow companion
core and "a computation intensive task like graphics rendering might
prefer to use only the more powerful cores."

Cores play the role of interfaces, threads of flows, core affinity of
the preference matrix Π, and nice-levels of the weights φ. The very
same miDRR scheduler object computes the allocation.

Run:  python examples/tegra_cpu_scheduling.py
"""

from repro.apps import CpuScheduler, ThreadSpec, big_cores_of, tegra_cores


def main() -> None:
    cores = tegra_cores()  # big0..big3 @ 1300 units/s, companion @ 500
    big_only = big_cores_of(cores)

    threads = [
        # The rendering pipeline refuses the slow core and gets a 2×
        # share entitlement.
        ThreadSpec("render", weight=2.0, affinity=big_only),
        ThreadSpec("physics", weight=1.0, affinity=big_only),
        # Audio mixing and background sync run anywhere.
        ThreadSpec("audio", weight=1.0),
        ThreadSpec("sync", weight=0.5),
    ]

    scheduler = CpuScheduler(cores, threads)

    print("Exact max-min throughput (capacity planning, units/s):")
    allocation = scheduler.fair_allocation()
    for thread in threads:
        cluster = allocation.cluster_of(thread.thread_id)
        cores_used = ",".join(sorted(cluster.interfaces))
        print(
            f"  {thread.thread_id:<8} {allocation.rate(thread.thread_id):7.1f}"
            f"   (cluster: {cores_used})"
        )

    print()
    print("Simulated with miDRR (10 s, per-thread units/s):")
    result = scheduler.run(10.0)
    for thread in threads:
        print(f"  {thread.thread_id:<8} {result.throughput[thread.thread_id]:7.1f}")

    print()
    print("Where the work actually ran (units by thread × core):")
    for (thread_id, core_id), units in sorted(result.placement.items()):
        print(f"  {thread_id:<8} on {core_id:<10} {units:>8,}")

    print()
    utilization = scheduler.core_utilization(result)
    print("Core utilization:", {k: f"{v:.0%}" for k, v in utilization.items()})
    print()
    print("Note: render/physics never touch the companion core (their Π);")
    print("audio and sync soak up the companion capacity instead, so no")
    print("cycle is wasted — the same work-conservation property as packets.")


if __name__ == "__main__":
    main()
