#!/usr/bin/env python3
"""Grade any scheduler against the paper's four properties.

Section 2 of the paper lists what an ideal multi-interface scheduler
must provide: (1) meet interface preferences, (2) be work-conserving,
(3) meet rate preferences where feasible, (4) use new capacity. The
`repro.fairness.conformance` harness turns that list into an
executable battery — this example runs it over every scheduler in the
library, reproducing the paper's comparison table in one screen.

If you are prototyping your own multi-interface scheduler, subclass
`repro.schedulers.base.MultiInterfaceScheduler` and point this harness
at it.

Run:  python examples/scheduler_conformance.py
"""

from repro import MiDrrScheduler, PerInterfaceScheduler, StaticSplitScheduler
from repro.fairness import run_conformance

CANDIDATES = [
    ("miDRR (paper)", MiDrrScheduler),
    ("miDRR + counter exclusion", lambda: MiDrrScheduler(exclusion="counter")),
    ("per-interface WFQ", PerInterfaceScheduler.wfq),
    ("per-interface DRR", PerInterfaceScheduler.drr),
    ("FIFO striping", PerInterfaceScheduler.fifo),
    ("static split", StaticSplitScheduler),
]


def main() -> None:
    for label, factory in CANDIDATES:
        report = run_conformance(factory, label=label)
        print(report.summary())
        print()
    print("Properties (paper §2): interface preferences are sacrosanct,")
    print("capacity must never be wasted, rates follow weighted max-min")
    print("where feasible, and freed/added capacity is absorbed.")


if __name__ == "__main__":
    main()
