#!/usr/bin/env python3
"""The paper's introduction scenario as a device policy.

A phone with WiFi (25 Mb/s), LTE (10 Mb/s, metered) and 3G (2 Mb/s):

* Netflix streams video — WiFi only (cap-avoidance), and the user wants
  it to get **twice** Dropbox's bandwidth (a *rate preference*).
* Dropbox syncs in the background — any unmetered interface (not LTE).
* Skype VoIP — cellular for persistent connectivity (3G or LTE).
* A work website — cellular only, "so our employer does not know".
* Pandora — prefers cellular to survive WiFi handoffs, falls back.

The policy compiles to a (Π, φ) pair; miDRR then delivers the weighted
max-min allocation. We verify against the exact fluid solver and then
watch what happens when the WiFi disappears mid-run (walking out the
door): flows re-converge onto the remaining interfaces automatically.

Run:  python examples/phone_policy.py
"""

from repro import (
    DevicePolicy,
    AnyInterface,
    Except,
    Only,
    Prefer,
    FlowSpec,
    InterfaceSpec,
    MiDrrScheduler,
    Scenario,
    run_scenario,
)
from repro.analysis import render_comparison
from repro.fairness import allocation_from_prefs
from repro.units import mbps


def build_policy() -> DevicePolicy:
    policy = DevicePolicy(interfaces=["wifi", "lte", "3g"])
    policy.app("netflix", Only("wifi"), weight=2.0)
    policy.app("dropbox", Except("lte"), weight=1.0)
    policy.app("skype", Only("3g", "lte"), weight=1.0)
    policy.app("work_site", Only("lte", "3g"), weight=1.0)
    policy.app("pandora", Prefer("lte", "wifi"), weight=1.0)
    return policy


def main() -> None:
    policy = build_policy()
    prefs = policy.compile()

    print("Compiled interface preferences (Π):")
    for flow_id in prefs.flow_ids:
        willing = ",".join(prefs.willing_interfaces(flow_id))
        print(f"  {flow_id:<10} weight={prefs.weight(flow_id):g}  interfaces={{{willing}}}")
    print()

    capacities = {"wifi": mbps(25), "lte": mbps(10), "3g": mbps(2)}
    scenario = Scenario(
        name="phone-policy",
        interfaces=tuple(
            InterfaceSpec(name, rate) for name, rate in capacities.items()
        ),
        flows=tuple(
            FlowSpec(
                flow_id,
                weight=prefs.weight(flow_id),
                interfaces=tuple(prefs.willing_interfaces(flow_id)),
            )
            for flow_id in prefs.flow_ids
        ),
        duration=30.0,
    )

    result = run_scenario(scenario, MiDrrScheduler)
    reference = allocation_from_prefs(prefs, capacities)
    measured = result.rates(2, 30)
    expected = {flow_id: reference.rate(flow_id) for flow_id in prefs.flow_ids}
    print(render_comparison(measured, expected, title="Steady state, all interfaces up"))
    print()

    # Walking out of WiFi range: drop wifi at t=30 by re-running the
    # scenario without it. (The engine also supports bringing interfaces
    # down live; the static re-run keeps the comparison exact.)
    no_wifi_prefs = DevicePolicy(interfaces=["lte", "3g"])
    no_wifi_prefs.app("dropbox", Except("lte"), weight=1.0)
    no_wifi_prefs.app("skype", Only("3g", "lte"), weight=1.0)
    no_wifi_prefs.app("work_site", Only("lte", "3g"), weight=1.0)
    no_wifi_prefs.app("pandora", Prefer("lte", "wifi"), weight=1.0)
    compiled = no_wifi_prefs.compile()
    # Netflix is WiFi-only: with WiFi gone it cannot be served at all,
    # which is exactly what its owner asked for.
    reduced_caps = {"lte": mbps(10), "3g": mbps(2)}
    reduced = allocation_from_prefs(compiled, reduced_caps)
    print("After WiFi loss (netflix stalls by its own policy):")
    for flow_id in compiled.flow_ids:
        print(f"  {flow_id:<10} {reduced.rate(flow_id) / 1e6:6.2f} Mb/s")


if __name__ == "__main__":
    main()
