#!/usr/bin/env python3
"""The virtual-interface bridge on real packet bytes (Figure 3).

Applications think they have one interface (10.0.0.1). The bridge
classifies each raw IPv4/UDP packet into a policy flow, miDRR picks the
physical interface, and the bridge NAT-rewrites the source address and
port to that interface's identity — recomputing IPv4 and UDP checksums
— before "transmission". Inbound replies are rewritten back.

The demo prints one packet's bytes before and after rewriting so you
can see the header surgery, then pushes a few thousand packets through
two interfaces and reports where each flow's traffic actually went.

Run:  python examples/kernel_bridge_demo.py
"""

from repro.bridge import FlowClassifier, MatchRule, MiDrrBridge
from repro.net import (
    Flow,
    Interface,
    Ipv4Address,
    Ipv4Header,
    UdpHeader,
    IPPROTO_UDP,
)
from repro.schedulers import MiDrrScheduler
from repro.sim import Simulator
from repro.units import mbps

VIRTUAL = Ipv4Address.parse("10.0.0.1")
WIFI_ADDR = Ipv4Address.parse("192.168.1.23")
LTE_ADDR = Ipv4Address.parse("100.64.7.9")
SERVER = Ipv4Address.parse("93.184.216.34")


def make_udp_packet(src_port: int, dst_port: int, payload: bytes) -> bytes:
    """Build a raw IPv4/UDP packet from the application's view."""
    udp = UdpHeader(
        src_port=src_port,
        dst_port=dst_port,
        length=UdpHeader.LENGTH + len(payload),
    )
    total = Ipv4Header.LENGTH + UdpHeader.LENGTH + len(payload)
    ip = Ipv4Header(
        src=VIRTUAL, dst=SERVER, protocol=IPPROTO_UDP, total_length=total
    )
    return ip.pack() + udp.pack(ip.src, ip.dst, payload) + payload


def main() -> None:
    sim = Simulator()
    classifier = FlowClassifier()
    classifier.add_rule(MatchRule(flow_id="voip", dst_port=5060))
    classifier.add_rule(MatchRule(flow_id="sync", dst_port=443))

    bridge = MiDrrBridge(sim, MiDrrScheduler(), VIRTUAL, classifier=classifier)
    wifi = Interface(sim, "wifi", mbps(10))
    lte = Interface(sim, "lte", mbps(5))
    bridge.add_physical_interface(wifi, WIFI_ADDR)
    bridge.add_physical_interface(lte, LTE_ADDR)

    # voip sticks to LTE for continuity; sync may use anything.
    bridge.add_flow(Flow("voip", weight=1.0, allowed_interfaces=["lte"]))
    bridge.add_flow(Flow("sync", weight=1.0))

    # Show one packet's rewriting in detail.
    sample = make_udp_packet(40000, 5060, b"RTP" * 40)
    print("outbound packet before rewrite:")
    print(f"  src={Ipv4Header.unpack(sample).src} "
          f"sport={UdpHeader.unpack(sample[Ipv4Header.LENGTH:]).src_port}")
    bridge.virtual.send(sample)
    sim.run(until=0.01)
    # The transmitted copy lives in the stats trail; rebuild it to show:
    from repro.bridge.nat import rewrite_outbound
    binding = bridge.nat.bind(
        __import__("repro.bridge.classifier", fromlist=["parse_five_tuple"])
        .parse_five_tuple(sample)[0],
        "lte",
        LTE_ADDR,
    )
    rewritten = rewrite_outbound(sample, binding)
    print("after rewrite (as sent on lte):")
    print(f"  src={Ipv4Header.unpack(rewritten).src} "
          f"sport={UdpHeader.unpack(rewritten[Ipv4Header.LENGTH:]).src_port}")
    print()

    # Now push sustained traffic through both flows.
    def feed(count: int) -> None:
        for i in range(count):
            bridge.virtual.send(make_udp_packet(40000, 5060, b"v" * 900))
            bridge.virtual.send(make_udp_packet(41000, 443, b"s" * 1300))

    sim.call_now(feed, 2000)
    sim.run(until=5.0)

    print("service matrix (bytes by flow × interface):")
    for (flow_id, interface_id), size in sorted(bridge.stats.service_matrix().items()):
        print(f"  {flow_id:<6} via {interface_id:<5} {size:>10,} B")
    print()
    print(f"packets accepted: {bridge.virtual.packets_accepted}, "
          f"rejected: {bridge.virtual.packets_rejected}")
    print(f"NAT rewrites: {bridge.outbound_rewrites} outbound, "
          f"{len(bridge.nat)} active bindings")
    print("note: voip bytes appear only on lte — its interface preference held.")


if __name__ == "__main__":
    main()
