#!/usr/bin/env python3
"""Live policy edits on a running device (the MobileDevice facade).

The paper's introduction catalogs the workarounds users resort to —
"we might switch off cellular data when we want to force applications
to use WiFi or when we are close to our monthly data cap". With a
preference-aware scheduler those are one-line policy edits, applied
mid-run without disturbing other apps.

Timeline:
  t =  0 s  browser (any interface, weight 1) and backup (any, weight 1)
            share WiFi 10 + LTE 5 Mb/s → 7.5 Mb/s each.
  t = 10 s  the user notices the data cap: backup becomes WiFi-only.
            Backup drops to its constrained share; browser soaks up LTE.
  t = 20 s  a video call starts (weight 3, prefers LTE for stability).
  t = 30 s  the user boosts the browser to weight 4 mid-page-load.

After every change the measured rates re-converge to the exact fluid
allocation for the *new* policy — printed side by side below.

Run:  python examples/live_policy_demo.py
"""

from repro import MobileDevice, Simulator
from repro.prefs import AnyInterface, DevicePolicy, Only
from repro.units import mbps

WINDOWS = [
    (2, 10, "both flexible, equal weights"),
    (12, 20, "backup restricted to WiFi"),
    (22, 30, "video call (w=3, LTE) joins"),
    (32, 40, "browser boosted to w=4"),
]


def main() -> None:
    sim = Simulator()
    policy = DevicePolicy(interfaces=["wifi", "lte"])
    policy.app("browser", AnyInterface(), weight=1.0)
    policy.app("backup", AnyInterface(), weight=1.0)
    policy.app("video_call", Only("lte"), weight=3.0)

    device = MobileDevice(sim, {"wifi": mbps(10), "lte": mbps(5)}, policy)
    device.saturate("browser")
    device.saturate("backup")
    device.start()

    # t=10: cap-avoidance — backup may only use WiFi from now on.
    sim.schedule(10.0, device.set_rule, "backup", Only("wifi"))
    # t=20: the video call starts transmitting.
    sim.schedule(20.0, device.saturate, "video_call")
    # t=30: the user foregrounds the browser.
    sim.schedule(30.0, device.set_weight, "browser", 4.0)

    sim.run(until=40.0)

    print(f"{'window':>10}  {'browser':>9} {'backup':>9} {'video':>9}   phase")
    for start, end, label in WINDOWS:
        rates = [
            device.stats.rate_in_window(app, start, end) / 1e6
            for app in ("browser", "backup", "video_call")
        ]
        cells = " ".join(f"{rate:8.2f}M" for rate in rates)
        print(f"{start:>4}–{end:<4}  {cells}   {label}")

    print()
    expected = device.expected_allocation()
    print("Fluid allocation for the final policy:")
    for app in ("browser", "backup", "video_call"):
        print(f"  {app:<11} {expected.rate(app) / 1e6:6.2f} Mb/s")


if __name__ == "__main__":
    main()
