#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1(c) in a dozen lines.

Two 1 Mb/s interfaces. Flow ``a`` may use both; flow ``b`` is only
willing to use interface 2 (an *interface preference*). Classical
per-interface fair queueing gives a=1.5 / b=0.5 Mb/s; miDRR finds the
max-min fair allocation of 1 Mb/s each without wasting any capacity.

Run:  python examples/quickstart.py
"""

from repro import (
    FlowSpec,
    InterfaceSpec,
    MiDrrScheduler,
    PerInterfaceScheduler,
    Scenario,
    run_scenario,
)
from repro.analysis import render_rate_table
from repro.fairness import weighted_maxmin
from repro.units import mbps


def main() -> None:
    scenario = Scenario(
        name="quickstart",
        interfaces=(
            InterfaceSpec("if1", mbps(1)),
            InterfaceSpec("if2", mbps(1)),
        ),
        flows=(
            FlowSpec("a"),                       # willing to use any interface
            FlowSpec("b", interfaces=("if2",)),  # interface preference: if2 only
        ),
        duration=30.0,
    )

    midrr = run_scenario(scenario, MiDrrScheduler)
    wfq = run_scenario(scenario, PerInterfaceScheduler.wfq)

    # The fluid reference the scheduler should converge to.
    reference = weighted_maxmin(
        {"a": (1.0, None), "b": (1.0, ["if2"])},
        {"if1": mbps(1), "if2": mbps(1)},
    )

    rates = {
        "miDRR": midrr.rates(2, 30),
        "per-interface WFQ": wfq.rates(2, 30),
        "fluid max-min": {f: reference.rate(f) for f in ("a", "b")},
    }
    print(render_rate_table(rates, ["a", "b"], title="Figure 1(c) allocations"))
    print()
    print("Rate clusters found by the exact solver:")
    for cluster in reference.clusters:
        flows = ",".join(sorted(cluster.flows))
        ifaces = ",".join(sorted(cluster.interfaces))
        print(f"  {{{flows}}} × {{{ifaces}}} at {float(cluster.level) / 1e6:.2f} Mb/s per unit weight")


if __name__ == "__main__":
    main()
