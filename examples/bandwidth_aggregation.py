#!/usr/bin/env python3
"""Bandwidth aggregation and capacity churn.

The paper's introduction: "we may want to use all the interfaces at the
same time to give all the available bandwidth to a single application",
and property 4 requires new capacity to be absorbed immediately.

This example runs one download flow willing to use every interface
while the device's connectivity churns:

* t = 0 s   — only 3G (2 Mb/s) is up
* t = 10 s  — WiFi (20 Mb/s) appears: the flow should jump to ~22 Mb/s
* t = 20 s  — LTE (15 Mb/s) appears: ~37 Mb/s
* t = 30 s  — WiFi degrades to 5 Mb/s: ~22 Mb/s
* t = 40 s  — a second (WiFi-only) flow starts and takes its share

Interfaces that are "down" are modelled at a negligible rate and raised
at the step time, which exercises the same "use new capacity" machinery
as a hotplug event.

Run:  python examples/bandwidth_aggregation.py
"""

from repro import (
    CapacityStep,
    FlowSpec,
    InterfaceSpec,
    MiDrrScheduler,
    Scenario,
    TrafficSpec,
    run_scenario,
)
from repro.units import kbps, mbps

#: "Down" interfaces idle at a trickle until their step raises them.
DOWN = kbps(1)


def main() -> None:
    scenario = Scenario(
        name="aggregation",
        interfaces=(
            InterfaceSpec("3g", mbps(2)),
            InterfaceSpec(
                "wifi",
                DOWN,
                capacity_steps=(
                    CapacityStep(10.0, mbps(20)),
                    CapacityStep(30.0, mbps(5)),
                ),
            ),
            InterfaceSpec(
                "lte",
                DOWN,
                capacity_steps=(CapacityStep(20.0, mbps(15)),),
            ),
        ),
        flows=(
            FlowSpec("download"),  # willing to use everything
            FlowSpec(
                "latecomer",
                interfaces=("wifi",),
                start_time=40.0,
                traffic=TrafficSpec("bulk"),
            ),
        ),
        duration=50.0,
    )

    result = run_scenario(scenario, MiDrrScheduler)

    windows = [
        (2, 10, "3G only"),
        (12, 20, "+WiFi 20"),
        (22, 30, "+LTE 15"),
        (32, 40, "WiFi degrades to 5"),
        (42, 50, "WiFi-only flow joins"),
    ]
    print(f"{'window':>12}  {'download':>10}  {'latecomer':>10}  phase")
    for start, end, label in windows:
        download = result.rate("download", start, end) / 1e6
        latecomer = result.rate("latecomer", start, end) / 1e6
        print(f"{start:>5}–{end:<5}  {download:>8.2f} Mb/s  {latecomer:>7.2f} Mb/s  {label}")

    print()
    print("Per-second series for the download flow (Mb/s):")
    for time, rate in result.timeseries("download", bin_width=2.0):
        bar = "#" * int(rate / 1e6)
        print(f"  t={time:5.1f}  {rate / 1e6:6.2f}  {bar}")


if __name__ == "__main__":
    main()
