#!/usr/bin/env python3
"""Inbound scheduling with the HTTP/1.1 byte-range proxy (Figure 5).

Three apps download over two fluctuating wireless links through the
on-device proxy. The proxy splits each GET into 64 KiB ranged requests,
pipelines them, and lets miDRR pick which flow's next chunk each
interface requests — thereby scheduling the *inbound* bytes. Responses
are spliced and verified against the origin's content.

Watch flow ``video`` (willing to use both links) track whichever link
is currently faster, exactly the paper's Figure 10 behaviour.

Run:  python examples/http_proxy_demo.py
"""

from repro.httpproxy import (
    DownlinkChannel,
    HttpOriginServer,
    RepeatingDownloader,
    SchedulingHttpProxy,
)
from repro.net.interface import CapacityStep
from repro.schedulers import MiDrrScheduler
from repro.sim import Simulator
from repro.units import mbps

CHUNK = 64 * 1024


def main() -> None:
    sim = Simulator()
    server = HttpOriginServer()
    server.put_synthetic("/movie", 3 * 1024 * 1024)
    server.put_synthetic("/photos", 1 * 1024 * 1024)
    server.put_synthetic("/podcast", 2 * 1024 * 1024)

    proxy = SchedulingHttpProxy(
        sim, scheduler=MiDrrScheduler(quantum_base=CHUNK), chunk_bytes=CHUNK
    )

    wifi = DownlinkChannel(sim, "wifi", server, mbps(10), rtt=0.03)
    lte = DownlinkChannel(sim, "lte", server, mbps(4), rtt=0.06)
    # WiFi fades mid-run (microwave oven); LTE picks up the slack.
    wifi.apply_capacity_schedule([CapacityStep(15, mbps(2)), CapacityStep(30, mbps(10))])
    proxy.add_channel(wifi)
    proxy.add_channel(lte)

    proxy.add_flow("video", weight=2.0)                      # any interface, 2× priority
    proxy.add_flow("photos", weight=1.0, interfaces=["wifi"])  # unmetered only
    proxy.add_flow("podcast", weight=1.0, interfaces=["lte"])  # on the move

    downloads = {
        "video": RepeatingDownloader(sim, proxy, server, "video", "/movie"),
        "photos": RepeatingDownloader(sim, proxy, server, "photos", "/photos"),
        "podcast": RepeatingDownloader(sim, proxy, server, "podcast", "/podcast"),
    }
    for downloader in downloads.values():
        downloader.start()

    sim.run(until=45.0)

    print(f"{'flow':<10} {'0-15 s':>10} {'15-30 s':>10} {'30-45 s':>10}")
    for flow_id in downloads:
        rates = [
            proxy.stats.rate_in_window(flow_id, start, end) / 1e6
            for start, end in ((1, 15), (16, 30), (31, 45))
        ]
        cells = "".join(f"{rate:>9.2f}M" for rate in rates)
        print(f"{flow_id:<10}{cells}")

    print()
    total_downloads = sum(d.downloads_completed for d in downloads.values())
    failures = sum(d.integrity_failures for d in downloads.values())
    print(f"completed downloads: {total_downloads}, content integrity failures: {failures}")
    served = server.requests_served
    print(f"origin served {served} ranged requests "
          f"({proxy.stats.bytes_sent('video') // CHUNK} chunks for video alone)")


if __name__ == "__main__":
    main()
