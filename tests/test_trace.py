"""Unit tests for the smartphone trace model and concurrency analysis."""

import pytest

from repro.errors import ConfigurationError
from repro.trace.concurrency import ConcurrencyStats, concurrency_stats
from repro.trace.smartphone import (
    DeviceTraceConfig,
    FlowInterval,
    SmartphoneTraceGenerator,
)


class TestFlowInterval:
    def test_duration(self):
        assert FlowInterval(1.0, 3.5, "web").duration == 2.5

    def test_zero_length_rejected(self):
        with pytest.raises(ConfigurationError):
            FlowInterval(1.0, 1.0, "web")


class TestConcurrencyStats:
    def test_single_flow(self):
        stats = concurrency_stats([FlowInterval(0.0, 10.0, "a")])
        assert stats.active_time == 10.0
        assert stats.max_concurrent == 1
        assert stats.fraction_at_least(1) == 1.0
        assert stats.fraction_at_least(2) == 0.0

    def test_overlapping_flows(self):
        intervals = [
            FlowInterval(0.0, 10.0, "a"),
            FlowInterval(5.0, 15.0, "b"),
        ]
        stats = concurrency_stats(intervals)
        # 0-5: level 1; 5-10: level 2; 10-15: level 1.
        assert stats.time_at_level == {1: 10.0, 2: 5.0}
        assert stats.max_concurrent == 2
        assert stats.fraction_at_least(2) == pytest.approx(1 / 3)

    def test_idle_gaps_excluded(self):
        intervals = [
            FlowInterval(0.0, 1.0, "a"),
            FlowInterval(100.0, 101.0, "b"),
        ]
        stats = concurrency_stats(intervals)
        assert stats.active_time == 2.0  # the 99 s gap does not count

    def test_back_to_back_is_not_concurrent(self):
        intervals = [
            FlowInterval(0.0, 5.0, "a"),
            FlowInterval(5.0, 10.0, "b"),
        ]
        stats = concurrency_stats(intervals)
        assert stats.max_concurrent == 1

    def test_cdf_monotone_and_complete(self):
        intervals = [
            FlowInterval(0.0, 10.0, "a"),
            FlowInterval(2.0, 4.0, "b"),
            FlowInterval(3.0, 9.0, "c"),
        ]
        cdf = concurrency_stats(intervals).cdf()
        probabilities = [p for _, p in cdf]
        assert probabilities == sorted(probabilities)
        assert probabilities[-1] == pytest.approx(1.0)

    def test_quantile(self):
        stats = concurrency_stats(
            [FlowInterval(0.0, 9.0, "a"), FlowInterval(0.0, 1.0, "b")]
        )
        assert stats.quantile(0.5) == 1
        assert stats.quantile(1.0) == 2
        with pytest.raises(ConfigurationError):
            stats.quantile(0.0)

    def test_empty(self):
        stats = concurrency_stats([])
        assert stats.active_time == 0.0
        assert stats.max_concurrent == 0
        assert stats.cdf() == []


class TestGenerator:
    def test_deterministic_given_seed(self):
        first = SmartphoneTraceGenerator(seed=5).generate()
        second = SmartphoneTraceGenerator(seed=5).generate()
        assert len(first) == len(second)
        assert first[0].start == second[0].start

    def test_seeds_differ(self):
        first = SmartphoneTraceGenerator(seed=1).generate()
        second = SmartphoneTraceGenerator(seed=2).generate()
        assert len(first) != len(second) or first[0].start != second[0].start

    def test_respects_duration(self):
        config = DeviceTraceConfig(duration=3600.0)
        flows = SmartphoneTraceGenerator(config, seed=0).generate()
        assert all(f.start < 3600.0 for f in flows)

    def test_concurrency_cap_enforced(self):
        config = DeviceTraceConfig(duration=24 * 3600.0, max_concurrent=10)
        flows = SmartphoneTraceGenerator(config, seed=0).generate()
        assert concurrency_stats(flows).max_concurrent <= 10

    def test_calibration_matches_paper(self):
        """The two Figure 7 statistics: P[N≥7]≈0.10 and max 35."""
        stats = concurrency_stats(SmartphoneTraceGenerator(seed=0).generate())
        assert 0.05 <= stats.fraction_at_least(7) <= 0.15
        assert 30 <= stats.max_concurrent <= 35

    def test_app_mix_present(self):
        flows = SmartphoneTraceGenerator(seed=0).generate()
        apps = {f.app for f in flows}
        assert "browser" in apps
        assert "background" in apps

    def test_invalid_popularities(self):
        from repro.trace.smartphone import AppProfile

        config = DeviceTraceConfig(
            apps=(AppProfile("x", 0.0, (1, 1), 1.0),)
        )
        with pytest.raises(ConfigurationError):
            SmartphoneTraceGenerator(config)
