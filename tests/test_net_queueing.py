"""Unit tests for per-flow queues."""

import pytest

from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.net.queueing import FlowQueue


def pkt(size=100, flow="f"):
    return Packet(flow_id=flow, size_bytes=size)


class TestFifoBehaviour:
    def test_fifo_order(self):
        queue = FlowQueue("f")
        first, second = pkt(), pkt()
        queue.enqueue(first)
        queue.enqueue(second)
        assert queue.dequeue() is first
        assert queue.dequeue() is second

    def test_head_does_not_remove(self):
        queue = FlowQueue("f")
        packet = pkt()
        queue.enqueue(packet)
        assert queue.head() is packet
        assert len(queue) == 1

    def test_head_size(self):
        queue = FlowQueue("f")
        assert queue.head_size() is None
        queue.enqueue(pkt(size=77))
        assert queue.head_size() == 77

    def test_dequeue_empty_raises(self):
        with pytest.raises(IndexError):
            FlowQueue("f").dequeue()


class TestByteAccounting:
    def test_backlog_tracks_bytes(self):
        queue = FlowQueue("f")
        queue.enqueue(pkt(100))
        queue.enqueue(pkt(200))
        assert queue.backlog_bytes == 300
        queue.dequeue()
        assert queue.backlog_bytes == 200

    def test_clear_resets(self):
        queue = FlowQueue("f")
        queue.enqueue(pkt())
        removed = queue.clear()
        assert len(removed) == 1
        assert queue.backlog_bytes == 0
        assert not queue

    def test_enqueued_counter(self):
        queue = FlowQueue("f")
        queue.enqueue(pkt())
        queue.enqueue(pkt())
        queue.dequeue()
        assert queue.enqueued_packets == 2


class TestDropTail:
    def test_drops_when_full(self):
        queue = FlowQueue("f", max_bytes=250)
        assert queue.enqueue(pkt(100))
        assert queue.enqueue(pkt(100))
        assert not queue.enqueue(pkt(100))  # would exceed 250
        assert queue.backlog_bytes == 200
        assert queue.dropped_packets == 1
        assert queue.dropped_bytes == 100

    def test_drop_callback(self):
        dropped = []
        queue = FlowQueue("f", max_bytes=50, on_drop=dropped.append)
        queue.enqueue(pkt(40))
        queue.enqueue(pkt(40))
        assert len(dropped) == 1

    def test_accepts_after_drain(self):
        queue = FlowQueue("f", max_bytes=100)
        queue.enqueue(pkt(100))
        assert not queue.enqueue(pkt(100))
        queue.dequeue()
        assert queue.enqueue(pkt(100))

    def test_invalid_max_bytes(self):
        with pytest.raises(ConfigurationError):
            FlowQueue("f", max_bytes=0)


class TestDropHead:
    def test_evicts_oldest_to_fit_arrival(self):
        queue = FlowQueue("f", max_bytes=250, policy="drop-head")
        first, second, third = pkt(100), pkt(100), pkt(100)
        queue.enqueue(first)
        queue.enqueue(second)
        assert queue.enqueue(third)  # evicts `first`
        assert list(queue) == [second, third]
        assert queue.dropped_packets == 1
        assert queue.dropped_bytes == 100
        assert queue.backlog_bytes == 200

    def test_evicts_several_for_a_large_arrival(self):
        queue = FlowQueue("f", max_bytes=300, policy="drop-head")
        for _ in range(3):
            queue.enqueue(pkt(100))
        big = pkt(250)
        assert queue.enqueue(big)
        assert list(queue) == [big]
        assert queue.dropped_packets == 3
        assert queue.backlog_bytes == 250

    def test_oversized_arrival_still_rejected(self):
        # No amount of evicting makes room for a packet bigger than the
        # queue itself; the existing backlog is untouched.
        queue = FlowQueue("f", max_bytes=200, policy="drop-head")
        kept = pkt(150)
        queue.enqueue(kept)
        assert not queue.enqueue(pkt(300))
        assert list(queue) == [kept]
        assert queue.dropped_packets == 1  # the arrival itself
        assert queue.backlog_bytes == 150

    def test_drop_callback_sees_evictions(self):
        dropped = []
        queue = FlowQueue(
            "f", max_bytes=200, on_drop=dropped.append, policy="drop-head"
        )
        first = pkt(150)
        queue.enqueue(first)
        queue.enqueue(pkt(150))
        assert dropped == [first]

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            FlowQueue("f", policy="random-early")

    def test_set_drop_listener_replaces(self):
        first_log, second_log = [], []
        queue = FlowQueue("f", max_bytes=100, on_drop=first_log.append)
        queue.set_drop_listener(second_log.append)
        queue.enqueue(pkt(100))
        queue.enqueue(pkt(100))  # drop-tail rejection
        assert first_log == []
        assert len(second_log) == 1


class TestValidation:
    def test_wrong_flow_rejected(self):
        queue = FlowQueue("f")
        with pytest.raises(ConfigurationError):
            queue.enqueue(pkt(flow="other"))

    def test_iteration(self):
        queue = FlowQueue("f")
        packets = [pkt(), pkt(), pkt()]
        for packet in packets:
            queue.enqueue(packet)
        assert list(queue) == packets
