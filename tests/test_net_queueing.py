"""Unit tests for per-flow queues."""

import pytest

from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.net.queueing import FlowQueue


def pkt(size=100, flow="f"):
    return Packet(flow_id=flow, size_bytes=size)


class TestFifoBehaviour:
    def test_fifo_order(self):
        queue = FlowQueue("f")
        first, second = pkt(), pkt()
        queue.enqueue(first)
        queue.enqueue(second)
        assert queue.dequeue() is first
        assert queue.dequeue() is second

    def test_head_does_not_remove(self):
        queue = FlowQueue("f")
        packet = pkt()
        queue.enqueue(packet)
        assert queue.head() is packet
        assert len(queue) == 1

    def test_head_size(self):
        queue = FlowQueue("f")
        assert queue.head_size() is None
        queue.enqueue(pkt(size=77))
        assert queue.head_size() == 77

    def test_dequeue_empty_raises(self):
        with pytest.raises(IndexError):
            FlowQueue("f").dequeue()


class TestByteAccounting:
    def test_backlog_tracks_bytes(self):
        queue = FlowQueue("f")
        queue.enqueue(pkt(100))
        queue.enqueue(pkt(200))
        assert queue.backlog_bytes == 300
        queue.dequeue()
        assert queue.backlog_bytes == 200

    def test_clear_resets(self):
        queue = FlowQueue("f")
        queue.enqueue(pkt())
        removed = queue.clear()
        assert len(removed) == 1
        assert queue.backlog_bytes == 0
        assert not queue

    def test_enqueued_counter(self):
        queue = FlowQueue("f")
        queue.enqueue(pkt())
        queue.enqueue(pkt())
        queue.dequeue()
        assert queue.enqueued_packets == 2


class TestDropTail:
    def test_drops_when_full(self):
        queue = FlowQueue("f", max_bytes=250)
        assert queue.enqueue(pkt(100))
        assert queue.enqueue(pkt(100))
        assert not queue.enqueue(pkt(100))  # would exceed 250
        assert queue.backlog_bytes == 200
        assert queue.dropped_packets == 1
        assert queue.dropped_bytes == 100

    def test_drop_callback(self):
        dropped = []
        queue = FlowQueue("f", max_bytes=50, on_drop=dropped.append)
        queue.enqueue(pkt(40))
        queue.enqueue(pkt(40))
        assert len(dropped) == 1

    def test_accepts_after_drain(self):
        queue = FlowQueue("f", max_bytes=100)
        queue.enqueue(pkt(100))
        assert not queue.enqueue(pkt(100))
        queue.dequeue()
        assert queue.enqueue(pkt(100))

    def test_invalid_max_bytes(self):
        with pytest.raises(ConfigurationError):
            FlowQueue("f", max_bytes=0)


class TestValidation:
    def test_wrong_flow_rejected(self):
        queue = FlowQueue("f")
        with pytest.raises(ConfigurationError):
            queue.enqueue(pkt(flow="other"))

    def test_iteration(self):
        queue = FlowQueue("f")
        packets = [pkt(), pkt(), pkt()]
        for packet in packets:
            queue.enqueue(packet)
        assert list(queue) == packets
