"""The §2 property battery, graded across every scheduler."""

import pytest

from repro.fairness.conformance import (
    PropertyResult,
    check_interface_preferences,
    check_new_capacity,
    check_rate_preferences,
    check_work_conservation,
    run_conformance,
)
from repro.schedulers.midrr import MiDrrScheduler
from repro.schedulers.per_interface import PerInterfaceScheduler, StaticSplitScheduler


class TestMiDrrConformance:
    @pytest.fixture(scope="class")
    def report(self):
        return run_conformance(MiDrrScheduler, label="miDRR")

    def test_passes_everything(self, report):
        assert report.passed, report.summary()

    def test_all_four_properties_checked(self, report):
        names = [result.name for result in report.results]
        assert names == [
            "interface preferences",
            "work conservation",
            "rate preferences",
            "use new capacity",
        ]

    def test_summary_renders(self, report):
        text = report.summary()
        assert "miDRR" in text
        assert text.count("[PASS]") == 4

    def test_counter_variant_also_passes(self):
        report = run_conformance(
            lambda: MiDrrScheduler(exclusion="counter"), label="miDRR-counter"
        )
        assert report.passed, report.summary()


class TestBaselineConformance:
    """The baselines fail exactly where the paper says they do."""

    def test_per_interface_wfq_fails_rate_preferences_only(self):
        report = run_conformance(PerInterfaceScheduler.wfq, label="per-if WFQ")
        failures = {result.name for result in report.failures()}
        assert "rate preferences" in failures
        # But it honours Π and wastes nothing — as the paper notes.
        assert "interface preferences" not in failures
        assert "work conservation" not in failures

    def test_per_interface_drr_fails_rate_preferences(self):
        report = run_conformance(PerInterfaceScheduler.drr, label="per-if DRR")
        failures = {result.name for result in report.failures()}
        assert "rate preferences" in failures
        assert "interface preferences" not in failures

    def test_static_split_fails_capacity_use(self):
        """Pinning flows cannot aggregate interfaces after a departure."""
        report = run_conformance(StaticSplitScheduler, label="static split")
        failures = {result.name for result in report.failures()}
        # The stayer stays pinned to one interface: both the post-
        # departure and post-step targets are unreachable.
        assert "use new capacity" in failures


class TestIndividualChecks:
    def test_results_carry_detail(self):
        result = check_interface_preferences(MiDrrScheduler)
        assert isinstance(result, PropertyResult)
        assert result.detail

    def test_rate_check_quantifies_error(self):
        result = check_rate_preferences(PerInterfaceScheduler.wfq)
        assert not result.passed
        assert "%" in result.detail

    def test_work_conservation_detail(self):
        result = check_work_conservation(MiDrrScheduler)
        assert result.passed

    def test_new_capacity_detail(self):
        result = check_new_capacity(MiDrrScheduler)
        assert result.passed, result.detail
