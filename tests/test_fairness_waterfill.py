"""Unit tests for the exact max-min water-filling solver."""

from fractions import Fraction

import pytest

from repro.errors import FairnessError
from repro.fairness.waterfill import (
    Allocation,
    Cluster,
    allocation_from_prefs,
    weighted_maxmin,
)
from repro.prefs.preferences import PreferenceSet


class TestPaperExamples:
    def test_figure_1a_single_interface(self):
        allocation = weighted_maxmin(
            {"a": (1.0, None), "b": (1.0, None)}, {"if1": 2e6}
        )
        assert allocation.rate("a") == pytest.approx(1e6)
        assert allocation.rate("b") == pytest.approx(1e6)

    def test_figure_1b_no_preferences(self):
        allocation = weighted_maxmin(
            {"a": (1.0, None), "b": (1.0, None)}, {"if1": 1e6, "if2": 1e6}
        )
        assert allocation.rate("a") == pytest.approx(1e6)
        assert allocation.rate("b") == pytest.approx(1e6)

    def test_figure_1c_interface_preference(self):
        allocation = weighted_maxmin(
            {"a": (1.0, None), "b": (1.0, ["if2"])}, {"if1": 1e6, "if2": 1e6}
        )
        assert allocation.rate("a") == pytest.approx(1e6)
        assert allocation.rate("b") == pytest.approx(1e6)

    def test_section1_infeasible_rate_preference(self):
        # φ_b = 2φ_a but b can only use if2: b is capped at 1 Mb/s and
        # a receives the leftover rather than being throttled to 0.5.
        allocation = weighted_maxmin(
            {"a": (1.0, None), "b": (2.0, ["if2"])}, {"if1": 1e6, "if2": 1e6}
        )
        assert allocation.rate("b") == pytest.approx(1e6)
        assert allocation.rate("a") == pytest.approx(1e6)

    def test_figure_6_phase1(self):
        allocation = weighted_maxmin(
            {
                "a": (1.0, ["if1"]),
                "b": (2.0, None),
                "c": (1.0, ["if2"]),
            },
            {"if1": 3e6, "if2": 10e6},
        )
        assert allocation.rate("a") == pytest.approx(3e6)
        assert allocation.rate("b") == pytest.approx(20e6 / 3)
        assert allocation.rate("c") == pytest.approx(10e6 / 3)

    def test_figure_6_phase2(self):
        allocation = weighted_maxmin(
            {"b": (2.0, None), "c": (1.0, ["if2"])},
            {"if1": 3e6, "if2": 10e6},
        )
        assert allocation.rate("b") == pytest.approx(26e6 / 3)
        assert allocation.rate("c") == pytest.approx(13e6 / 3)

    def test_figure_6_clusters(self):
        allocation = weighted_maxmin(
            {
                "a": (1.0, ["if1"]),
                "b": (2.0, None),
                "c": (1.0, ["if2"]),
            },
            {"if1": 3e6, "if2": 10e6},
        )
        assert len(allocation.clusters) == 2
        low, high = allocation.clusters
        assert low.flows == frozenset({"a"})
        assert low.interfaces == frozenset({"if1"})
        assert float(low.level) == pytest.approx(3e6)
        assert high.flows == frozenset({"b", "c"})
        assert high.interfaces == frozenset({"if2"})
        assert float(high.level) == pytest.approx(10e6 / 3)

    def test_theorem1_counterexample_scenario2(self):
        # Three extra if2-only flows arrive: a keeps 1 Mb/s on if1,
        # the four if2 flows split 1 Mb/s.
        flows = {"a": (1.0, None), "b": (1.0, ["if2"])}
        for index in range(3):
            flows[f"n{index}"] = (1.0, ["if2"])
        allocation = weighted_maxmin(flows, {"if1": 1e6, "if2": 1e6})
        assert allocation.rate("a") == pytest.approx(1e6)
        assert allocation.rate("b") == pytest.approx(0.25e6)


class TestExactness:
    def test_rates_are_exact_fractions(self):
        allocation = weighted_maxmin(
            {"a": (1.0, None), "b": (1.0, None), "c": (1.0, None)},
            {"if1": 1e6},
        )
        assert allocation.rates["a"] == Fraction(1_000_000, 3)

    def test_total_rate_equals_usable_capacity(self):
        allocation = weighted_maxmin(
            {"a": (1.0, ["if1"]), "b": (1.0, None)},
            {"if1": 5e6, "if2": 7e6},
        )
        assert allocation.total_rate() == pytest.approx(12e6)

    def test_idle_interface_reported(self):
        allocation = weighted_maxmin(
            {"a": (1.0, ["if1"])}, {"if1": 1e6, "if2": 1e6}
        )
        assert allocation.idle_interfaces == frozenset({"if2"})
        assert allocation.total_rate() == pytest.approx(1e6)

    def test_cluster_lookup(self):
        allocation = weighted_maxmin(
            {"a": (1.0, ["if1"]), "b": (1.0, ["if2"])},
            {"if1": 1e6, "if2": 2e6},
        )
        assert allocation.cluster_of("a").interfaces == frozenset({"if1"})
        assert allocation.cluster_of("if2").flows == frozenset({"b"})
        assert allocation.cluster_of("nothing") is None

    def test_normalized_rate(self):
        allocation = weighted_maxmin(
            {"a": (2.0, None), "b": (1.0, None)}, {"if1": 3e6}
        )
        assert allocation.normalized("a", 2.0) == pytest.approx(1e6)
        assert allocation.normalized("b", 1.0) == pytest.approx(1e6)


class TestValidation:
    def test_negative_capacity_rejected(self):
        with pytest.raises(FairnessError):
            weighted_maxmin({"a": (1.0, None)}, {"if1": -1.0})

    def test_zero_capacity_is_an_outage_not_an_error(self):
        # Capacity 0 models a downed interface: the flow confined to it
        # is part of the instance at an exact rate of 0 (the engine's
        # quarantine semantics), not a configuration error.
        allocation = weighted_maxmin({"a": (1.0, None)}, {"if1": 0})
        assert allocation.rates["a"] == 0
        cluster = allocation.cluster_of("a")
        assert cluster is not None and cluster.level == 0

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(FairnessError):
            weighted_maxmin({"a": (0.0, None)}, {"if1": 1e6})

    def test_unknown_interfaces_rejected(self):
        with pytest.raises(FairnessError):
            weighted_maxmin({"a": (1.0, ["nope"])}, {"if1": 1e6})

    def test_interface_limit(self):
        capacities = {f"if{j}": 1e6 for j in range(21)}
        with pytest.raises(FairnessError, match="exceeds"):
            weighted_maxmin({"a": (1.0, None)}, capacities)

    def test_empty_flow_set(self):
        allocation = weighted_maxmin({}, {"if1": 1e6})
        assert allocation.rates == {}
        assert allocation.idle_interfaces == frozenset({"if1"})

    def test_cluster_rate_of_validates_membership(self):
        cluster = Cluster(
            flows=frozenset({"a"}), interfaces=frozenset({"if1"}), level=Fraction(1)
        )
        assert cluster.rate_of("a", 2.0) == 2.0
        with pytest.raises(FairnessError):
            cluster.rate_of("b", 1.0)


class TestPreferenceSetWrapper:
    def test_allocation_from_prefs(self):
        prefs = PreferenceSet(["if1", "if2"])
        prefs.add_flow("a", weight=1.0, interfaces=["if1"])
        prefs.add_flow("b", weight=2.0)
        allocation = allocation_from_prefs(prefs, {"if1": 3e6, "if2": 10e6})
        assert allocation.rate("a") == pytest.approx(3e6)
        assert allocation.rate("b") == pytest.approx(10e6)


class TestOutageSemantics:
    """Capacity-0 interfaces model outages; quarantined flows pin at 0.

    These pin the satellite bugfix: before it, ``weighted_maxmin``
    rejected capacity 0 outright, so the fluid reference could not
    even *express* the engine's quarantine state, let alone agree
    with it.
    """

    def test_flow_confined_to_dead_interface_rates(self):
        allocation = weighted_maxmin(
            {"pinned": (1.0, ["cell"]), "roamer": (1.0, None)},
            {"wifi": 8e6, "cell": 0},
        )
        # The quarantined flow is exactly 0 (Fraction, not approx) and
        # the survivor absorbs the full remaining capacity.
        assert allocation.rates["pinned"] == 0
        assert allocation.rate("roamer") == pytest.approx(8e6)
        levels = sorted(c.level for c in allocation.clusters)
        assert levels[0] == 0

    def test_zero_capacity_subset_restriction(self):
        # A flow restricted to a mix of dead interfaces only: all-zero
        # capacity over the row still yields rate 0, not an error.
        allocation = weighted_maxmin(
            {"a": (2.0, ["c1", "c2"]), "b": (1.0, ["up"])},
            {"c1": 0, "c2": 0, "up": 1e6},
        )
        assert allocation.rates["a"] == 0
        assert allocation.rate("b") == pytest.approx(1e6)

    def test_matches_engine_quarantine_path(self):
        # The engine parks a flow whose whole Π-row is down; the fluid
        # optimum computed from live capacities (rate if up else 0)
        # must agree that the parked flow's share is exactly 0.
        from repro.core.engine import SchedulingEngine
        from repro.net.flow import Flow
        from repro.net.interface import Interface
        from repro.schedulers.midrr import MiDrrScheduler
        from repro.sim.simulator import Simulator

        sim = Simulator()
        engine = SchedulingEngine(sim, MiDrrScheduler())
        wifi = Interface(sim, "wifi", 8e6)
        cell = Interface(sim, "cell", 2e6)
        engine.add_interface(wifi)
        engine.add_interface(cell)
        engine.add_flow(Flow("bulk", weight=1.0))
        engine.add_flow(Flow("pinned", weight=1.0, allowed_interfaces=("cell",)))
        cell.bring_down()
        assert "pinned" in engine.quarantined_flows

        allocation = weighted_maxmin(
            {
                flow_id: (flow.weight, flow.allowed_interfaces)
                for flow_id, flow in engine.flows.items()
            },
            {
                interface.interface_id: (
                    interface.rate_bps if interface.up else 0
                )
                for interface in engine.interfaces.values()
            },
        )
        assert allocation.rates["pinned"] == 0
        assert allocation.rate("bulk") == pytest.approx(8e6)

    def test_all_interfaces_down_total_outage(self):
        allocation = weighted_maxmin(
            {"a": (1.0, None), "b": (3.0, None)}, {"if1": 0, "if2": 0}
        )
        assert allocation.rates["a"] == 0
        assert allocation.rates["b"] == 0
        assert allocation.total_rate() == 0
