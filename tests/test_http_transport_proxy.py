"""Unit + integration tests for the downlink channel and the proxy."""

import pytest

from repro.errors import ConfigurationError
from repro.httpproxy.client import RepeatingDownloader
from repro.httpproxy.http11 import Headers, HttpRequest
from repro.httpproxy.proxy import SchedulingHttpProxy
from repro.httpproxy.server import HttpOriginServer, synthetic_body
from repro.httpproxy.transport import RESPONSE_OVERHEAD_BYTES, DownlinkChannel
from repro.net.interface import CapacityStep
from repro.schedulers.midrr import MiDrrScheduler
from repro.units import mbps


def make_server(size=256 * 1024, url="/obj"):
    server = HttpOriginServer()
    server.put_synthetic(url, size)
    return server


def ranged_get(url, start, end):
    return HttpRequest(
        method="GET", target=url, headers=Headers({"Range": f"bytes={start}-{end}"})
    )


class TestDownlinkChannel:
    def test_response_delivered_after_rtt_and_serialization(self, sim):
        server = make_server(size=100_000)
        channel = DownlinkChannel(sim, "if1", server, rate_bps=80_000, rtt=0.5)
        done = []
        channel.issue(
            ranged_get("/obj", 0, 9_999),
            lambda ch, req, resp: done.append(sim.now),
        )
        sim.run()
        expected = 0.5 + (10_000 + RESPONSE_OVERHEAD_BYTES) * 8 / 80_000
        assert done == [pytest.approx(expected)]

    def test_pipelined_responses_in_order(self, sim):
        server = make_server()
        channel = DownlinkChannel(sim, "if1", server, rate_bps=mbps(1), rtt=0.01)
        order = []
        for index in range(3):
            channel.issue(
                ranged_get("/obj", index * 100, index * 100 + 99),
                lambda ch, req, resp, i=index: order.append(i),
            )
        sim.run()
        assert order == [0, 1, 2]

    def test_pipeline_capacity(self, sim):
        server = make_server()
        channel = DownlinkChannel(
            sim, "if1", server, rate_bps=mbps(1), pipeline_depth=2
        )
        channel.issue(ranged_get("/obj", 0, 99), lambda *a: None)
        channel.issue(ranged_get("/obj", 100, 199), lambda *a: None)
        assert not channel.has_slot
        with pytest.raises(ConfigurationError, match="full"):
            channel.issue(ranged_get("/obj", 200, 299), lambda *a: None)

    def test_slot_listener_fires(self, sim):
        server = make_server()
        channel = DownlinkChannel(sim, "if1", server, rate_bps=mbps(1))
        freed = []
        channel.on_slot_free(lambda ch: freed.append(sim.now))
        channel.issue(ranged_get("/obj", 0, 99), lambda *a: None)
        sim.run()
        assert len(freed) == 1

    def test_rate_change_applies(self, sim):
        server = make_server(size=1_000_000)
        channel = DownlinkChannel(sim, "if1", server, rate_bps=mbps(8), rtt=0.0)
        channel.apply_capacity_schedule([CapacityStep(1.0, mbps(2))])
        done = []
        sim.schedule(
            2.0,
            lambda: channel.issue(
                ranged_get("/obj", 0, 99_999), lambda *a: done.append(sim.now)
            ),
        )
        sim.run()
        expected = 2.0 + (100_000 + RESPONSE_OVERHEAD_BYTES) * 8 / mbps(2)
        assert done == [pytest.approx(expected, rel=1e-6)]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_bps": 0},
            {"pipeline_depth": 0},
            {"rtt": -0.1},
        ],
    )
    def test_invalid_params(self, sim, kwargs):
        defaults = dict(rate_bps=mbps(1))
        defaults.update(kwargs)
        with pytest.raises(ConfigurationError):
            DownlinkChannel(sim, "if1", make_server(), **defaults)


class TestTimeoutsAndRetries:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"read_timeout": 0},
            {"read_timeout": -1.0},
            {"max_retries": -1},
            {"backoff_base": 0},
            {"backoff_base": 3.0, "backoff_cap": 1.0},
        ],
    )
    def test_invalid_params(self, sim, kwargs):
        with pytest.raises(ConfigurationError):
            DownlinkChannel(sim, "if1", make_server(), rate_bps=mbps(1), **kwargs)

    def test_no_timeout_waits_through_outage(self, sim):
        # Legacy default (read_timeout=None): the outage abandons the
        # in-flight serialization, bring_up restarts it from scratch.
        server = make_server(size=100_000)
        channel = DownlinkChannel(sim, "if1", server, rate_bps=80_000, rtt=0.0)
        done = []
        channel.issue(
            ranged_get("/obj", 0, 9_999), lambda ch, req, resp: done.append(sim.now)
        )
        sim.schedule(0.5, channel.bring_down)
        sim.schedule(1.0, channel.bring_up)
        sim.run()
        expected = 1.0 + (10_000 + RESPONSE_OVERHEAD_BYTES) * 8 / 80_000
        assert done == [pytest.approx(expected)]
        assert channel.timeouts == 0
        assert channel.responses_delivered == 1

    def test_timeout_retry_succeeds_after_recovery(self, sim):
        server = make_server(size=100_000)
        channel = DownlinkChannel(
            sim,
            "if1",
            server,
            rate_bps=80_000,
            rtt=0.0,
            read_timeout=1.0,
            max_retries=2,
            backoff_base=0.1,
        )
        done = []
        channel.bring_down()
        channel.issue(
            ranged_get("/obj", 0, 999), lambda ch, req, resp: done.append(sim.now)
        )
        sim.schedule(1.55, channel.bring_up)
        sim.run()
        # First attempt times out at 1.0 (channel down), the retry is
        # reissued at 1.1 and serializes once the channel recovers.
        assert channel.timeouts == 1
        assert channel.retries == 1
        assert channel.failed_requests == 0
        expected = 1.55 + (1_000 + RESPONSE_OVERHEAD_BYTES) * 8 / 80_000
        assert done == [pytest.approx(expected)]
        assert channel.has_slot

    def test_retries_exhausted_reports_failure(self, sim):
        server = make_server(size=100_000)
        channel = DownlinkChannel(
            sim,
            "if1",
            server,
            rate_bps=80_000,
            rtt=0.0,
            read_timeout=0.5,
            max_retries=2,
            backoff_base=0.1,
        )
        channel.bring_down()  # never recovers
        done, failures = [], []
        channel.on_failure(lambda ch, req: failures.append((sim.now, req)))
        request = ranged_get("/obj", 0, 999)
        channel.issue(request, lambda ch, req, resp: done.append(resp))
        sim.run()
        assert done == []
        assert channel.timeouts == 3  # the initial attempt + 2 retries
        assert channel.retries == 2
        assert channel.failed_requests == 1
        assert len(failures) == 1
        assert failures[0][1] is request
        # Deadlines: 0.5; retry at 0.6 -> 1.1; retry at 1.3 -> 1.8.
        assert failures[0][0] == pytest.approx(1.8)
        assert channel.has_slot

    def test_deadline_aborts_slow_serialization(self, sim):
        # 10 160 B at 80 kb/s needs 1.016 s, past the 0.5 s deadline:
        # the transfer is abandoned mid-flight.
        server = make_server(size=100_000)
        channel = DownlinkChannel(
            sim,
            "if1",
            server,
            rate_bps=80_000,
            rtt=0.0,
            read_timeout=0.5,
            max_retries=0,
        )
        done = []
        channel.issue(ranged_get("/obj", 0, 9_999), lambda *a: done.append(sim.now))
        sim.run()
        assert done == []
        assert channel.timeouts == 1
        assert channel.failed_requests == 1
        assert channel.outstanding == 0

    def test_backoff_is_capped(self, sim):
        server = make_server(size=100_000)
        channel = DownlinkChannel(
            sim,
            "if1",
            server,
            rate_bps=80_000,
            rtt=0.0,
            read_timeout=0.5,
            max_retries=4,
            backoff_base=0.4,
            backoff_cap=1.0,
        )
        channel.bring_down()
        failures = []
        channel.on_failure(lambda ch, req: failures.append(sim.now))
        channel.issue(ranged_get("/obj", 0, 999), lambda *a: None)
        sim.run()
        # Backoffs 0.4, 0.8 then capped at 1.0, 1.0:
        # deadlines 0.5 | 0.9->1.4 | 2.2->2.7 | 3.7->4.2 | 5.2->5.7.
        assert channel.retries == 4
        assert failures == [pytest.approx(5.7)]

    def test_timeout_of_queued_transfer_spares_the_head(self, sim):
        server = make_server(size=1_000_000)
        channel = DownlinkChannel(
            sim,
            "if1",
            server,
            rate_bps=80_000,
            rtt=0.0,
            read_timeout=2.0,
            max_retries=0,
        )
        done = []
        for start, end in ((0, 14_999), (15_000, 24_999)):
            channel.issue(
                ranged_get("/obj", start, end),
                lambda ch, req, resp: done.append(len(resp.body)),
            )
        sim.run()
        # The head serializes for 1.516 s and lands inside its deadline;
        # the queued transfer starts at 1.516 s, needs another 1.016 s,
        # and its own deadline fires at 2.0 s without disturbing the head.
        assert channel.timeouts == 1
        assert channel.failed_requests == 1
        assert done == [15_000]


class TestProxy:
    def _proxy(self, sim, server, rates=(mbps(8), mbps(4)), chunk=16 * 1024):
        proxy = SchedulingHttpProxy(
            sim, scheduler=MiDrrScheduler(quantum_base=chunk), chunk_bytes=chunk
        )
        for index, rate in enumerate(rates, start=1):
            proxy.add_channel(
                DownlinkChannel(sim, f"if{index}", server, rate, rtt=0.01)
            )
        return proxy

    def test_single_fetch_content_integrity(self, sim):
        server = make_server(size=200_000)
        proxy = self._proxy(sim, server)
        proxy.add_flow("a")
        completed = []
        proxy.fetch("a", "/obj", server, on_complete=completed.append)
        sim.run()
        assert len(completed) == 1
        fetch = completed[0]
        assert fetch.body == synthetic_body("/obj", 200_000)
        assert fetch.completed_at is not None
        assert fetch.goodput_bps() > 0

    def test_fetch_uses_both_interfaces(self, sim):
        server = make_server(size=500_000)
        proxy = self._proxy(sim, server)
        proxy.add_flow("a")
        proxy.fetch("a", "/obj", server)
        sim.run()
        matrix = proxy.stats.service_matrix()
        assert matrix.get(("a", "if1"), 0) > 0
        assert matrix.get(("a", "if2"), 0) > 0

    def test_interface_preference_respected(self, sim):
        server = make_server(size=200_000)
        proxy = self._proxy(sim, server)
        proxy.add_flow("a", interfaces=["if2"])
        proxy.fetch("a", "/obj", server)
        sim.run()
        matrix = proxy.stats.service_matrix()
        assert ("a", "if1") not in matrix

    def test_unknown_flow_rejected(self, sim):
        server = make_server()
        proxy = self._proxy(sim, server)
        with pytest.raises(ConfigurationError, match="unknown flow"):
            proxy.fetch("ghost", "/obj", server)

    def test_double_fetch_rejected(self, sim):
        server = make_server(size=1_000_000)
        proxy = self._proxy(sim, server)
        proxy.add_flow("a")
        proxy.fetch("a", "/obj", server)
        with pytest.raises(ConfigurationError, match="active fetch"):
            proxy.fetch("a", "/obj", server)

    def test_missing_object_rejected(self, sim):
        server = make_server()
        proxy = self._proxy(sim, server)
        proxy.add_flow("a")
        from repro.errors import HttpError

        with pytest.raises(HttpError):
            proxy.fetch("a", "/nope", server)

    def test_weighted_sharing(self, sim):
        server = HttpOriginServer()
        server.put_synthetic("/big", 4 * 1024 * 1024)
        proxy = self._proxy(sim, server, rates=(mbps(8),))
        proxy.add_flow("heavy", weight=3.0)
        proxy.add_flow("light", weight=1.0)
        RepeatingDownloader(sim, proxy, server, "heavy", "/big").start()
        RepeatingDownloader(sim, proxy, server, "light", "/big").start()
        sim.run(until=20.0)
        heavy = proxy.stats.rate_in_window("heavy", 2, 20)
        light = proxy.stats.rate_in_window("light", 2, 20)
        assert heavy / light == pytest.approx(3.0, rel=0.2)


class TestRepeatingDownloader:
    def test_loops_and_verifies(self, sim):
        server = make_server(size=100_000)
        proxy = SchedulingHttpProxy(sim, chunk_bytes=16 * 1024)
        proxy.add_channel(DownlinkChannel(sim, "if1", server, mbps(8), rtt=0.005))
        proxy.add_flow("a")
        downloader = RepeatingDownloader(sim, proxy, server, "a", "/obj")
        downloader.start()
        sim.run(until=10.0)
        assert downloader.downloads_completed >= 5
        assert downloader.integrity_failures == 0
        assert downloader.bytes_downloaded == downloader.downloads_completed * 100_000

    def test_stop_time(self, sim):
        server = make_server(size=50_000)
        proxy = SchedulingHttpProxy(sim, chunk_bytes=16 * 1024)
        proxy.add_channel(DownlinkChannel(sim, "if1", server, mbps(8), rtt=0.005))
        proxy.add_flow("a")
        downloader = RepeatingDownloader(
            sim, proxy, server, "a", "/obj", stop_time=1.0
        )
        downloader.start()
        sim.run(until=10.0)
        count_at_stop = downloader.downloads_completed
        sim2_count = downloader.downloads_completed
        assert count_at_stop == sim2_count
        assert downloader.downloads_completed < 20  # bounded by stop


class TestAbort:
    def test_abort_stops_service(self, sim):
        server = make_server(size=2_000_000)
        proxy = SchedulingHttpProxy(sim, chunk_bytes=16 * 1024)
        proxy.add_channel(DownlinkChannel(sim, "if1", server, mbps(4), rtt=0.01))
        proxy.add_flow("a")
        proxy.fetch("a", "/obj", server)
        sim.run(until=1.0)
        assert proxy.abort("a")
        served_at_abort = proxy.stats.bytes_sent("a")
        sim.run(until=5.0)
        # At most the in-flight pipeline drains after the abort.
        assert proxy.stats.bytes_sent("a") <= served_at_abort + 4 * 16 * 1024

    def test_abort_nothing_active(self, sim):
        server = make_server()
        proxy = SchedulingHttpProxy(sim, chunk_bytes=16 * 1024)
        proxy.add_channel(DownlinkChannel(sim, "if1", server, mbps(4)))
        proxy.add_flow("a")
        assert not proxy.abort("a")

    def test_refetch_after_abort(self, sim):
        server = make_server(size=200_000)
        proxy = SchedulingHttpProxy(sim, chunk_bytes=16 * 1024)
        proxy.add_channel(DownlinkChannel(sim, "if1", server, mbps(8), rtt=0.005))
        proxy.add_flow("a")
        proxy.fetch("a", "/obj", server)
        sim.run(until=0.05)
        proxy.abort("a")
        done = []
        proxy.fetch("a", "/obj", server, on_complete=done.append)
        sim.run(until=10.0)
        assert len(done) == 1
        assert done[0].body == synthetic_body("/obj", 200_000)

    def test_abort_frees_capacity_for_peer(self, sim):
        server = make_server(size=4_000_000)
        proxy = SchedulingHttpProxy(sim, chunk_bytes=16 * 1024)
        proxy.add_channel(DownlinkChannel(sim, "if1", server, mbps(4), rtt=0.01))
        proxy.add_flow("a")
        proxy.add_flow("b")
        proxy.fetch("a", "/obj", server)
        proxy.fetch("b", "/obj", server)
        sim.schedule(2.0, proxy.abort, "a")
        sim.run(until=6.0)
        late_b = proxy.stats.rate_in_window("b", 3.0, 6.0)
        assert late_b == pytest.approx(mbps(4), rel=0.15)
