"""E4/E6/E7/E8 — Figures 7, 9, 10, 11: asserted paper claims."""

import pytest

from repro.experiments import fig7, fig9, fig10


class TestFig7:
    def test_published_statistics_reproduced(self):
        result = fig7.run(seed=0)
        # Paper: "10% of the time, we have 7 or more ongoing flows".
        assert result.fraction_7_or_more == pytest.approx(
            fig7.PAPER_FRACTION_7_OR_MORE, abs=0.04
        )
        # Paper: "the maximum number of concurrent flows hit ... 35".
        assert 30 <= result.max_concurrent <= fig7.PAPER_MAX_CONCURRENT

    def test_cdf_shape(self):
        result = fig7.run(seed=0)
        cdf = dict(result.cdf())
        # Most active time is spent at low concurrency.
        assert cdf[1] > 0.3
        assert cdf[6] == pytest.approx(1 - result.fraction_7_or_more, abs=1e-9)

    def test_different_seeds_stay_calibrated(self):
        for seed in (7, 42):
            result = fig7.run(seed=seed)
            assert 0.05 < result.fraction_7_or_more < 0.16


class TestFig9:
    def test_decision_time_grows_with_interfaces(self):
        """Paper: more interfaces → more set flags → longer search."""
        results = fig9.run(interface_counts=(4, 16), num_flows=64)
        assert (
            results[16].mean_flows_examined()
            > results[4].mean_flows_examined()
        )

    def test_decision_time_independent_of_flow_count(self):
        """Paper: scheduling time does not grow through the flow list."""
        sweep = fig9.flow_count_sweep(flow_counts=(16, 256), num_interfaces=8)
        examined_small = sweep[16].mean_flows_examined()
        examined_large = sweep[256].mean_flows_examined()
        # 16× more flows must NOT mean 16× more work; allow 2×.
        assert examined_large < 2.5 * max(examined_small, 1.0)

    def test_decisions_are_fast(self):
        """Sanity bound: a Python decision stays well under 1 ms."""
        result = fig9.measure(8, num_flows=64, packets=500)
        assert result.median_us() < 1000.0

    def test_samples_counted(self):
        result = fig9.measure(4, num_flows=16, packets=300)
        assert len(result.decision_ns) == 300
        assert len(result.flows_examined) == 300

    def test_invalid_params(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            fig9.measure(0)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10.run()

    def test_content_integrity(self, result):
        """Spliced bodies must match the origin bytes exactly."""
        assert result.integrity_failures() == 0
        assert all(
            d.downloads_completed > 0 for d in result.downloaders.values()
        )

    def test_flow_b_tracks_faster_interface(self, result):
        """The paper's headline: b always matches the faster flow."""
        for phase in fig10.CAPACITY_PHASES:
            start, end, _, _ = phase
            expected = fig10.expected_rates(phase)
            measured_b = result.goodput("b", start + 2, end - 0.5)
            assert measured_b == pytest.approx(expected["b"], rel=0.20), (
                f"phase {phase}: b={measured_b}"
            )

    def test_pinned_flows_track_their_interface(self, result):
        for phase in fig10.CAPACITY_PHASES:
            start, end, _, _ = phase
            expected = fig10.expected_rates(phase)
            for flow_id in ("a", "c"):
                measured = result.goodput(flow_id, start + 2, end - 0.5)
                assert measured == pytest.approx(
                    expected[flow_id], rel=0.25
                ), f"phase {phase}: {flow_id}={measured}"

    def test_figure_11_cluster_flip(self, result):
        """b clusters with if1's flow when if1 is faster, and vice versa."""
        phase1 = result.clusters(3, 10)  # if1 faster
        cluster_of_b = next(c for c in phase1 if "b" in c.flows)
        assert "a" in cluster_of_b.flows
        assert "c" not in cluster_of_b.flows

        phase2 = result.clusters(12, 18)  # if2 faster
        cluster_of_b = next(c for c in phase2 if "b" in c.flows)
        assert "c" in cluster_of_b.flows
        assert "a" not in cluster_of_b.flows

    def test_total_goodput_tracks_capacity(self, result):
        from repro.units import mbps

        for start, end, rate1, rate2 in fig10.CAPACITY_PHASES:
            total = sum(
                result.goodput(f, start + 2, end - 0.5) for f in ("a", "b", "c")
            )
            # Within 15 % of raw capacity (request overhead + RTT gaps).
            assert total == pytest.approx(mbps(rate1 + rate2), rel=0.15)
