"""Unit tests for the scheduling engine."""

import pytest

from tests.helpers import make_flow

from repro.core.engine import SchedulingEngine
from repro.errors import ConfigurationError
from repro.net.flow import Flow
from repro.net.interface import Interface
from repro.net.packet import Packet
from repro.net.sources import BulkSource
from repro.schedulers.midrr import MiDrrScheduler


def build_engine(sim, rates=(12_000,)):
    engine = SchedulingEngine(sim, MiDrrScheduler())
    for index, rate in enumerate(rates, start=1):
        engine.add_interface(Interface(sim, f"if{index}", rate))
    return engine


class TestWiring:
    def test_duplicate_interface_rejected(self, sim):
        engine = build_engine(sim)
        with pytest.raises(ConfigurationError):
            engine.add_interface(Interface(sim, "if1", 1e6))

    def test_duplicate_flow_rejected(self, sim):
        engine = build_engine(sim)
        engine.add_flow(make_flow("a"))
        with pytest.raises(ConfigurationError):
            engine.add_flow(make_flow("a"))

    def test_transmits_prebacklogged_flow(self, sim):
        engine = build_engine(sim)
        engine.add_flow(make_flow("a", backlog_packets=3))
        engine.start()
        sim.run()
        assert engine.stats.bytes_sent("a") == 4500

    def test_arrival_wakes_idle_interface(self, sim):
        engine = build_engine(sim)
        flow = make_flow("a")
        engine.add_flow(flow)
        engine.start()
        sim.run()  # nothing to do yet
        sim.schedule(5.0, flow.offer, Packet(flow_id="a", size_bytes=1500))
        sim.run()
        assert engine.stats.bytes_sent("a") == 1500
        assert sim.now == pytest.approx(6.0)  # 5.0 + 1 s transmission

    def test_flow_accounting(self, sim):
        engine = build_engine(sim)
        flow = make_flow("a", backlog_packets=2)
        engine.add_flow(flow)
        engine.start()
        sim.run()
        assert flow.bytes_sent == 3000
        assert flow.packets_sent == 2


class TestCompletion:
    def test_finite_transfer_completes_and_retires(self, sim):
        engine = build_engine(sim)
        flow = Flow("a")
        source = BulkSource(sim, flow, packet_size=1500, total_bytes=4500)
        engine.add_flow(flow, source=source)
        completions = []
        engine.on_flow_completed(lambda f: completions.append((f.flow_id, sim.now)))
        engine.start()
        sim.run()
        assert completions == [("a", pytest.approx(3.0))]
        assert flow.completed_at == pytest.approx(3.0)
        assert "a" not in engine.flows

    def test_completion_frees_capacity_for_peer(self, sim):
        engine = build_engine(sim)
        short = Flow("short")
        short_source = BulkSource(sim, short, packet_size=1500, total_bytes=3000)
        long_flow = Flow("long")
        long_source = BulkSource(sim, long_flow, packet_size=1500, total_bytes=15000)
        engine.add_flow(short, source=short_source)
        engine.add_flow(long_flow, source=long_source)
        engine.start()
        sim.run()
        # All 18000 bytes sent back to back: 12 s at 12 kb/s.
        assert sim.now == pytest.approx(12.0)
        assert long_flow.completed_at == pytest.approx(12.0)

    def test_unbounded_flow_never_completes(self, sim):
        engine = build_engine(sim)
        flow = Flow("a")
        source = BulkSource(sim, flow)  # unbounded
        engine.add_flow(flow, source=source)
        engine.start()
        sim.run(until=10.0)
        assert flow.completed_at is None
        assert engine.stats.bytes_sent("a") > 0

    def test_remove_flow_stops_service(self, sim):
        engine = build_engine(sim)
        flow = make_flow("a", backlog_packets=100)
        engine.add_flow(flow)
        engine.start()
        sim.schedule(2.5, engine.remove_flow, "a")
        sim.run(until=10.0)
        # ~2-3 packets in 2.5 s, then nothing.
        assert engine.stats.bytes_sent("a") <= 3 * 1500


class TestMultiInterface:
    def test_two_interfaces_share_one_flow(self, sim):
        engine = build_engine(sim, rates=(12_000, 12_000))
        flow = Flow("a")
        BulkSource(sim, flow)
        engine.add_flow(flow)
        engine.start()
        sim.run(until=10.0)
        # Aggregation: both interfaces work → ~20 packets total.
        assert engine.stats.bytes_sent("a") == pytest.approx(30_000, rel=0.15)

    def test_unwilling_interface_stays_idle(self, sim):
        engine = build_engine(sim, rates=(12_000, 12_000))
        flow = Flow("a", allowed_interfaces=["if1"])
        BulkSource(sim, flow)
        engine.add_flow(flow)
        engine.start()
        sim.run(until=10.0)
        assert engine.stats.interface_bytes("if1") > 0
        assert engine.stats.interface_bytes("if2") == 0


class TestDeadlineAccounting:
    """Engine-level miss accounting is scheduler-agnostic (ISSUE 9)."""

    def test_misses_counted_under_midrr(self, sim):
        engine = build_engine(sim, rates=(8_000,))  # 1 s per 1000 B
        flow = Flow("slow", deadline_budget=0.5)
        engine.add_flow(flow)
        for _ in range(2):
            flow.offer(Packet(flow_id="slow", size_bytes=1000))
        engine.start()
        sim.run()
        assert engine.deadline_packets_total == 2
        assert engine.deadline_misses_total == 2
        assert engine.deadline_misses_by_flow == {"slow": 2}

    def test_met_deadlines_do_not_count_as_misses(self, sim):
        engine = build_engine(sim, rates=(8_000_000,))
        flow = Flow("fast", deadline_budget=0.5)
        engine.add_flow(flow)
        flow.offer(Packet(flow_id="fast", size_bytes=1000))
        engine.start()
        sim.run()
        assert engine.deadline_packets_total == 1
        assert engine.deadline_misses_total == 0

    def test_elastic_packets_ignored(self, sim):
        engine = build_engine(sim, rates=(8_000,))
        engine.add_flow(make_flow("e", backlog_packets=2))
        engine.start()
        sim.run()
        assert engine.deadline_packets_total == 0

    def test_listener_receives_lateness(self, sim):
        engine = build_engine(sim, rates=(8_000,))
        flow = Flow("slow", deadline_budget=0.25)
        engine.add_flow(flow)
        flow.offer(Packet(flow_id="slow", size_bytes=1000))
        seen = []
        engine.on_deadline_miss(
            lambda f, packet, lateness: seen.append((f.flow_id, lateness))
        )
        engine.start()
        sim.run()
        assert len(seen) == 1
        assert seen[0][0] == "slow"
        assert seen[0][1] == pytest.approx(0.75)

    def test_counters_survive_snapshot(self, sim):
        import json

        engine = build_engine(sim, rates=(8_000,))
        flow = Flow("slow", deadline_budget=0.5)
        engine.add_flow(flow)
        for _ in range(2):
            flow.offer(Packet(flow_id="slow", size_bytes=1000))
        engine.start()
        sim.run()
        state = json.loads(json.dumps(engine.snapshot_state()))

        from repro.sim.simulator import Simulator

        sim2 = Simulator()
        engine2 = build_engine(sim2, rates=(8_000,))
        engine2.add_flow(Flow("slow", deadline_budget=0.5))
        engine2.restore_state(state)
        assert engine2.deadline_packets_total == 2
        assert engine2.deadline_misses_total == 2
        assert engine2.deadline_misses_by_flow == {"slow": 2}
