"""Unit tests for the naive multi-interface baselines."""

import pytest

from tests.helpers import make_flow

from repro.errors import SchedulingError
from repro.schedulers.per_interface import PerInterfaceScheduler, StaticSplitScheduler


def multi_drain(scheduler, interface_ids, count):
    """Round-robin the interfaces, collecting (interface, packet)."""
    served = []
    idle = 0
    while len(served) < count and idle < len(interface_ids):
        for interface_id in interface_ids:
            packet = scheduler.select(interface_id)
            if packet is None:
                idle += 1
            else:
                idle = 0
                served.append((interface_id, packet))
            if len(served) >= count:
                break
    return served


class TestPerInterfaceScheduler:
    def test_respects_interface_preferences(self):
        scheduler = PerInterfaceScheduler.drr()
        scheduler.register_interface("if1")
        scheduler.register_interface("if2")
        scheduler.add_flow(make_flow("pinned", interfaces=["if2"], backlog_packets=50))
        scheduler.add_flow(make_flow("free", backlog_packets=50))
        served = multi_drain(scheduler, ["if1", "if2"], 40)
        for interface_id, packet in served:
            if packet.flow_id == "pinned":
                assert interface_id == "if2"

    def test_unknown_interface_raises(self):
        scheduler = PerInterfaceScheduler.wfq()
        with pytest.raises(SchedulingError):
            scheduler.select("nope")

    def test_unwilling_flow_everywhere_rejected(self):
        scheduler = PerInterfaceScheduler.wfq()
        scheduler.register_interface("if1")
        with pytest.raises(SchedulingError):
            scheduler.add_flow(make_flow("x", interfaces=["if9"]))

    def test_flow_added_before_interface(self):
        scheduler = PerInterfaceScheduler.drr()
        scheduler.register_interface("if1")
        scheduler.add_flow(make_flow("a", backlog_packets=10))
        scheduler.register_interface("if2")
        # Flow joins the new interface too.
        assert scheduler.select("if2") is not None

    def test_remove_flow_everywhere(self):
        scheduler = PerInterfaceScheduler.drr()
        scheduler.register_interface("if1")
        scheduler.register_interface("if2")
        scheduler.add_flow(make_flow("a", backlog_packets=10))
        scheduler.remove_flow("a")
        assert scheduler.select("if1") is None
        assert scheduler.select("if2") is None

    def test_figure_1c_unfair_allocation(self):
        # The motivating failure: flow a hoards interface 1 plus half of
        # interface 2 → 3:1 byte split instead of 1:1.
        scheduler = PerInterfaceScheduler.drr()
        scheduler.register_interface("if1")
        scheduler.register_interface("if2")
        scheduler.add_flow(make_flow("a", backlog_packets=2000))
        scheduler.add_flow(make_flow("b", interfaces=["if2"], backlog_packets=2000))
        served = multi_drain(scheduler, ["if1", "if2"], 400)
        a_bytes = sum(p.size_bytes for _, p in served if p.flow_id == "a")
        b_bytes = sum(p.size_bytes for _, p in served if p.flow_id == "b")
        assert a_bytes / (a_bytes + b_bytes) == pytest.approx(0.75, abs=0.05)


class TestStaticSplitScheduler:
    def test_each_flow_pinned_to_one_interface(self):
        scheduler = StaticSplitScheduler()
        scheduler.register_interface("if1")
        scheduler.register_interface("if2")
        for index in range(4):
            scheduler.add_flow(make_flow(f"f{index}", backlog_packets=20))
        assignment = scheduler.assignment
        assert set(assignment.values()) <= {"if1", "if2"}
        served = multi_drain(scheduler, ["if1", "if2"], 40)
        for interface_id, packet in served:
            assert assignment[packet.flow_id] == interface_id

    def test_balances_by_weight(self):
        scheduler = StaticSplitScheduler()
        scheduler.register_interface("if1")
        scheduler.register_interface("if2")
        scheduler.add_flow(make_flow("heavy", weight=3.0, backlog_packets=5))
        scheduler.add_flow(make_flow("light1", weight=1.0, backlog_packets=5))
        scheduler.add_flow(make_flow("light2", weight=1.0, backlog_packets=5))
        assignment = scheduler.assignment
        # heavy lands on if1, both lights on if2 (weight 3 vs 2).
        assert assignment["heavy"] == "if1"
        assert assignment["light1"] == "if2"
        assert assignment["light2"] == "if2"

    def test_respects_interface_preferences(self):
        scheduler = StaticSplitScheduler()
        scheduler.register_interface("if1")
        scheduler.register_interface("if2")
        scheduler.add_flow(make_flow("pinned", interfaces=["if2"], backlog_packets=5))
        assert scheduler.assignment["pinned"] == "if2"

    def test_removal_releases_weight(self):
        scheduler = StaticSplitScheduler()
        scheduler.register_interface("if1")
        scheduler.register_interface("if2")
        scheduler.add_flow(make_flow("a", weight=5.0, backlog_packets=5))
        scheduler.remove_flow("a")
        scheduler.add_flow(make_flow("b", weight=1.0, backlog_packets=5))
        # With a's weight released, b goes to if1 again (least loaded).
        assert scheduler.assignment["b"] == "if1"

    def test_unknown_interface_raises(self):
        scheduler = StaticSplitScheduler()
        with pytest.raises(SchedulingError):
            scheduler.select("nope")


class TestPreferenceChurn:
    """Regression (ISSUE 9): inner membership used to be computed once
    at admission and never revisited, so a live ``restrict_to`` left
    the flow being served by interfaces its new Π row forbids."""

    def test_per_interface_restriction_stops_service(self):
        scheduler = PerInterfaceScheduler.drr()
        scheduler.register_interface("if1")
        scheduler.register_interface("if2")
        flow = make_flow("m", backlog_packets=50)
        scheduler.add_flow(flow)
        assert scheduler.select("if1") is not None
        flow.restrict_to({"if2"})
        # Π violation before the fix: if1 kept serving from its stale
        # inner membership.
        assert scheduler.select("if1") is None
        assert scheduler.select("if2").flow_id == "m"

    def test_per_interface_widening_starts_service(self):
        scheduler = PerInterfaceScheduler.wfq()
        scheduler.register_interface("if1")
        scheduler.register_interface("if2")
        flow = make_flow("m", interfaces=["if1"], backlog_packets=50)
        scheduler.add_flow(flow)
        assert scheduler.select("if2") is None
        flow.restrict_to({"if1", "if2"})
        # The newly-willing interface picks the flow up without a
        # remove/re-add cycle.
        assert scheduler.select("if2").flow_id == "m"

    def test_per_interface_churn_survives_snapshot(self):
        import json

        def build():
            scheduler = PerInterfaceScheduler.drr()
            scheduler.register_interface("if1")
            scheduler.register_interface("if2")
            return scheduler

        source = build()
        flow = make_flow("m", backlog_packets=50)
        source.add_flow(flow)
        flow.restrict_to({"if2"})
        snapshot = json.loads(json.dumps(source.snapshot_state()))

        target = build()
        restored_flow = make_flow("m", backlog_packets=50)
        restored_flow.restrict_to({"if2"})
        target.add_flow(restored_flow)
        target.restore_state(snapshot, {"m": restored_flow})
        assert target.select("if1") is None
        assert target.select("if2").flow_id == "m"

    def test_static_split_repins_on_pi_eviction(self):
        scheduler = StaticSplitScheduler()
        scheduler.register_interface("if1")
        scheduler.register_interface("if2")
        flow = make_flow("m", backlog_packets=50)
        scheduler.add_flow(flow)
        assert scheduler.assignment["m"] == "if1"
        flow.restrict_to({"if2"})
        # Serving on if1 would violate Π: the flow is re-pinned.
        assert scheduler.select("if1") is None
        assert scheduler.select("if2").flow_id == "m"
        assert scheduler.assignment["m"] == "if2"

    def test_static_split_keeps_pin_when_still_willing(self):
        scheduler = StaticSplitScheduler()
        scheduler.register_interface("if1")
        scheduler.register_interface("if2")
        flow = make_flow("m", backlog_packets=50)
        scheduler.add_flow(flow)
        pinned = scheduler.assignment["m"]
        # A Π edit that keeps the pinned interface does NOT re-pin:
        # static splitting is assignment-stable by contract.
        flow.restrict_to({"if1", "if2"})
        scheduler.select("if1")
        scheduler.select("if2")
        assert scheduler.assignment["m"] == pinned


class TestStaticSplitPinOnce:
    """ISSUE 9 satellite: the pin-once contract for late interfaces is
    documented and asserted, not silently wrong."""

    def test_late_interface_keeps_existing_pins(self):
        scheduler = StaticSplitScheduler()
        scheduler.register_interface("if1")
        scheduler.add_flow(make_flow("a", backlog_packets=10))
        scheduler.add_flow(make_flow("b", backlog_packets=10))
        before = scheduler.assignment
        scheduler.register_interface("if2")
        # Existing flows are never reassigned retroactively...
        assert scheduler.assignment == before
        assert scheduler.select("if2") is None
        # ...but the empty newcomer wins the next admission.
        scheduler.add_flow(make_flow("c", weight=0.5, backlog_packets=10))
        assert scheduler.assignment["c"] == "if2"
        assert scheduler.select("if2").flow_id == "c"


class TestAggregateFifo:
    def test_pi_still_respected(self):
        scheduler = PerInterfaceScheduler.fifo()
        scheduler.register_interface("if1")
        scheduler.register_interface("if2")
        scheduler.add_flow(make_flow("pinned", interfaces=["if2"], backlog_packets=20))
        scheduler.add_flow(make_flow("free", backlog_packets=20))
        served = multi_drain(scheduler, ["if1", "if2"], 30)
        for interface_id, packet in served:
            if packet.flow_id == "pinned":
                assert interface_id == "if2"

    def test_no_fairness_heavy_flow_dominates(self):
        # FIFO striping serves in arrival order: a flow that enqueues a
        # large burst first hogs both interfaces.
        scheduler = PerInterfaceScheduler.fifo()
        scheduler.register_interface("if1")
        scheduler.register_interface("if2")
        scheduler.add_flow(make_flow("burst", backlog_packets=100))
        scheduler.add_flow(make_flow("light", backlog_packets=100))
        served = multi_drain(scheduler, ["if1", "if2"], 40)
        first_40 = [packet.flow_id for _, packet in served]
        # All early service goes to whichever flow enqueued first.
        assert first_40.count("burst") == 40

    def test_conformance_flags_rate_failure(self):
        from repro.fairness.conformance import run_conformance

        report = run_conformance(PerInterfaceScheduler.fifo, label="fifo stripe")
        failures = {result.name for result in report.failures()}
        assert "rate preferences" in failures
        assert "interface preferences" not in failures
