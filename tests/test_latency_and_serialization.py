"""Tests for per-packet latency accounting and scenario serialization."""

import json

import pytest

from repro.analysis.cdf import EmpiricalCdf
from repro.core.runner import run_scenario
from repro.core.scenario import FlowSpec, InterfaceSpec, Scenario, TrafficSpec
from repro.errors import ConfigurationError
from repro.net.interface import CapacityStep, Interface
from repro.net.packet import Packet
from repro.net.sink import StatsCollector
from repro.schedulers.midrr import MiDrrScheduler
from repro.units import mbps


class TestDelayAccounting:
    def test_delay_recorded_by_interface_watch(self, sim):
        stats = StatsCollector(sim)
        interface = Interface(sim, "if1", 12_000)  # 1 s per 1500 B
        packets = [Packet(flow_id="a", size_bytes=1500, created_at=0.0)]
        interface.attach_source(lambda i: packets.pop(0) if packets else None)
        stats.watch(interface)
        interface.kick()
        sim.run()
        delays = stats.delays("a")
        assert delays == [pytest.approx(1.0)]

    def test_queueing_delay_included(self, sim):
        stats = StatsCollector(sim)
        interface = Interface(sim, "if1", 12_000)
        queue = [
            Packet(flow_id="a", size_bytes=1500, created_at=0.0),
            Packet(flow_id="a", size_bytes=1500, created_at=0.0),
        ]
        interface.attach_source(lambda i: queue.pop(0) if queue else None)
        stats.watch(interface)
        interface.kick()
        sim.run()
        delays = stats.delays("a")
        # Second packet waited one transmission behind the first.
        assert delays == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_manual_record_without_delay(self, sim):
        stats = StatsCollector(sim)
        stats.record("a", "if1", 100)
        assert stats.delays("a") == []

    def test_window_filtering(self, sim):
        stats = StatsCollector(sim)
        sim.schedule(1.0, stats.record, "a", "if1", 100, 0.2)
        sim.schedule(5.0, stats.record, "a", "if1", 100, 0.9)
        sim.run()
        assert stats.delays("a", start=2.0) == [pytest.approx(0.9)]

    def test_voip_latency_motivation_scenario(self):
        """The paper's intro: low-load VoIP sees low delay under miDRR
        even next to a saturating bulk flow."""
        scenario = Scenario(
            interfaces=(InterfaceSpec("if1", mbps(2)),),
            flows=(
                FlowSpec(
                    "voip",
                    traffic=TrafficSpec("cbr", rate_bps=mbps(0.064), packet_size=200),
                ),
                FlowSpec("bulk"),
            ),
            duration=20.0,
        )
        result = run_scenario(scenario, MiDrrScheduler)
        delays = result.stats.delays("voip", start=2.0)
        assert delays, "VoIP packets were delivered"
        cdf = EmpiricalCdf(delays)
        # One 1500 B bulk packet of head-of-line blocking is 6 ms at
        # 2 Mb/s; the p99 stays within a few packets of that.
        assert cdf.quantile(0.99) < 0.05


class TestScenarioSerialization:
    def _scenario(self):
        return Scenario(
            name="roundtrip",
            seed=7,
            interfaces=(
                InterfaceSpec(
                    "if1",
                    mbps(3),
                    capacity_steps=(CapacityStep(5.0, mbps(1)),),
                ),
                InterfaceSpec("if2", mbps(10)),
            ),
            flows=(
                FlowSpec(
                    "a",
                    weight=2.0,
                    interfaces=("if1",),
                    traffic=TrafficSpec("bulk", total_bytes=1_000_000),
                ),
                FlowSpec(
                    "p",
                    start_time=3.0,
                    traffic=TrafficSpec("poisson", rate_bps=mbps(0.5)),
                ),
            ),
            duration=30.0,
        )

    def test_roundtrip_preserves_everything(self):
        original = self._scenario()
        restored = Scenario.from_dict(original.to_dict())
        assert restored == original

    def test_json_serializable(self):
        document = json.dumps(self._scenario().to_dict())
        restored = Scenario.from_dict(json.loads(document))
        assert restored == self._scenario()

    def test_restored_scenario_runs_identically(self):
        original = self._scenario()
        restored = Scenario.from_dict(original.to_dict())
        first = run_scenario(original, MiDrrScheduler)
        second = run_scenario(restored, MiDrrScheduler)
        assert first.stats.bytes_sent("a") == second.stats.bytes_sent("a")
        assert first.completions == second.completions

    def test_defaults_filled_in(self):
        document = {
            "duration": 10.0,
            "interfaces": [{"interface_id": "if1", "rate_bps": 1e6}],
            "flows": [{"flow_id": "a"}],
        }
        scenario = Scenario.from_dict(document)
        assert scenario.seed == 0
        assert scenario.flows[0].weight == 1.0
        assert scenario.flows[0].traffic.kind == "bulk"

    def test_malformed_document_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario.from_dict({"duration": 10.0, "flows": []})

    def test_invalid_values_rejected_via_validation(self):
        document = {
            "duration": 10.0,
            "interfaces": [{"interface_id": "if1", "rate_bps": -5}],
            "flows": [{"flow_id": "a"}],
        }
        with pytest.raises(ConfigurationError):
            Scenario.from_dict(document)
