"""Unit tests for the preference model (Π, φ)."""

import numpy as np
import pytest

from repro.errors import PreferenceError
from repro.prefs.preferences import FlowPreference, PreferenceSet


class TestFlowPreference:
    def test_defaults(self):
        pref = FlowPreference()
        assert pref.weight == 1.0
        assert pref.interfaces is None

    def test_invalid_weight(self):
        with pytest.raises(PreferenceError):
            FlowPreference(weight=0)

    def test_empty_interfaces(self):
        with pytest.raises(PreferenceError):
            FlowPreference(interfaces=frozenset())


class TestPreferenceSet:
    def _prefs(self):
        prefs = PreferenceSet(["if1", "if2"])
        prefs.add_flow("a", weight=1.0, interfaces=["if1", "if2"])
        prefs.add_flow("b", weight=2.0, interfaces=["if2"])
        prefs.add_flow("c")  # any interface
        return prefs

    def test_willing(self):
        prefs = self._prefs()
        assert prefs.willing("a", "if1")
        assert not prefs.willing("b", "if1")
        assert prefs.willing("c", "if1") and prefs.willing("c", "if2")

    def test_willing_unknown_interface_is_false(self):
        assert not self._prefs().willing("a", "nope")

    def test_willing_interfaces_order(self):
        prefs = self._prefs()
        assert prefs.willing_interfaces("a") == ["if1", "if2"]
        assert prefs.willing_interfaces("b") == ["if2"]
        assert prefs.willing_interfaces("c") == ["if1", "if2"]

    def test_willing_flows(self):
        prefs = self._prefs()
        assert prefs.willing_flows("if1") == ["a", "c"]
        assert prefs.willing_flows("if2") == ["a", "b", "c"]

    def test_weight(self):
        assert self._prefs().weight("b") == 2.0

    def test_unknown_flow_raises(self):
        with pytest.raises(PreferenceError):
            self._prefs().weight("nope")

    def test_duplicate_flow_rejected(self):
        prefs = self._prefs()
        with pytest.raises(PreferenceError):
            prefs.add_flow("a")

    def test_unknown_interface_in_flow_rejected(self):
        prefs = PreferenceSet(["if1"])
        with pytest.raises(PreferenceError):
            prefs.add_flow("x", interfaces=["if9"])

    def test_empty_interface_set_rejected(self):
        prefs = PreferenceSet(["if1"])
        with pytest.raises(PreferenceError):
            prefs.add_flow("x", interfaces=[])

    def test_no_interfaces_rejected(self):
        with pytest.raises(PreferenceError):
            PreferenceSet([])


class TestMatrixConversion:
    def test_pi_matrix(self):
        prefs = PreferenceSet(["if1", "if2"])
        prefs.add_flow("a", interfaces=["if1", "if2"])
        prefs.add_flow("b", interfaces=["if2"])
        expected = np.array([[1, 1], [0, 1]])
        assert (prefs.pi_matrix() == expected).all()

    def test_weights_vector(self):
        prefs = PreferenceSet(["if1"])
        prefs.add_flow("a", weight=1.0)
        prefs.add_flow("b", weight=2.5)
        assert prefs.weights_vector().tolist() == [1.0, 2.5]

    def test_from_matrix_roundtrip(self):
        prefs = PreferenceSet.from_matrix(
            ["a", "b"], ["if1", "if2"], [[1, 1], [0, 1]], weights=[1.0, 2.0]
        )
        assert prefs.willing("a", "if1")
        assert not prefs.willing("b", "if1")
        assert prefs.weight("b") == 2.0
        assert (prefs.pi_matrix() == np.array([[1, 1], [0, 1]])).all()

    def test_from_matrix_shape_mismatch(self):
        with pytest.raises(PreferenceError):
            PreferenceSet.from_matrix(["a"], ["if1"], [[1], [1]])
        with pytest.raises(PreferenceError):
            PreferenceSet.from_matrix(["a"], ["if1"], [[1, 0]])


class TestLiveUpdates:
    def test_set_weight(self):
        prefs = PreferenceSet(["if1"])
        prefs.add_flow("a")
        prefs.set_weight("a", 5.0)
        assert prefs.weight("a") == 5.0

    def test_set_interfaces(self):
        prefs = PreferenceSet(["if1", "if2"])
        prefs.add_flow("a", interfaces=["if1"])
        prefs.set_interfaces("a", ["if2"])
        assert prefs.willing_interfaces("a") == ["if2"]

    def test_remove_flow(self):
        prefs = PreferenceSet(["if1"])
        prefs.add_flow("a")
        prefs.remove_flow("a")
        assert "a" not in prefs
        prefs.remove_flow("a")  # idempotent

    def test_add_interface(self):
        prefs = PreferenceSet(["if1"])
        prefs.add_flow("a")  # any
        prefs.add_interface("if2")
        assert prefs.willing("a", "if2")
        with pytest.raises(PreferenceError):
            prefs.add_interface("if2")

    def test_validate_catches_stranded_flow(self):
        prefs = PreferenceSet(["if1", "if2"])
        prefs.add_flow("a", interfaces=["if1"])
        prefs.validate()  # fine
        # Simulate a policy bug: restrict to an interface then remove it
        # from the registry path by constructing a fresh set.
        bad = PreferenceSet(["if1"])
        bad.add_flow("a", interfaces=["if1"])
        bad._interface_ids.remove("if1")  # force the inconsistent state
        with pytest.raises(PreferenceError):
            bad.validate()


class TestSerialization:
    def _prefs(self):
        prefs = PreferenceSet(["if1", "if2"])
        prefs.add_flow("a", weight=2.0, interfaces=["if1"])
        prefs.add_flow("b")  # any interface
        return prefs

    def test_roundtrip(self):
        import json

        original = self._prefs()
        restored = PreferenceSet.from_dict(
            json.loads(json.dumps(original.to_dict()))
        )
        assert restored.flow_ids == original.flow_ids
        assert restored.interface_ids == original.interface_ids
        assert restored.weight("a") == 2.0
        assert restored.willing_interfaces("a") == ["if1"]
        assert restored.willing_interfaces("b") == ["if1", "if2"]

    def test_any_interface_stays_unrestricted(self):
        restored = PreferenceSet.from_dict(self._prefs().to_dict())
        restored.add_interface("if3")
        assert restored.willing("b", "if3")
        assert not restored.willing("a", "if3")

    def test_malformed_document(self):
        with pytest.raises(PreferenceError):
            PreferenceSet.from_dict({"interfaces": ["if1"]})

    def test_invalid_values_caught_by_validation(self):
        document = {
            "interfaces": ["if1"],
            "flows": [{"flow_id": "a", "weight": -1.0}],
        }
        with pytest.raises(PreferenceError):
            PreferenceSet.from_dict(document)
