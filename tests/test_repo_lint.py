"""Repo lint gate: the source tree must always byte-compile cleanly.

``python -m compileall`` runs unconditionally (it needs nothing beyond
the stdlib); ``ruff check`` runs only where ruff is installed, so the
gate degrades gracefully in minimal containers without silently
weakening CI environments that do carry the linter.
"""

import compileall
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def test_source_tree_byte_compiles():
    assert compileall.compile_dir(SRC, quiet=2, force=True), (
        "src/ contains files that do not byte-compile; run "
        "`python -m compileall src` for details"
    )


def test_ruff_clean_when_available():
    ruff = shutil.which("ruff")
    if ruff is None:
        import pytest

        pytest.skip("ruff not installed in this environment")
    result = subprocess.run(
        [ruff, "check", SRC],
        capture_output=True,
        text=True,
        check=False,
    )
    assert result.returncode == 0, f"ruff check failed:\n{result.stdout}"


def test_tests_tree_byte_compiles():
    tests_dir = os.path.join(REPO_ROOT, "tests")
    assert compileall.compile_dir(tests_dir, quiet=2, force=True)


def test_running_interpreter_matches_supported_floor():
    # pyproject declares requires-python >= 3.9; the gate itself should
    # never run under something older without noticing.
    assert sys.version_info >= (3, 9)


def test_bench_smoke_regression_gate():
    """``bench smoke --check-regression`` holds against the committed
    baseline: a >20% like-for-like packets/s loss at the gated cell
    (F=1000, I=8) fails the build. Set ``MIDRR_SKIP_BENCH_REGRESSION``
    to skip on hosts whose load makes wall-clock gating meaningless.
    """
    import pytest

    if os.environ.get("MIDRR_SKIP_BENCH_REGRESSION"):
        pytest.skip("MIDRR_SKIP_BENCH_REGRESSION set")
    baseline = os.path.join(REPO_ROOT, "BENCH_core.json")
    if not os.path.exists(baseline):
        pytest.skip("no committed BENCH_core.json to gate against")
    # A fresh interpreter: wall-clock gating inside the loaded pytest
    # process reads systematically slow (GC pressure from the suite's
    # accumulated object graphs), which is load, not a regression.
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "bench",
            "smoke",
            "--check-regression",
            "--baseline",
            baseline,
        ],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    assert result.returncode == 0, (
        f"bench smoke gate failed:\n{result.stdout}\n{result.stderr}"
    )
