"""Repo lint gate: the source tree must always byte-compile cleanly.

``python -m compileall`` runs unconditionally (it needs nothing beyond
the stdlib); ``ruff check`` runs only where ruff is installed, so the
gate degrades gracefully in minimal containers without silently
weakening CI environments that do carry the linter.
"""

import compileall
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def test_source_tree_byte_compiles():
    assert compileall.compile_dir(SRC, quiet=2, force=True), (
        "src/ contains files that do not byte-compile; run "
        "`python -m compileall src` for details"
    )


def test_ruff_clean_when_available():
    ruff = shutil.which("ruff")
    if ruff is None:
        import pytest

        pytest.skip("ruff not installed in this environment")
    result = subprocess.run(
        [ruff, "check", SRC],
        capture_output=True,
        text=True,
        check=False,
    )
    assert result.returncode == 0, f"ruff check failed:\n{result.stdout}"


def test_tests_tree_byte_compiles():
    tests_dir = os.path.join(REPO_ROOT, "tests")
    assert compileall.compile_dir(tests_dir, quiet=2, force=True)


def test_running_interpreter_matches_supported_floor():
    # pyproject declares requires-python >= 3.9; the gate itself should
    # never run under something older without noticing.
    assert sys.version_info >= (3, 9)
