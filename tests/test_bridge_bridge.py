"""Integration tests for the virtual-interface bridge."""

import pytest

from repro.bridge.bridge import MiDrrBridge
from repro.bridge.classifier import FlowClassifier, MatchRule, parse_five_tuple
from repro.net.addresses import Ipv4Address
from repro.net.flow import Flow
from repro.net.headers import IPPROTO_UDP, Ipv4Header, UdpHeader
from repro.net.interface import Interface
from repro.schedulers.midrr import MiDrrScheduler
from repro.units import mbps

VIRTUAL = Ipv4Address.parse("10.0.0.1")
WIFI_ADDR = Ipv4Address.parse("192.168.1.5")
LTE_ADDR = Ipv4Address.parse("100.64.0.9")
SERVER = Ipv4Address.parse("8.8.8.8")


def udp_packet(dst_port, payload=b"x" * 100, src_port=4000):
    udp = UdpHeader(src_port, dst_port, UdpHeader.LENGTH + len(payload))
    total = Ipv4Header.LENGTH + UdpHeader.LENGTH + len(payload)
    ip = Ipv4Header(src=VIRTUAL, dst=SERVER, protocol=IPPROTO_UDP, total_length=total)
    return ip.pack() + udp.pack(VIRTUAL, SERVER, payload) + payload


def build_bridge(sim, rates=(mbps(1), mbps(1))):
    classifier = FlowClassifier()
    classifier.add_rule(MatchRule(flow_id="voip", dst_port=5060))
    classifier.add_rule(MatchRule(flow_id="web", dst_port=80))
    bridge = MiDrrBridge(sim, MiDrrScheduler(), VIRTUAL, classifier=classifier)
    bridge.add_physical_interface(Interface(sim, "wifi", rates[0]), WIFI_ADDR)
    bridge.add_physical_interface(Interface(sim, "lte", rates[1]), LTE_ADDR)
    bridge.add_flow(Flow("voip", allowed_interfaces=["lte"]))
    bridge.add_flow(Flow("web"))
    return bridge


class TestSubmission:
    def test_classified_packet_accepted(self, sim):
        bridge = build_bridge(sim)
        assert bridge.virtual.send(udp_packet(5060))
        assert bridge.virtual.packets_accepted == 1

    def test_unclassified_packet_rejected(self, sim):
        bridge = build_bridge(sim)
        assert not bridge.virtual.send(udp_packet(9999))
        assert bridge.virtual.packets_rejected == 1

    def test_interface_preference_enforced(self, sim):
        bridge = build_bridge(sim)
        for _ in range(20):
            bridge.virtual.send(udp_packet(5060))
        sim.run(until=5.0)
        matrix = bridge.stats.service_matrix()
        assert ("voip", "wifi") not in matrix
        assert matrix.get(("voip", "lte"), 0) > 0


class TestRewriting:
    def test_outbound_rewrite_counted(self, sim):
        bridge = build_bridge(sim)
        bridge.virtual.send(udp_packet(80))
        sim.run(until=1.0)
        assert bridge.outbound_rewrites == 1
        assert len(bridge.nat) >= 1

    def test_inbound_roundtrip(self, sim):
        bridge = build_bridge(sim)
        delivered = []
        bridge.on_inbound(delivered.append)
        bridge.virtual.send(udp_packet(5060, payload=b"ping" * 30))
        sim.run(until=1.0)
        # Reconstruct the on-wire tuple and synthesize the reply.
        binding = bridge.nat.bind(
            parse_five_tuple(udp_packet(5060, payload=b"ping" * 30))[0],
            "lte",
            LTE_ADDR,
        )
        wire = binding.translated
        reply_payload = b"pong"
        reply_udp = UdpHeader(
            wire.dst_port, wire.src_port, UdpHeader.LENGTH + len(reply_payload)
        )
        total = Ipv4Header.LENGTH + UdpHeader.LENGTH + len(reply_payload)
        reply_ip = Ipv4Header(
            src=wire.dst, dst=wire.src, protocol=IPPROTO_UDP, total_length=total
        )
        reply = (
            reply_ip.pack()
            + reply_udp.pack(wire.dst, wire.src, reply_payload)
            + reply_payload
        )
        assert bridge.receive_inbound(reply)
        assert len(delivered) == 1
        tuple_in = parse_five_tuple(delivered[0])[0]
        assert tuple_in.dst == VIRTUAL
        assert tuple_in.dst_port == 4000

    def test_unsolicited_inbound_dropped(self, sim):
        bridge = build_bridge(sim)
        stray = udp_packet(80)  # no binding exists
        assert not bridge.receive_inbound(stray)


class TestScheduling:
    def test_fair_split_between_flows(self, sim):
        bridge = build_bridge(sim)

        def feed():
            for _ in range(5):
                bridge.virtual.send(udp_packet(5060, payload=b"v" * 400))
                bridge.virtual.send(udp_packet(80, payload=b"w" * 400))
            if sim.now < 20.0:
                sim.call_later(0.05, feed)

        sim.call_now(feed)
        sim.run(until=20.0)
        voip = bridge.stats.bytes_sent("voip")
        web = bridge.stats.bytes_sent("web")
        # voip pinned to lte (1 Mb/s), web takes wifi + leftovers:
        # both should get ≥ their max-min share ≈ 1 Mb/s each.
        assert voip > 0 and web > 0
        assert web >= voip * 0.8
