"""Proxy drain/restart: zero truncation, restored deficits, seeded jitter."""

import json
import random

import pytest

from repro.errors import CheckpointError, HttpError
from repro.httpproxy.http11 import Headers, HttpRequest
from repro.httpproxy.proxy import SchedulingHttpProxy
from repro.httpproxy.server import HttpOriginServer
from repro.httpproxy.transport import DownlinkChannel
from repro.sim.simulator import Simulator

BIG = b"A" * (400 * 1024)
SMALL = b"B" * (200 * 1024)


def make_server():
    server = HttpOriginServer()
    server.put_object("/big", BIG)
    server.put_object("/small", SMALL)
    return server


def build_proxy(sim, server):
    proxy = SchedulingHttpProxy(sim, chunk_bytes=16 * 1024)
    for channel_id, rate in (("wifi", 8e6), ("lte", 4e6)):
        proxy.add_channel(
            DownlinkChannel(sim, channel_id, server, rate, rtt=0.02, pipeline_depth=3)
        )
    return proxy


def start_fetches(proxy, server, done):
    proxy.add_flow("video", weight=2.0)
    proxy.add_flow("dl", weight=1.0, interfaces=["lte"])
    proxy.fetch("video", "/big", server, on_complete=lambda f: done.append(f.flow_id))
    proxy.fetch("dl", "/small", server, on_complete=lambda f: done.append(f.flow_id))


def drain_fully(sim, proxy):
    proxy.drain()
    while not proxy.drained:
        if not sim.step():
            break


class TestDrain:
    def test_drain_finishes_in_flight_responses(self):
        sim = Simulator()
        server = make_server()
        proxy = build_proxy(sim, server)
        done = []
        start_fetches(proxy, server, done)
        sim.run(until=0.1)
        outstanding_before = sum(
            channel.outstanding for channel in proxy._channels.values()
        )
        assert outstanding_before > 0  # mid-transfer, pipelines busy
        drain_fully(sim, proxy)
        assert proxy.drained
        # Every byte that was requested landed and was spliced; nothing
        # was truncated by the stop.
        for flow_id in ("video", "dl"):
            fetch = proxy.fetch_for(flow_id)
            assert not fetch.complete
            assert fetch.splicer.bytes_received > 0

    def test_draining_proxy_refuses_new_fetches(self):
        sim = Simulator()
        server = make_server()
        proxy = build_proxy(sim, server)
        proxy.add_flow("late")
        proxy.drain()
        with pytest.raises(HttpError, match="draining"):
            proxy.fetch("late", "/big", server)

    def test_checkpoint_requires_drained(self):
        sim = Simulator()
        server = make_server()
        proxy = build_proxy(sim, server)
        done = []
        start_fetches(proxy, server, done)
        sim.run(until=0.1)
        with pytest.raises(CheckpointError, match="drained"):
            proxy.checkpoint_state()


class TestRestart:
    def test_restore_resumes_with_zero_truncation(self):
        sim = Simulator()
        server = make_server()
        proxy = build_proxy(sim, server)
        done = []
        start_fetches(proxy, server, done)
        sim.run(until=0.12)
        drain_fully(sim, proxy)
        assert done == []  # both transfers still in progress at drain
        state = json.loads(json.dumps(proxy.checkpoint_state()))

        relaunched = build_proxy(sim, server)  # "new process", same links
        relaunched.restore_state(
            state, on_complete=lambda f: done.append(f.flow_id)
        )
        sim.run(until=5.0)
        assert sorted(done) == ["dl", "video"]
        assert relaunched.fetch_for("video").body == BIG
        assert relaunched.fetch_for("dl").body == SMALL
        assert relaunched.fetches_completed == 2

    def test_restore_preserves_scheduler_deficits(self):
        sim = Simulator()
        server = make_server()
        proxy = build_proxy(sim, server)
        done = []
        start_fetches(proxy, server, done)
        sim.run(until=0.12)
        drain_fully(sim, proxy)
        state = json.loads(json.dumps(proxy.checkpoint_state()))

        relaunched = build_proxy(sim, server)
        relaunched.restore_state(state)
        assert (
            relaunched.scheduler.snapshot_state() == state["scheduler"]
        )

    def test_restore_requires_fresh_proxy(self):
        sim = Simulator()
        server = make_server()
        proxy = build_proxy(sim, server)
        done = []
        start_fetches(proxy, server, done)
        drain_fully(sim, proxy)
        state = proxy.checkpoint_state()
        with pytest.raises(CheckpointError, match="fresh proxy"):
            proxy.restore_state(state)

    def test_restore_rejects_chunk_size_mismatch(self):
        sim = Simulator()
        server = make_server()
        proxy = build_proxy(sim, server)
        done = []
        start_fetches(proxy, server, done)
        drain_fully(sim, proxy)
        state = proxy.checkpoint_state()
        other = SchedulingHttpProxy(sim, chunk_bytes=8 * 1024)
        with pytest.raises(CheckpointError, match="chunk_bytes"):
            other.restore_state(state)


class TestRetryJitter:
    def ranged_get(self):
        return HttpRequest(
            method="GET", target="/big", headers=Headers({"Range": "bytes=0-999"})
        )

    def run_retry(self, rng):
        sim = Simulator()
        server = make_server()
        channel = DownlinkChannel(
            sim,
            "if1",
            server,
            rate_bps=80_000,
            rtt=0.0,
            read_timeout=1.0,
            max_retries=2,
            backoff_base=0.4,
            rng=rng,
        )
        channel.bring_down()
        retried_at = []
        original = channel._enqueue_retry

        def spy(request, on_response, attempts):
            retried_at.append(sim.now)
            original(request, on_response, attempts)

        channel._enqueue_retry = spy
        channel.issue(self.ranged_get(), lambda ch, req, resp: None)
        sim.run(until=5.0)
        return retried_at

    def test_no_rng_keeps_legacy_deterministic_backoff(self):
        retried_at = self.run_retry(rng=None)
        # Timeout at 1.0, retry after exactly backoff_base (attempt 0).
        assert retried_at[0] == pytest.approx(1.4)

    def test_seeded_rng_jitters_within_half_to_full_backoff(self):
        retried_at = self.run_retry(rng=random.Random(123))
        delay = retried_at[0] - 1.0
        assert 0.2 <= delay < 0.4  # backoff_base scaled by [0.5, 1.0)

    def test_same_seed_reproduces_retry_timing(self):
        first = self.run_retry(rng=random.Random(7))
        second = self.run_retry(rng=random.Random(7))
        assert first == second

    def test_jitter_never_touches_module_random(self):
        random.seed(42)
        before = random.getstate()
        self.run_retry(rng=random.Random(7))
        assert random.getstate() == before
