"""Unit tests for traffic sources."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.net.flow import Flow
from repro.net.sources import (
    BulkSource,
    CbrSource,
    OnOffSource,
    PoissonSource,
    TraceSource,
    sized_transfer,
)


class TestBulkSource:
    def test_keeps_target_depth(self, sim):
        flow = Flow("f")
        BulkSource(sim, flow, target_depth=5)
        sim.run(until=0.0)
        assert len(flow.queue) == 5

    def test_refills_on_pull(self, sim):
        flow = Flow("f")
        BulkSource(sim, flow, target_depth=3)
        sim.run(until=0.0)
        flow.pull()
        assert len(flow.queue) == 3  # topped back up

    def test_finite_transfer_exhausts(self, sim):
        flow = Flow("f")
        source = BulkSource(sim, flow, packet_size=100, total_bytes=250, target_depth=10)
        sim.run(until=0.0)
        # 100 + 100 + 50 = 250 bytes in 3 packets.
        assert source.exhausted
        sizes = [p.size_bytes for p in flow.queue]
        assert sizes == [100, 100, 50]
        assert sum(sizes) == 250

    def test_no_refill_after_exhaustion(self, sim):
        flow = Flow("f")
        source = BulkSource(sim, flow, packet_size=100, total_bytes=200, target_depth=2)
        sim.run(until=0.0)
        flow.pull()
        flow.pull()
        assert not flow.backlogged
        assert source.exhausted

    def test_start_time_delays_backlog(self, sim):
        flow = Flow("f")
        BulkSource(sim, flow, start_time=5.0)
        sim.run(until=1.0)
        assert not flow.backlogged
        sim.run(until=6.0)
        assert flow.backlogged

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"packet_size": 0},
            {"target_depth": 0},
            {"total_bytes": 0},
        ],
    )
    def test_invalid_params(self, sim, kwargs):
        with pytest.raises(ConfigurationError):
            BulkSource(sim, Flow("f"), **kwargs)


class TestCbrSource:
    def test_rate_is_respected(self, sim):
        flow = Flow("f")
        CbrSource(sim, flow, rate_bps=12_000, packet_size=1500)  # 1 pkt/s
        sim.run(until=10.5)
        assert flow.queue.enqueued_packets == 11  # t = 0..10

    def test_stop_time(self, sim):
        flow = Flow("f")
        CbrSource(sim, flow, rate_bps=12_000, packet_size=1500, stop_time=3.5)
        sim.run(until=10.0)
        assert flow.queue.enqueued_packets == 4  # t = 0,1,2,3

    def test_invalid_rate(self, sim):
        with pytest.raises(ConfigurationError):
            CbrSource(sim, Flow("f"), rate_bps=0)


class TestPoissonSource:
    def test_mean_rate_close_to_nominal(self, sim):
        flow = Flow("f")
        source = PoissonSource(
            sim, flow, rate_pps=100.0, rng=random.Random(1), packet_size=100
        )
        sim.run(until=50.0)
        # 5000 expected arrivals; 4 sigma ≈ 283.
        assert abs(source.packets_offered - 5000) < 300

    def test_deterministic_given_seed(self, sim):
        flow_a = Flow("a")
        PoissonSource(sim, flow_a, rate_pps=10, rng=random.Random(7))
        sim.run(until=10)
        first = flow_a.queue.enqueued_packets

        from repro.sim.simulator import Simulator

        sim2 = Simulator()
        flow_b = Flow("b")
        PoissonSource(sim2, flow_b, rate_pps=10, rng=random.Random(7))
        sim2.run(until=10)
        assert flow_b.queue.enqueued_packets == first

    def test_invalid_rate(self, sim):
        with pytest.raises(ConfigurationError):
            PoissonSource(sim, Flow("f"), rate_pps=0, rng=random.Random(0))


class TestOnOffSource:
    def test_generates_bursts(self, sim):
        flow = Flow("f")
        source = OnOffSource(
            sim,
            flow,
            peak_rate_bps=120_000,
            mean_on=1.0,
            mean_off=1.0,
            rng=random.Random(3),
            packet_size=1500,
        )
        sim.run(until=60.0)
        # ~50 % duty cycle at 10 pkt/s: loosely 150–450 packets.
        assert 100 < source.packets_offered < 500

    def test_stop_time(self, sim):
        flow = Flow("f")
        source = OnOffSource(
            sim,
            flow,
            peak_rate_bps=120_000,
            mean_on=1.0,
            mean_off=1.0,
            rng=random.Random(3),
            stop_time=1.0,
        )
        sim.run(until=30.0)
        late = [p for p in flow.queue if p.created_at > 1.0]
        assert not late

    def test_invalid_params(self, sim):
        with pytest.raises(ConfigurationError):
            OnOffSource(sim, Flow("f"), peak_rate_bps=0, mean_on=1, mean_off=1,
                        rng=random.Random(0))
        with pytest.raises(ConfigurationError):
            OnOffSource(sim, Flow("f"), peak_rate_bps=1e6, mean_on=0, mean_off=1,
                        rng=random.Random(0))


class TestTraceSource:
    def test_replays_in_time_order(self, sim):
        flow = Flow("f")
        TraceSource(sim, flow, [(2.0, 300), (1.0, 100), (3.0, 200)])
        sim.run()
        sizes = [p.size_bytes for p in flow.queue]
        assert sizes == [100, 300, 200]
        times = [p.created_at for p in flow.queue]
        assert times == [1.0, 2.0, 3.0]

    def test_invalid_size(self, sim):
        with pytest.raises(ConfigurationError):
            TraceSource(sim, Flow("f"), [(1.0, 0)])


class TestSizedTransfer:
    def test_rounds_to_whole_packets(self):
        size = sized_transfer(3e6, 66.0, packet_size=1500)
        assert size % 1500 == 0

    def test_duration_matches(self):
        size = sized_transfer(3e6, 66.0)
        assert size * 8 / 3e6 == pytest.approx(66.0, rel=1e-3)
