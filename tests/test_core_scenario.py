"""Unit tests for declarative scenarios."""

import pytest

from repro.core.scenario import FlowSpec, InterfaceSpec, Scenario, TrafficSpec
from repro.errors import ConfigurationError
from repro.net.interface import CapacityStep


def simple_scenario(**overrides):
    fields = dict(
        interfaces=(InterfaceSpec("if1", 1e6), InterfaceSpec("if2", 2e6)),
        flows=(FlowSpec("a"), FlowSpec("b", interfaces=("if2",))),
        duration=10.0,
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestTrafficSpec:
    def test_default_is_bulk(self):
        assert TrafficSpec().kind == "bulk"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficSpec(kind="warp")

    @pytest.mark.parametrize("kind", ["cbr", "poisson", "onoff"])
    def test_rate_required_for_rated_kinds(self, kind):
        with pytest.raises(ConfigurationError):
            TrafficSpec(kind=kind)

    def test_invalid_packet_size(self):
        with pytest.raises(ConfigurationError):
            TrafficSpec(packet_size=0)


class TestFlowSpec:
    def test_invalid_weight(self):
        with pytest.raises(ConfigurationError):
            FlowSpec("a", weight=0)

    def test_empty_id(self):
        with pytest.raises(ConfigurationError):
            FlowSpec("")

    def test_negative_start(self):
        with pytest.raises(ConfigurationError):
            FlowSpec("a", start_time=-1.0)


class TestInterfaceSpec:
    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            InterfaceSpec("if1", 0)

    def test_capacity_steps_carried(self):
        spec = InterfaceSpec("if1", 1e6, capacity_steps=(CapacityStep(5.0, 2e6),))
        assert spec.capacity_steps[0].rate_bps == 2e6


class TestScenario:
    def test_valid_scenario(self):
        scenario = simple_scenario()
        assert scenario.interface_ids() == ["if1", "if2"]
        assert scenario.capacities() == {"if1": 1e6, "if2": 2e6}
        assert scenario.weights() == {"a": 1.0, "b": 1.0}

    def test_duplicate_interfaces_rejected(self):
        with pytest.raises(ConfigurationError):
            simple_scenario(
                interfaces=(InterfaceSpec("if1", 1e6), InterfaceSpec("if1", 2e6))
            )

    def test_duplicate_flows_rejected(self):
        with pytest.raises(ConfigurationError):
            simple_scenario(flows=(FlowSpec("a"), FlowSpec("a")))

    def test_unknown_interface_reference_rejected(self):
        with pytest.raises(ConfigurationError):
            simple_scenario(flows=(FlowSpec("a", interfaces=("nope",)),))

    def test_no_interfaces_rejected(self):
        with pytest.raises(ConfigurationError):
            simple_scenario(interfaces=())

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            simple_scenario(duration=0.0)

    def test_preference_set_compilation(self):
        prefs = simple_scenario().preference_set()
        assert prefs.willing("a", "if1")
        assert not prefs.willing("b", "if1")
        assert prefs.willing("b", "if2")
