"""E2/E3/E5 — Figures 6 and 8: dynamic fair scheduling, asserted."""

import pytest

from repro.analysis.timeseries import settle_time
from repro.experiments import fig6


@pytest.fixture(scope="module")
def result():
    """One shared run of the Figure 6 experiment (it is deterministic)."""
    return fig6.run()


class TestPhaseRates(object):
    def test_phase1_rates_match_paper(self, result):
        rates = fig6.phase_rates(result)["phase1"]
        assert rates["a"] == pytest.approx(3.0, rel=0.03)
        assert rates["b"] == pytest.approx(6.67, rel=0.03)
        assert rates["c"] == pytest.approx(3.33, rel=0.03)

    def test_phase2_bandwidth_aggregation(self, result):
        rates = fig6.phase_rates(result)["phase2"]
        assert rates["b"] == pytest.approx(8.67, rel=0.03)
        assert rates["c"] == pytest.approx(4.33, rel=0.03)

    def test_phase3_full_capacity_to_c(self, result):
        rates = fig6.phase_rates(result)["phase3"]
        assert rates["c"] == pytest.approx(10.0, rel=0.03)

    def test_completion_times_match_paper(self, result):
        assert result.completions["a"] == pytest.approx(66.0, abs=1.5)
        assert result.completions["b"] == pytest.approx(85.0, abs=1.5)


class TestClusters(object):
    def test_phase1_clusters(self, result):
        clusters = fig6.phase_clusters(result)["phase1"]
        assert len(clusters) == 2
        by_flows = {cluster.flows: cluster for cluster in clusters}
        low = by_flows[frozenset({"a"})]
        high = by_flows[frozenset({"b", "c"})]
        assert low.interfaces == frozenset({"if1"})
        assert high.interfaces == frozenset({"if2"})
        assert low.normalized_rate == pytest.approx(3e6, rel=0.05)
        assert high.normalized_rate == pytest.approx(10e6 / 3, rel=0.05)

    def test_phase2_merged_cluster(self, result):
        clusters = fig6.phase_clusters(result)["phase2"]
        assert len(clusters) == 1
        merged = clusters[0]
        assert merged.flows == frozenset({"b", "c"})
        assert merged.interfaces == frozenset({"if1", "if2"})
        assert merged.normalized_rate == pytest.approx(13e6 / 3, rel=0.05)

    def test_phase3_single_flow_cluster(self, result):
        clusters = fig6.phase_clusters(result)["phase3"]
        flows = set().union(*(c.flows for c in clusters))
        assert flows == {"c"}

    def test_clusters_match_paper_table(self, result):
        measured = fig6.phase_clusters(result)
        for phase, expected in fig6.PAPER_CLUSTERS.items():
            got = {
                (cluster.flows, cluster.interfaces) for cluster in measured[phase]
            }
            want = {(flows, ifaces) for flows, ifaces, _ in expected}
            assert got == want, f"{phase}: {got} != {want}"


class TestTransient(object):
    def test_figure_6c_convergence_within_seconds(self, result):
        """Paper: flow a starts near 2 Mb/s, converges to 3 quickly."""
        series = result.timeseries("a", bin_width=0.5)
        settle = settle_time(series, 3e6, tolerance=0.2e6, hold=4)
        assert settle is not None
        assert settle < 5.0

    def test_rates_fluctuate_around_fair_share(self, result):
        """6(c): packet atomicity makes rates wobble but stay centered."""
        series = [
            rate for time, rate in result.timeseries("a", bin_width=0.5)
            if 10.0 < time < 60.0
        ]
        mean = sum(series) / len(series)
        assert mean == pytest.approx(3e6, rel=0.02)
        assert max(series) < 3e6 * 1.25
        assert min(series) > 3e6 * 0.75


class TestBaselinesDiffer(object):
    def test_per_interface_wfq_misallocates_phase1(self):
        from repro.schedulers.per_interface import PerInterfaceScheduler

        result = fig6.run(PerInterfaceScheduler.wfq)
        rates = result.rates(2.0, 60.0)
        # WFQ on each interface: b gets if1 half + if2 half ≈ 6.5+,
        # a only half of if1 ≈ 1.5 — visibly unfair to a.
        assert rates["a"] < 2.5e6
