"""FaultPlan: up-front validation and recoverable materialization."""

import pytest

from repro.core.scenario import FlowSpec, InterfaceSpec, Scenario
from repro.errors import FaultError
from repro.faults.plan import PLAN_KINDS, FaultPlan, PlannedFault
from repro.units import mbps


def scenario():
    return Scenario(
        name="plan-target",
        interfaces=(InterfaceSpec("if1", mbps(2)), InterfaceSpec("if2", mbps(1))),
        flows=(FlowSpec("a"), FlowSpec("b", interfaces=("if2",))),
        duration=10.0,
        seed=5,
    )


class TestValidation:
    def test_valid_plan_passes(self):
        plan = FaultPlan(
            [
                PlannedFault("churn", "*", 0.0, 8.0),
                PlannedFault("flap", "if1", 1.0, 4.0),
                PlannedFault("loss", "if2", 2.0, params={"probability": 0.1}),
                PlannedFault("collapse", "if1", 5.0, 8.0),
            ]
        )
        plan.validate(scenario())  # must not raise

    def test_unknown_kind(self):
        plan = FaultPlan([PlannedFault("meteor", "if1", 0.0)])
        with pytest.raises(FaultError, match="unknown fault kind"):
            plan.validate(scenario())

    def test_unknown_interface(self):
        plan = FaultPlan([PlannedFault("flap", "if9", 0.0)])
        with pytest.raises(FaultError, match="unknown interface 'if9'"):
            plan.validate(scenario())

    def test_churn_must_target_wildcard(self):
        plan = FaultPlan([PlannedFault("churn", "if1", 0.0)])
        with pytest.raises(FaultError, match="use target '\\*'"):
            plan.validate(scenario())

    def test_negative_start(self):
        plan = FaultPlan([PlannedFault("loss", "if1", -1.0)])
        with pytest.raises(FaultError, match="start must be"):
            plan.validate(scenario())

    def test_inverted_window(self):
        plan = FaultPlan([PlannedFault("flap", "if1", 4.0, 2.0)])
        with pytest.raises(FaultError, match="non-positive duration"):
            plan.validate(scenario())

    def test_zero_length_window(self):
        plan = FaultPlan([PlannedFault("flap", "if1", 4.0, 4.0)])
        with pytest.raises(FaultError, match="non-positive duration"):
            plan.validate(scenario())

    def test_out_of_order_declarations(self):
        plan = FaultPlan(
            [
                PlannedFault("flap", "if1", 5.0, 7.0),
                PlannedFault("loss", "if2", 1.0),
            ]
        )
        with pytest.raises(FaultError, match="out of order"):
            plan.validate(scenario())

    def test_overlapping_same_kind_same_target(self):
        plan = FaultPlan(
            [
                PlannedFault("flap", "if1", 1.0, 5.0),
                PlannedFault("flap", "if1", 3.0, 8.0),
            ]
        )
        with pytest.raises(FaultError, match="overlaps"):
            plan.validate(scenario())

    def test_open_ended_window_overlaps_everything_later(self):
        plan = FaultPlan(
            [
                PlannedFault("loss", "if1", 1.0),  # runs to the horizon
                PlannedFault("loss", "if1", 6.0, 8.0),
            ]
        )
        with pytest.raises(FaultError, match="overlaps"):
            plan.validate(scenario())

    def test_same_kind_different_targets_may_overlap(self):
        plan = FaultPlan(
            [
                PlannedFault("flap", "if1", 1.0, 5.0),
                PlannedFault("flap", "if2", 2.0, 6.0),
            ]
        )
        plan.validate(scenario())  # must not raise

    def test_error_names_the_offending_entry(self):
        plan = FaultPlan([PlannedFault("flap", "if9", 2.0, 3.0)])
        with pytest.raises(FaultError, match=r"flap@if9\[2, 3\)"):
            plan.validate(scenario())

    def test_plan_kinds_are_stable(self):
        assert PLAN_KINDS == ("flap", "collapse", "loss", "churn")


class TestMaterialization:
    def test_apply_attaches_components(self):
        from repro.recovery import RecoverableScenarioRun
        from repro.schedulers.midrr import MiDrrScheduler

        plan = FaultPlan(
            [
                PlannedFault("flap", "if1", 0.5, 6.0),
                PlannedFault("loss", "if2", 1.0, params={"probability": 0.05}),
            ]
        )
        plan.validate(scenario())
        run = RecoverableScenarioRun(scenario(), MiDrrScheduler, extras=plan.apply)
        names = set(run._components)
        assert "fault:timeline" in names
        assert "fault:0:flap:if1" in names
        assert "fault:1:loss:if2" in names
        run.run_to_completion()
        timeline = run._components["fault:timeline"]
        assert len(timeline) > 0  # the flapper actually acted
