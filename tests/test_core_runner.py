"""Integration tests for the scenario runner."""

import pytest

from repro.core.runner import run_scenario
from repro.core.scenario import FlowSpec, InterfaceSpec, Scenario, TrafficSpec
from repro.net.interface import CapacityStep
from repro.schedulers.midrr import MiDrrScheduler
from repro.schedulers.per_interface import PerInterfaceScheduler
from repro.units import mbps


def fig1c_scenario(duration=20.0):
    return Scenario(
        name="fig1c",
        interfaces=(InterfaceSpec("if1", mbps(1)), InterfaceSpec("if2", mbps(1))),
        flows=(FlowSpec("a"), FlowSpec("b", interfaces=("if2",))),
        duration=duration,
    )


class TestBasicRuns:
    def test_midrr_rates(self):
        result = run_scenario(fig1c_scenario(), MiDrrScheduler)
        rates = result.rates(2.0, 20.0)
        assert rates["a"] == pytest.approx(mbps(1), rel=0.02)
        assert rates["b"] == pytest.approx(mbps(1), rel=0.02)

    def test_baseline_rates_differ(self):
        result = run_scenario(fig1c_scenario(), PerInterfaceScheduler.wfq)
        rates = result.rates(2.0, 20.0)
        assert rates["a"] == pytest.approx(mbps(1.5), rel=0.05)
        assert rates["b"] == pytest.approx(mbps(0.5), rel=0.05)

    def test_determinism(self):
        first = run_scenario(fig1c_scenario(), MiDrrScheduler)
        second = run_scenario(fig1c_scenario(), MiDrrScheduler)
        assert first.stats.bytes_sent("a") == second.stats.bytes_sent("a")
        assert first.stats.bytes_sent("b") == second.stats.bytes_sent("b")

    def test_timeseries_shape(self):
        result = run_scenario(fig1c_scenario(), MiDrrScheduler)
        series = result.timeseries("a", bin_width=1.0)
        assert len(series) == 20
        # Steady bins sit near 1 Mb/s.
        steady = [rate for time, rate in series if time > 2.0]
        assert min(steady) > mbps(0.9)


class TestDynamicScenarios:
    def test_delayed_flow_start(self):
        scenario = Scenario(
            interfaces=(InterfaceSpec("if1", mbps(1)),),
            flows=(
                FlowSpec("early"),
                FlowSpec("late", start_time=10.0),
            ),
            duration=20.0,
        )
        result = run_scenario(scenario, MiDrrScheduler)
        # Before t=10 early has it all; after, they split.
        assert result.rate("early", 2, 10) == pytest.approx(mbps(1), rel=0.03)
        assert result.rate("early", 11, 20) == pytest.approx(mbps(0.5), rel=0.05)
        assert result.rate("late", 11, 20) == pytest.approx(mbps(0.5), rel=0.05)

    def test_finite_transfer_completion_recorded(self):
        scenario = Scenario(
            interfaces=(InterfaceSpec("if1", mbps(1)),),
            flows=(
                FlowSpec(
                    "a",
                    traffic=TrafficSpec("bulk", total_bytes=int(mbps(1) * 5 / 8)),
                ),
                FlowSpec("b"),
            ),
            duration=20.0,
        )
        result = run_scenario(scenario, MiDrrScheduler)
        # a: 5 Mbit at a fair 0.5 Mb/s → completes at ~10 s.
        assert result.completions["a"] == pytest.approx(10.0, rel=0.05)
        assert result.rate("b", 12, 20) == pytest.approx(mbps(1), rel=0.03)

    def test_capacity_step_changes_rates(self):
        scenario = Scenario(
            interfaces=(
                InterfaceSpec(
                    "if1", mbps(1), capacity_steps=(CapacityStep(10.0, mbps(2)),)
                ),
            ),
            flows=(FlowSpec("a"),),
            duration=20.0,
        )
        result = run_scenario(scenario, MiDrrScheduler)
        assert result.rate("a", 2, 9) == pytest.approx(mbps(1), rel=0.05)
        assert result.rate("a", 12, 20) == pytest.approx(mbps(2), rel=0.05)

    def test_phases_reflect_arrivals_and_completions(self):
        scenario = Scenario(
            interfaces=(InterfaceSpec("if1", mbps(1)),),
            flows=(
                FlowSpec(
                    "a",
                    traffic=TrafficSpec("bulk", total_bytes=int(mbps(1) * 4 / 8)),
                ),
                FlowSpec("b", start_time=2.0),
            ),
            duration=20.0,
        )
        result = run_scenario(scenario, MiDrrScheduler)
        phases = result.phases()
        assert phases[0][2] == ["a"]
        # After b starts, both alive; after a completes, only b.
        alive_sets = [set(alive) for _, _, alive in phases]
        assert {"a", "b"} in alive_sets
        assert {"b"} in alive_sets

    def test_reference_allocation_defaults(self):
        result = run_scenario(fig1c_scenario(duration=5.0), MiDrrScheduler)
        allocation = result.reference_allocation()
        assert allocation.rate("a") == pytest.approx(mbps(1))
        allocation_b_only = result.reference_allocation(active_flows=["b"])
        assert allocation_b_only.rate("b") == pytest.approx(mbps(1))

    def test_stochastic_traffic_kinds_run(self):
        scenario = Scenario(
            interfaces=(InterfaceSpec("if1", mbps(2)),),
            flows=(
                FlowSpec("p", traffic=TrafficSpec("poisson", rate_bps=mbps(0.5))),
                FlowSpec(
                    "o",
                    traffic=TrafficSpec(
                        "onoff", rate_bps=mbps(1), mean_on=0.5, mean_off=0.5
                    ),
                ),
                FlowSpec("c", traffic=TrafficSpec("cbr", rate_bps=mbps(0.3))),
            ),
            duration=10.0,
            seed=3,
        )
        result = run_scenario(scenario, MiDrrScheduler)
        for flow_id in ("p", "o", "c"):
            assert result.stats.bytes_sent(flow_id) > 0

    def test_seed_changes_stochastic_runs(self):
        def run(seed):
            scenario = Scenario(
                interfaces=(InterfaceSpec("if1", mbps(2)),),
                flows=(
                    FlowSpec("p", traffic=TrafficSpec("poisson", rate_bps=mbps(0.5))),
                ),
                duration=10.0,
                seed=seed,
            )
            return run_scenario(scenario, MiDrrScheduler).stats.bytes_sent("p")

        assert run(1) != run(2)
        assert run(1) == run(1)
