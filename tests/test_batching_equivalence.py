"""Backend × batching equivalence on the paper workloads.

The perf machinery must never change *what* is simulated: the calendar
queue and fused service quanta are both required to be decision- and
trace-preserving. These tests run each workload across the full
``{heap, calendar} × {batching off, on}`` matrix and require:

* per-interface decision streams (observed through the engine's
  decision probe, the same tap fig1/6/7 traces use) byte-identical;
* the global ``decision_flows_examined`` telemetry equal as a
  length-preserving multiset — under multi-interface batching the
  per-decision entries interleave across interfaces in a different
  global order while each interface's own stream is unchanged (see
  docs/architecture.md);
* service samples, per-flow byte totals, interface counters and the
  miDRR turn/flag counters identical.

A separate check asserts the bench workload actually fuses quanta, so
"equivalent" is not satisfied vacuously.
"""

from __future__ import annotations

import dataclasses
from collections import Counter

import pytest

from repro.experiments import fig1, fig6
from repro.perf import build_core_scenario
from repro.core.runner import run_scenario
from repro.schedulers.midrr import MiDrrScheduler

CONFIGS = (
    ("heap", False),
    ("heap", True),
    ("calendar", False),
    ("calendar", True),
)


class ProbeRecorder:
    """Record the per-interface decision stream through the probe tap."""

    def __init__(self, engine):
        self.engine = engine
        self.streams = {}

    def __call__(self, interface):
        packet = self.engine.scheduler.select(interface.interface_id)
        self.streams.setdefault(interface.interface_id, []).append(
            None if packet is None else (packet.flow_id, packet.size_bytes)
        )
        return packet


def run_config(scenario, backend, batching):
    recorder_box = {}

    def attach(sim, engine):
        recorder = ProbeRecorder(engine)
        engine.set_decision_probe(recorder, every=1)
        recorder_box["probe"] = recorder

    result = run_scenario(
        scenario,
        MiDrrScheduler,
        on_engine=attach,
        queue_backend=backend,
        batching=batching,
    )
    return result, recorder_box["probe"]


def fingerprint(result):
    scheduler = result.engine.scheduler
    return {
        "samples": sorted(
            (s.time, s.flow_id, s.interface_id, s.size_bytes, s.delay)
            for s in result.stats.samples
        ),
        "bytes": {
            flow_id: result.stats.bytes_sent(flow_id)
            for flow_id in result.stats.flow_ids()
        },
        "completions": result.completions,
        "interfaces": {
            interface_id: (
                interface.packets_sent,
                round(interface.busy_time, 9),
            )
            for interface_id, interface in result.engine.interfaces.items()
        },
        "turns": scheduler.turns_taken,
        "flags": (scheduler.flags_set_total, scheduler.flags_cleared_total),
        "examined_multiset": Counter(scheduler.decision_flows_examined),
        "examined_len": len(scheduler.decision_flows_examined),
    }


def assert_matrix_equivalent(scenario, expect_batched=False):
    reference = None
    batched_somewhere = False
    for backend, batching in CONFIGS:
        result, probe = run_config(scenario, backend, batching)
        assert result.sim.queue_backend == backend
        current = (fingerprint(result), probe.streams)
        if reference is None:
            reference = current
        else:
            assert current == reference, (
                f"{scenario.name}: ({backend}, batching={batching}) "
                "diverged from (heap, batching=False)"
            )
        if batching:
            batched_somewhere |= any(
                interface.packets_batched > 0
                for interface in result.engine.interfaces.values()
            )
    if expect_batched:
        assert batched_somewhere, (
            f"{scenario.name}: batching never fused a quantum — the "
            "equivalence above is vacuous"
        )


class TestPaperWorkloads:
    def test_fig1a(self):
        # DRR quanta ≈ packet size here, so no window is ever provably
        # forced: the interesting property is that planning leaves the
        # trace untouched even when every plan declines.
        assert_matrix_equivalent(fig1.ALL_SCENARIOS["fig1a"]())

    def test_fig6_first_phase(self):
        scenario = dataclasses.replace(fig6.scenario(), duration=12.0)
        assert_matrix_equivalent(scenario, expect_batched=True)


class TestBenchWorkload:
    def test_core_grid_cell(self):
        scenario = build_core_scenario(
            100, 4, seed=0, target_packets=2000
        )
        assert_matrix_equivalent(scenario, expect_batched=True)

    def test_calendar_bucket_boundary_cell(self):
        """Regression: this cell drove the calendar scan onto a bucket
        whose recomputed year boundary disagreed (in floats) with the
        insert-side ``int(time / width)`` mapping, deferring a pending
        fused-batch event a full year; a foreign interface's abort then
        tried to reschedule its in-flight completion into the past
        (``cannot schedule at t=0.0672 before now=0.0714``)."""
        scenario = build_core_scenario(20, 4, seed=0, target_packets=500)
        assert_matrix_equivalent(scenario, expect_batched=True)

    def test_tied_completions_across_interfaces(self):
        """The cross-interface tie regression: capacity-ratio rates make
        completions on different interfaces collide at the same instant;
        the per-interface tx_priority must keep the tie order identical
        whether or not the colliding event came from a fused batch."""
        scenario = build_core_scenario(
            200, 8, seed=0, target_packets=2000
        )
        assert_matrix_equivalent(scenario, expect_batched=True)
