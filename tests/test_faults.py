"""Unit tests for the fault-injection processes and the fault timeline."""

import random

import pytest

from repro.core.engine import SchedulingEngine
from repro.errors import FaultError, HeaderError
from repro.faults.chaos import _wire_packet
from repro.faults.processes import (
    CapacityCollapse,
    ChecksumVerifier,
    GilbertElliottFlapper,
    PacketCorruptionInjector,
    PacketLossInjector,
    PreferenceChurner,
    verify_wire_packet,
)
from repro.faults.timeline import FaultEvent, FaultTimeline
from repro.net.flow import Flow
from repro.net.interface import Interface
from repro.net.packet import Packet
from repro.net.sources import BulkSource
from repro.schedulers.midrr import MiDrrScheduler
from repro.sim.simulator import Simulator
from repro.units import mbps


def idle_interface(sim, name="if1", rate=mbps(1)):
    """An interface whose source never has work (safe to flap)."""
    interface = Interface(sim, name, rate)
    interface.attach_source(lambda i: None)
    return interface


def feeding_interface(sim, count=5, size=1000, rate=80_000, name="if1"):
    """An interface with *count* packets of backlog, then idle."""
    interface = Interface(sim, name, rate)
    remaining = [Packet(flow_id="f", size_bytes=size) for _ in range(count)]
    interface.attach_source(lambda i: remaining.pop(0) if remaining else None)
    return interface


class TestGilbertElliottFlapper:
    @pytest.mark.parametrize("kwargs", [{"mean_up": 0}, {"mean_down": -1}])
    def test_invalid_dwell_rejected(self, sim, kwargs):
        with pytest.raises(FaultError):
            GilbertElliottFlapper(
                sim, idle_interface(sim), random.Random(0), **kwargs
            )

    def test_flaps_then_restores_at_until(self, sim):
        interface = idle_interface(sim)
        timeline = FaultTimeline()
        flapper = GilbertElliottFlapper(
            sim,
            interface,
            random.Random(3),
            mean_up=1.0,
            mean_down=0.5,
            until=20.0,
            timeline=timeline,
        )
        sim.run(until=30.0)
        assert interface.up  # restored once the fault window closed
        assert flapper.transitions >= 2
        kinds = [event.kind for event in timeline]
        assert kinds[0] == "if_down"
        for first, second in zip(kinds, kinds[1:]):
            assert first != second  # strictly alternating
        assert all(event.time <= 20.0 or event.kind == "if_up" for event in timeline)

    def test_down_time_accumulates(self, sim):
        interface = idle_interface(sim)
        GilbertElliottFlapper(
            sim, interface, random.Random(3), mean_up=1.0, mean_down=0.5, until=20.0
        )
        sim.run(until=30.0)
        assert interface.down_count >= 1
        assert interface.down_time > 0.0

    def test_deterministic_given_seed(self):
        def signature(seed):
            sim = Simulator()
            timeline = FaultTimeline()
            GilbertElliottFlapper(
                sim,
                idle_interface(sim),
                random.Random(seed),
                mean_up=1.0,
                mean_down=0.5,
                until=15.0,
                timeline=timeline,
            )
            sim.run(until=20.0)
            return timeline.signature()

        assert signature(5) == signature(5)
        assert signature(5) != signature(6)


class TestCapacityCollapse:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"collapse_factor": 0.0},
            {"collapse_factor": 1.0},
            {"recover_at": 1.0},  # before the collapse at t=5
            {"ramp_steps": 0},
        ],
    )
    def test_invalid_params_rejected(self, sim, kwargs):
        params = dict(at=5.0, recover_at=10.0)
        params.update(kwargs)
        with pytest.raises(FaultError):
            CapacityCollapse(sim, idle_interface(sim), **params)

    def test_collapse_then_staged_ramp_back(self, sim):
        interface = idle_interface(sim, rate=mbps(8))
        timeline = FaultTimeline()
        CapacityCollapse(
            sim,
            interface,
            at=5.0,
            recover_at=10.0,
            collapse_factor=0.25,
            ramp_steps=4,
            ramp_duration=2.0,
            timeline=timeline,
        )
        sim.run(until=6.0)
        assert interface.rate_bps == pytest.approx(mbps(2))
        sim.run(until=10.6)
        assert mbps(2) < interface.rate_bps < mbps(8)  # mid-ramp
        sim.run(until=12.0)
        assert interface.rate_bps == pytest.approx(mbps(8))
        assert len(timeline.of_kind("capacity")) == 5  # collapse + 4 steps

    def test_collapse_lands_while_interface_down(self, sim):
        interface = idle_interface(sim, rate=mbps(8))
        CapacityCollapse(
            sim, interface, at=5.0, recover_at=6.0, collapse_factor=0.5, ramp_steps=1
        )
        sim.schedule(4.0, interface.bring_down)
        sim.run(until=5.5)
        # The deferred set_rate semantics: recorded even while down.
        assert not interface.up
        assert interface.rate_bps == pytest.approx(mbps(4))


class TestPacketLossInjector:
    @pytest.mark.parametrize("probability", [-0.1, 1.5])
    def test_invalid_probability_rejected(self, sim, probability):
        with pytest.raises(FaultError):
            PacketLossInjector(sim, idle_interface(sim), random.Random(0), probability)

    def test_certain_loss_consumes_every_packet(self, sim):
        interface = feeding_interface(sim, count=5)
        delivered = []
        interface.on_sent(lambda i, p: delivered.append(p))
        timeline = FaultTimeline()
        injector = PacketLossInjector(
            sim, interface, random.Random(0), 1.0, timeline=timeline
        )
        interface.kick()
        sim.run()
        assert injector.packets_lost == 5
        assert delivered == []  # sent listeners never saw them
        assert interface.packets_sent == 5  # they did occupy the link
        assert interface.packets_consumed == 5
        assert len(timeline.of_kind("loss")) == 5

    def test_zero_probability_is_transparent(self, sim):
        interface = feeding_interface(sim, count=5)
        delivered = []
        interface.on_sent(lambda i, p: delivered.append(p))
        injector = PacketLossInjector(sim, interface, random.Random(0), 0.0)
        interface.kick()
        sim.run()
        assert injector.packets_lost == 0
        assert len(delivered) == 5
        assert interface.packets_consumed == 0


class TestCorruptionAndVerification:
    def test_wire_packet_round_trips_clean(self):
        packet = _wire_packet("wire", 100, 0.0)
        verify_wire_packet(packet.wire_bytes)  # no raise

    def test_manual_corruption_detected(self):
        packet = _wire_packet("wire", 100, 0.0)
        data = bytearray(packet.wire_bytes)
        data[20] ^= 0xFF  # inside the IPv4 header
        with pytest.raises(HeaderError):
            verify_wire_packet(bytes(data))

    @pytest.mark.parametrize("probability", [-0.5, 2.0])
    def test_invalid_probability_rejected(self, sim, probability):
        with pytest.raises(FaultError):
            PacketCorruptionInjector(
                sim, idle_interface(sim), random.Random(0), probability
            )

    def test_corrupt_then_verify_discards(self, sim):
        interface = Interface(sim, "cell", 80_000)
        remaining = [_wire_packet("wire", 200, 0.0) for _ in range(4)]
        interface.attach_source(lambda i: remaining.pop(0) if remaining else None)
        delivered = []
        interface.on_sent(lambda i, p: delivered.append(p))
        timeline = FaultTimeline()
        corruptor = PacketCorruptionInjector(
            sim, interface, random.Random(1), 1.0, timeline=timeline
        )
        verifier = ChecksumVerifier(sim, interface, timeline=timeline)
        interface.kick()
        sim.run()
        assert corruptor.packets_corrupted == 4
        assert verifier.corruptions_detected == 4
        assert delivered == []
        assert len(timeline.of_kind("corrupt")) == 4
        assert len(timeline.of_kind("corrupt_detected")) == 4

    def test_clean_wire_packets_pass_the_verifier(self, sim):
        interface = Interface(sim, "cell", 80_000)
        remaining = [_wire_packet("wire", 200, 0.0) for _ in range(3)]
        interface.attach_source(lambda i: remaining.pop(0) if remaining else None)
        delivered = []
        interface.on_sent(lambda i, p: delivered.append(p))
        verifier = ChecksumVerifier(sim, interface)
        interface.kick()
        sim.run()
        assert verifier.packets_verified == 3
        assert verifier.corruptions_detected == 0
        assert len(delivered) == 3

    def test_packets_without_wire_bytes_pass_untouched(self, sim):
        interface = feeding_interface(sim, count=3)
        delivered = []
        interface.on_sent(lambda i, p: delivered.append(p))
        corruptor = PacketCorruptionInjector(sim, interface, random.Random(1), 1.0)
        verifier = ChecksumVerifier(sim, interface)
        interface.kick()
        sim.run()
        assert corruptor.packets_corrupted == 0
        assert verifier.packets_verified == 0  # vacuous pass, not verified
        assert len(delivered) == 3


class TestPreferenceChurner:
    def _engine(self, sim):
        engine = SchedulingEngine(sim, MiDrrScheduler())
        for name in ("if1", "if2"):
            engine.add_interface(Interface(sim, name, mbps(1)))
        flow = Flow("a")
        BulkSource(sim, flow)
        engine.add_flow(flow)
        return engine, flow

    def test_invalid_params_rejected(self, sim):
        engine, _ = self._engine(sim)
        with pytest.raises(FaultError):
            PreferenceChurner(sim, engine, random.Random(0), period=0)
        with pytest.raises(FaultError):
            PreferenceChurner(sim, engine, random.Random(0), weight_choices=())

    def test_weight_churn_applied_and_recorded(self, sim):
        engine, flow = self._engine(sim)
        timeline = FaultTimeline()
        churner = PreferenceChurner(
            sim,
            engine,
            random.Random(0),
            period=1.0,
            weight_choices=(3.0,),
            timeline=timeline,
        )
        engine.start()
        sim.run(until=3.5)
        assert flow.weight == 3.0
        assert churner.churn_events == 3
        assert len(timeline.of_kind("weight")) == 3

    def test_pi_churn_routes_through_quarantine(self, sim):
        engine, flow = self._engine(sim)
        engine.interfaces["if2"].bring_down()
        timeline = FaultTimeline()
        PreferenceChurner(
            sim,
            engine,
            random.Random(0),
            period=1.0,
            weight_choices=(1.0,),
            interface_options={"a": [("if2",)]},
            timeline=timeline,
        )
        engine.start()
        sim.run(until=1.5)
        # The churner pinned the flow to the downed interface; the edit
        # went through notify_preferences_changed, so it is quarantined.
        assert flow.allowed_interfaces == frozenset({"if2"})
        assert "a" in engine.quarantined_flows
        assert len(timeline.of_kind("prefs")) == 1

    def test_stops_at_until(self, sim):
        engine, _ = self._engine(sim)
        churner = PreferenceChurner(
            sim, engine, random.Random(0), period=1.0, until=2.5
        )
        engine.start()
        sim.run(until=10.0)
        assert churner.churn_events == 2


class TestFaultTimeline:
    def test_render_is_stable_and_hashable(self):
        first, second = FaultTimeline(), FaultTimeline()
        for timeline in (first, second):
            timeline.record(1.25, "if_down", "wifi")
            timeline.record(2.5, "loss", "cell", "flow=wire size=528")
        assert first.render_lines() == second.render_lines()
        assert first.signature() == second.signature()
        second.record(3.0, "if_up", "wifi")
        assert first.signature() != second.signature()
        assert len(second) == 3

    def test_event_render_format(self):
        event = FaultEvent(time=1.0, kind="if_down", target="wifi")
        assert event.render() == "1.000000000 if_down wifi"
        detailed = FaultEvent(time=2.0, kind="weight", target="a", detail="phi=3")
        assert detailed.render() == "2.000000000 weight a phi=3"

    def test_of_kind_filters(self):
        timeline = FaultTimeline()
        timeline.record(1.0, "if_down", "wifi")
        timeline.record(2.0, "if_up", "wifi")
        timeline.record(3.0, "if_down", "cell")
        assert [e.target for e in timeline.of_kind("if_down")] == ["wifi", "cell"]
        assert timeline.events[1].kind == "if_up"
