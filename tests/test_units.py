"""Unit tests for unit helpers."""

import pytest

from repro import units


class TestRates:
    def test_kbps(self):
        assert units.kbps(3) == 3_000.0

    def test_mbps(self):
        assert units.mbps(3) == 3_000_000.0

    def test_gbps(self):
        assert units.gbps(1.5) == 1.5e9

    def test_sizes(self):
        assert units.kib(2) == 2048
        assert units.mib(1) == 1024 * 1024

    def test_bit_byte_roundtrip(self):
        assert units.bits_to_bytes(units.bytes_to_bits(1500)) == 1500


class TestTransmissionTime:
    def test_basic(self):
        # 1500 bytes at 12 kb/s = 1 second.
        assert units.transmission_time(1500, 12_000) == pytest.approx(1.0)

    def test_zero_rate_raises(self):
        with pytest.raises(ValueError):
            units.transmission_time(1500, 0)

    def test_negative_rate_raises(self):
        with pytest.raises(ValueError):
            units.transmission_time(1500, -1)


class TestFormatting:
    @pytest.mark.parametrize(
        "rate, expected",
        [
            (3e9, "3.00 Gb/s"),
            (3e6, "3.00 Mb/s"),
            (3e3, "3.00 kb/s"),
            (300, "300.00 b/s"),
        ],
    )
    def test_format_rate(self, rate, expected):
        assert units.format_rate(rate) == expected

    @pytest.mark.parametrize(
        "size, expected",
        [
            (2 * 1024**3, "2.00 GiB"),
            (3 * 1024**2, "3.00 MiB"),
            (1536, "1.50 KiB"),
            (12, "12 B"),
        ],
    )
    def test_format_bytes(self, size, expected):
        assert units.format_bytes(size) == expected

    @pytest.mark.parametrize(
        "duration, expected",
        [
            (66.0, "66.0 s"),
            (0.0025, "2.50 ms"),
            (2.5e-6, "2.50 us"),
            (5e-9, "5.0 ns"),
        ],
    )
    def test_format_duration(self, duration, expected):
        assert units.format_duration(duration) == expected
