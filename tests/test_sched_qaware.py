"""Unit tests for the queue-aware steering scheduler."""

import pytest

from tests.helpers import make_flow

from repro.errors import SchedulingError
from repro.schedulers.qaware import QAwareScheduler


class FakeInterface:
    def __init__(self, interface_id, rate_bps):
        self.interface_id = interface_id
        self.rate_bps = rate_bps


def build(rates=None):
    """A scheduler over if1/if2, optionally with observed rates."""
    scheduler = QAwareScheduler()
    scheduler.register_interface("if1")
    scheduler.register_interface("if2")
    for interface_id, rate in (rates or {}).items():
        scheduler.observe_interface(FakeInterface(interface_id, rate))
    return scheduler


class TestSteering:
    def test_steers_to_faster_interface(self):
        scheduler = build(rates={"if1": 1e6, "if2": 4e6})
        scheduler.add_flow(make_flow("f", backlog_packets=10))
        assert scheduler.assignment() == {"f": "if2"}
        assert scheduler.steers_total == 1

    def test_unobserved_rates_balance_by_depth(self):
        scheduler = build()
        scheduler.add_flow(make_flow("a", backlog_packets=10))
        scheduler.add_flow(make_flow("b", backlog_packets=2))
        assignment = scheduler.assignment()
        # a took the first line; b avoids a's 15 kB of queued bytes.
        assert assignment["a"] != assignment["b"]

    def test_queue_depth_counts_assigned_backlogs(self):
        scheduler = build()
        scheduler.add_flow(make_flow("a", backlog_packets=4, packet_size=1000))
        target = scheduler.assignment()["a"]
        assert scheduler.queue_depth_bytes(target) == 4000

    def test_reactivation_resteers_to_live_depths(self):
        scheduler = build(rates={"if1": 1e6, "if2": 1e6})
        heavy = make_flow("heavy", backlog_packets=50)
        scheduler.add_flow(heavy)
        light = make_flow("light", backlog_packets=1)
        scheduler.add_flow(light)
        first = scheduler.assignment()["light"]
        assert first != scheduler.assignment()["heavy"]
        # Drain light, then re-backlog it: steering re-scores against
        # whatever the queues look like *now*.
        assert scheduler.select(first).flow_id == "light"
        light.offer(make_flow("light", backlog_packets=1).queue.head())
        scheduler.notify_backlogged(light)
        assert scheduler.assignment()["light"] != scheduler.assignment()["heavy"]

    def test_unknown_interface_raises(self):
        scheduler = QAwareScheduler()
        with pytest.raises(SchedulingError):
            scheduler.select("nope")
        with pytest.raises(SchedulingError):
            scheduler.queue_depth_bytes("nope")


class TestServiceAndStealing:
    def test_serves_own_line_fifo(self):
        scheduler = build(rates={"if1": 1e6, "if2": 1e6})
        scheduler.add_flow(make_flow("a", interfaces=["if1"], backlog_packets=2))
        scheduler.add_flow(make_flow("b", interfaces=["if1"], backlog_packets=2))
        order = [scheduler.select("if1").flow_id for _ in range(4)]
        assert order == ["a", "a", "b", "b"]

    def test_idle_interface_steals_willing_flow(self):
        scheduler = build(rates={"if1": 1e6, "if2": 1e6})
        scheduler.add_flow(make_flow("f", backlog_packets=4))
        owner = scheduler.assignment()["f"]
        other = "if2" if owner == "if1" else "if1"
        packet = scheduler.select(other)
        assert packet is not None and packet.flow_id == "f"
        assert scheduler.steals_total == 1
        assert scheduler.assignment()["f"] == other

    def test_steal_respects_pi(self):
        scheduler = build(rates={"if1": 1e6, "if2": 1e6})
        scheduler.add_flow(
            make_flow("pinned", interfaces=["if1"], backlog_packets=4)
        )
        assert scheduler.select("if2") is None
        assert scheduler.steals_total == 0

    def test_live_pi_edit_resteers(self):
        scheduler = build(rates={"if1": 1e6, "if2": 1e6})
        flow = make_flow("m", backlog_packets=4)
        scheduler.add_flow(flow)
        owner = scheduler.assignment()["m"]
        flow.restrict_to({"if2" if owner == "if1" else "if1"})
        # The old owner must not serve it; the select re-steers it.
        assert scheduler.select(owner) is None
        new_owner = scheduler.assignment()["m"]
        assert new_owner != owner
        assert scheduler.select(new_owner).flow_id == "m"

    def test_drained_flow_leaves_its_line(self):
        scheduler = build()
        scheduler.add_flow(make_flow("f", backlog_packets=1))
        owner = scheduler.assignment()["f"]
        assert scheduler.select(owner) is not None
        assert "f" not in scheduler.assignment()
        assert scheduler.select(owner) is None


class TestCheckpointing:
    def build_populated(self):
        scheduler = build(rates={"if1": 1e6, "if2": 2e6})
        scheduler.add_flow(make_flow("a", backlog_packets=3))
        scheduler.add_flow(make_flow("b", interfaces=["if1"], backlog_packets=3))
        return scheduler

    def test_snapshot_round_trip_is_fixpoint(self):
        import json

        source = self.build_populated()
        source.select("if1")
        first = json.loads(json.dumps(source.snapshot_state()))

        target = self.build_populated()
        target.select("if1")
        target.restore_state(first, dict(target._flows))
        second = json.loads(json.dumps(target.snapshot_state()))
        assert first == second

    def test_restore_preserves_assignment(self):
        source = self.build_populated()
        snapshot = source.snapshot_state()
        target = self.build_populated()
        target.restore_state(snapshot, dict(target._flows))
        assert target.assignment() == source.assignment()
        assert target.steers_total == source.steers_total


class TestConformance:
    """ISSUE 9 acceptance: QAware passes Π-respect and work conservation."""

    def test_interface_preferences_and_work_conservation(self):
        from repro.fairness.conformance import (
            check_interface_preferences,
            check_work_conservation,
        )

        pi = check_interface_preferences(QAwareScheduler)
        assert pi.passed, pi.detail
        wc = check_work_conservation(QAwareScheduler)
        assert wc.passed, wc.detail
