"""Unit tests for the simulator core."""

import pytest

from repro.errors import SimulationError
from repro.sim.simulator import Simulator


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_advances_to_event_time(self, sim):
        sim.schedule(4.5, lambda: None)
        sim.run()
        assert sim.now == 4.5

    def test_run_until_sets_clock_even_without_events(self, sim):
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_cannot_schedule_in_past(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(1.0, lambda: None)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.call_later(-1.0, lambda: None)

    def test_run_until_in_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=2.0)


class TestExecution:
    def test_events_fire_in_order(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "a")
        sim.run()
        assert fired == ["a", "b"]

    def test_run_until_excludes_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "in")
        sim.schedule(5.0, fired.append, "out")
        sim.run(until=3.0)
        assert fired == ["in"]
        assert sim.now == 3.0
        sim.run()  # the rest still fires
        assert fired == ["in", "out"]

    def test_run_until_includes_boundary(self, sim):
        fired = []
        sim.schedule(3.0, fired.append, "edge")
        sim.run(until=3.0)
        assert fired == ["edge"]

    def test_events_can_schedule_events(self, sim):
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sim.call_later(1.0, chain, depth + 1)

        sim.call_now(chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_call_now_runs_after_current_event(self, sim):
        order = []

        def first():
            sim.call_now(lambda: order.append("deferred"))
            order.append("current")

        sim.call_now(first)
        sim.run()
        assert order == ["current", "deferred"]

    def test_stop_halts_run(self, sim):
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, fired.append, 2)
        sim.run()
        assert fired == [1]

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_step_processes_one_event(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "x")
        sim.schedule(2.0, fired.append, "y")
        assert sim.step() is True
        assert fired == ["x"]

    def test_max_events_guards_livelock(self, sim):
        def forever():
            sim.call_now(forever)

        sim.call_now(forever)
        with pytest.raises(SimulationError, match="livelock"):
            sim.run(max_events=100)

    def test_not_reentrant(self, sim):
        def nested():
            sim.run()

        sim.call_now(nested)
        with pytest.raises(SimulationError, match="re-entrant"):
            sim.run()

    def test_events_processed_counter(self, sim):
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        sim.run()
        assert sim.events_processed == 3


class TestCancellation:
    def test_sim_cancel_skips_event(self, sim):
        fired = []
        keep = sim.schedule(2.0, fired.append, "keep")
        drop = sim.schedule(1.0, fired.append, "drop")
        sim.cancel(drop)
        sim.run()
        assert fired == ["keep"]
        assert keep.cancelled is False

    def test_cancel_heavy_run_bounds_pending(self, sim):
        # Re-armed timers (cancel + reschedule) must not grow the heap:
        # queue-routed cancellations trigger compaction.
        pending = []
        for i in range(500):
            if pending:
                sim.cancel(pending.pop())
            pending.append(sim.schedule(1000.0 + i, lambda: None))
        assert sim.pending_events < 500
        sim.run()
        assert sim.events_processed == 1
