"""Unit tests for the Flow object."""

import pytest

from repro.errors import ConfigurationError, PreferenceError
from repro.net.flow import Flow
from repro.net.packet import Packet


def pkt(flow="f", size=100):
    return Packet(flow_id=flow, size_bytes=size)


class TestConstruction:
    def test_defaults(self):
        flow = Flow("f")
        assert flow.weight == 1.0
        assert flow.allowed_interfaces is None
        assert not flow.backlogged

    def test_empty_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Flow("")

    @pytest.mark.parametrize("weight", [0, -1.5])
    def test_nonpositive_weight_rejected(self, weight):
        with pytest.raises(PreferenceError):
            Flow("f", weight=weight)

    def test_empty_interface_set_rejected(self):
        with pytest.raises(PreferenceError):
            Flow("f", allowed_interfaces=[])


class TestDeadlinesAndDemand:
    def test_deadline_budget_stamps_offered_packets(self):
        flow = Flow("f", deadline_budget=0.25)
        packet = Packet(flow_id="f", size_bytes=100, created_at=2.0)
        flow.offer(packet)
        assert packet.deadline == pytest.approx(2.25)

    def test_explicit_deadline_not_overwritten(self):
        flow = Flow("f", deadline_budget=0.25)
        packet = Packet(flow_id="f", size_bytes=100, created_at=2.0, deadline=9.0)
        flow.offer(packet)
        assert packet.deadline == 9.0

    def test_no_budget_leaves_packets_elastic(self):
        flow = Flow("f")
        packet = pkt()
        flow.offer(packet)
        assert packet.deadline is None

    @pytest.mark.parametrize("budget", [0.0, -1.0])
    def test_nonpositive_budget_rejected(self, budget):
        with pytest.raises(ConfigurationError):
            Flow("f", deadline_budget=budget)

    @pytest.mark.parametrize("rate", [0.0, -5.0])
    def test_nonpositive_nominal_rate_rejected(self, rate):
        with pytest.raises(ConfigurationError):
            Flow("f", nominal_rate_bps=rate)

    def test_budget_and_demand_survive_snapshot(self):
        import json

        flow = Flow("f", deadline_budget=0.5, nominal_rate_bps=1e6)
        state = json.loads(json.dumps(flow.snapshot_state()))
        restored = Flow("f")
        restored.restore_state(state)
        assert restored.deadline_budget == 0.5
        assert restored.nominal_rate_bps == 1e6

    def test_pre_deadline_snapshots_still_restore(self):
        flow = Flow("f")
        state = flow.snapshot_state()
        del state["deadline_budget"]  # a checkpoint written before ISSUE 9
        del state["nominal_rate_bps"]
        restored = Flow("f")
        restored.restore_state(state)
        assert restored.deadline_budget is None
        assert restored.nominal_rate_bps is None


class TestInterfacePreferences:
    def test_none_means_any(self):
        flow = Flow("f")
        assert flow.willing_to_use("anything")

    def test_restricted_set(self):
        flow = Flow("f", allowed_interfaces=["if2"])
        assert flow.willing_to_use("if2")
        assert not flow.willing_to_use("if1")

    def test_restrict_to_updates_live(self):
        flow = Flow("f")
        flow.restrict_to({"if1"})
        assert flow.willing_to_use("if1")
        assert not flow.willing_to_use("if2")

    def test_restrict_to_empty_rejected(self):
        flow = Flow("f")
        with pytest.raises(PreferenceError):
            flow.restrict_to(set())


class TestBacklogAndListeners:
    def test_offer_updates_backlog(self):
        flow = Flow("f")
        flow.offer(pkt())
        assert flow.backlogged
        assert flow.backlog_bytes == 100

    def test_arrival_listener_fires_on_accept(self):
        flow = Flow("f")
        seen = []
        flow.on_arrival(lambda f, p: seen.append(p))
        flow.offer(pkt())
        assert len(seen) == 1

    def test_arrival_listener_skipped_on_drop(self):
        flow = Flow("f", max_queue_bytes=50)
        seen = []
        flow.on_arrival(lambda f, p: seen.append(p))
        assert not flow.offer(pkt(size=100))
        assert seen == []

    def test_pull_fires_dequeue_listener(self):
        flow = Flow("f")
        seen = []
        flow.on_dequeue(lambda f, p: seen.append(p))
        packet = pkt()
        flow.offer(packet)
        assert flow.pull() is packet
        assert seen == [packet]

    def test_record_sent_accounting(self):
        flow = Flow("f")
        flow.record_sent(pkt(size=700))
        flow.record_sent(pkt(size=300))
        assert flow.bytes_sent == 1000
        assert flow.packets_sent == 2

    def test_repr_mentions_preferences(self):
        flow = Flow("video", weight=2.0, allowed_interfaces=["wifi"])
        assert "video" in repr(flow)
        assert "wifi" in repr(flow)
