"""Supervisor: backoff schedule, crash-loop breaker, obs counters."""

import pytest

from repro.core.scenario import FlowSpec, InterfaceSpec, Scenario, TrafficSpec
from repro.errors import ConfigurationError, RecoveryError
from repro.faults.crashes import CrashInjector
from repro.obs.metrics import MetricsRegistry
from repro.recovery import RecoverableScenarioRun, RecoverySupervisor
from repro.schedulers.midrr import MiDrrScheduler
from repro.units import mbps


def scenario():
    return Scenario(
        name="supervised",
        interfaces=(InterfaceSpec("if1", mbps(2)), InterfaceSpec("if2", mbps(1))),
        flows=(
            FlowSpec("a"),
            FlowSpec(
                "b",
                weight=2.0,
                interfaces=("if1",),
                traffic=TrafficSpec("poisson", rate_bps=mbps(0.7)),
            ),
        ),
        duration=5.0,
        seed=9,
    )


class TestRecovery:
    def test_recovers_through_crashes(self):
        reference = RecoverableScenarioRun(scenario(), MiDrrScheduler)
        reference.run_to_completion()

        injector = CrashInjector(at_events=[300, 900], at_times=[3.3])
        supervisor = RecoverySupervisor(
            scenario(),
            MiDrrScheduler,
            injector=injector,
            checkpoint_every_events=200,
        )
        final = supervisor.run()
        assert injector.crashes_fired == 3
        for spec in scenario().flows:
            assert final.engine.stats.bytes_sent(
                spec.flow_id
            ) == reference.engine.stats.bytes_sent(spec.flow_id)

    def test_counters_report_recovery_activity(self):
        registry = MetricsRegistry()
        supervisor = RecoverySupervisor(
            scenario(),
            MiDrrScheduler,
            injector=CrashInjector(at_events=[250]),
            checkpoint_every_events=100,
            backoff_base=0.5,
            registry=registry,
        )
        supervisor.run()
        assert registry.get("recovery.crashes_total").value == 1
        assert registry.get("recovery.restores_total").value == 1
        assert registry.get("recovery.checkpoints_total").value > 1
        assert registry.get("recovery.backoff_seconds_total").value == 0.5
        assert registry.get("recovery.consecutive_crashes").value == 0

    def test_last_checkpoint_is_persistable(self, tmp_path):
        from repro.recovery import load_checkpoint, save_checkpoint

        supervisor = RecoverySupervisor(
            scenario(), MiDrrScheduler, checkpoint_every_events=400
        )
        supervisor.run()
        assert supervisor.last_checkpoint is not None
        path = str(tmp_path / "last.json")
        save_checkpoint(path, supervisor.last_checkpoint)
        restored = RecoverableScenarioRun.restore(
            load_checkpoint(path), MiDrrScheduler
        )
        restored.run_to_completion()
        assert restored.sim.now == pytest.approx(scenario().duration, abs=1.0)


class TestBackoff:
    def test_capped_exponential_schedule(self):
        supervisor = RecoverySupervisor(
            scenario(),
            MiDrrScheduler,
            backoff_base=0.1,
            backoff_cap=1.0,
        )
        assert supervisor.backoff_for(1) == pytest.approx(0.1)
        assert supervisor.backoff_for(2) == pytest.approx(0.2)
        assert supervisor.backoff_for(3) == pytest.approx(0.4)
        assert supervisor.backoff_for(4) == pytest.approx(0.8)
        assert supervisor.backoff_for(5) == pytest.approx(1.0)  # capped
        assert supervisor.backoff_for(50) == pytest.approx(1.0)


class TestBreaker:
    def test_crash_loop_trips_breaker(self):
        registry = MetricsRegistry()
        # Five triggers at the same early event with a segment too long
        # to ever complete first: every restart dies at the same point.
        supervisor = RecoverySupervisor(
            scenario(),
            MiDrrScheduler,
            injector=CrashInjector(at_events=[50] * 5),
            checkpoint_every_events=100_000,
            crash_loop_threshold=4,
            registry=registry,
        )
        with pytest.raises(RecoveryError, match="breaker open"):
            supervisor.run()
        assert registry.get("recovery.breaker_trips_total").value == 1
        assert registry.get("recovery.crashes_total").value == 4
        assert registry.get("recovery.consecutive_crashes").value == 4

    def test_progress_resets_the_streak(self):
        registry = MetricsRegistry()
        # Crashes spaced across segments: each restart makes progress
        # before the next trigger, so the streak never accumulates.
        supervisor = RecoverySupervisor(
            scenario(),
            MiDrrScheduler,
            injector=CrashInjector(at_events=[150, 350, 550, 750]),
            checkpoint_every_events=100,
            crash_loop_threshold=3,
            registry=registry,
        )
        supervisor.run()
        assert registry.get("recovery.crashes_total").value == 4
        assert registry.get("recovery.breaker_trips_total").value == 0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"checkpoint_every_events": 0},
            {"checkpoint_every_events": -5},
            {"crash_loop_threshold": 0},
            {"backoff_base": 0.0},
            {"backoff_base": 1.0, "backoff_cap": 0.5},
        ],
    )
    def test_bad_configuration_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RecoverySupervisor(scenario(), MiDrrScheduler, **kwargs)


class TestSupervisedExtras:
    def test_supervisor_threads_extras_through_restores(self):
        from repro.health import Watchdog

        def extras(run):
            watchdog = Watchdog(run.sim, run.engine)
            watchdog.start()
            run.attach("health:watchdog", watchdog)

        reference = RecoverableScenarioRun(
            scenario(), MiDrrScheduler, extras=extras
        )
        reference.run_to_completion()

        supervisor = RecoverySupervisor(
            scenario(),
            MiDrrScheduler,
            injector=CrashInjector(at_events=[300, 900]),
            extras=extras,
            checkpoint_every_events=200,
        )
        final = supervisor.run()
        for spec in scenario().flows:
            assert final.engine.stats.bytes_sent(
                spec.flow_id
            ) == reference.engine.stats.bytes_sent(spec.flow_id)
        watchdog = final._components["health:watchdog"]
        assert watchdog.ticks == reference._components["health:watchdog"].ticks
