"""Unit tests for fairness metrics."""

import math

import pytest

from repro.errors import FairnessError
from repro.fairness.metrics import (
    MAX_RELATIVE_ERROR,
    ZERO_RATE_ATOL,
    directional_fairness,
    jain_index,
    max_relative_error,
    measured_rates,
    relative_errors,
    service_lag_bound,
    throughput_utilization,
)
from repro.net.sink import StatsCollector


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_totally_unfair(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_single_flow(self):
        assert jain_index([7.0]) == pytest.approx(1.0)

    def test_all_zero(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(FairnessError):
            jain_index([])

    def test_known_value(self):
        # (1+2+3)² / (3·(1+4+9)) = 36/42.
        assert jain_index([1.0, 2.0, 3.0]) == pytest.approx(36 / 42)

    def test_nan_entries_clamp_to_zero(self):
        # A 0/0 normalization upstream must not poison the index: the
        # NaN scores as "no valid share" and the index stays finite.
        value = jain_index([float("nan"), 5.0, 5.0])
        assert math.isfinite(value)
        assert value == pytest.approx(jain_index([0.0, 5.0, 5.0]))

    def test_inf_entries_clamp_to_zero(self):
        value = jain_index([float("inf"), 1.0, float("-inf")])
        assert math.isfinite(value)
        assert value == pytest.approx(jain_index([0.0, 1.0, 0.0]))

    def test_all_nonfinite_scores_one(self):
        # Every share undefined degenerates to the all-zero convention.
        assert jain_index([float("nan"), float("inf")]) == 1.0


class TestRelativeErrors:
    def test_basic(self):
        errors = relative_errors({"a": 110.0, "b": 90.0}, {"a": 100.0, "b": 100.0})
        assert errors["a"] == pytest.approx(0.1)
        assert errors["b"] == pytest.approx(0.1)

    def test_missing_measured_flow(self):
        errors = relative_errors({}, {"a": 100.0})
        assert errors["a"] == pytest.approx(1.0)

    def test_zero_reference_zero_measured(self):
        assert relative_errors({"a": 0.0}, {"a": 0.0})["a"] == 0.0

    def test_zero_reference_nonzero_measured_clamps(self):
        # Maximally wrong, but finite: inf would leak into max() chains
        # and SLO report hashes downstream.
        error = relative_errors({"a": 5.0}, {"a": 0.0})["a"]
        assert error == MAX_RELATIVE_ERROR
        assert math.isfinite(error)

    def test_zero_reference_numerical_residue_is_zero(self):
        residue = ZERO_RATE_ATOL / 2
        assert relative_errors({"a": residue}, {"a": 0.0})["a"] == 0.0

    def test_huge_ratio_clamps(self):
        error = relative_errors({"a": 1e30}, {"a": 1e-12})["a"]
        assert error == MAX_RELATIVE_ERROR

    def test_all_errors_finite_by_construction(self):
        errors = relative_errors(
            {"a": 5.0, "b": 1e30, "c": 0.0},
            {"a": 0.0, "b": 1e-15, "c": 100.0},
        )
        assert all(math.isfinite(e) for e in errors.values())

    def test_max_relative_error(self):
        assert max_relative_error(
            {"a": 110.0, "b": 150.0}, {"a": 100.0, "b": 100.0}
        ) == pytest.approx(0.5)

    def test_max_relative_error_empty(self):
        assert max_relative_error({}, {}) == 0.0


class TestDirectionalFairness:
    def test_equal_service_is_zero(self, sim):
        stats = StatsCollector(sim)
        stats.record("a", "if1", 1000)
        stats.record("b", "if1", 1000)
        fm = directional_fairness(
            stats, "a", "b", {"a": 1.0, "b": 1.0}, -1.0, 1.0
        )
        assert fm == 0.0

    def test_weight_normalization(self, sim):
        # b has weight 2 and double the bytes: normalized services equal.
        stats = StatsCollector(sim)
        stats.record("a", "if1", 1000)
        stats.record("b", "if1", 2000)
        fm = directional_fairness(
            stats, "a", "b", {"a": 1.0, "b": 2.0}, -1.0, 1.0
        )
        assert fm == 0.0

    def test_direction_sign(self, sim):
        stats = StatsCollector(sim)
        stats.record("a", "if1", 3000)
        stats.record("b", "if1", 1000)
        weights = {"a": 1.0, "b": 1.0}
        assert directional_fairness(stats, "a", "b", weights, -1, 1) == 2000
        assert directional_fairness(stats, "b", "a", weights, -1, 1) == -2000


class TestHelpers:
    def test_service_lag_bound(self):
        assert service_lag_bound(1500.0, 1500) == 1500 + 3000

    def test_measured_rates(self, sim):
        stats = StatsCollector(sim)
        sim.schedule(1.0, stats.record, "a", "if1", 1250)
        sim.run()
        rates = measured_rates(stats, ["a", "b"], 0.0, 2.0)
        assert rates["a"] == pytest.approx(5000.0)
        assert rates["b"] == 0.0

    def test_throughput_utilization(self, sim):
        stats = StatsCollector(sim)
        sim.schedule(1.0, stats.record, "a", "if1", 12_500)  # 100 kbit
        sim.run()
        utilization = throughput_utilization(
            stats, {"if1": 100_000.0, "if2": 100_000.0}, 0.0, 1.0
        )
        assert utilization["if1"] == pytest.approx(1.0)
        assert utilization["if2"] == 0.0

    def test_throughput_utilization_bad_window(self, sim):
        stats = StatsCollector(sim)
        with pytest.raises(FairnessError):
            throughput_utilization(stats, {}, 1.0, 1.0)
