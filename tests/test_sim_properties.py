"""Property-based tests for the simulation substrate."""

from hypothesis import given, settings, strategies as st

from repro.sim.events import EventQueue
from repro.sim.simulator import Simulator


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=100,
    )
)
def test_event_queue_pops_sorted(times):
    """Any schedule pops in non-decreasing time order."""
    queue = EventQueue()
    for time in times:
        queue.push(time, lambda: None)
    popped = []
    while queue:
        popped.append(queue.pop().time)
    assert popped == sorted(times)


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        min_size=2,
        max_size=50,
    ),
    cancel_mask=st.lists(st.booleans(), min_size=2, max_size=50),
)
def test_cancellation_property(times, cancel_mask):
    """Cancelled events never fire; survivors all fire, in order."""
    queue = EventQueue()
    events = [queue.push(time, lambda: None) for time in times]
    survivors = []
    for index, event in enumerate(events):
        # Events beyond the mask's length default to surviving.
        cancel = cancel_mask[index] if index < len(cancel_mask) else False
        if cancel:
            event.cancel()
        else:
            survivors.append(event.time)
    popped = []
    while queue.peek_time() is not None:
        popped.append(queue.pop().time)
    assert popped == sorted(survivors)


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=50)
def test_simulator_fires_everything_in_order(times):
    """run() visits every event, clock monotone, final time = max."""
    sim = Simulator()
    fired = []
    for time in times:
        sim.schedule(time, lambda t=time: fired.append((t, sim.now)))
    sim.run()
    assert len(fired) == len(times)
    assert [t for t, _ in fired] == sorted(times)
    # The clock always equals the event's timestamp when it fires.
    for scheduled, observed_now in fired:
        assert scheduled == observed_now
    assert sim.now == max(times)


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    num_events=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=30)
def test_same_seed_same_trajectory(seed, num_events):
    """Two simulators fed the same seeded randomness fire identically."""
    import random

    def run_once():
        rng = random.Random(seed)
        sim = Simulator()
        fired = []
        for index in range(num_events):
            sim.schedule(rng.uniform(0, 100), fired.append, index)
        sim.run()
        return fired

    assert run_once() == run_once()


@given(
    period=st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
    horizon=st.floats(min_value=1.0, max_value=50.0, allow_nan=False),
)
@settings(max_examples=40)
def test_periodic_tick_count(period, horizon):
    """A periodic process ticks exactly floor(horizon / period) times."""
    from repro.sim.process import PeriodicProcess

    sim = Simulator()
    ticks = []
    process = PeriodicProcess(sim, period, ticks.append)
    process.start()
    sim.run(until=horizon)
    expected = int(horizon / period + 1e-9)
    assert abs(len(ticks) - expected) <= 1  # float-boundary slack
