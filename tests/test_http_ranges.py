"""Unit + property tests for range splitting and splicing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HttpError
from repro.httpproxy.http11 import ByteRange
from repro.httpproxy.ranges import Splicer, split_ranges


class TestSplitRanges:
    def test_exact_multiple(self):
        ranges = split_ranges(200, chunk_bytes=100)
        assert ranges == [ByteRange(0, 99), ByteRange(100, 199)]

    def test_remainder_chunk(self):
        ranges = split_ranges(250, chunk_bytes=100)
        assert ranges[-1] == ByteRange(200, 249)

    def test_single_small_object(self):
        assert split_ranges(10, chunk_bytes=100) == [ByteRange(0, 9)]

    def test_coverage_is_exact(self):
        ranges = split_ranges(1_000_003, chunk_bytes=64 * 1024)
        assert ranges[0].start == 0
        assert ranges[-1].end == 1_000_002
        for previous, current in zip(ranges, ranges[1:]):
            assert current.start == previous.end + 1

    @pytest.mark.parametrize("total,chunk", [(0, 10), (10, 0), (-5, 10)])
    def test_invalid_params(self, total, chunk):
        with pytest.raises(HttpError):
            split_ranges(total, chunk)


class TestSplicer:
    def test_in_order_assembly(self):
        splicer = Splicer(10)
        splicer.add(ByteRange(0, 4), b"01234")
        splicer.add(ByteRange(5, 9), b"56789")
        assert splicer.complete
        assert splicer.assemble() == b"0123456789"

    def test_out_of_order_assembly(self):
        splicer = Splicer(10)
        splicer.add(ByteRange(5, 9), b"56789")
        assert not splicer.complete
        splicer.add(ByteRange(0, 4), b"01234")
        assert splicer.assemble() == b"0123456789"

    def test_length_mismatch_rejected(self):
        splicer = Splicer(10)
        with pytest.raises(HttpError, match="carries"):
            splicer.add(ByteRange(0, 4), b"012")

    def test_out_of_bounds_rejected(self):
        splicer = Splicer(10)
        with pytest.raises(HttpError, match="exceeds"):
            splicer.add(ByteRange(5, 14), b"0123456789")

    def test_duplicate_rejected(self):
        splicer = Splicer(10)
        splicer.add(ByteRange(0, 4), b"01234")
        with pytest.raises(HttpError, match="duplicate"):
            splicer.add(ByteRange(0, 4), b"01234")

    def test_incomplete_assemble_rejected(self):
        splicer = Splicer(10)
        splicer.add(ByteRange(0, 4), b"01234")
        with pytest.raises(HttpError, match="incomplete"):
            splicer.assemble()

    def test_missing_prefix_length(self):
        splicer = Splicer(15)
        splicer.add(ByteRange(0, 4), b"aaaaa")
        splicer.add(ByteRange(10, 14), b"ccccc")
        assert splicer.missing_prefix_length() == 5
        splicer.add(ByteRange(5, 9), b"bbbbb")
        assert splicer.missing_prefix_length() == 15

    def test_bytes_received(self):
        splicer = Splicer(10)
        splicer.add(ByteRange(0, 4), b"01234")
        assert splicer.bytes_received == 5

    def test_invalid_total(self):
        with pytest.raises(HttpError):
            Splicer(0)


@settings(deadline=None, max_examples=50)
@given(
    total=st.integers(min_value=1, max_value=50_000),
    chunk=st.integers(min_value=64, max_value=10_000),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_split_then_splice_roundtrip(total, chunk, seed):
    """Splitting and splicing in any order reproduces the object."""
    import random

    body = bytes((seed + i) % 256 for i in range(min(total, 4096)))
    body = (body * (total // max(1, len(body)) + 1))[:total]
    ranges = split_ranges(total, chunk)
    random.Random(seed).shuffle(ranges)
    splicer = Splicer(total)
    for byte_range in ranges:
        splicer.add(byte_range, body[byte_range.start: byte_range.end + 1])
    assert splicer.assemble() == body
