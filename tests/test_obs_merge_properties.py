"""Property tests for the mergeable-telemetry algebra.

The fleet coordinator's correctness rests on one claim: folding shard
registries together is *exact* — commutative, associative, and
indistinguishable from having fed every observation to a single
registry. These tests pin that claim with hypothesis.

Observations are drawn as dyadic rationals (``n / 1024``) so float
addition is exact and state comparisons can demand strict equality
instead of tolerances — any drift the merge path introduced would be a
real bug, not rounding noise.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.obs import Histogram, MetricsRegistry, QuantileSketch

#: Positive dyadic rationals: exact under float addition in any order.
values = st.integers(min_value=1, max_value=2**20).map(lambda n: n / 1024)
#: Same, but zero/negative included to exercise the sketch zero bucket.
signed_values = st.integers(min_value=-(2**10), max_value=2**20).map(
    lambda n: n / 1024
)
streams = st.lists(signed_values, max_size=40)

HIST_BOUNDS = (1.0, 10.0, 100.0, 1000.0)

RELAXED = settings(
    max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


def sketch_of(stream, name="s"):
    sketch = QuantileSketch(name)
    for value in stream:
        sketch.observe(value)
    return sketch


def sketch_state(sketch):
    return (
        sketch.count,
        sketch.sum,
        sketch._zero,
        sketch._min,
        sketch._max,
        tuple(sorted(sketch._buckets.items())),
    )


class TestSketchMergeProperties:
    @settings(RELAXED)
    @given(streams, streams)
    def test_commutative(self, a, b):
        left, right = sketch_of(a), sketch_of(b)
        left.merge(sketch_of(b))
        right_first = sketch_of(b)
        right_first.merge(sketch_of(a))
        assert sketch_state(left) == sketch_state(right_first)

    @settings(RELAXED)
    @given(streams, streams, streams)
    def test_associative(self, a, b, c):
        # (a ⊕ b) ⊕ c
        grouped_left = sketch_of(a)
        grouped_left.merge(sketch_of(b))
        grouped_left.merge(sketch_of(c))
        # a ⊕ (b ⊕ c)
        tail = sketch_of(b)
        tail.merge(sketch_of(c))
        grouped_right = sketch_of(a)
        grouped_right.merge(tail)
        assert sketch_state(grouped_left) == sketch_state(grouped_right)

    @settings(RELAXED)
    @given(streams, streams)
    def test_merge_equals_single_stream(self, a, b):
        merged = sketch_of(a)
        merged.merge(sketch_of(b))
        single = sketch_of(a + b)
        assert sketch_state(merged) == sketch_state(single)
        for q in (0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert merged.quantile(q) == single.quantile(q)

    def test_growth_mismatch_rejected(self):
        left = QuantileSketch("l", growth=1.05)
        right = QuantileSketch("r", growth=1.2)
        with pytest.raises(ConfigurationError):
            left.merge(right)


def histogram_of(stream, name="h"):
    hist = Histogram(name, HIST_BOUNDS)
    for value in stream:
        hist.observe(value)
    return hist


def histogram_state(hist):
    return (
        hist.count,
        hist.sum,
        hist._min,
        hist._max,
        tuple(hist._counts),
    )


class TestHistogramMergeProperties:
    @settings(RELAXED)
    @given(streams, streams)
    def test_commutative(self, a, b):
        left = histogram_of(a)
        left.merge(histogram_of(b))
        right = histogram_of(b)
        right.merge(histogram_of(a))
        assert histogram_state(left) == histogram_state(right)

    @settings(RELAXED)
    @given(streams, streams)
    def test_merge_equals_single_stream(self, a, b):
        merged = histogram_of(a)
        merged.merge(histogram_of(b))
        assert histogram_state(merged) == histogram_state(histogram_of(a + b))

    def test_bounds_mismatch_rejected(self):
        left = Histogram("l", (1.0, 2.0))
        right = Histogram("r", (1.0, 3.0))
        with pytest.raises(ConfigurationError):
            left.merge(right)


def registry_of(counter_incs, gauge_levels, stream):
    """A registry shaped like a shard's: counters, gauges, hist, sketch."""
    registry = MetricsRegistry()
    for amount in counter_incs:
        registry.counter("packets").inc(amount)
    for level in gauge_levels:
        registry.gauge("backlog").set(level)
    hist = registry.histogram("occupancy", HIST_BOUNDS)
    sketch = registry.sketch("delay")
    for value in stream:
        hist.observe(value)
        sketch.observe(value)
    return registry


registries = st.builds(
    registry_of,
    st.lists(values, max_size=8),
    st.lists(values, max_size=4),
    streams,
)


class TestRegistryMergeProperties:
    @settings(RELAXED)
    @given(registries, registries)
    def test_commutative(self, r1, r2):
        ab = MetricsRegistry()
        ab.merge_state(r1.snapshot_state())
        ab.merge_state(r2.snapshot_state())
        ba = MetricsRegistry()
        ba.merge_state(r2.snapshot_state())
        ba.merge_state(r1.snapshot_state())
        assert ab.snapshot_state() == ba.snapshot_state()

    @settings(RELAXED)
    @given(registries, registries, registries)
    def test_associative(self, r1, r2, r3):
        left = MetricsRegistry()
        left.merge_state(r1.snapshot_state())
        left.merge_state(r2.snapshot_state())
        left.merge_state(r3.snapshot_state())

        tail = MetricsRegistry()
        tail.merge_state(r2.snapshot_state())
        tail.merge_state(r3.snapshot_state())
        right = MetricsRegistry()
        right.merge_state(r1.snapshot_state())
        right.merge_state(tail.snapshot_state())
        assert left.snapshot_state() == right.snapshot_state()

    @settings(RELAXED)
    @given(
        st.lists(st.lists(signed_values, max_size=20), min_size=1, max_size=5)
    )
    def test_merge_equals_single_stream(self, shards):
        """N shard registries merged == one registry fed the union."""
        fleet = MetricsRegistry()
        for stream in shards:
            shard = MetricsRegistry()
            shard.counter("n").inc(len(stream))
            sketch = shard.sketch("delay")
            for value in stream:
                sketch.observe(value)
            fleet.merge_state(shard.snapshot_state())

        reference = MetricsRegistry()
        reference.counter("n").inc(sum(len(s) for s in shards))
        ref_sketch = reference.sketch("delay")
        for stream in shards:
            for value in stream:
                ref_sketch.observe(value)

        assert fleet.snapshot_state() == reference.snapshot_state()
        merged = fleet.get("delay")
        for q in (0.5, 0.95, 0.99):
            assert merged.quantile(q) == ref_sketch.quantile(q)

    def test_counters_and_gauges_add(self):
        fleet = MetricsRegistry()
        for amount in (3.0, 4.0):
            shard = MetricsRegistry()
            shard.counter("packets").inc(amount)
            shard.gauge("backlog").set(amount)
            fleet.merge_state(shard.snapshot_state())
        assert fleet.get("packets").value == 7.0
        assert fleet.get("backlog").value == 7.0

    def test_callback_gauge_rejected(self):
        fleet = MetricsRegistry()
        fleet.gauge("live", fn=lambda: 42.0)
        shard = MetricsRegistry()
        shard.gauge("live").set(1.0)
        with pytest.raises(ConfigurationError, match="callback-backed"):
            fleet.merge_state(shard.snapshot_state())

    def test_unknown_kind_rejected(self):
        fleet = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="unknown kind"):
            fleet.merge_state({"m": {"kind": "summary", "value": 1}})

    def test_merge_creates_missing_metrics(self):
        shard = MetricsRegistry()
        shard.histogram("occupancy", HIST_BOUNDS).observe(5.0)
        fleet = MetricsRegistry()
        assert "occupancy" not in fleet
        fleet.merge_state(shard.snapshot_state())
        assert fleet.get("occupancy").count == 1
