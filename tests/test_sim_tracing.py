"""Unit tests for the trace log."""

from repro.sim.tracing import TraceLog, TraceRecord


class TestTraceLog:
    def test_emit_and_iterate(self):
        log = TraceLog()
        log.emit(1.0, "if1", "tx_start", flow_id="a")
        log.emit(2.0, "if1", "tx_done", flow_id="a")
        records = list(log)
        assert len(records) == 2
        assert records[0].kind == "tx_start"
        assert records[1].payload == {"flow_id": "a"}

    def test_disabled_log_is_noop(self):
        log = TraceLog(enabled=False)
        log.emit(1.0, "x", "y")
        assert len(log) == 0

    def test_filter_by_kind(self):
        log = TraceLog()
        log.emit(1.0, "if1", "tx_start")
        log.emit(2.0, "if1", "tx_done")
        log.emit(3.0, "if2", "tx_start")
        assert len(log.records(kind="tx_start")) == 2

    def test_filter_by_source(self):
        log = TraceLog()
        log.emit(1.0, "if1", "tx_start")
        log.emit(2.0, "if2", "tx_start")
        assert len(log.records(source="if2")) == 1

    def test_combined_filter(self):
        log = TraceLog()
        log.emit(1.0, "if1", "tx_start")
        log.emit(2.0, "if1", "tx_done")
        log.emit(3.0, "if2", "tx_done")
        records = log.records(kind="tx_done", source="if1")
        assert [r.time for r in records] == [2.0]

    def test_subscriber_sees_live_records(self):
        log = TraceLog()
        seen = []
        log.subscribe(seen.append)
        log.emit(1.0, "s", "k", value=3)
        assert len(seen) == 1
        assert seen[0].payload["value"] == 3

    def test_clear_keeps_subscribers(self):
        log = TraceLog()
        seen = []
        log.subscribe(seen.append)
        log.emit(1.0, "s", "k")
        log.clear()
        assert len(log) == 0
        log.emit(2.0, "s", "k")
        assert len(seen) == 2

    def test_records_are_frozen(self):
        record = TraceRecord(1.0, "s", "k", {})
        try:
            record.time = 2.0
            mutated = True
        except AttributeError:
            mutated = False
        assert not mutated
