"""Tests for the ``repro.perf`` benchmark harness.

The tier-1 smoke test runs a miniature grid end to end and validates
the BENCH_core.json schema; the full default grid runs only under the
``bench`` marker (``pytest -m bench``), which the default run
deselects — benchmarks measure wall-clock and have no place gating CI.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigurationError
from repro.perf import (
    BENCH_SCHEMA_VERSION,
    build_core_scenario,
    render_bench_table,
    run_core_bench,
    validate_bench_document,
    write_bench_document,
)

#: A grid small enough for tier-1 (one cell, a few hundred packets).
SMOKE_KWARGS = dict(
    flow_counts=(3,), interface_counts=(2,), target_packets=200
)


class TestScenarioBuilder:
    def test_deterministic_per_seed(self):
        first = build_core_scenario(5, 2, seed=42)
        second = build_core_scenario(5, 2, seed=42)
        assert [spec.interfaces for spec in first.flows] == [
            spec.interfaces for spec in second.flows
        ]
        assert [spec.weight for spec in first.flows] == [
            spec.weight for spec in second.flows
        ]

    def test_seed_changes_workload(self):
        first = build_core_scenario(20, 4, seed=0)
        second = build_core_scenario(20, 4, seed=1)
        assert [spec.interfaces for spec in first.flows] != [
            spec.interfaces for spec in second.flows
        ]

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            build_core_scenario(0, 2)
        with pytest.raises(ConfigurationError):
            build_core_scenario(5, 2, target_packets=0)


class TestSmokeBench:
    @pytest.fixture(scope="class")
    def document(self):
        return run_core_bench(seed=0, **SMOKE_KWARGS)

    def test_document_is_valid(self, document):
        assert validate_bench_document(document) == []
        assert document["schema_version"] == BENCH_SCHEMA_VERSION
        assert document["seed"] == 0

    def test_cell_throughput_nonzero(self, document):
        (cell,) = document["grid"]
        assert cell["packets"] > 0
        assert cell["packets_per_sec"] > 0
        assert cell["events_per_sec"] > 0
        assert cell["decisions"] >= cell["packets"]

    def test_counts_are_seed_deterministic(self, document):
        again = run_core_bench(seed=0, **SMOKE_KWARGS)
        for key in ("events", "packets", "decisions", "virtual_seconds"):
            assert again["grid"][0][key] == document["grid"][0][key]

    def test_write_and_render(self, document, tmp_path):
        path = tmp_path / "BENCH_core.json"
        write_bench_document(document, str(path))
        loaded = json.loads(path.read_text())
        assert validate_bench_document(loaded) == []
        table = render_bench_table(loaded)
        assert "packets/s" in table

    def test_write_refuses_invalid(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_bench_document({"name": "core"}, str(tmp_path / "x.json"))


class TestValidation:
    def test_rejects_non_object(self):
        assert validate_bench_document([]) != []

    def test_reports_missing_keys_and_zero_throughput(self):
        document = run_core_bench(seed=0, **SMOKE_KWARGS)
        document["grid"][0]["packets"] = 0
        del document["seed"]
        problems = validate_bench_document(document)
        assert any("seed" in problem for problem in problems)
        assert any("packets" in problem for problem in problems)


class TestCli:
    def test_bench_core_parses(self):
        args = build_parser().parse_args(
            ["bench", "core", "--seed", "3", "--flows", "5", "--interfaces", "2"]
        )
        assert callable(args.func)
        assert args.seed == 3

    def test_bench_core_writes_document(self, tmp_path, capsys):
        out = tmp_path / "BENCH_core.json"
        exit_code = main(
            [
                "bench",
                "core",
                "--flows", "3",
                "--interfaces", "2",
                "--target-packets", "200",
                "--out", str(out),
            ]
        )
        assert exit_code == 0
        assert validate_bench_document(json.loads(out.read_text())) == []
        assert "packets/s" in capsys.readouterr().out


@pytest.mark.bench
def test_full_default_grid():
    """The committed BENCH_core.json workload, end to end (slow)."""
    document = run_core_bench(seed=0)
    assert validate_bench_document(document) == []
    assert len(document["grid"]) == 9
