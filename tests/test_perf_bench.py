"""Tests for the ``repro.perf`` benchmark harness.

The tier-1 smoke test runs a miniature grid end to end and validates
the BENCH_core.json schema; the full default grid runs only under the
``bench`` marker (``pytest -m bench``), which the default run
deselects — benchmarks measure wall-clock and have no place gating CI.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigurationError
from repro.perf import (
    BENCH_SCHEMA_VERSION,
    OVERHEAD_BUDGET,
    OVERHEAD_NOISE_CEILING,
    auto_select_batching,
    build_core_scenario,
    check_fleet_regression,
    committed_baseline_cell,
    render_bench_table,
    render_overhead_table,
    run_cell,
    run_core_bench,
    run_fleet_cell,
    run_metrics_overhead,
    validate_bench_document,
    validate_fleet_cells,
    write_bench_document,
)

#: A grid small enough for tier-1 (one cell, a few hundred packets).
SMOKE_KWARGS = dict(
    flow_counts=(3,), interface_counts=(2,), target_packets=200
)


class TestScenarioBuilder:
    def test_deterministic_per_seed(self):
        first = build_core_scenario(5, 2, seed=42)
        second = build_core_scenario(5, 2, seed=42)
        assert [spec.interfaces for spec in first.flows] == [
            spec.interfaces for spec in second.flows
        ]
        assert [spec.weight for spec in first.flows] == [
            spec.weight for spec in second.flows
        ]

    def test_seed_changes_workload(self):
        first = build_core_scenario(20, 4, seed=0)
        second = build_core_scenario(20, 4, seed=1)
        assert [spec.interfaces for spec in first.flows] != [
            spec.interfaces for spec in second.flows
        ]

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            build_core_scenario(0, 2)
        with pytest.raises(ConfigurationError):
            build_core_scenario(5, 2, target_packets=0)


class TestSmokeBench:
    @pytest.fixture(scope="class")
    def document(self):
        return run_core_bench(seed=0, **SMOKE_KWARGS)

    def test_document_is_valid(self, document):
        assert validate_bench_document(document) == []
        assert document["schema_version"] == BENCH_SCHEMA_VERSION
        assert document["seed"] == 0

    def test_cell_throughput_nonzero(self, document):
        # One (F, I) coordinate swept across the 2×2 backend × batching
        # configuration matrix.
        assert len(document["grid"]) == 4
        for cell in document["grid"]:
            assert cell["packets"] > 0
            assert cell["packets_per_sec"] > 0
            assert cell["events_per_sec"] > 0
            assert cell["decisions"] >= cell["packets"]

    def test_workload_invariant_across_configs(self, document):
        """Backend and batching must not change *what* is simulated:
        packet and decision counts are identical in every cell; only
        the event count shrinks when quanta are fused."""
        cells = document["grid"]
        assert len({cell["packets"] for cell in cells}) == 1
        assert len({cell["decisions"] for cell in cells}) == 1
        for cell in cells:
            baseline = next(
                c for c in cells
                if c["backend"] == cell["backend"] and not c["batching"]
            )
            if cell["batching"]:
                assert cell["events"] <= baseline["events"]

    def test_counts_are_seed_deterministic(self, document):
        again = run_core_bench(seed=0, **SMOKE_KWARGS)
        for first, second in zip(document["grid"], again["grid"]):
            for key in (
                "backend", "batching", "events", "packets", "decisions",
                "virtual_seconds",
            ):
                assert first[key] == second[key]

    def test_write_and_render(self, document, tmp_path):
        path = tmp_path / "BENCH_core.json"
        write_bench_document(document, str(path))
        loaded = json.loads(path.read_text())
        assert validate_bench_document(loaded) == []
        table = render_bench_table(loaded)
        assert "packets/s" in table

    def test_write_refuses_invalid(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_bench_document({"name": "core"}, str(tmp_path / "x.json"))


class TestValidation:
    def test_rejects_non_object(self):
        assert validate_bench_document([]) != []

    def test_reports_missing_keys_and_zero_throughput(self):
        document = run_core_bench(seed=0, **SMOKE_KWARGS)
        document["grid"][0]["packets"] = 0
        del document["seed"]
        problems = validate_bench_document(document)
        assert any("seed" in problem for problem in problems)
        assert any("packets" in problem for problem in problems)


class TestCli:
    def test_bench_core_parses(self):
        args = build_parser().parse_args(
            ["bench", "core", "--seed", "3", "--flows", "5", "--interfaces", "2"]
        )
        assert callable(args.func)
        assert args.seed == 3

    def test_bench_core_writes_document(self, tmp_path, capsys):
        out = tmp_path / "BENCH_core.json"
        exit_code = main(
            [
                "bench",
                "core",
                "--flows", "3",
                "--interfaces", "2",
                "--target-packets", "200",
                "--out", str(out),
            ]
        )
        assert exit_code == 0
        assert validate_bench_document(json.loads(out.read_text())) == []
        assert "packets/s" in capsys.readouterr().out


class TestMetricsOverhead:
    def test_smoke_report_shape(self):
        """Tier-1 smoke: the paired comparison runs and the workload-
        invariance guard holds (identical packet/decision counts)."""
        report = run_metrics_overhead(
            num_flows=5, num_interfaces=2, target_packets=200
        )
        assert report["within_budget"] in (True, False)
        assert report["bare"]["packets"] == report["instrumented"]["packets"]
        assert (
            report["bare"]["decisions"] == report["instrumented"]["decisions"]
        )
        # Snapshot ticks add events on the instrumented side only.
        assert report["instrumented"]["events"] > report["bare"]["events"]
        # The instrumented cell accounts for its own telemetry time.
        assert 0 < report["telemetry_fraction"] < 1
        assert report["instrumented"]["telemetry_seconds"] > 0
        assert "telemetry_seconds" not in report["bare"]
        table = render_overhead_table(report)
        assert "instrumented" in table
        assert "overhead" in table

    def test_rejects_bad_repeats(self):
        with pytest.raises(ConfigurationError):
            run_metrics_overhead(repeats=0)

    def test_committed_baseline_lookup(self):
        document = run_core_bench(seed=0, **SMOKE_KWARGS)
        cell = committed_baseline_cell(document, 3, 2)
        assert cell is not None and cell["flows"] == 3
        assert committed_baseline_cell(document, 999, 2) is None
        assert committed_baseline_cell({}, 3, 2) is None

    def test_bench_obs_cli(self, capsys):
        exit_code = main(
            [
                "bench",
                "obs",
                "--flows", "5",
                "--interfaces", "2",
                "--target-packets", "200",
                "--repeats", "1",
                "--baseline", "does-not-exist.json",
            ]
        )
        assert exit_code == 0
        assert "bench obs" in capsys.readouterr().out


class TestAutoBatching:
    def test_auto_batching_cell_records_resolution(self):
        """``batching="auto"`` lands in the cell as the resolved bool
        plus the ``batching_auto`` flag, and the calibration is cached
        per (flows, interfaces, backend) so replays stay stable."""
        cell = run_cell(3, 2, target_packets=200, batching="auto")
        assert isinstance(cell["batching"], bool)
        assert cell["batching_auto"] is True
        assert auto_select_batching(3, 2) == cell["batching"]
        plain = run_cell(3, 2, target_packets=200, batching=False)
        assert "batching_auto" not in plain

    def test_run_cell_rejects_bad_batching(self):
        with pytest.raises(ConfigurationError, match="batching"):
            run_cell(3, 2, target_packets=200, batching="maybe")


class TestFleetBench:
    @pytest.fixture(scope="class")
    def workload(self):
        from repro.trace import DeviceWorkload

        return DeviceWorkload(
            kind="bulk", duration=0.25, num_flows=4, num_interfaces=2
        )

    @pytest.fixture(scope="class")
    def cell(self, workload):
        return run_fleet_cell(2, 1, workload=workload, executor="serial")

    def test_cell_shape(self, cell):
        assert validate_fleet_cells([cell]) == []
        assert cell["devices"] == 2 and cell["workers"] == 1
        assert cell["packets"] > 0 and cell["packets_per_sec"] > 0

    def test_hash_mismatch_across_workers_detected(self, cell):
        """Two cells at the same device count must have simulated the
        identical fleet; a hash drift is a determinism bug, not noise."""
        other = dict(cell, workers=2, report_hash="0" * 64)
        problems = validate_fleet_cells([cell, other])
        assert any("report_hash differs" in problem for problem in problems)

    def test_validation_reports_broken_cells(self, cell):
        missing = {key: value for key, value in cell.items() if key != "packets"}
        problems = validate_fleet_cells([missing, "nope"])
        assert any("missing keys" in problem for problem in problems)
        assert any("not an object" in problem for problem in problems)
        assert validate_fleet_cells({}) == ["fleet must be a list"]

    def test_regression_gate(self, cell):
        current = {"fleet": [dict(cell, packets_per_sec=cell["packets_per_sec"] / 2)]}
        baseline = {"fleet": [cell]}
        failures = check_fleet_regression(current, baseline, 2, 1)
        assert failures and "below the floor" in failures[0]
        assert check_fleet_regression(baseline, baseline, 2, 1) == []
        # A generous load factor forgives the same slowdown.
        assert check_fleet_regression(
            current, baseline, 2, 1, load_factor=4.0
        ) == []

    def test_regression_needs_comparable_cell(self, cell):
        failures = check_fleet_regression({"fleet": [cell]}, {}, 2, 1)
        assert failures and "no comparable fleet" in failures[0]
        with pytest.raises(ConfigurationError):
            check_fleet_regression({}, {}, 2, 1, threshold=1.5)


@pytest.mark.bench
def test_full_default_grid():
    """The committed BENCH_core.json workload, end to end (slow)."""
    document = run_core_bench(seed=0)
    assert validate_bench_document(document) == []
    # 3 flow counts × 3 interface counts × the 2×2 config matrix.
    assert len(document["grid"]) == 36


@pytest.mark.bench
def test_metrics_overhead_within_budget():
    """ISSUE 5 acceptance: telemetry costs <5% packets/s at F=1000, I=8."""
    report = run_metrics_overhead(repeats=5)
    assert report["bare"]["packets"] == report["instrumented"]["packets"]
    # The within-run telemetry share is the robust signal: shared/CI
    # hosts show sustained 10-30% load swings that make the end-to-end
    # wall-clock delta read several percent either way (see
    # docs/observability.md), so that delta only has to clear the
    # documented noise ceiling.
    assert report["telemetry_fraction"] < OVERHEAD_BUDGET, (
        f"telemetry share {report['telemetry_fraction']:.1%} exceeds "
        f"{OVERHEAD_BUDGET:.0%}"
    )
    assert report["overhead_fraction"] < OVERHEAD_NOISE_CEILING, (
        f"metrics overhead {report['overhead_fraction']:.1%} exceeds the "
        f"{OVERHEAD_NOISE_CEILING:.0%} noise ceiling"
    )
