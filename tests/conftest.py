"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.simulator import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()
