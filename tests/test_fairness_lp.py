"""Unit + property tests for the LP solver, and solver cross-validation."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import FairnessError
from repro.fairness.lp import LpMaxMinSolver, lp_maxmin
from repro.fairness.waterfill import weighted_maxmin


class TestLpSolverBasics:
    def test_figure_1c(self):
        rates = lp_maxmin(
            {"a": (1.0, None), "b": (1.0, ["if2"])}, {"if1": 1e6, "if2": 1e6}
        )
        assert rates["a"] == pytest.approx(1e6, rel=1e-5)
        assert rates["b"] == pytest.approx(1e6, rel=1e-5)

    def test_figure_6(self):
        rates = lp_maxmin(
            {"a": (1.0, ["if1"]), "b": (2.0, None), "c": (1.0, ["if2"])},
            {"if1": 3e6, "if2": 10e6},
        )
        assert rates["a"] == pytest.approx(3e6, rel=1e-5)
        assert rates["b"] == pytest.approx(20e6 / 3, rel=1e-5)
        assert rates["c"] == pytest.approx(10e6 / 3, rel=1e-5)

    def test_split_respects_capacities(self):
        solver = LpMaxMinSolver(
            {"a": (1.0, ["if1"]), "b": (2.0, None), "c": (1.0, ["if2"])},
            {"if1": 3e6, "if2": 10e6},
        )
        rates, split = solver.solve()
        by_interface = {}
        for (flow_id, interface_id), value in split.items():
            by_interface[interface_id] = by_interface.get(interface_id, 0.0) + value
        assert by_interface["if1"] <= 3e6 * 1.001
        assert by_interface["if2"] <= 10e6 * 1.001
        for flow_id, rate in rates.items():
            from_split = sum(
                v for (f, _), v in split.items() if f == flow_id
            )
            assert from_split == pytest.approx(rate, rel=1e-4)

    def test_split_respects_pi(self):
        solver = LpMaxMinSolver(
            {"a": (1.0, ["if1"]), "b": (1.0, ["if2"])},
            {"if1": 1e6, "if2": 1e6},
        )
        _, split = solver.solve()
        assert ("a", "if2") not in split
        assert ("b", "if1") not in split


class TestDemands:
    def test_demand_capped_flow_frees_capacity(self):
        # A flow that only wants 1 Mb/s leaves the rest to its peer.
        rates = lp_maxmin(
            {"a": (1.0, None), "b": (1.0, None)},
            {"if1": 10e6},
            demands={"a": 1e6},
        )
        assert rates["a"] == pytest.approx(1e6, rel=1e-4)
        assert rates["b"] == pytest.approx(9e6, rel=1e-4)

    def test_all_flows_demand_limited(self):
        rates = lp_maxmin(
            {"a": (1.0, None), "b": (1.0, None)},
            {"if1": 10e6},
            demands={"a": 2e6, "b": 3e6},
        )
        assert rates["a"] == pytest.approx(2e6, rel=1e-4)
        assert rates["b"] == pytest.approx(3e6, rel=1e-4)


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(FairnessError):
            lp_maxmin({"a": (1.0, None)}, {"if1": -1})

    def test_bad_weight(self):
        with pytest.raises(FairnessError):
            lp_maxmin({"a": (-2.0, None)}, {"if1": 1e6})

    def test_unknown_interface(self):
        with pytest.raises(FairnessError):
            lp_maxmin({"a": (1.0, ["zzz"])}, {"if1": 1e6})


@st.composite
def random_instances(draw):
    num_interfaces = draw(st.integers(min_value=1, max_value=4))
    interface_ids = [f"if{j}" for j in range(num_interfaces)]
    capacities = {
        j: float(draw(st.integers(min_value=1, max_value=20))) for j in interface_ids
    }
    num_flows = draw(st.integers(min_value=1, max_value=5))
    flows = {}
    for i in range(num_flows):
        weight = float(draw(st.sampled_from([1, 2, 3, 5])))
        mask = draw(st.integers(min_value=1, max_value=(1 << num_interfaces) - 1))
        willing = [
            interface_ids[j] for j in range(num_interfaces) if mask & (1 << j)
        ]
        flows[f"flow{i}"] = (weight, willing)
    return flows, capacities


@settings(
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(random_instances())
def test_lp_and_waterfill_agree(instance):
    """Two independent solvers must produce identical rate vectors."""
    flows, capacities = instance
    exact = weighted_maxmin(flows, capacities)
    lp_rates = lp_maxmin(flows, capacities)
    for flow_id in flows:
        assert lp_rates[flow_id] == pytest.approx(
            exact.rate(flow_id), rel=1e-5, abs=1e-6
        ), f"solver disagreement on {flow_id}"


@settings(deadline=None, max_examples=25, suppress_health_check=[HealthCheck.too_slow])
@given(random_instances())
def test_waterfill_is_pareto_efficient(instance):
    """Total allocated rate equals total *reachable* capacity.

    Work conservation: every interface with at least one willing flow is
    fully used in a max-min allocation of continuously backlogged flows.
    """
    flows, capacities = instance
    allocation = weighted_maxmin(flows, capacities)
    reachable = sum(
        capacity
        for interface_id, capacity in capacities.items()
        if interface_id not in allocation.idle_interfaces
    )
    assert allocation.total_rate() == pytest.approx(reachable, rel=1e-9)


@settings(deadline=None, max_examples=25, suppress_health_check=[HealthCheck.too_slow])
@given(random_instances())
def test_waterfill_satisfies_cluster_definition(instance):
    """Definition 2 holds on the solver's own clusters."""
    flows, capacities = instance
    allocation = weighted_maxmin(flows, capacities)
    # 1. Disjoint clusters covering every flow.
    seen_flows = set()
    seen_ifaces = set()
    for cluster in allocation.clusters:
        assert not (cluster.flows & seen_flows)
        assert not (cluster.interfaces & seen_ifaces)
        seen_flows |= cluster.flows
        seen_ifaces |= cluster.interfaces
    assert seen_flows == set(flows)
    # 2/3. Each flow's cluster has the max level among reachable ones.
    for flow_id, (weight, willing) in flows.items():
        own = allocation.cluster_of(flow_id)
        for other in allocation.clusters:
            reachable = any(j in other.interfaces for j in willing)
            if reachable:
                assert other.level <= own.level
