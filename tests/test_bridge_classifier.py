"""Unit tests for packet classification."""

import pytest

from repro.bridge.classifier import FlowClassifier, MatchRule, parse_five_tuple
from repro.errors import HeaderError
from repro.net.addresses import Ipv4Address
from repro.net.headers import (
    IPPROTO_TCP,
    IPPROTO_UDP,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
)
from repro.net.packet import FiveTuple

SRC = Ipv4Address.parse("10.0.0.1")
DST = Ipv4Address.parse("8.8.8.8")


def udp_packet(src_port=1234, dst_port=53, payload=b"q"):
    udp = UdpHeader(src_port, dst_port, UdpHeader.LENGTH + len(payload))
    total = Ipv4Header.LENGTH + UdpHeader.LENGTH + len(payload)
    ip = Ipv4Header(src=SRC, dst=DST, protocol=IPPROTO_UDP, total_length=total)
    return ip.pack() + udp.pack(SRC, DST, payload) + payload


def tcp_packet(src_port=40000, dst_port=443, payload=b""):
    tcp = TcpHeader(src_port, dst_port)
    total = Ipv4Header.LENGTH + TcpHeader.LENGTH + len(payload)
    ip = Ipv4Header(src=SRC, dst=DST, protocol=IPPROTO_TCP, total_length=total)
    return ip.pack() + tcp.pack(SRC, DST, payload) + payload


class TestParseFiveTuple:
    def test_udp(self):
        five_tuple, header = parse_five_tuple(udp_packet())
        assert five_tuple.src == SRC
        assert five_tuple.dst == DST
        assert five_tuple.src_port == 1234
        assert five_tuple.dst_port == 53
        assert five_tuple.protocol == IPPROTO_UDP
        assert header.protocol == IPPROTO_UDP

    def test_tcp(self):
        five_tuple, _ = parse_five_tuple(tcp_packet())
        assert five_tuple.dst_port == 443
        assert five_tuple.protocol == IPPROTO_TCP

    def test_non_transport_rejected(self):
        ip = Ipv4Header(src=SRC, dst=DST, protocol=1, total_length=20)  # ICMP
        with pytest.raises(HeaderError, match="classify"):
            parse_five_tuple(ip.pack())

    def test_garbage_rejected(self):
        with pytest.raises(HeaderError):
            parse_five_tuple(b"\x00" * 40)


class TestMatchRule:
    def _tuple(self):
        return parse_five_tuple(tcp_packet())[0]

    def test_wildcard_rule_matches_everything(self):
        assert MatchRule(flow_id="x").matches(self._tuple())

    def test_port_match(self):
        assert MatchRule(flow_id="x", dst_port=443).matches(self._tuple())
        assert not MatchRule(flow_id="x", dst_port=80).matches(self._tuple())

    def test_address_match(self):
        assert MatchRule(flow_id="x", dst=DST).matches(self._tuple())
        other = Ipv4Address.parse("1.1.1.1")
        assert not MatchRule(flow_id="x", dst=other).matches(self._tuple())

    def test_protocol_match(self):
        assert MatchRule(flow_id="x", protocol=IPPROTO_TCP).matches(self._tuple())
        assert not MatchRule(flow_id="x", protocol=IPPROTO_UDP).matches(self._tuple())


class TestFlowClassifier:
    def test_first_match_wins(self):
        classifier = FlowClassifier()
        classifier.add_rule(MatchRule(flow_id="specific", dst_port=443))
        classifier.add_rule(MatchRule(flow_id="catchall"))
        assert classifier.classify_packet(tcp_packet()) == "specific"
        assert classifier.classify_packet(udp_packet()) == "catchall"

    def test_default_flow(self):
        classifier = FlowClassifier(default_flow_id="default")
        assert classifier.classify_packet(udp_packet()) == "default"

    def test_no_match_no_default(self):
        classifier = FlowClassifier()
        classifier.add_rule(MatchRule(flow_id="web", dst_port=80))
        assert classifier.classify_packet(tcp_packet()) is None

    def test_cache_consistency_after_rule_change(self):
        classifier = FlowClassifier()
        five_tuple = parse_five_tuple(tcp_packet())[0]
        assert classifier.classify(five_tuple) is None
        classifier.add_rule(MatchRule(flow_id="web", dst_port=443))
        # The cache must be invalidated by add_rule.
        assert classifier.classify(five_tuple) == "web"

    def test_len(self):
        classifier = FlowClassifier()
        classifier.add_rule(MatchRule(flow_id="a"))
        assert len(classifier) == 1
