"""Unit tests for NAT header rewriting."""

import pytest

from repro.bridge.classifier import parse_five_tuple
from repro.bridge.nat import NatTable, rewrite_inbound, rewrite_outbound
from repro.errors import HeaderError
from repro.net.addresses import Ipv4Address
from repro.net.headers import (
    IPPROTO_TCP,
    IPPROTO_UDP,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
)

VIRTUAL = Ipv4Address.parse("10.0.0.1")
WIFI = Ipv4Address.parse("192.168.1.5")
SERVER = Ipv4Address.parse("8.8.8.8")


def udp_packet(src=VIRTUAL, dst=SERVER, src_port=4000, dst_port=53, payload=b"hello"):
    udp = UdpHeader(src_port, dst_port, UdpHeader.LENGTH + len(payload))
    total = Ipv4Header.LENGTH + UdpHeader.LENGTH + len(payload)
    ip = Ipv4Header(src=src, dst=dst, protocol=IPPROTO_UDP, total_length=total)
    return ip.pack() + udp.pack(src, dst, payload) + payload


def tcp_packet(src=VIRTUAL, dst=SERVER, src_port=4000, dst_port=80, payload=b"GET"):
    tcp = TcpHeader(src_port, dst_port, seq=99)
    total = Ipv4Header.LENGTH + TcpHeader.LENGTH + len(payload)
    ip = Ipv4Header(src=src, dst=dst, protocol=IPPROTO_TCP, total_length=total)
    return ip.pack() + tcp.pack(src, dst, payload) + payload


class TestNatTable:
    def test_binding_is_stable(self):
        table = NatTable(VIRTUAL)
        five_tuple = parse_five_tuple(udp_packet())[0]
        first = table.bind(five_tuple, "wifi", WIFI)
        second = table.bind(five_tuple, "wifi", WIFI)
        assert first is second

    def test_distinct_interfaces_distinct_ports(self):
        table = NatTable(VIRTUAL)
        five_tuple = parse_five_tuple(udp_packet())[0]
        lte = Ipv4Address.parse("100.64.0.1")
        wifi_binding = table.bind(five_tuple, "wifi", WIFI)
        lte_binding = table.bind(five_tuple, "lte", lte)
        assert wifi_binding.translated.src_port != lte_binding.translated.src_port
        assert wifi_binding.translated.src == WIFI
        assert lte_binding.translated.src == lte

    def test_return_lookup(self):
        table = NatTable(VIRTUAL)
        five_tuple = parse_five_tuple(udp_packet())[0]
        binding = table.bind(five_tuple, "wifi", WIFI)
        inbound = binding.translated.reversed()
        assert table.lookup_return(inbound) is binding

    def test_unknown_return_is_none(self):
        table = NatTable(VIRTUAL)
        five_tuple = parse_five_tuple(udp_packet())[0]
        assert table.lookup_return(five_tuple.reversed()) is None

    def test_len(self):
        table = NatTable(VIRTUAL)
        table.bind(parse_five_tuple(udp_packet())[0], "wifi", WIFI)
        assert len(table) == 1


class TestOutboundRewrite:
    @pytest.mark.parametrize("builder", [udp_packet, tcp_packet])
    def test_rewrites_source_and_checksums(self, builder):
        table = NatTable(VIRTUAL)
        original = builder()
        five_tuple = parse_five_tuple(original)[0]
        binding = table.bind(five_tuple, "wifi", WIFI)
        rewritten = rewrite_outbound(original, binding)
        new_tuple, new_ip = parse_five_tuple(rewritten)
        assert new_tuple.src == WIFI
        assert new_tuple.src_port == binding.translated.src_port
        assert new_tuple.dst == SERVER
        # Ipv4Header.unpack inside parse validated the IP checksum;
        # verify the transport checksum explicitly.
        payload = rewritten[Ipv4Header.LENGTH:]
        if new_ip.protocol == IPPROTO_UDP:
            transport = UdpHeader.unpack(payload)
            body = payload[UdpHeader.LENGTH:]
        else:
            transport = TcpHeader.unpack(payload)
            body = payload[TcpHeader.LENGTH:]
        assert transport.verify(new_ip.src, new_ip.dst, body)

    def test_payload_preserved(self):
        table = NatTable(VIRTUAL)
        original = udp_packet(payload=b"precious data")
        binding = table.bind(parse_five_tuple(original)[0], "wifi", WIFI)
        rewritten = rewrite_outbound(original, binding)
        assert rewritten.endswith(b"precious data")

    def test_tcp_fields_preserved(self):
        table = NatTable(VIRTUAL)
        original = tcp_packet()
        binding = table.bind(parse_five_tuple(original)[0], "wifi", WIFI)
        rewritten = rewrite_outbound(original, binding)
        tcp = TcpHeader.unpack(rewritten[Ipv4Header.LENGTH:])
        assert tcp.seq == 99

    def test_mismatched_binding_rejected(self):
        table = NatTable(VIRTUAL)
        binding = table.bind(parse_five_tuple(udp_packet())[0], "wifi", WIFI)
        other = udp_packet(src_port=5555)
        with pytest.raises(HeaderError):
            rewrite_outbound(other, binding)


class TestInboundRewrite:
    def test_full_roundtrip(self):
        """Outbound rewrite → server reply → inbound rewrite."""
        table = NatTable(VIRTUAL)
        outbound = udp_packet(payload=b"ping")
        binding = table.bind(parse_five_tuple(outbound)[0], "wifi", WIFI)
        on_wire = rewrite_outbound(outbound, binding)
        wire_tuple = parse_five_tuple(on_wire)[0]

        # The server replies by swapping the tuple it saw.
        reply = udp_packet(
            src=wire_tuple.dst,
            dst=wire_tuple.src,
            src_port=wire_tuple.dst_port,
            dst_port=wire_tuple.src_port,
            payload=b"pong",
        )
        found = table.lookup_return(parse_five_tuple(reply)[0])
        assert found is binding
        delivered = rewrite_inbound(reply, binding, VIRTUAL)
        delivered_tuple = parse_five_tuple(delivered)[0]
        assert delivered_tuple.dst == VIRTUAL
        assert delivered_tuple.dst_port == 4000  # original app port
        assert delivered.endswith(b"pong")

    def test_wrong_packet_rejected(self):
        table = NatTable(VIRTUAL)
        binding = table.bind(parse_five_tuple(udp_packet())[0], "wifi", WIFI)
        unrelated = udp_packet(src=SERVER, dst=WIFI, src_port=1, dst_port=2)
        with pytest.raises(HeaderError):
            rewrite_inbound(unrelated, binding, VIRTUAL)
