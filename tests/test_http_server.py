"""Unit tests for the simulated origin server."""

import pytest

from repro.httpproxy.http11 import Headers, HttpRequest
from repro.httpproxy.server import HttpOriginServer, synthetic_body


class TestSyntheticBody:
    def test_deterministic(self):
        assert synthetic_body("/x", 1000) == synthetic_body("/x", 1000)

    def test_distinct_urls_distinct_content(self):
        assert synthetic_body("/x", 100) != synthetic_body("/y", 100)

    def test_exact_size(self):
        for size in (0, 1, 31, 32, 33, 1000):
            assert len(synthetic_body("/x", size)) == size

    def test_prefix_stability(self):
        # Smaller size is a prefix of larger (same keystream).
        assert synthetic_body("/x", 100) == synthetic_body("/x", 200)[:100]

    def test_negative_size_rejected(self):
        from repro.errors import HttpError

        with pytest.raises(HttpError):
            synthetic_body("/x", -1)


class TestServer:
    def _server(self):
        server = HttpOriginServer()
        server.put_synthetic("/obj", 1000)
        return server

    def _get(self, target, range_value=None):
        headers = Headers()
        if range_value:
            headers.set("Range", range_value)
        return HttpRequest(method="GET", target=target, headers=headers)

    def test_full_get(self):
        server = self._server()
        response = server.handle(self._get("/obj"))
        assert response.status == 200
        assert len(response.body) == 1000
        assert response.headers.get("accept-ranges") == "bytes"

    def test_range_get(self):
        server = self._server()
        response = server.handle(self._get("/obj", "bytes=100-199"))
        assert response.status == 206
        assert response.body == synthetic_body("/obj", 1000)[100:200]
        assert response.headers.get("content-range") == "bytes 100-199/1000"

    def test_404(self):
        server = self._server()
        assert server.handle(self._get("/missing")).status == 404

    def test_416_unsatisfiable(self):
        server = self._server()
        response = server.handle(self._get("/obj", "bytes=5000-6000"))
        assert response.status == 416
        assert response.headers.get("content-range") == "bytes */1000"

    def test_non_get_rejected(self):
        server = self._server()
        response = server.handle(HttpRequest(method="DELETE", target="/obj"))
        assert response.status == 400

    def test_put_object_explicit(self):
        server = HttpOriginServer()
        server.put_object("/direct", b"abcdef")
        response = server.handle(self._get("/direct", "bytes=2-3"))
        assert response.body == b"cd"

    def test_object_size(self):
        server = self._server()
        assert server.object_size("/obj") == 1000
        assert server.object_size("/missing") is None

    def test_request_counter(self):
        server = self._server()
        server.handle(self._get("/obj"))
        server.handle(self._get("/obj"))
        assert server.requests_served == 2


class TestHeadMethod:
    def _server(self):
        server = HttpOriginServer()
        server.put_synthetic("/obj", 1000)
        return server

    def test_head_reports_length_without_body(self):
        server = self._server()
        response = server.handle(HttpRequest(method="HEAD", target="/obj"))
        assert response.status == 200
        assert response.headers.get("content-length") == "1000"
        assert response.body == b""
        assert response.headers.get("accept-ranges") == "bytes"

    def test_head_missing_object(self):
        server = self._server()
        response = server.handle(HttpRequest(method="HEAD", target="/none"))
        assert response.status == 404

    def test_allow_header_mentions_head(self):
        server = self._server()
        response = server.handle(HttpRequest(method="PUT", target="/obj"))
        assert "HEAD" in response.headers.get("allow", "")
