"""Unit tests for empirical cluster extraction and validation."""

import pytest

from repro.errors import FairnessError
from repro.fairness.clusters import (
    EmpiricalCluster,
    check_maxmin_conditions,
    check_rate_clustering,
    extract_clusters,
)
from repro.prefs.preferences import PreferenceSet


def fig6_service_matrix(window=10.0):
    """A synthetic r_ij matrix matching Figure 6 phase 1."""
    # a: 3 Mb/s on if1; b: 6.67 on if2; c: 3.33 on if2 (bytes = r·t/8).
    return {
        ("a", "if1"): 3e6 * window / 8,
        ("b", "if2"): (20e6 / 3) * window / 8,
        ("c", "if2"): (10e6 / 3) * window / 8,
    }


def fig6_prefs():
    prefs = PreferenceSet(["if1", "if2"])
    prefs.add_flow("a", weight=1.0, interfaces=["if1"])
    prefs.add_flow("b", weight=2.0)
    prefs.add_flow("c", weight=1.0, interfaces=["if2"])
    return prefs


WEIGHTS = {"a": 1.0, "b": 2.0, "c": 1.0}


class TestExtractClusters:
    def test_figure_6_clusters_recovered(self):
        clusters = extract_clusters(fig6_service_matrix(), WEIGHTS, window=10.0)
        assert len(clusters) == 2
        low, high = clusters
        assert low.flows == frozenset({"a"})
        assert low.interfaces == frozenset({"if1"})
        assert low.normalized_rate == pytest.approx(3e6)
        assert high.flows == frozenset({"b", "c"})
        assert high.normalized_rate == pytest.approx(10e6 / 3)

    def test_noise_edges_filtered(self):
        matrix = fig6_service_matrix()
        # 1 % of b's service leaked onto if1 during a transient: the
        # default 5 % threshold must ignore it, keeping clusters apart.
        matrix[("b", "if1")] = 0.01 * matrix[("b", "if2")]
        clusters = extract_clusters(matrix, WEIGHTS, window=10.0)
        assert len(clusters) == 2

    def test_substantial_edge_merges_clusters(self):
        matrix = fig6_service_matrix()
        matrix[("b", "if1")] = 0.5 * matrix[("b", "if2")]
        clusters = extract_clusters(matrix, WEIGHTS, window=10.0)
        assert len(clusters) == 1

    def test_flow_with_no_service_still_reported(self):
        matrix = {("a", "if1"): 1000.0, ("b", "if1"): 0.0}
        clusters = extract_clusters(matrix, {"a": 1.0, "b": 1.0}, window=1.0)
        flows = set().union(*(c.flows for c in clusters))
        assert flows == {"a", "b"}

    def test_invalid_window(self):
        with pytest.raises(FairnessError):
            extract_clusters({}, {}, window=0.0)

    def test_describe(self):
        cluster = EmpiricalCluster(
            flows=frozenset({"a"}),
            interfaces=frozenset({"if1"}),
            normalized_rate=3e6,
        )
        text = cluster.describe(WEIGHTS)
        assert "a" in text and "if1" in text and "3.00" in text


class TestCheckRateClustering:
    def test_valid_clustering_passes(self):
        clusters = extract_clusters(fig6_service_matrix(), WEIGHTS, window=10.0)
        assert check_rate_clustering(clusters, fig6_prefs()) == []

    def test_violation_detected(self):
        # Flow c sits at a lower rate than a cluster it could reach.
        clusters = [
            EmpiricalCluster(
                flows=frozenset({"c"}),
                interfaces=frozenset({"if2"}),
                normalized_rate=1e6,
            ),
            EmpiricalCluster(
                flows=frozenset({"b"}),
                interfaces=frozenset({"if1"}),
                normalized_rate=5e6,
            ),
        ]
        prefs = PreferenceSet(["if1", "if2"])
        prefs.add_flow("b", weight=2.0)
        prefs.add_flow("c", weight=1.0)  # willing to use if1 too!
        violations = check_rate_clustering(clusters, prefs)
        assert violations
        assert any("'c'" in v for v in violations)

    def test_overlapping_clusters_detected(self):
        clusters = [
            EmpiricalCluster(frozenset({"a"}), frozenset({"if1"}), 1e6),
            EmpiricalCluster(frozenset({"a"}), frozenset({"if2"}), 2e6),
        ]
        prefs = PreferenceSet(["if1", "if2"])
        prefs.add_flow("a")
        violations = check_rate_clustering(clusters, prefs)
        assert any("two clusters" in v for v in violations)


class TestCheckMaxminConditions:
    def test_fair_matrix_passes(self):
        violations = check_maxmin_conditions(
            fig6_service_matrix(), WEIGHTS, fig6_prefs(), window=10.0
        )
        assert violations == []

    def test_condition1_violation(self):
        # Two flows active on if2 at different normalized rates.
        matrix = fig6_service_matrix()
        matrix[("c", "if2")] *= 0.5
        violations = check_maxmin_conditions(
            matrix, WEIGHTS, fig6_prefs(), window=10.0
        )
        assert any("active flows" in v for v in violations)

    def test_condition2_violation(self):
        # Flow b willing to use if1 but at a *lower* rate than a.
        matrix = {
            ("a", "if1"): 3e6 * 10 / 8,
            ("b", "if2"): 1e6 * 10 / 8,  # normalized 0.5 < a's 3.0
            ("c", "if2"): 1e6 * 10 / 8,
        }
        violations = check_maxmin_conditions(
            matrix, WEIGHTS, fig6_prefs(), window=10.0
        )
        assert any("shuns" in v for v in violations)

    def test_invalid_window(self):
        with pytest.raises(FairnessError):
            check_maxmin_conditions({}, {}, fig6_prefs(), window=-1.0)
