"""Shared test helpers (imported as ``from tests.helpers import ...``)."""

from __future__ import annotations

from repro.net.flow import Flow
from repro.net.packet import Packet


def make_flow(
    flow_id: str = "f",
    weight: float = 1.0,
    interfaces=None,
    backlog_packets: int = 0,
    packet_size: int = 1500,
) -> Flow:
    """A flow, optionally pre-backlogged with fixed-size packets."""
    flow = Flow(flow_id, weight=weight, allowed_interfaces=interfaces)
    for _ in range(backlog_packets):
        flow.offer(Packet(flow_id=flow_id, size_bytes=packet_size))
    return flow


def drain(scheduler, count: int):
    """Pull up to *count* packets from a single-interface scheduler."""
    packets = []
    for _ in range(count):
        packet = scheduler.next_packet()
        if packet is None:
            break
        packets.append(packet)
    return packets


def service_share(packets, flow_id: str) -> float:
    """Fraction of drained bytes belonging to *flow_id*."""
    total = sum(p.size_bytes for p in packets)
    if total == 0:
        return 0.0
    mine = sum(p.size_bytes for p in packets if p.flow_id == flow_id)
    return mine / total
