"""Unit tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue


class TestEventOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(3.0, fired.append, ("c",))
        queue.push(1.0, fired.append, ("a",))
        queue.push(2.0, fired.append, ("b",))
        while queue:
            queue.pop().fire()
        assert fired == ["a", "b", "c"]

    def test_fifo_for_equal_times(self):
        queue = EventQueue()
        fired = []
        for name in "abcde":
            queue.push(1.0, fired.append, (name,))
        while queue:
            queue.pop().fire()
        assert fired == list("abcde")

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        fired = []
        queue.push(1.0, fired.append, ("low",), priority=5)
        queue.push(1.0, fired.append, ("high",), priority=-5)
        assert queue.pop().fire() is None  # fires "high"
        assert fired == ["high"]

    def test_negative_and_fractional_times(self):
        queue = EventQueue()
        queue.push(0.5, lambda: None)
        queue.push(0.25, lambda: None)
        assert queue.peek_time() == 0.25


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        queue = EventQueue()
        fired = []
        victim = queue.push(1.0, fired.append, ("victim",))
        queue.push(2.0, fired.append, ("survivor",))
        victim.cancel()
        queue.pop().fire()
        assert fired == ["survivor"]

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        victim = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        victim.cancel()
        assert queue.peek_time() == 5.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_pop_all_cancelled_raises(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None).cancel()
        with pytest.raises(SimulationError):
            queue.pop()


class TestQueueBasics:
    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.push(1.0, lambda: None)
        assert queue
        assert len(queue) == 1

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert not queue

    def test_event_callback_args(self):
        queue = EventQueue()
        result = []
        queue.push(0.0, lambda a, b: result.append(a + b), (2, 3))
        queue.pop().fire()
        assert result == [5]


class TestPopReady:
    def test_fuses_peek_and_pop(self):
        queue = EventQueue()
        queue.push(2.0, lambda: None)
        queue.push(1.0, lambda: None)
        assert queue.pop_ready().time == 1.0
        assert queue.pop_ready(until=1.5) is None  # next event is later
        assert len(queue) == 1  # the too-late event stays queued
        assert queue.pop_ready(until=2.0).time == 2.0
        assert queue.pop_ready() is None  # empty

    def test_skips_cancelled_heads(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None).cancel()
        queue.push(2.0, lambda: None)
        assert queue.pop_ready().time == 2.0


class TestCompaction:
    def test_queue_cancel_compacts_when_mostly_dead(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(200)]
        for event in events[:150]:
            queue.cancel(event)
        # Once the queue-cancelled entries outnumbered the live ones
        # (and passed the minimum threshold) the heap was swept; the
        # cancellations after that sweep sit below the threshold again.
        assert len(queue) < 150
        assert [queue.pop().time for _ in range(3)] == [150.0, 151.0, 152.0]

    def test_direct_event_cancel_does_not_compact(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(200)]
        for event in events[:150]:
            event.cancel()  # bypasses the queue's bookkeeping
        assert len(queue) == 200  # still lazily discarded on pop
        assert queue.pop().time == 150.0

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.cancel(event)
        queue.cancel(event)  # must not double-count
        assert queue._cancelled_count == 1

    def test_compact_returns_removed_count(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.compact() == 1
        assert len(queue) == 1
