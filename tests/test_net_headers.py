"""Unit + property tests for wire-format headers and checksums."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import HeaderError
from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.headers import (
    ETHERTYPE_IPV4,
    IPPROTO_TCP,
    IPPROTO_UDP,
    EthernetHeader,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
    internet_checksum,
)

SRC = Ipv4Address.parse("10.0.0.1")
DST = Ipv4Address.parse("93.184.216.34")


class TestInternetChecksum:
    def test_rfc1071_example(self):
        # The classic worked example from RFC 1071 §3.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_zero_data(self):
        assert internet_checksum(b"\x00\x00") == 0xFFFF

    def test_odd_length_padding(self):
        # Odd-length input is padded with a zero byte on the right.
        assert internet_checksum(b"\x12") == internet_checksum(b"\x12\x00")

    def test_checksum_of_checksummed_data_is_zero(self):
        data = b"hello world!"
        checksum = internet_checksum(data)
        combined = data + checksum.to_bytes(2, "big")
        assert internet_checksum(combined) == 0

    @given(st.binary(min_size=0, max_size=64))
    def test_verification_property(self, data):
        checksum = internet_checksum(data)
        padded = data if len(data) % 2 == 0 else data + b"\x00"
        assert internet_checksum(padded + checksum.to_bytes(2, "big")) == 0


class TestEthernetHeader:
    def test_roundtrip(self):
        header = EthernetHeader(
            dst=MacAddress.parse("aa:bb:cc:dd:ee:ff"),
            src=MacAddress.parse("02:00:00:00:00:01"),
        )
        assert EthernetHeader.unpack(header.pack()) == header

    def test_length(self):
        header = EthernetHeader(MacAddress(0), MacAddress(1))
        assert len(header.pack()) == EthernetHeader.LENGTH == 14

    def test_default_ethertype(self):
        header = EthernetHeader(MacAddress(0), MacAddress(1))
        assert header.ethertype == ETHERTYPE_IPV4

    def test_truncated_rejected(self):
        with pytest.raises(HeaderError):
            EthernetHeader.unpack(b"\x00" * 13)


class TestIpv4Header:
    def _header(self, **overrides):
        fields = dict(
            src=SRC, dst=DST, protocol=IPPROTO_TCP, total_length=40, ttl=64
        )
        fields.update(overrides)
        return Ipv4Header(**fields)

    def test_roundtrip(self):
        header = self._header(identification=0x1234)
        parsed = Ipv4Header.unpack(header.pack())
        assert parsed.src == SRC
        assert parsed.dst == DST
        assert parsed.protocol == IPPROTO_TCP
        assert parsed.total_length == 40
        assert parsed.identification == 0x1234

    def test_packed_checksum_validates(self):
        packed = self._header().pack()
        assert internet_checksum(packed) == 0

    def test_corrupted_checksum_rejected(self):
        packed = bytearray(self._header().pack())
        packed[12] ^= 0xFF  # flip a source-address byte
        with pytest.raises(HeaderError, match="checksum"):
            Ipv4Header.unpack(bytes(packed))

    def test_non_ipv4_rejected(self):
        packed = bytearray(self._header().pack())
        packed[0] = (6 << 4) | 5  # version 6
        with pytest.raises(HeaderError, match="version"):
            Ipv4Header.unpack(bytes(packed))

    def test_options_rejected(self):
        packed = bytearray(self._header().pack())
        packed[0] = (4 << 4) | 6  # ihl = 6
        with pytest.raises(HeaderError, match="options"):
            Ipv4Header.unpack(bytes(packed))

    def test_truncated_rejected(self):
        with pytest.raises(HeaderError):
            Ipv4Header.unpack(b"\x45\x00")

    def test_total_length_bounds(self):
        with pytest.raises(HeaderError):
            self._header(total_length=1 << 16).pack()

    def test_with_addresses_rewrites_and_revalidates(self):
        new_src = Ipv4Address.parse("192.168.1.99")
        rewritten = self._header().with_addresses(src=new_src)
        parsed = Ipv4Header.unpack(rewritten.pack())
        assert parsed.src == new_src
        assert parsed.dst == DST

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=20, max_value=65535),
        st.integers(min_value=0, max_value=65535),
    )
    def test_roundtrip_property(self, src, dst, total_length, identification):
        header = Ipv4Header(
            src=Ipv4Address(src),
            dst=Ipv4Address(dst),
            protocol=IPPROTO_UDP,
            total_length=total_length,
            identification=identification,
        )
        parsed = Ipv4Header.unpack(header.pack())
        assert (parsed.src, parsed.dst, parsed.total_length) == (
            header.src,
            header.dst,
            header.total_length,
        )


class TestUdpHeader:
    def test_roundtrip(self):
        payload = b"data"
        header = UdpHeader(5353, 53, UdpHeader.LENGTH + len(payload))
        packed = header.pack(SRC, DST, payload)
        parsed = UdpHeader.unpack(packed)
        assert (parsed.src_port, parsed.dst_port) == (5353, 53)

    def test_checksum_verifies(self):
        payload = b"payload bytes"
        header = UdpHeader(1000, 2000, UdpHeader.LENGTH + len(payload))
        parsed = UdpHeader.unpack(header.pack(SRC, DST, payload))
        assert parsed.verify(SRC, DST, payload)

    def test_checksum_detects_payload_corruption(self):
        payload = b"payload bytes"
        header = UdpHeader(1000, 2000, UdpHeader.LENGTH + len(payload))
        parsed = UdpHeader.unpack(header.pack(SRC, DST, payload))
        assert not parsed.verify(SRC, DST, b"Payload bytes")

    def test_checksum_detects_address_change(self):
        payload = b"x"
        header = UdpHeader(1, 2, UdpHeader.LENGTH + 1)
        parsed = UdpHeader.unpack(header.pack(SRC, DST, payload))
        other = Ipv4Address.parse("1.2.3.4")
        assert not parsed.verify(other, DST, payload)

    def test_truncated_rejected(self):
        with pytest.raises(HeaderError):
            UdpHeader.unpack(b"\x00" * 7)


class TestTcpHeader:
    def test_roundtrip(self):
        header = TcpHeader(80, 54321, seq=1000, ack=2000, flags=TcpHeader.FLAG_ACK)
        packed = header.pack(SRC, DST, b"body")
        parsed = TcpHeader.unpack(packed)
        assert (parsed.src_port, parsed.dst_port) == (80, 54321)
        assert parsed.seq == 1000
        assert parsed.ack == 2000
        assert parsed.flags == TcpHeader.FLAG_ACK

    def test_checksum_verifies(self):
        header = TcpHeader(80, 54321, seq=7)
        body = b"GET / HTTP/1.1\r\n"
        parsed = TcpHeader.unpack(header.pack(SRC, DST, body))
        assert parsed.verify(SRC, DST, body)
        assert not parsed.verify(SRC, DST, body + b"x")

    def test_options_rejected(self):
        packed = bytearray(TcpHeader(1, 2).pack(SRC, DST))
        packed[12] = 6 << 4  # data offset 6 words
        with pytest.raises(HeaderError, match="options"):
            TcpHeader.unpack(bytes(packed))

    def test_truncated_rejected(self):
        with pytest.raises(HeaderError):
            TcpHeader.unpack(b"\x00" * 19)

    @given(
        st.integers(min_value=0, max_value=65535),
        st.integers(min_value=0, max_value=65535),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.binary(max_size=64),
    )
    def test_checksum_property(self, sport, dport, seq, body):
        header = TcpHeader(sport, dport, seq=seq)
        parsed = TcpHeader.unpack(header.pack(SRC, DST, body))
        assert parsed.verify(SRC, DST, body)
