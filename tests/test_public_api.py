"""The public API surface: everything in ``__all__`` exists and the
documented quickstart works as written."""

import importlib

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize(
        "module",
        [
            "repro.sim",
            "repro.net",
            "repro.prefs",
            "repro.schedulers",
            "repro.fairness",
            "repro.core",
            "repro.bridge",
            "repro.httpproxy",
            "repro.faults",
            "repro.health",
            "repro.obs",
            "repro.perf",
            "repro.fleet",
            "repro.trace",
            "repro.analysis",
            "repro.experiments",
            "repro.cli",
            "repro.units",
            "repro.errors",
        ],
    )
    def test_submodule_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name} missing"

    def test_error_hierarchy(self):
        assert issubclass(repro.SimulationError, repro.ReproError)
        assert issubclass(repro.PreferenceError, repro.ConfigurationError)
        assert issubclass(repro.ConfigurationError, repro.ReproError)
        assert issubclass(repro.FaultError, repro.ReproError)
        assert issubclass(repro.WatchdogError, repro.ReproError)


class TestDocumentedQuickstart:
    def test_readme_quickstart(self):
        """The snippet in the package docstring, executed verbatim."""
        from repro import FlowSpec, InterfaceSpec, Scenario
        from repro import MiDrrScheduler, run_scenario
        from repro.units import mbps

        scenario = Scenario(
            interfaces=(
                InterfaceSpec("if1", mbps(1)),
                InterfaceSpec("if2", mbps(1)),
            ),
            flows=(
                FlowSpec("a"),
                FlowSpec("b", interfaces=("if2",)),
            ),
            duration=30.0,
        )
        result = run_scenario(scenario, MiDrrScheduler)
        rates = result.rates(5, 30)
        assert rates["a"] == pytest.approx(mbps(1), rel=0.03)
        assert rates["b"] == pytest.approx(mbps(1), rel=0.03)
