"""Unit + property tests for classic single-interface DRR."""

import pytest
from hypothesis import given, settings, strategies as st

from tests.helpers import drain, make_flow, service_share

from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.schedulers.drr import DrrScheduler


class TestBasics:
    def test_empty_returns_none(self):
        scheduler = DrrScheduler()
        scheduler.add_flow(make_flow("a"))
        assert scheduler.next_packet() is None

    def test_single_flow_gets_everything(self):
        scheduler = DrrScheduler()
        scheduler.add_flow(make_flow("a", backlog_packets=5))
        assert len(drain(scheduler, 10)) == 5

    def test_invalid_quantum_rejected(self):
        with pytest.raises(ConfigurationError):
            DrrScheduler(quantum_base=0)

    def test_quantum_scales_with_weight(self):
        scheduler = DrrScheduler(quantum_base=1000)
        flow = make_flow("a", weight=2.5)
        assert scheduler.quantum(flow) == 2500


class TestByteFairness:
    def test_equal_weights_equal_bytes(self):
        scheduler = DrrScheduler()
        scheduler.add_flow(make_flow("a", backlog_packets=200))
        scheduler.add_flow(make_flow("b", backlog_packets=200))
        packets = drain(scheduler, 100)
        assert service_share(packets, "a") == pytest.approx(0.5, abs=0.02)

    def test_mixed_packet_sizes_still_byte_fair(self):
        # The headline DRR property: 300 B packets vs 1500 B packets.
        scheduler = DrrScheduler()
        scheduler.add_flow(make_flow("small", backlog_packets=600, packet_size=300))
        scheduler.add_flow(make_flow("big", backlog_packets=200, packet_size=1500))
        packets = drain(scheduler, 300)
        assert service_share(packets, "small") == pytest.approx(0.5, abs=0.05)

    def test_weighted_shares(self):
        scheduler = DrrScheduler()
        scheduler.add_flow(make_flow("x1", weight=1, backlog_packets=400))
        scheduler.add_flow(make_flow("x2", weight=2, backlog_packets=400))
        packets = drain(scheduler, 300)
        assert service_share(packets, "x2") == pytest.approx(2 / 3, abs=0.03)

    def test_work_conserving_when_one_flow_empties(self):
        scheduler = DrrScheduler()
        scheduler.add_flow(make_flow("a", backlog_packets=2))
        scheduler.add_flow(make_flow("b", backlog_packets=50))
        packets = drain(scheduler, 52)
        assert len(packets) == 52  # nothing wasted


class TestDeficitSemantics:
    def test_deficit_resets_when_flow_empties(self):
        # Paper Algorithm 3.1: BL_i = 0 → DC_i = 0.
        scheduler = DrrScheduler(quantum_base=1500)
        flow = make_flow("a", backlog_packets=1, packet_size=100)
        scheduler.add_flow(flow)
        scheduler.next_packet()
        assert scheduler.deficit("a") == 0.0

    def test_deficit_carries_over_while_backlogged(self):
        scheduler = DrrScheduler(quantum_base=1000)
        # 1500-byte packets, 1000-byte quantum: needs 2 turns per packet.
        flow = make_flow("a", backlog_packets=3, packet_size=1500)
        scheduler.add_flow(flow)
        packet = scheduler.next_packet()
        assert packet is not None
        # After sending one 1500 B packet with two 1000 B grants, the
        # carried deficit is 500.
        assert scheduler.deficit("a") == pytest.approx(500.0)

    def test_deficit_bound_lemma3(self):
        # 0 ≤ DC < MaxSize at the end of any service turn (Lemma 3).
        scheduler = DrrScheduler(quantum_base=1500)
        scheduler.add_flow(make_flow("a", backlog_packets=100, packet_size=700))
        scheduler.add_flow(make_flow("b", backlog_packets=100, packet_size=1500))
        for _ in range(150):
            scheduler.next_packet()
            for flow_id in ("a", "b"):
                assert 0 <= scheduler.deficit(flow_id) < 1500

    def test_quantum_smaller_than_packet_still_progresses(self):
        scheduler = DrrScheduler(quantum_base=100)
        scheduler.add_flow(make_flow("a", backlog_packets=2, packet_size=1500))
        packets = drain(scheduler, 2)
        assert len(packets) == 2

    def test_turn_counting(self):
        scheduler = DrrScheduler()
        scheduler.add_flow(make_flow("a", backlog_packets=10))
        scheduler.add_flow(make_flow("b", backlog_packets=10))
        drain(scheduler, 10)
        # Equal quanta: turns may differ by at most one.
        assert abs(scheduler.turns_taken["a"] - scheduler.turns_taken["b"]) <= 1


class TestDynamicFlows:
    def test_new_arrival_joins_round(self):
        scheduler = DrrScheduler()
        flow_a = make_flow("a", backlog_packets=5)
        flow_b = make_flow("b")
        scheduler.add_flow(flow_a)
        scheduler.add_flow(flow_b)
        drain(scheduler, 2)
        flow_b.offer(Packet(flow_id="b", size_bytes=1500))
        scheduler.notify_backlogged(flow_b)
        flow_ids = {p.flow_id for p in drain(scheduler, 4)}
        assert "b" in flow_ids

    def test_remove_current_flow(self):
        scheduler = DrrScheduler()
        scheduler.add_flow(make_flow("a", backlog_packets=5))
        scheduler.add_flow(make_flow("b", backlog_packets=5))
        first = scheduler.next_packet()
        scheduler.remove_flow(first.flow_id)
        remaining = {p.flow_id for p in drain(scheduler, 20)}
        assert first.flow_id not in remaining

    def test_readding_same_object_is_idempotent(self):
        scheduler = DrrScheduler()
        flow = make_flow("a", backlog_packets=1)
        scheduler.add_flow(flow)
        scheduler.add_flow(flow)
        assert len(drain(scheduler, 5)) == 1


@settings(deadline=None, max_examples=30)
@given(
    weights=st.lists(
        st.floats(min_value=0.5, max_value=4.0), min_size=2, max_size=5
    ),
    packet_size=st.sampled_from([200, 700, 1500]),
)
def test_weighted_fairness_property(weights, packet_size):
    """Long-run DRR shares are proportional to weights (any weights)."""
    scheduler = DrrScheduler()
    flows = []
    for index, weight in enumerate(weights):
        flow = make_flow(
            f"f{index}", weight=weight, backlog_packets=3000, packet_size=packet_size
        )
        scheduler.add_flow(flow)
        flows.append(flow)
    packets = drain(scheduler, 1200)
    total_weight = sum(weights)
    for index, weight in enumerate(weights):
        share = service_share(packets, f"f{index}")
        assert share == pytest.approx(weight / total_weight, rel=0.15)
