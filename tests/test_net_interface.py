"""Unit tests for the simulated interface."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.net.interface import CapacityStep, Interface
from repro.net.packet import Packet
from repro.sim.tracing import TraceLog


def supply_n(packets):
    """A packet source serving from a fixed list."""
    remaining = list(packets)

    def source(interface):
        return remaining.pop(0) if remaining else None

    return source


def pkt(size=1500, flow="f"):
    return Packet(flow_id=flow, size_bytes=size)


class TestTransmission:
    def test_transmits_at_line_rate(self, sim):
        # 1500 B at 12 kb/s = 1 s per packet.
        interface = Interface(sim, "if1", 12_000)
        interface.attach_source(supply_n([pkt(), pkt()]))
        done = []
        interface.on_sent(lambda i, p: done.append(sim.now))
        interface.kick()
        sim.run()
        assert done == pytest.approx([1.0, 2.0])

    def test_busy_flag_during_transmission(self, sim):
        interface = Interface(sim, "if1", 12_000)
        interface.attach_source(supply_n([pkt()]))
        interface.kick()
        assert interface.busy
        sim.run()
        assert not interface.busy

    def test_kick_while_busy_is_noop(self, sim):
        sent = []
        interface = Interface(sim, "if1", 12_000)
        interface.attach_source(supply_n([pkt(), pkt()]))
        interface.on_sent(lambda i, p: sent.append(p))
        interface.kick()
        interface.kick()  # ignored: busy
        sim.run()
        assert len(sent) == 2  # not duplicated

    def test_counters(self, sim):
        interface = Interface(sim, "if1", 12_000)
        interface.attach_source(supply_n([pkt(100), pkt(200)]))
        interface.kick()
        sim.run()
        assert interface.packets_sent == 2
        assert interface.bytes_sent == 300

    def test_kick_without_source_raises(self, sim):
        interface = Interface(sim, "if1", 1e6)
        with pytest.raises(SimulationError):
            interface.kick()

    def test_double_attach_rejected(self, sim):
        interface = Interface(sim, "if1", 1e6)
        interface.attach_source(lambda i: None)
        with pytest.raises(ConfigurationError):
            interface.attach_source(lambda i: None)


class TestCapacity:
    def test_rate_change_affects_next_packet(self, sim):
        interface = Interface(sim, "if1", 12_000)
        interface.attach_source(supply_n([pkt(), pkt()]))
        done = []
        interface.on_sent(lambda i, p: done.append(sim.now))
        sim.schedule(0.5, interface.set_rate, 24_000)  # mid-flight
        interface.kick()
        sim.run()
        # First packet keeps its original 1 s; second takes 0.5 s.
        assert done == pytest.approx([1.0, 1.5])

    def test_capacity_schedule(self, sim):
        interface = Interface(sim, "if1", 12_000)
        interface.apply_capacity_schedule(
            [CapacityStep(1.0, 24_000), CapacityStep(2.0, 6_000)]
        )
        interface.attach_source(supply_n([]))
        sim.run(until=3.0)
        assert interface.rate_bps == 6_000

    @pytest.mark.parametrize("rate", [0, -5])
    def test_invalid_rates_rejected(self, sim, rate):
        with pytest.raises(ConfigurationError):
            Interface(sim, "if1", rate)
        interface = Interface(sim, "if1", 1e6)
        with pytest.raises(ConfigurationError):
            interface.set_rate(rate)

    def test_invalid_step_rejected(self):
        with pytest.raises(ConfigurationError):
            CapacityStep(1.0, 0)

    def test_utilization(self, sim):
        interface = Interface(sim, "if1", 12_000)
        interface.attach_source(supply_n([pkt()]))  # 1 s of work
        interface.kick()
        sim.run(until=2.0)
        assert interface.utilization() == pytest.approx(0.5)


class TestUpDown:
    def test_bring_down_stops_new_work(self, sim):
        interface = Interface(sim, "if1", 12_000)
        interface.attach_source(supply_n([pkt(), pkt()]))
        sent = []
        interface.on_sent(lambda i, p: sent.append(p))
        interface.kick()
        interface.bring_down()
        sim.run()
        assert len(sent) == 1  # in-flight packet completed, no more pulled

    def test_bring_up_resumes(self, sim):
        interface = Interface(sim, "if1", 12_000)
        interface.attach_source(supply_n([pkt()]))
        interface.bring_down()
        interface.kick()  # ignored while down
        interface.bring_up()  # kicks internally
        sim.run()
        assert interface.packets_sent == 1

    def test_trace_records(self, sim):
        trace = TraceLog()
        interface = Interface(sim, "if1", 12_000, trace=trace)
        interface.attach_source(supply_n([pkt()]))
        interface.kick()
        sim.run()
        kinds = [r.kind for r in trace]
        assert kinds == ["tx_start", "tx_done"]


class TestStateListeners:
    def test_listeners_fire_on_transitions(self, sim):
        interface = Interface(sim, "if1", 12_000)
        interface.attach_source(supply_n([]))
        seen = []
        interface.on_state_change(lambda i, up: seen.append((sim.now, up)))
        interface.bring_down()
        interface.bring_up()
        assert seen == [(0.0, False), (0.0, True)]

    def test_transitions_are_idempotent(self, sim):
        interface = Interface(sim, "if1", 12_000)
        interface.attach_source(supply_n([]))
        seen = []
        interface.on_state_change(lambda i, up: seen.append(up))
        interface.bring_down()
        interface.bring_down()  # no duplicate notification
        interface.bring_up()
        interface.bring_up()
        assert seen == [False, True]
        assert interface.down_count == 1

    def test_down_time_accumulates(self, sim):
        interface = Interface(sim, "if1", 12_000)
        interface.attach_source(supply_n([]))
        sim.schedule(1.0, interface.bring_down)
        sim.schedule(3.0, interface.bring_up)
        sim.schedule(5.0, interface.bring_down)
        sim.schedule(6.0, interface.bring_up)
        sim.run(until=10.0)
        assert interface.down_time == pytest.approx(3.0)
        assert interface.down_count == 2


class TestUpDownRobustness:
    def test_in_flight_completion_fires_while_down(self, sim):
        interface = Interface(sim, "if1", 12_000)  # 1 s per 1500 B
        interface.attach_source(supply_n([pkt(), pkt()]))
        done = []
        interface.on_sent(lambda i, p: done.append((sim.now, interface.up)))
        interface.kick()
        sim.schedule(0.5, interface.bring_down)
        sim.run(until=5.0)
        # The in-flight packet completed (and its listener fired) while
        # the interface was already down; no new packet was pulled.
        assert done == [(pytest.approx(1.0), False)]
        assert interface.packets_sent == 1

    def test_no_new_pull_until_bring_up(self, sim):
        interface = Interface(sim, "if1", 12_000)
        interface.attach_source(supply_n([pkt(), pkt()]))
        done = []
        interface.on_sent(lambda i, p: done.append(sim.now))
        interface.kick()
        sim.schedule(0.5, interface.bring_down)
        sim.schedule(4.0, interface.bring_up)
        sim.run()
        assert done == pytest.approx([1.0, 5.0])

    def test_set_rate_while_down_is_deferred(self, sim):
        interface = Interface(sim, "if1", 12_000)
        interface.attach_source(supply_n([pkt()]))
        done = []
        interface.on_sent(lambda i, p: done.append(sim.now))
        interface.bring_down()
        interface.set_rate(24_000)  # legal while down, recorded now
        assert interface.rate_bps == 24_000
        sim.schedule(2.0, interface.bring_up)
        sim.run()
        assert done == pytest.approx([2.5])  # 1500 B at the new 24 kb/s

    def test_capacity_step_lands_mid_outage(self, sim):
        interface = Interface(sim, "if1", 12_000)
        interface.attach_source(supply_n([pkt()]))
        interface.apply_capacity_schedule([CapacityStep(1.0, 24_000)])
        done = []
        interface.on_sent(lambda i, p: done.append(sim.now))
        sim.schedule(0.5, interface.bring_down)
        sim.schedule(2.0, interface.bring_up)
        sim.run()
        assert done == pytest.approx([2.5])


class TestEgressFilters:
    def test_consuming_filter_skips_sent_listeners(self, sim):
        interface = Interface(sim, "if1", 12_000)
        interface.attach_source(supply_n([pkt(), pkt()]))
        delivered = []
        interface.on_sent(lambda i, p: delivered.append(p))
        interface.add_egress_filter(lambda i, p: False)
        interface.kick()
        sim.run()
        assert delivered == []
        assert interface.packets_sent == 2  # transmitted...
        assert interface.packets_consumed == 2  # ...but never delivered

    def test_filters_run_in_order_and_short_circuit(self, sim):
        interface = Interface(sim, "if1", 12_000)
        interface.attach_source(supply_n([pkt()]))
        calls = []
        interface.add_egress_filter(lambda i, p: calls.append("first") or False)
        interface.add_egress_filter(lambda i, p: calls.append("second") or True)
        interface.kick()
        sim.run()
        assert calls == ["first"]  # the second filter never saw the packet

    def test_passing_filters_deliver(self, sim):
        interface = Interface(sim, "if1", 12_000)
        interface.attach_source(supply_n([pkt()]))
        delivered = []
        interface.on_sent(lambda i, p: delivered.append(p))
        interface.add_egress_filter(lambda i, p: True)
        interface.add_egress_filter(lambda i, p: True)
        interface.kick()
        sim.run()
        assert len(delivered) == 1
        assert interface.packets_consumed == 0
