"""Unit tests for FIFO and round-robin schedulers."""

from tests.helpers import drain, make_flow, service_share

from repro.net.packet import Packet
from repro.schedulers.fifo import FifoScheduler, RoundRobinScheduler


class TestFifo:
    def test_serves_in_arrival_order(self):
        scheduler = FifoScheduler()
        flow_a = make_flow("a")
        flow_b = make_flow("b")
        scheduler.add_flow(flow_a)
        scheduler.add_flow(flow_b)
        flow_a.offer(Packet(flow_id="a", size_bytes=100))
        flow_b.offer(Packet(flow_id="b", size_bytes=100))
        flow_a.offer(Packet(flow_id="a", size_bytes=100))
        order = [p.flow_id for p in drain(scheduler, 10)]
        assert order == ["a", "b", "a"]

    def test_preexisting_backlog_served(self):
        scheduler = FifoScheduler()
        flow = make_flow("a", backlog_packets=3)
        scheduler.add_flow(flow)
        assert len(drain(scheduler, 10)) == 3

    def test_empty_returns_none(self):
        scheduler = FifoScheduler()
        scheduler.add_flow(make_flow("a"))
        assert scheduler.next_packet() is None

    def test_removed_flow_not_served(self):
        scheduler = FifoScheduler()
        flow = make_flow("a", backlog_packets=2)
        scheduler.add_flow(flow)
        scheduler.remove_flow("a")
        assert scheduler.next_packet() is None


class TestRoundRobin:
    def test_alternates_between_flows(self):
        scheduler = RoundRobinScheduler()
        scheduler.add_flow(make_flow("a", backlog_packets=3))
        scheduler.add_flow(make_flow("b", backlog_packets=3))
        order = [p.flow_id for p in drain(scheduler, 6)]
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_skips_empty_flows(self):
        scheduler = RoundRobinScheduler()
        scheduler.add_flow(make_flow("a", backlog_packets=0))
        scheduler.add_flow(make_flow("b", backlog_packets=2))
        order = [p.flow_id for p in drain(scheduler, 5)]
        assert order == ["b", "b"]

    def test_packet_fairness_ignores_size(self):
        # RR is packet-fair, not byte-fair: the motivation for DRR.
        scheduler = RoundRobinScheduler()
        scheduler.add_flow(make_flow("big", backlog_packets=10, packet_size=1500))
        scheduler.add_flow(make_flow("small", backlog_packets=10, packet_size=100))
        packets = drain(scheduler, 10)
        assert service_share(packets, "big") > 0.9

    def test_remove_flow_mid_round(self):
        scheduler = RoundRobinScheduler()
        scheduler.add_flow(make_flow("a", backlog_packets=2))
        scheduler.add_flow(make_flow("b", backlog_packets=2))
        scheduler.next_packet()
        scheduler.remove_flow("a")
        order = [p.flow_id for p in drain(scheduler, 5)]
        assert order == ["b", "b"]
