"""Tests for the MobileDevice facade."""

import pytest

from repro.core.device import MobileDevice
from repro.errors import ConfigurationError, PreferenceError
from repro.prefs.policy import AnyInterface, DevicePolicy, Only
from repro.units import mbps


def make_device(sim):
    policy = DevicePolicy(interfaces=["wifi", "lte"])
    policy.app("video", Only("wifi"), weight=2.0)
    policy.app("sync", AnyInterface(), weight=1.0)
    return MobileDevice(
        sim, {"wifi": mbps(8), "lte": mbps(4)}, policy
    )


class TestConstruction:
    def test_wires_interfaces_and_flows(self, sim):
        device = make_device(sim)
        assert {i.interface_id for i in device.interfaces()} == {"wifi", "lte"}
        assert device.app_flow("video").weight == 2.0
        assert device.app_flow("video").willing_to_use("wifi")
        assert not device.app_flow("video").willing_to_use("lte")

    def test_unknown_app_rejected(self, sim):
        device = make_device(sim)
        with pytest.raises(ConfigurationError):
            device.app_flow("ghost")

    def test_policy_interface_mismatch_rejected(self, sim):
        policy = DevicePolicy(interfaces=["wifi", "satellite"])
        policy.app("x", AnyInterface())
        with pytest.raises(ConfigurationError):
            MobileDevice(sim, {"wifi": mbps(1)}, policy)

    def test_no_interfaces_rejected(self, sim):
        policy = DevicePolicy(interfaces=["wifi"])
        policy.app("x", AnyInterface())
        with pytest.raises(ConfigurationError):
            MobileDevice(sim, {}, policy)


class TestAllocation:
    def test_expected_allocation(self, sim):
        device = make_device(sim)
        allocation = device.expected_allocation()
        # video wifi-only (w2), sync anywhere: J={wifi}: 8/2=4;
        # J=all: 12/3=4 → both clusters at level 4.
        assert allocation.rate("video") == pytest.approx(mbps(8))
        assert allocation.rate("sync") == pytest.approx(mbps(4))

    def test_measured_matches_expected(self, sim):
        device = make_device(sim)
        device.saturate("video")
        device.saturate("sync")
        device.start()
        sim.run(until=20.0)
        expected = device.expected_allocation()
        for app_id in ("video", "sync"):
            measured = device.stats.rate_in_window(app_id, 3, 20)
            assert measured == pytest.approx(expected.rate(app_id), rel=0.05)


class TestLiveEdits:
    def test_set_weight_changes_split(self, sim):
        device = make_device(sim)
        device.saturate("video")
        device.saturate("sync")
        device.start()
        sim.schedule(10.0, device.set_weight, "sync", 6.0)
        sim.run(until=25.0)
        early_sync = device.stats.rate_in_window("sync", 3, 10)
        late_sync = device.stats.rate_in_window("sync", 12, 25)
        assert late_sync > early_sync * 1.2
        assert device.prefs.weight("sync") == 6.0

    def test_set_rule_restricts_interfaces(self, sim):
        device = make_device(sim)
        device.saturate("sync")
        device.start()
        sim.schedule(10.0, device.set_rule, "sync", Only("lte"))
        sim.run(until=20.0)
        late_wifi = device.stats.service_in_window(
            "sync", 11.0, 20.0, interface_id="wifi"
        )
        assert late_wifi <= 1500  # one in-flight packet at most
        assert device.stats.rate_in_window("sync", 12, 20) == pytest.approx(
            mbps(4), rel=0.05
        )

    def test_set_rule_back_to_any(self, sim):
        device = make_device(sim)
        device.saturate("sync")
        device.start()
        sim.schedule(5.0, device.set_rule, "sync", Only("lte"))
        sim.schedule(10.0, device.set_rule, "sync", AnyInterface())
        sim.run(until=20.0)
        # After widening, both interfaces serve again: full 12 Mb/s.
        assert device.stats.rate_in_window("sync", 12, 20) == pytest.approx(
            mbps(12), rel=0.05
        )

    def test_invalid_weight_rejected(self, sim):
        device = make_device(sim)
        with pytest.raises(PreferenceError):
            device.set_weight("sync", 0.0)
