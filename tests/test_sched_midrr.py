"""Unit tests for miDRR — flag semantics, skipping, work conservation."""

import pytest

from tests.helpers import make_flow

from repro.errors import ConfigurationError, SchedulingError
from repro.net.packet import Packet
from repro.schedulers.midrr import MiDrrScheduler


def build(num_interfaces=2, **kwargs):
    scheduler = MiDrrScheduler(**kwargs)
    for j in range(1, num_interfaces + 1):
        scheduler.register_interface(f"if{j}")
    return scheduler


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"quantum_base": 0},
            {"flag_on": "sometimes"},
            {"deficit_scope": "global"},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            MiDrrScheduler(**kwargs)

    def test_duplicate_interface_rejected(self):
        scheduler = build()
        with pytest.raises(SchedulingError):
            scheduler.register_interface("if1")

    def test_unknown_interface_select_raises(self):
        with pytest.raises(SchedulingError):
            build().select("if9")

    def test_flow_unwilling_everywhere_rejected(self):
        scheduler = build()
        with pytest.raises(SchedulingError):
            scheduler.add_flow(make_flow("x", interfaces=["if9"]))


class TestInterfacePreferences:
    def test_never_serves_unwilling_interface(self):
        scheduler = build()
        scheduler.add_flow(make_flow("pinned", interfaces=["if2"], backlog_packets=10))
        assert scheduler.select("if1") is None
        assert scheduler.select("if2") is not None

    def test_pi_respected_under_load(self):
        scheduler = build()
        scheduler.add_flow(make_flow("a", interfaces=["if1"], backlog_packets=50))
        scheduler.add_flow(make_flow("b", interfaces=["if2"], backlog_packets=50))
        for _ in range(20):
            packet = scheduler.select("if1")
            assert packet is None or packet.flow_id == "a"
            packet = scheduler.select("if2")
            assert packet is None or packet.flow_id == "b"


class TestServiceFlags:
    def test_serving_sets_flags_elsewhere(self):
        scheduler = build(3)
        scheduler.add_flow(make_flow("a", backlog_packets=10))
        packet = scheduler.select("if1")
        assert packet.flow_id == "a"
        assert scheduler.service_flag("a", "if2")
        assert scheduler.service_flag("a", "if3")
        assert not scheduler.service_flag("a", "if1")

    def test_flag_not_set_for_unwilling_interface(self):
        scheduler = build(3)
        scheduler.add_flow(
            make_flow("a", interfaces=["if1", "if2"], backlog_packets=10)
        )
        scheduler.select("if1")
        assert scheduler.service_flag("a", "if2")
        assert not scheduler.service_flag("a", "if3")

    def test_flagged_flow_skipped_and_flag_cleared(self):
        scheduler = build()
        scheduler.add_flow(make_flow("a", backlog_packets=10))
        scheduler.add_flow(make_flow("b", interfaces=["if2"], backlog_packets=10))
        scheduler.select("if1")  # serves a, sets SF[a, if2]
        packet = scheduler.select("if2")
        assert packet.flow_id == "b"  # a skipped
        assert not scheduler.service_flag("a", "if2")  # cleared by rule 2

    def test_skip_does_not_grant_quantum(self):
        scheduler = build()
        scheduler.add_flow(make_flow("a", backlog_packets=10))
        scheduler.add_flow(make_flow("b", interfaces=["if2"], backlog_packets=10))
        scheduler.select("if1")  # a flagged at if2
        scheduler.select("if2")  # serves b, skips a without quantum
        assert scheduler.deficit("a") == 0.0

    def test_new_flow_flags_start_clear(self):
        scheduler = build()
        scheduler.add_flow(make_flow("a", backlog_packets=1))
        assert not scheduler.service_flag("a", "if1")
        assert not scheduler.service_flag("a", "if2")

    def test_work_conserving_when_all_flagged(self):
        # Even if every flow is flagged, an interface must still serve
        # someone (the skip loop clears flags as it passes).
        scheduler = build()
        scheduler.add_flow(make_flow("a", backlog_packets=10))
        scheduler.add_flow(make_flow("b", backlog_packets=10))
        scheduler.select("if1")
        scheduler.select("if1")
        # Both flows are flagged at if2 now; it must still get a packet.
        assert scheduler.select("if2") is not None


class TestFigure1c:
    def test_converges_to_maxmin_split(self):
        """The worked example from §3.1: if1 serves a, if2 serves b."""
        scheduler = build()
        scheduler.add_flow(make_flow("a", backlog_packets=2000))
        scheduler.add_flow(make_flow("b", interfaces=["if2"], backlog_packets=2000))
        bytes_by_pair = {}
        # Interleave equal-rate interfaces (same capacity in the paper).
        for _ in range(200):
            for interface_id in ("if1", "if2"):
                packet = scheduler.select(interface_id)
                if packet is not None:
                    key = (packet.flow_id, interface_id)
                    bytes_by_pair[key] = bytes_by_pair.get(key, 0) + packet.size_bytes
        a_total = bytes_by_pair.get(("a", "if1"), 0) + bytes_by_pair.get(("a", "if2"), 0)
        b_total = bytes_by_pair.get(("b", "if2"), 0)
        assert a_total == pytest.approx(b_total, rel=0.05)
        # In steady state a is served (almost) entirely by if1.
        assert bytes_by_pair.get(("a", "if2"), 0) < 0.1 * a_total


class TestDeficitScopes:
    def test_flow_interface_scope_keeps_separate_counters(self):
        scheduler = build(deficit_scope="flow_interface")
        scheduler.add_flow(make_flow("a", backlog_packets=10, packet_size=1000))
        scheduler.select("if1")
        assert scheduler.deficit("a", "if1") >= 0
        assert scheduler.deficit("a", "if2") == 0.0

    def test_flow_interface_scope_sums_without_interface_arg(self):
        scheduler = build(deficit_scope="flow_interface")
        scheduler.add_flow(make_flow("a", backlog_packets=10, packet_size=1000))
        scheduler.select("if1")  # grants 1500, spends 1000 → 500 left
        assert scheduler.deficit("a") == pytest.approx(
            scheduler.deficit("a", "if1") + scheduler.deficit("a", "if2")
        )

    def test_shared_scope_available_as_option(self):
        scheduler = build(deficit_scope="flow")
        scheduler.add_flow(make_flow("a", backlog_packets=10, packet_size=1000))
        scheduler.select("if1")
        assert scheduler.deficit("a") == pytest.approx(500.0)

    def test_flag_on_packet_mode(self):
        scheduler = build(flag_on="packet")
        scheduler.add_flow(make_flow("a", backlog_packets=10))
        scheduler.select("if1")
        assert scheduler.service_flag("a", "if2")


class TestDynamics:
    def test_flow_removal_clears_all_state(self):
        scheduler = build()
        scheduler.add_flow(make_flow("a", backlog_packets=10))
        scheduler.select("if1")
        scheduler.remove_flow("a")
        assert scheduler.select("if1") is None
        assert not scheduler.service_flag("a", "if2")
        assert scheduler.deficit("a") == 0.0

    def test_drained_flow_deactivated_with_zero_deficit(self):
        scheduler = build()
        flow = make_flow("a", backlog_packets=1, packet_size=100)
        scheduler.add_flow(flow)
        scheduler.select("if1")
        assert scheduler.deficit("a") == 0.0  # reset on empty (Alg 3.1)
        assert scheduler.select("if1") is None

    def test_rebacklogged_flow_rejoins(self):
        scheduler = build()
        flow = make_flow("a", backlog_packets=1)
        scheduler.add_flow(flow)
        scheduler.select("if1")
        flow.offer(Packet(flow_id="a", size_bytes=1500))
        scheduler.notify_backlogged(flow)
        assert scheduler.select("if1") is not None

    def test_interface_added_after_flows(self):
        scheduler = MiDrrScheduler()
        scheduler.register_interface("if1")
        scheduler.add_flow(make_flow("a", backlog_packets=10))
        scheduler.register_interface("if2")
        assert scheduler.select("if2") is not None

    def test_decision_telemetry_recorded(self):
        scheduler = build()
        scheduler.add_flow(make_flow("a", backlog_packets=5))
        scheduler.select("if1")
        scheduler.select("if2")
        assert len(scheduler.decision_flows_examined) == 2
        assert all(n >= 0 for n in scheduler.decision_flows_examined)

    def test_weighted_quanta(self):
        scheduler = build(quantum_base=1000)
        assert scheduler.quantum(make_flow("w", weight=2.0)) == 2000


class TestCounterExclusion:
    def test_counter_accumulates_and_saturates(self):
        from repro.schedulers.midrr import COUNTER_CAP

        scheduler = build(3, exclusion="counter")
        flow = make_flow("a", backlog_packets=COUNTER_CAP * 4)
        scheduler.add_flow(flow)
        for _ in range(COUNTER_CAP + 10):
            scheduler.select("if1")
        # Each turn at if1 earned one skip at if2/if3, capped.
        assert scheduler.skip_credit("a", "if2") == COUNTER_CAP
        assert scheduler.skip_credit("a", "if3") == COUNTER_CAP

    def test_counter_consumed_one_per_consideration(self):
        scheduler = build(2, exclusion="counter")
        scheduler.add_flow(make_flow("a", backlog_packets=20))
        scheduler.add_flow(make_flow("b", interfaces=["if2"], backlog_packets=20))
        scheduler.select("if1")  # a served; a earns 1 skip at if2
        before = scheduler.skip_credit("a", "if2")
        scheduler.select("if2")  # serves b, decrementing a's credit
        after = scheduler.skip_credit("a", "if2")
        assert before == 1
        assert after == 0

    def test_counter_work_conserving_when_saturated(self):
        from repro.schedulers.midrr import COUNTER_CAP

        scheduler = build(2, exclusion="counter")
        flow = make_flow("a", backlog_packets=COUNTER_CAP * 4)
        scheduler.add_flow(flow)
        for _ in range(COUNTER_CAP + 5):
            scheduler.select("if1")
        # if2's only candidate has a saturated counter, yet if2 must
        # still serve it (drain the credits, then transmit).
        assert scheduler.select("if2") is not None

    def test_exclusion_property_exposed(self):
        assert build(exclusion="counter").exclusion == "counter"
        assert build().exclusion == "flag"


class TestFlagOnPacketMode:
    def test_packet_mode_converges_on_fig1c(self):
        scheduler = build(flag_on="packet")
        scheduler.add_flow(make_flow("a", backlog_packets=2000))
        scheduler.add_flow(make_flow("b", interfaces=["if2"], backlog_packets=2000))
        bytes_by_flow = {"a": 0, "b": 0}
        for _ in range(300):
            for interface_id in ("if1", "if2"):
                packet = scheduler.select(interface_id)
                if packet is not None:
                    bytes_by_flow[packet.flow_id] += packet.size_bytes
        ratio = bytes_by_flow["a"] / bytes_by_flow["b"]
        assert 0.9 < ratio < 1.1
