"""Unit tests for the WFQ (self-clocked) scheduler."""

import pytest

from tests.helpers import drain, make_flow, service_share

from repro.net.packet import Packet
from repro.schedulers.wfq import WfqScheduler


class TestBasics:
    def test_empty_returns_none(self):
        scheduler = WfqScheduler()
        scheduler.add_flow(make_flow("a"))
        assert scheduler.next_packet() is None

    def test_virtual_time_monotone(self):
        scheduler = WfqScheduler()
        scheduler.add_flow(make_flow("a", backlog_packets=10))
        scheduler.add_flow(make_flow("b", backlog_packets=10))
        last = 0.0
        for _ in range(20):
            if scheduler.next_packet() is None:
                break
            assert scheduler.virtual_time >= last
            last = scheduler.virtual_time

    def test_earliest_finish_tag_wins(self):
        scheduler = WfqScheduler()
        small = make_flow("small", backlog_packets=1, packet_size=100)
        big = make_flow("big", backlog_packets=1, packet_size=1500)
        scheduler.add_flow(big)
        scheduler.add_flow(small)
        # Both arrive "at once": the smaller packet finishes first.
        assert scheduler.next_packet().flow_id == "small"


class TestFairness:
    def test_equal_weights_equal_bytes(self):
        scheduler = WfqScheduler()
        scheduler.add_flow(make_flow("a", backlog_packets=400))
        scheduler.add_flow(make_flow("b", backlog_packets=400))
        packets = drain(scheduler, 200)
        assert service_share(packets, "a") == pytest.approx(0.5, abs=0.02)

    def test_weighted_shares(self):
        scheduler = WfqScheduler()
        scheduler.add_flow(make_flow("x1", weight=1, backlog_packets=600))
        scheduler.add_flow(make_flow("x3", weight=3, backlog_packets=600))
        packets = drain(scheduler, 400)
        assert service_share(packets, "x3") == pytest.approx(0.75, abs=0.03)

    def test_byte_fair_with_mixed_sizes(self):
        scheduler = WfqScheduler()
        scheduler.add_flow(make_flow("small", backlog_packets=1000, packet_size=300))
        scheduler.add_flow(make_flow("big", backlog_packets=200, packet_size=1500))
        packets = drain(scheduler, 400)
        assert service_share(packets, "small") == pytest.approx(0.5, abs=0.05)

    def test_ties_alternate_between_flows(self):
        # Regression: ties must not systematically favour one flow, or
        # the Figure 1(b) per-interface baseline breaks.
        scheduler = WfqScheduler()
        scheduler.add_flow(make_flow("a", backlog_packets=10))
        scheduler.add_flow(make_flow("b", backlog_packets=10))
        first_two = [scheduler.next_packet().flow_id for _ in range(2)]
        assert set(first_two) == {"a", "b"}

    def test_work_conserving(self):
        scheduler = WfqScheduler()
        scheduler.add_flow(make_flow("a", backlog_packets=1))
        scheduler.add_flow(make_flow("b", backlog_packets=9))
        assert len(drain(scheduler, 20)) == 10


class TestDynamics:
    def test_arriving_flow_not_starved(self):
        scheduler = WfqScheduler()
        old = make_flow("old", backlog_packets=100)
        scheduler.add_flow(old)
        drain(scheduler, 50)  # virtual time has advanced well past 0
        late = make_flow("late")
        scheduler.add_flow(late)
        late.offer(Packet(flow_id="late", size_bytes=1500))
        scheduler.notify_backlogged(late)
        # The late flow's start tag snaps to current V: it must be
        # served within a couple of packets, not after old's backlog.
        flow_ids = [p.flow_id for p in drain(scheduler, 3)]
        assert "late" in flow_ids

    def test_remove_flow_clears_state(self):
        scheduler = WfqScheduler()
        flow = make_flow("a", backlog_packets=5)
        scheduler.add_flow(flow)
        scheduler.next_packet()
        scheduler.remove_flow("a")
        assert scheduler.next_packet() is None

    def test_idle_selects_do_not_perturb_tie_breaks(self):
        """Regression (ISSUE 9): an empty select used to advance the
        tie-rotation, so how often an idle interface polled changed
        which flow won the next tie. Decisions must be byte-identical
        with and without interleaved idle selects."""

        def build():
            scheduler = WfqScheduler()
            for flow_id in ("a", "b", "c"):
                scheduler.add_flow(make_flow(flow_id))
            return scheduler

        def backlog(scheduler, packets_per_flow):
            for flow_id in ("a", "b", "c"):
                flow = scheduler._flows[flow_id]
                for _ in range(packets_per_flow):
                    flow.offer(Packet(flow_id=flow_id, size_bytes=1500))
                scheduler.notify_backlogged(flow)

        quiet = build()
        noisy = build()
        for _ in range(5):  # idle polls while nothing is backlogged
            assert noisy.next_packet() is None
        decisions = {"quiet": [], "noisy": []}
        for _round in range(4):
            backlog(quiet, 1)
            backlog(noisy, 1)
            for _ in range(3):
                decisions["quiet"].append(quiet.next_packet().flow_id)
                decisions["noisy"].append(noisy.next_packet().flow_id)
            # More idle polls between service rounds.
            assert noisy.next_packet() is None
            assert noisy.next_packet() is None
        assert decisions["noisy"] == decisions["quiet"]

    def test_shared_backlog_with_second_scheduler(self):
        # Two independent WFQ instances over one backlog (the paper's
        # per-interface baseline): heads taken by one must invalidate
        # the other's cached tag.
        first = WfqScheduler()
        second = WfqScheduler()
        flow = make_flow("a", backlog_packets=4)
        first.add_flow(flow)
        second.add_flow(flow)
        assert first.next_packet() is not None
        assert second.next_packet() is not None
        assert first.next_packet() is not None
        assert second.next_packet() is not None
        assert first.next_packet() is None
