"""Backend-equivalence and accounting properties for the event queues.

The heap queue is the reference implementation of the ``EventQueue``
contract; the calendar queue must be observationally identical under
any interleaving of schedule/cancel/pop (including the ``(time,
priority, seq)`` tie-break and ``pop_ready`` horizons). The hypothesis
property here also pins the cancel/compaction accounting bug that
motivated the counter audit: lazily discarding a cancelled *head*
inside ``pop``/``peek_time`` must decrement ``_cancelled_count``, or
the tombstone estimate drifts upward forever and every later ``cancel``
triggers a spurious full compaction.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.sim.events import (
    CalendarEventQueue,
    Event,
    EventQueue,
    HeapEventQueue,
    QUEUE_BACKENDS,
    auto_select_backend,
    benchmark_backends,
    make_event_queue,
)

BACKENDS = (EventQueue, CalendarEventQueue)


def _noop():
    pass


def count_tombstones(queue):
    """Count qcancelled events still physically inside the structure."""
    if isinstance(queue, CalendarEventQueue):
        return sum(
            1
            for bucket in queue._buckets
            for event in bucket
            if event.qcancelled
        )
    return sum(1 for event in queue._heap if event.qcancelled)


def assert_accounting(queue):
    assert queue._cancelled_count == count_tombstones(queue), (
        f"{type(queue).__name__}: tombstone counter "
        f"{queue._cancelled_count} != physical count "
        f"{count_tombstones(queue)}"
    )


def drain(queue):
    """Pop every live event (peek_time prunes cancelled residue)."""
    out = []
    while queue.peek_time() is not None:
        out.append(queue.pop())
    return out


#: One op per step: push a timestamped event, cancel a prior push by
#: index, pop the minimum, or pop against a horizon. Times are drawn
#: from a small grid so ties (and therefore the priority/seq tie-break)
#: occur constantly.
OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("push"),
            st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 8.0]),
            st.sampled_from([0, 0, 0, 1, 2]),
        ),
        st.tuples(st.just("cancel"), st.integers(0, 200)),
        st.tuples(st.just("pop")),
        st.tuples(st.just("pop_ready"), st.sampled_from([0.5, 1.5, 4.0])),
    ),
    max_size=120,
)


@settings(max_examples=120, deadline=None)
@given(ops=OPS)
def test_interleaved_schedule_cancel_pop_equivalence(ops):
    """Heap and calendar agree step for step, and both keep the
    tombstone counter exact after every operation."""
    queues = [EventQueue(), CalendarEventQueue()]
    handles = [[], []]  # pushed events, aligned by push order
    # Indices still cancellable: pending and not yet queue-cancelled.
    # (cancel() requires a pending event — the simulator's handle
    # discipline; seq == push index, identical across backends since
    # both see the same push/pop sequence.)
    cancellable = []

    for op in ops:
        observations = []
        for queue, pushed in zip(queues, handles):
            if op[0] == "push":
                event = queue.push(op[1], _noop, priority=op[2])
                pushed.append(event)
                observations.append((event.time, event.priority, event.seq))
            elif op[0] == "cancel":
                if cancellable:
                    index = cancellable[op[1] % len(cancellable)]
                    queue.cancel(pushed[index])
                    observations.append(pushed[index].qcancelled)
                else:
                    observations.append(None)
            elif op[0] == "pop":
                if queue.peek_time() is None:
                    observations.append(None)
                else:
                    event = queue.pop()
                    observations.append((event.time, event.priority, event.seq))
            else:  # pop_ready against a horizon
                event = queue.pop_ready(op[1])
                observations.append(
                    None
                    if event is None
                    else (event.time, event.priority, event.seq)
                )
            assert_accounting(queue)
        if op[0] == "push":
            cancellable.append(len(handles[0]) - 1)
        elif op[0] == "cancel" and cancellable:
            cancellable.remove(cancellable[op[1] % len(cancellable)])
        elif observations[0] is not None and op[0] in ("pop", "pop_ready"):
            popped_seq = observations[0][2]
            if popped_seq in cancellable:
                cancellable.remove(popped_seq)
        assert observations[0] == observations[1], (
            f"backends diverged on {op}: {observations}"
        )
        assert queues[0].peek_time() == queues[1].peek_time()
        # peek_time discards cancelled heads; re-check the books and
        # the (now tombstone-free-at-head) populations.
        for queue in queues:
            assert_accounting(queue)

    # Drain both to exhaustion: identical tails, and a fully drained
    # queue must have zero recorded tombstones (the pinned bug left the
    # counter positive here).
    tails = [
        [(e.time, e.priority, e.seq) for e in drain(queue)] for queue in queues
    ]
    assert tails[0] == tails[1]
    for queue in queues:
        assert len(queue) == 0
        assert queue._cancelled_count == 0


@pytest.mark.parametrize("backend", BACKENDS)
class TestCancelAccounting:
    def test_lazy_head_discard_decrements_counter(self, backend):
        """The regression this file exists for: cancelled events
        discarded lazily at the frontier must leave the books balanced."""
        queue = backend()
        doomed = [queue.push(float(i), _noop) for i in range(10)]
        queue.push(100.0, _noop)
        for event in doomed:
            queue.cancel(event)
        assert queue._cancelled_count == 10
        # peek_time walks past (and discards) all ten tombstones.
        assert queue.peek_time() == 100.0
        assert queue._cancelled_count == 0
        assert queue.compactions_total == 0

    def test_cancel_is_idempotent(self, backend):
        queue = backend()
        event = queue.push(1.0, _noop)
        queue.push(2.0, _noop)
        queue.cancel(event)
        queue.cancel(event)  # second cancel must not double-count
        assert queue._cancelled_count == 1
        assert queue.pop().time == 2.0

    def test_direct_cancel_stays_uncounted(self, backend):
        """Event.cancel() bypasses the queue: honoured on pop, but it
        never contributes to compaction pressure."""
        queue = backend()
        event = queue.push(1.0, _noop)
        queue.push(2.0, _noop)
        event.cancel()
        assert queue._cancelled_count == 0
        assert queue.pop().time == 2.0
        assert queue._cancelled_count == 0

    def test_compaction_sweeps_tombstones(self, backend):
        queue = backend()
        events = [queue.push(float(i), _noop) for i in range(200)]
        for event in events[::2]:
            queue.cancel(event)
        for event in events[1::2][:40]:
            queue.cancel(event)
        assert queue.compactions_total >= 1
        assert_accounting(queue)
        remaining = [event.time for event in drain(queue)]
        assert remaining == sorted(remaining)
        assert len(remaining) == 60

    def test_clear_resets_books(self, backend):
        queue = backend()
        event = queue.push(1.0, _noop)
        queue.cancel(event)
        queue.clear()
        assert len(queue) == 0
        assert queue._cancelled_count == 0
        assert queue.peek_time() is None
        with pytest.raises(SimulationError):
            queue.pop()


@pytest.mark.parametrize("backend", BACKENDS)
class TestCheckpointContract:
    def test_live_events_excludes_cancelled(self, backend):
        queue = backend()
        keep = queue.push(2.0, _noop)
        drop = queue.push(1.0, _noop)
        queue.cancel(drop)
        assert [event.seq for event in queue.live_events()] == [keep.seq]

    def test_restore_round_trip(self, backend):
        queue = backend()
        for i in range(20):
            queue.push(float(i % 5), _noop, priority=i % 3)
        snapshot = [
            (event.time, event.priority, event.seq)
            for event in queue.live_events()
        ]
        clone = backend()
        clone.restore(
            [Event(t, p, s, _noop) for t, p, s in snapshot], queue.next_seq
        )
        assert clone.next_seq == queue.next_seq
        popped = [
            (event.time, event.priority, event.seq) for event in drain(clone)
        ]
        assert popped == sorted(snapshot)


class TestCalendarResize:
    def test_grows_and_shrinks_with_population(self):
        queue = CalendarEventQueue()
        initial = queue._nbuckets
        for i in range(1000):
            queue.push(i * 0.01, _noop)
        assert queue._nbuckets > initial
        order = [event.time for event in drain(queue)]
        assert order == sorted(order)
        assert queue._nbuckets < 1000

    def test_rewinds_for_past_insertions(self):
        """Direct queue use may insert before the cursor (the simulator
        never does); the calendar must still pop in global order."""
        queue = CalendarEventQueue()
        queue.push(10.0, _noop)
        assert queue.pop().time == 10.0
        queue.push(1.0, _noop)
        queue.push(20.0, _noop)
        assert queue.pop().time == 1.0
        assert queue.pop().time == 20.0

    def test_rejects_degenerate_geometry(self):
        with pytest.raises(ConfigurationError):
            CalendarEventQueue(width=0.0)
        with pytest.raises(ConfigurationError):
            CalendarEventQueue(nbuckets=0)

    def test_bucket_boundary_float_mismatch_keeps_pop_order(self):
        """Regression: the year scan must classify events by the same
        int(time / width) mapping the insert path uses.

        With width=0.001542857142857143, t=0.0324 hashes to virtual
        bucket 20 (t / width rounds to 20.999...96) yet 21 * width
        rounds to exactly 0.0324 — so a recomputed upper boundary
        ((vbucket + 1) * width) rejects the event from its own bucket,
        defers it a full year, and a later event pops first. Observed
        live as `cannot schedule at t=... before now=...` when a
        batch abort trusted the clock never to overtake a pending
        fused event.
        """
        width = 0.001542857142857143
        t = 0.0324
        assert int(t / width) == 20
        assert not t < 21 * width  # the two mappings genuinely disagree
        queue = CalendarEventQueue(width=width)
        # Advance the cursor near the affected bucket so the year scan
        # (not the global fallback, which is order-safe) serves pops.
        queue.push(width * 16 + width / 2, _noop)
        queue.pop()
        queue.push(t, _noop)
        queue.push(0.033, _noop)  # virtual bucket 21, later time
        assert queue.pop().time == t
        assert queue.pop().time == 0.033


class TestBackendSelection:
    def test_make_event_queue_names(self):
        assert isinstance(make_event_queue("heap"), HeapEventQueue)
        assert isinstance(make_event_queue("calendar"), CalendarEventQueue)
        assert make_event_queue("auto").backend_name in QUEUE_BACKENDS

    def test_make_event_queue_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            make_event_queue("splay")

    def test_benchmark_and_auto_select(self):
        timings = benchmark_backends(churn=512, pending=64)
        assert set(timings) == set(QUEUE_BACKENDS)
        assert all(value > 0 for value in timings.values())
        choice = auto_select_backend()
        assert choice in QUEUE_BACKENDS
        # Cached: the second call must agree within a process.
        assert auto_select_backend() == choice
