"""Failure injection and churn: the paper's property 4 under stress.

"If we add an interface, we should use it to increase capacity for all
flows willing to use it. When a flow ends, other flows sharing its set
of interfaces should benefit from the freed up capacity." — plus the
failure directions the paper does not spell out: interfaces dying,
capacity collapsing, preferences changing mid-run.
"""

import pytest

from tests.helpers import make_flow

from repro.core.engine import SchedulingEngine
from repro.core.runner import run_scenario
from repro.core.scenario import FlowSpec, InterfaceSpec, Scenario
from repro.net.flow import Flow
from repro.net.interface import Interface
from repro.net.sources import BulkSource
from repro.schedulers.midrr import MiDrrScheduler
from repro.units import mbps


def engine_with(sim, rates):
    engine = SchedulingEngine(sim, MiDrrScheduler())
    for index, rate in enumerate(rates, start=1):
        engine.add_interface(Interface(sim, f"if{index}", rate))
    return engine


class TestNewCapacity:
    def test_interface_added_mid_run_is_used(self, sim):
        """Property 4: a hotplugged interface raises willing flows."""
        engine = engine_with(sim, [mbps(1)])
        flow = Flow("a")
        BulkSource(sim, flow)
        engine.add_flow(flow)
        engine.start()
        sim.run(until=10.0)
        before = engine.stats.rate_in_window("a", 2, 10)

        new_interface = Interface(sim, "hotplug", mbps(2))
        engine.add_interface(new_interface)
        new_interface.kick()
        sim.run(until=20.0)
        after = engine.stats.rate_in_window("a", 12, 20)
        assert before == pytest.approx(mbps(1), rel=0.05)
        assert after == pytest.approx(mbps(3), rel=0.05)

    def test_added_interface_ignored_by_unwilling_flow(self, sim):
        engine = engine_with(sim, [mbps(1)])
        flow = Flow("pinned", allowed_interfaces=["if1"])
        BulkSource(sim, flow)
        engine.add_flow(flow)
        engine.start()
        new_interface = Interface(sim, "hotplug", mbps(2))
        engine.add_interface(new_interface)
        new_interface.kick()
        sim.run(until=10.0)
        assert engine.stats.interface_bytes("hotplug") == 0
        assert engine.stats.rate_in_window("pinned", 2, 10) == pytest.approx(
            mbps(1), rel=0.05
        )

    def test_rate_increase_absorbed(self):
        scenario = Scenario(
            interfaces=(InterfaceSpec("if1", mbps(1)),),
            flows=(FlowSpec("a"), FlowSpec("b")),
            duration=20.0,
        )
        result = run_scenario(scenario, MiDrrScheduler)
        # static; now via capacity steps:
        from repro.net.interface import CapacityStep

        stepped = Scenario(
            interfaces=(
                InterfaceSpec(
                    "if1", mbps(1), capacity_steps=(CapacityStep(10.0, mbps(4)),)
                ),
            ),
            flows=(FlowSpec("a"), FlowSpec("b")),
            duration=20.0,
        )
        stepped_result = run_scenario(stepped, MiDrrScheduler)
        for flow_id in ("a", "b"):
            assert stepped_result.rate(flow_id, 12, 20) == pytest.approx(
                mbps(2), rel=0.05
            )


class TestInterfaceFailure:
    def test_interface_down_shifts_load(self, sim):
        """An interface dying mid-run must not strand a flexible flow."""
        engine = engine_with(sim, [mbps(1), mbps(1)])
        flow = Flow("a")
        BulkSource(sim, flow)
        engine.add_flow(flow)
        engine.start()
        interfaces = engine.interfaces
        sim.schedule(10.0, interfaces["if1"].bring_down)
        sim.run(until=20.0)
        before = engine.stats.rate_in_window("a", 2, 10)
        after = engine.stats.rate_in_window("a", 12, 20)
        assert before == pytest.approx(mbps(2), rel=0.05)
        assert after == pytest.approx(mbps(1), rel=0.05)

    def test_pinned_flow_stalls_when_its_interface_dies(self, sim):
        """A flow unwilling to use the survivor gets nothing — by design."""
        engine = engine_with(sim, [mbps(1), mbps(1)])
        pinned = Flow("pinned", allowed_interfaces=["if1"])
        flexible = Flow("flexible")
        BulkSource(sim, pinned)
        BulkSource(sim, flexible)
        engine.add_flow(pinned)
        engine.add_flow(flexible)
        engine.start()
        sim.schedule(10.0, engine.interfaces["if1"].bring_down)
        sim.run(until=20.0)
        assert engine.stats.service_in_window("pinned", 12, 20) == 0
        # The survivor's capacity all goes to the flexible flow.
        assert engine.stats.rate_in_window("flexible", 12, 20) == pytest.approx(
            mbps(1), rel=0.05
        )

    def test_interface_recovery(self, sim):
        engine = engine_with(sim, [mbps(1), mbps(1)])
        flow = Flow("a")
        BulkSource(sim, flow)
        engine.add_flow(flow)
        engine.start()
        sim.schedule(5.0, engine.interfaces["if2"].bring_down)
        sim.schedule(10.0, engine.interfaces["if2"].bring_up)
        sim.run(until=20.0)
        down_rate = engine.stats.rate_in_window("a", 6, 10)
        recovered = engine.stats.rate_in_window("a", 12, 20)
        assert down_rate == pytest.approx(mbps(1), rel=0.08)
        assert recovered == pytest.approx(mbps(2), rel=0.05)


class TestLivePreferenceChanges:
    def test_restricting_preferences_mid_run(self, sim):
        """User flips "WiFi only" mid-download: Π changes live."""
        engine = engine_with(sim, [mbps(1), mbps(1)])
        flow = Flow("a")
        BulkSource(sim, flow)
        engine.add_flow(flow)
        engine.start()
        sim.schedule(10.0, flow.restrict_to, {"if1"})
        sim.run(until=20.0)
        # After the change, if2 must not serve flow a...
        late_if2 = engine.stats.service_in_window("a", 11, 20, interface_id="if2")
        # ...allowing one in-flight packet at the boundary.
        assert late_if2 <= 1500
        assert engine.stats.rate_in_window("a", 12, 20) == pytest.approx(
            mbps(1), rel=0.05
        )

    def test_flow_removed_mid_run_frees_capacity(self, sim):
        engine = engine_with(sim, [mbps(2)])
        first = Flow("first")
        second = Flow("second")
        BulkSource(sim, first)
        BulkSource(sim, second)
        engine.add_flow(first)
        engine.add_flow(second)
        engine.start()
        sim.schedule(10.0, engine.remove_flow, "first")
        sim.run(until=20.0)
        assert engine.stats.rate_in_window("second", 2, 10) == pytest.approx(
            mbps(1), rel=0.05
        )
        assert engine.stats.rate_in_window("second", 12, 20) == pytest.approx(
            mbps(2), rel=0.05
        )

    def test_weight_change_takes_effect(self, sim):
        """Rate preference edited mid-run (φ is read per turn)."""
        engine = engine_with(sim, [mbps(2)])
        first = Flow("first", weight=1.0)
        second = Flow("second", weight=1.0)
        BulkSource(sim, first)
        BulkSource(sim, second)
        engine.add_flow(first)
        engine.add_flow(second)
        engine.start()

        def boost():
            first.weight = 3.0

        sim.schedule(10.0, boost)
        sim.run(until=20.0)
        early_ratio = engine.stats.service_in_window(
            "first", 2, 10
        ) / engine.stats.service_in_window("second", 2, 10)
        late_ratio = engine.stats.service_in_window(
            "first", 12, 20
        ) / engine.stats.service_in_window("second", 12, 20)
        assert early_ratio == pytest.approx(1.0, rel=0.1)
        assert late_ratio == pytest.approx(3.0, rel=0.1)


class TestChurnStress:
    def test_many_flows_arriving_and_leaving(self):
        """A dozen staggered finite flows: always work-conserving."""
        flows = tuple(
            FlowSpec(
                f"f{index}",
                start_time=float(index),
                traffic=__import__(
                    "repro.core.scenario", fromlist=["TrafficSpec"]
                ).TrafficSpec("bulk", total_bytes=500_000),
            )
            for index in range(12)
        )
        scenario = Scenario(
            interfaces=(InterfaceSpec("if1", mbps(2)), InterfaceSpec("if2", mbps(2))),
            flows=flows,
            duration=40.0,
        )
        result = run_scenario(scenario, MiDrrScheduler)
        # Every flow completed (12 × 0.5 MB = 48 Mbit over 4 Mb/s = 12 s).
        assert len(result.completions) == 12
        # Total service equals total offered bytes.
        total = sum(
            result.stats.bytes_sent(spec.flow_id) for spec in flows
        )
        assert total == 12 * 500_000

    def test_interleaved_churn_never_wastes_capacity(self):
        """While any flow is backlogged, interfaces stay busy."""
        from repro.core.scenario import TrafficSpec

        scenario = Scenario(
            interfaces=(InterfaceSpec("if1", mbps(2)),),
            flows=(
                FlowSpec("infinite"),
                FlowSpec(
                    "burst1",
                    start_time=3.0,
                    traffic=TrafficSpec("bulk", total_bytes=250_000),
                ),
                FlowSpec(
                    "burst2",
                    start_time=6.0,
                    traffic=TrafficSpec("bulk", total_bytes=250_000),
                ),
            ),
            duration=20.0,
        )
        result = run_scenario(scenario, MiDrrScheduler)
        total_bytes = sum(
            result.stats.bytes_sent(f) for f in ("infinite", "burst1", "burst2")
        )
        # Link ran at 100 %: 2 Mb/s × 20 s = 5 MB.
        assert total_bytes == pytest.approx(mbps(2) * 20 / 8, rel=0.01)
