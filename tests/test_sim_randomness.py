"""Unit tests for seeded random streams."""

from repro.sim.randomness import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_distinct_names_distinct_seeds(self):
        assert derive_seed(42, "x") != derive_seed(42, "y")

    def test_distinct_roots_distinct_seeds(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_stable_value(self):
        # Pin the mapping: regression guard for cross-version stability.
        assert derive_seed(0, "poisson:a") == derive_seed(0, "poisson:a")
        assert isinstance(derive_seed(0, "s"), int)


class TestRandomStreams:
    def test_same_name_same_object(self):
        streams = RandomStreams(7)
        assert streams.stream("a") is streams.stream("a")

    def test_streams_are_independent(self):
        # Drawing from one stream must not perturb another.
        solo = RandomStreams(7)
        expected = [solo.stream("b").random() for _ in range(5)]

        mixed = RandomStreams(7)
        mixed.stream("a").random()  # extra draw on another stream
        actual = [mixed.stream("b").random() for _ in range(5)]
        assert actual == expected

    def test_reset_replays_sequence(self):
        streams = RandomStreams(3)
        first = [streams.stream("x").random() for _ in range(4)]
        streams.reset()
        second = [streams.stream("x").random() for _ in range(4)]
        assert first == second

    def test_root_seed_property(self):
        assert RandomStreams(11).root_seed == 11

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("s").random()
        b = RandomStreams(2).stream("s").random()
        assert a != b
