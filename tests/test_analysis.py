"""Unit tests for the analysis toolkit."""

import pytest

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.rates import EwmaRateEstimator, WindowedRateEstimator
from repro.analysis.report import (
    render_comparison,
    render_rate_table,
    render_series,
    render_table,
)
from repro.analysis.timeseries import (
    bin_events,
    crossings,
    moving_average,
    series_mean,
    settle_time,
)
from repro.errors import ConfigurationError


class TestBinEvents:
    def test_basic_binning(self):
        events = [(0.2, 10.0), (0.8, 10.0), (1.5, 5.0)]
        series = bin_events(events, bin_width=1.0, end=2.0)
        assert series == [(0.5, 20.0), (1.5, 5.0)]

    def test_out_of_range_ignored(self):
        series = bin_events([(5.0, 1.0)], bin_width=1.0, start=0.0, end=2.0)
        assert series == [(0.5, 0.0), (1.5, 0.0)]

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            bin_events([], bin_width=0.0)

    def test_empty_horizon(self):
        assert bin_events([], bin_width=1.0) == []


class TestMovingAverage:
    def test_window_one_is_identity(self):
        series = [(0.0, 1.0), (1.0, 5.0)]
        assert moving_average(series, 1) == series

    def test_smoothing(self):
        series = [(float(i), v) for i, v in enumerate([0, 10, 0, 10, 0])]
        smoothed = moving_average(series, 3)
        assert smoothed[2][1] == pytest.approx(20 / 3)

    def test_even_window_rejected(self):
        with pytest.raises(ConfigurationError):
            moving_average([], 2)

    def test_empty(self):
        assert moving_average([], 3) == []


class TestSeriesQueries:
    def test_series_mean(self):
        series = [(0.5, 2.0), (1.5, 4.0), (2.5, 9.0)]
        assert series_mean(series, 0.0, 2.0) == 3.0

    def test_series_mean_empty_window(self):
        with pytest.raises(ConfigurationError):
            series_mean([(0.5, 1.0)], 5.0, 6.0)

    def test_crossings(self):
        series = [(0.0, 0.0), (1.0, 10.0), (2.0, 0.0)]
        points = crossings(series, 5.0)
        assert points == [pytest.approx(0.5), pytest.approx(1.5)]

    def test_settle_time(self):
        series = [(0.0, 0.0), (1.0, 8.0), (2.0, 10.2), (3.0, 9.9), (4.0, 10.1)]
        assert settle_time(series, 10.0, tolerance=0.5, hold=3) == 2.0

    def test_settle_time_never(self):
        series = [(0.0, 0.0), (1.0, 20.0)]
        assert settle_time(series, 10.0, tolerance=1.0) is None

    def test_settle_time_run_resets(self):
        series = [(0.0, 10.0), (1.0, 10.0), (2.0, 0.0), (3.0, 10.0),
                  (4.0, 10.0), (5.0, 10.0)]
        assert settle_time(series, 10.0, tolerance=0.5, hold=3) == 3.0


class TestEmpiricalCdf:
    def test_basic_stats(self):
        cdf = EmpiricalCdf([3.0, 1.0, 2.0])
        assert cdf.min == 1.0
        assert cdf.max == 3.0
        assert len(cdf) == 3

    def test_probability_at_most(self):
        cdf = EmpiricalCdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.probability_at_most(2.0) == 0.5
        assert cdf.probability_at_most(0.5) == 0.0
        assert cdf.probability_at_most(10.0) == 1.0

    def test_quantiles(self):
        cdf = EmpiricalCdf(list(range(1, 101)))
        assert cdf.median() == 50
        assert cdf.quantile(0.99) == 99
        assert cdf.quantile(1.0) == 100

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            EmpiricalCdf([])

    def test_points_monotone(self):
        cdf = EmpiricalCdf([5.0, 1.0, 3.0, 2.0, 4.0])
        points = cdf.points(num_points=5)
        values = [v for v, _ in points]
        probabilities = [p for _, p in points]
        assert values == sorted(values)
        assert probabilities == sorted(probabilities)

    def test_ascii_plot_renders(self):
        text = EmpiricalCdf([1.0, 2.0, 3.0]).ascii_plot()
        assert "*" in text


class TestRateEstimators:
    def test_windowed_rate_cold_start(self):
        # Regression: before the window has filled, the rate is taken
        # over the elapsed span (1.5 s here), not the full 2 s window —
        # the old full-window division under-reported early rates.
        estimator = WindowedRateEstimator(window=2.0)
        estimator.add(0.5, 250)
        estimator.add(1.5, 250)
        assert estimator.rate_bps(2.0) == pytest.approx(500 * 8 / 1.5)

    def test_windowed_rate_steady_state(self):
        # Once a full window has elapsed the divisor is the window.
        estimator = WindowedRateEstimator(window=2.0)
        for i in range(9):
            estimator.add(i * 0.5, 250)  # every 0.5 s through t=4.0
        # Window (2.0, 4.0] holds four samples = 1000 B.
        assert estimator.rate_bps(4.0) == pytest.approx(1000 * 8 / 2.0)

    def test_windowed_cold_start_floor(self):
        # A query at the first sample's own timestamp divides by the
        # documented floor (1% of the window), not by zero.
        estimator = WindowedRateEstimator(window=1.0)
        estimator.add(0.0, 125)
        assert estimator.rate_bps(0.0) == pytest.approx(125 * 8 / 0.01)

    def test_windowed_eviction(self):
        estimator = WindowedRateEstimator(window=1.0)
        estimator.add(0.0, 1000)
        estimator.add(5.0, 125)
        assert estimator.rate_bps(5.0) == pytest.approx(1000.0)

    def test_windowed_out_of_order_rejected(self):
        estimator = WindowedRateEstimator(window=1.0)
        estimator.add(1.0, 10)
        with pytest.raises(ConfigurationError):
            estimator.add(0.5, 10)

    def test_ewma_converges(self):
        estimator = EwmaRateEstimator(alpha=0.5)
        for i in range(50):
            estimator.add(i * 0.1, 125)  # 10 kbit/s steady
        assert estimator.rate_bps == pytest.approx(10_000.0, rel=0.01)

    def test_ewma_priming_bytes_counted(self):
        # Regression: the priming sample's bytes fold into the first
        # real gap instead of being discarded.
        estimator = EwmaRateEstimator(alpha=1.0)
        estimator.add(0.0, 100)
        estimator.add(1.0, 100)
        assert estimator.rate_bps == pytest.approx((100 + 100) * 8 / 1.0)

    def test_ewma_zero_gap_bytes_banked(self):
        # Regression: same-instant deliveries (multi-interface bursts)
        # bank their bytes for the next positive gap instead of being
        # dropped.
        estimator = EwmaRateEstimator(alpha=1.0)
        estimator.add(0.0, 100)
        estimator.add(1.0, 50)
        assert estimator.rate_bps == pytest.approx(150 * 8 / 1.0)
        estimator.add(1.0, 70)  # zero gap: banked, estimate unchanged
        assert estimator.rate_bps == pytest.approx(150 * 8 / 1.0)
        estimator.add(2.0, 30)
        assert estimator.rate_bps == pytest.approx((70 + 30) * 8 / 1.0)

    def test_ewma_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            EwmaRateEstimator(alpha=0.0)


class TestReports:
    def test_render_table_alignment(self):
        text = render_table(["col", "x"], [["value", 1], ["v", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")

    def test_render_table_title(self):
        text = render_table(["a"], [["b"]], title="Title")
        assert text.splitlines()[0] == "Title"

    def test_render_rate_table(self):
        text = render_rate_table(
            {"miDRR": {"a": 1e6}}, ["a"], title="rates"
        )
        assert "1.00 Mb/s" in text

    def test_render_comparison(self):
        text = render_comparison({"a": 0.95e6}, {"a": 1e6})
        assert "5.0%" in text

    def test_render_comparison_zero_reference(self):
        text = render_comparison({"a": 0.0}, {"a": 0.0})
        assert "-" in text

    def test_render_series(self):
        text = render_series([(0.0, 1.0), (1.0, 2.0)], label="rate")
        assert "rate" in text
        assert "#" in text

    def test_render_series_empty(self):
        assert "empty" in render_series([], label="x")
