"""Unit tests for the device policy vocabulary."""

import pytest

from repro.errors import PreferenceError
from repro.prefs.policy import AnyInterface, DevicePolicy, Except, Only, Prefer


class TestRules:
    INTERFACES = ["wifi", "lte", "3g"]

    def test_any_resolves_to_none(self):
        assert AnyInterface().resolve(self.INTERFACES) is None

    def test_only(self):
        assert Only("wifi").resolve(self.INTERFACES) == frozenset({"wifi"})
        assert Only("wifi", "lte").resolve(self.INTERFACES) == frozenset(
            {"wifi", "lte"}
        )

    def test_only_unknown_interface(self):
        with pytest.raises(PreferenceError):
            Only("satellite").resolve(self.INTERFACES)

    def test_only_requires_names(self):
        with pytest.raises(PreferenceError):
            Only()

    def test_except(self):
        assert Except("lte").resolve(self.INTERFACES) == frozenset({"wifi", "3g"})

    def test_except_everything_rejected(self):
        with pytest.raises(PreferenceError):
            Except("wifi", "lte", "3g").resolve(self.INTERFACES)

    def test_prefer_picks_first_available(self):
        assert Prefer("satellite", "lte").resolve(self.INTERFACES) == frozenset(
            {"lte"}
        )

    def test_prefer_nothing_available(self):
        with pytest.raises(PreferenceError):
            Prefer("satellite").resolve(self.INTERFACES)


class TestDevicePolicy:
    def test_compile_produces_preference_set(self):
        policy = DevicePolicy(["wifi", "lte"])
        policy.app("netflix", Only("wifi"), weight=2.0)
        policy.app("dropbox", AnyInterface())
        prefs = policy.compile()
        assert prefs.weight("netflix") == 2.0
        assert prefs.willing_interfaces("netflix") == ["wifi"]
        assert prefs.willing_interfaces("dropbox") == ["wifi", "lte"]

    def test_duplicate_app_rejected(self):
        policy = DevicePolicy(["wifi"])
        policy.app("x", AnyInterface())
        with pytest.raises(PreferenceError):
            policy.app("x", AnyInterface())

    def test_invalid_weight_rejected(self):
        policy = DevicePolicy(["wifi"])
        with pytest.raises(PreferenceError):
            policy.app("x", AnyInterface(), weight=0)

    def test_no_interfaces_rejected(self):
        with pytest.raises(PreferenceError):
            DevicePolicy([])

    def test_len(self):
        policy = DevicePolicy(["wifi"])
        policy.app("a", AnyInterface())
        policy.app("b", AnyInterface())
        assert len(policy) == 2

    def test_interfaces_deduplicated_in_order(self):
        policy = DevicePolicy(["wifi", "lte", "wifi"])
        assert policy.interfaces == ["wifi", "lte"]
