"""Unit tests for the stats collector."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.net.interface import Interface
from repro.net.packet import Packet
from repro.net.sink import StatsCollector
from repro.sim.simulator import Simulator


class TestDirectRecording:
    def test_bytes_by_flow(self, sim):
        stats = StatsCollector(sim)
        stats.record("a", "if1", 100)
        stats.record("a", "if2", 200)
        stats.record("b", "if1", 50)
        assert stats.bytes_sent("a") == 300
        assert stats.bytes_sent("b") == 50
        assert stats.bytes_sent("missing") == 0

    def test_interface_bytes(self, sim):
        stats = StatsCollector(sim)
        stats.record("a", "if1", 100)
        stats.record("b", "if1", 100)
        assert stats.interface_bytes("if1") == 200

    def test_service_matrix(self, sim):
        stats = StatsCollector(sim)
        stats.record("a", "if1", 100)
        stats.record("a", "if1", 100)
        stats.record("a", "if2", 40)
        assert stats.service_matrix() == {("a", "if1"): 200, ("a", "if2"): 40}

    def test_flow_ids_sorted(self, sim):
        stats = StatsCollector(sim)
        stats.record("z", "if1", 1)
        stats.record("a", "if1", 1)
        assert stats.flow_ids() == ["a", "z"]


class TestWindows:
    def _collect(self, sim):
        stats = StatsCollector(sim)
        for t, flow, size in [(1.0, "a", 100), (2.0, "a", 100), (3.0, "b", 300)]:
            sim.schedule(t, stats.record, flow, "if1", size)
        sim.run()
        return stats

    def test_service_in_window_half_open(self, sim):
        stats = self._collect(sim)
        # (1.0, 3.0] excludes the t=1.0 sample, includes t=2.0 and 3.0.
        assert stats.service_in_window("a", 1.0, 3.0) == 100
        assert stats.service_in_window("b", 1.0, 3.0) == 300

    def test_service_filtered_by_interface(self, sim):
        stats = StatsCollector(sim)
        stats.record("a", "if1", 100)
        stats.record("a", "if2", 50)
        assert stats.service_in_window("a", -1, 1, interface_id="if2") == 50

    def test_rate_in_window(self, sim):
        stats = self._collect(sim)
        # 200 B over (0, 2] → 800 b/s.
        assert stats.rate_in_window("a", 0.0, 2.0) == pytest.approx(800.0)

    def test_rate_empty_window(self, sim):
        stats = self._collect(sim)
        assert stats.rate_in_window("a", 5.0, 5.0) == 0.0

    def test_pair_service_in_window(self, sim):
        stats = self._collect(sim)
        matrix = stats.pair_service_in_window(0.0, 2.5)
        assert matrix == {("a", "if1"): 200}


class TestTimeseries:
    def test_binning(self, sim):
        stats = StatsCollector(sim)
        for t in (0.2, 0.7, 1.2):
            sim.schedule(t, stats.record, "a", "if1", 125)
        sim.run(until=2.0)
        series = stats.rate_timeseries("a", bin_width=1.0, end=2.0)
        assert len(series) == 2
        # Bin 0 has 250 B → 2000 b/s, bin 1 has 125 B → 1000 b/s.
        assert series[0] == (0.5, pytest.approx(2000.0))
        assert series[1] == (1.5, pytest.approx(1000.0))

    def test_empty_inputs(self, sim):
        stats = StatsCollector(sim)
        assert stats.rate_timeseries("a", bin_width=0) == []
        assert stats.rate_timeseries("a", bin_width=1.0, start=5.0, end=5.0) == []

    def test_trailing_partial_bin_emitted(self, sim):
        # Regression: a 2.5 s horizon with 1 s bins yields THREE bins;
        # the pre-fix implementation truncated to two, silently
        # dropping the 125 B served in (2.0, 2.5).
        stats = StatsCollector(sim)
        for t in (0.5, 1.5, 2.25):
            sim.schedule(t, stats.record, "a", "if1", 125)
        sim.run(until=2.5)
        series = stats.service_timeseries("a", bin_width=1.0, end=2.5)
        assert [(c, w) for c, w, _ in series] == [
            (0.5, 1.0),
            (1.5, 1.0),
            (pytest.approx(2.25), pytest.approx(0.5)),
        ]
        assert [total for _, _, total in series] == [125, 125, 125]

    def test_partial_bin_rate_uses_actual_width(self, sim):
        stats = StatsCollector(sim)
        sim.schedule(2.25, stats.record, "a", "if1", 125)
        sim.run(until=2.5)
        series = stats.rate_timeseries("a", bin_width=1.0, end=2.5)
        # 125 B over the 0.5 s partial bin = 2000 b/s, not 1000 b/s.
        assert series[-1] == (pytest.approx(2.25), pytest.approx(2000.0))

    def test_sample_at_exact_horizon_counted(self, sim):
        # Regression: a sample landing exactly at the horizon indexed
        # one past the final bin and was discarded pre-fix.
        stats = StatsCollector(sim)
        sim.schedule(2.0, stats.record, "a", "if1", 125)
        sim.run(until=2.0)
        series = stats.service_timeseries("a", bin_width=1.0, end=2.0)
        assert len(series) == 2
        assert series[-1][2] == 125

    def test_horizon_shorter_than_one_bin(self, sim):
        stats = StatsCollector(sim)
        sim.schedule(0.2, stats.record, "a", "if1", 100)
        sim.run(until=0.25)
        series = stats.service_timeseries("a", bin_width=1.0, end=0.25)
        assert series == [
            (pytest.approx(0.125), pytest.approx(0.25), 100)
        ]


class TestByteConservation:
    """Hypothesis: binning never loses or double-counts service."""

    @staticmethod
    def _replay(events):
        sim = Simulator()
        stats = StatsCollector(sim)
        for t, size in events:
            sim.schedule(t, stats.record, "a", "if1", size)
        sim.run()
        return stats

    @settings(max_examples=60, deadline=None)
    @given(
        events=st.lists(
            st.tuples(
                st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
                st.integers(1, 10_000),
            ),
            min_size=1,
            max_size=40,
        ),
        bin_width=st.floats(0.01, 10.0, allow_nan=False, allow_infinity=False),
        slack=st.floats(0.0, 5.0, allow_nan=False, allow_infinity=False),
    )
    def test_bin_totals_conserve_bytes(self, events, bin_width, slack):
        stats = self._replay(events)
        horizon = max(t for t, _ in events) + slack
        assume(horizon > 0)  # a zero-span window has no bins at all
        series = stats.service_timeseries(
            "a", bin_width=bin_width, end=horizon
        )
        assert sum(total for _, _, total in series) == stats.bytes_sent("a")

    @settings(max_examples=30, deadline=None)
    @given(
        events=st.lists(
            st.tuples(
                st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
                st.integers(1, 10_000),
            ),
            min_size=1,
            max_size=40,
        ),
        bin_width=st.floats(0.01, 10.0, allow_nan=False, allow_infinity=False),
    )
    def test_bin_spans_cover_horizon(self, events, bin_width):
        stats = self._replay(events)
        horizon = max(t for t, _ in events)
        assume(horizon > 0)
        series = stats.service_timeseries(
            "a", bin_width=bin_width, end=horizon
        )
        assert sum(width for _, width, _ in series) == pytest.approx(horizon)


class TestInterfaceIntegration:
    def test_watch_records_transmissions(self, sim):
        stats = StatsCollector(sim)
        interface = Interface(sim, "if1", 12_000)
        packets = [Packet(flow_id="a", size_bytes=1500)]
        interface.attach_source(lambda i: packets.pop(0) if packets else None)
        stats.watch(interface)
        interface.kick()
        sim.run()
        assert stats.bytes_sent("a") == 1500
        assert stats.samples[0].time == pytest.approx(1.0)
        assert stats.samples[0].interface_id == "if1"
