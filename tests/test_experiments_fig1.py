"""E1 — Figure 1: the paper's motivating allocations, asserted."""

import pytest

from repro.experiments import fig1
from repro.schedulers.midrr import MiDrrScheduler
from repro.schedulers.per_interface import PerInterfaceScheduler, StaticSplitScheduler
from repro.units import mbps


class TestFig1a:
    def test_single_interface_all_equal(self):
        scenario = fig1.scenario_a()
        for factory in (MiDrrScheduler, PerInterfaceScheduler.wfq):
            rates = fig1.measured_rates(scenario, factory)
            assert rates["a"] == pytest.approx(mbps(1), rel=0.03)
            assert rates["b"] == pytest.approx(mbps(1), rel=0.03)


class TestFig1b:
    def test_no_preferences_everyone_fair(self):
        scenario = fig1.scenario_b()
        for factory in (
            MiDrrScheduler,
            PerInterfaceScheduler.wfq,
            PerInterfaceScheduler.drr,
            StaticSplitScheduler,
        ):
            rates = fig1.measured_rates(scenario, factory)
            assert rates["a"] == pytest.approx(mbps(1), rel=0.05)
            assert rates["b"] == pytest.approx(mbps(1), rel=0.05)


class TestFig1c:
    """The headline comparison: baselines fail, miDRR succeeds."""

    def test_per_interface_wfq_gives_unfair_split(self):
        rates = fig1.measured_rates(fig1.scenario_c(), PerInterfaceScheduler.wfq)
        assert rates["a"] == pytest.approx(mbps(1.5), rel=0.05)
        assert rates["b"] == pytest.approx(mbps(0.5), rel=0.05)

    def test_per_interface_drr_gives_unfair_split(self):
        rates = fig1.measured_rates(fig1.scenario_c(), PerInterfaceScheduler.drr)
        assert rates["a"] == pytest.approx(mbps(1.5), rel=0.05)
        assert rates["b"] == pytest.approx(mbps(0.5), rel=0.05)

    def test_midrr_gives_maxmin_split(self):
        rates = fig1.measured_rates(fig1.scenario_c(), MiDrrScheduler)
        assert rates["a"] == pytest.approx(mbps(1.0), rel=0.03)
        assert rates["b"] == pytest.approx(mbps(1.0), rel=0.03)

    def test_fluid_reference_matches_paper(self):
        allocation = fig1.fluid_reference(fig1.scenario_c())
        assert allocation.rate("a") == pytest.approx(mbps(1))
        assert allocation.rate("b") == pytest.approx(mbps(1))


class TestFig1cWeighted:
    def test_infeasible_rate_preference_not_wasteful(self):
        """§1: φ_b = 2φ_a, but b is capped; a gets the leftovers."""
        rates = fig1.measured_rates(fig1.scenario_c_weighted(), MiDrrScheduler)
        assert rates["a"] == pytest.approx(mbps(1.0), rel=0.03)
        assert rates["b"] == pytest.approx(mbps(1.0), rel=0.03)

    def test_total_capacity_used(self):
        rates = fig1.measured_rates(fig1.scenario_c_weighted(), MiDrrScheduler)
        assert sum(rates.values()) == pytest.approx(mbps(2.0), rel=0.03)


class TestExpectations:
    def test_paper_expectation_table_is_consistent(self):
        """Our recorded paper numbers agree with the fluid solver."""
        for name, by_scheduler in fig1.PAPER_EXPECTATIONS.items():
            if "miDRR" not in by_scheduler:
                continue
            scenario = fig1.ALL_SCENARIOS[name]()
            reference = fig1.fluid_reference(scenario)
            for flow_id, value in by_scheduler["miDRR"].items():
                assert reference.rate(flow_id) == pytest.approx(value, rel=0.01)
