"""Scale integration: the paper's maxima, end to end.

The paper's overhead study drives 16 interfaces; its workload study
observes up to 35 concurrent flows. These tests run both extremes at
once through the full stack (sources → engine → miDRR → interfaces →
stats) and check that the core guarantees survive: Π compliance, work
conservation, Theorem 2 conditions, and sane decision telemetry.
"""

import random

import pytest

from repro.core.runner import run_scenario
from repro.core.scenario import FlowSpec, InterfaceSpec, Scenario, TrafficSpec
from repro.fairness.clusters import check_maxmin_conditions
from repro.fairness.waterfill import weighted_maxmin
from repro.prefs.preferences import PreferenceSet
from repro.schedulers.midrr import MiDrrScheduler
from repro.units import mbps

NUM_INTERFACES = 16
NUM_FLOWS = 35
DURATION = 15.0
WARMUP = 3.0


def build_large_scenario(seed: int = 0) -> Scenario:
    """16 interfaces × 35 flows with random-but-reproducible Π and φ."""
    rng = random.Random(seed)
    interfaces = tuple(
        InterfaceSpec(f"if{j}", mbps(rng.choice([2, 5, 10, 20])))
        for j in range(NUM_INTERFACES)
    )
    flows = []
    interface_ids = [spec.interface_id for spec in interfaces]
    for index in range(NUM_FLOWS):
        count = rng.randint(1, NUM_INTERFACES)
        willing = tuple(sorted(rng.sample(interface_ids, count)))
        flows.append(
            FlowSpec(
                f"flow{index:02d}",
                weight=rng.choice([0.5, 1.0, 2.0, 4.0]),
                interfaces=willing,
            )
        )
    return Scenario(
        name="scale",
        interfaces=interfaces,
        flows=tuple(flows),
        duration=DURATION,
        seed=seed,
    )


@pytest.fixture(scope="module")
def big_result():
    scenario = build_large_scenario()
    # The counter variant is the exact one on dense random topologies.
    result = run_scenario(
        scenario, lambda: MiDrrScheduler(exclusion="counter")
    )
    return scenario, result


class TestAtScale:
    def test_pi_never_violated(self, big_result):
        scenario, result = big_result
        willing = {
            spec.flow_id: set(spec.interfaces) for spec in scenario.flows
        }
        for (flow_id, interface_id), amount in result.stats.service_matrix().items():
            assert interface_id in willing[flow_id], (
                f"{flow_id} served {amount} B on unwilling {interface_id}"
            )

    def test_work_conservation(self, big_result):
        scenario, result = big_result
        used_ids = {
            spec.interface_id
            for spec in scenario.interfaces
            if any(
                spec.interface_id in flow.interfaces for flow in scenario.flows
            )
        }
        for spec in scenario.interfaces:
            if spec.interface_id not in used_ids:
                continue
            sent = result.stats.interface_bytes(spec.interface_id) * 8
            utilization = sent / (spec.rate_bps * DURATION)
            assert utilization > 0.95, (
                f"{spec.interface_id} at {utilization:.1%}"
            )

    def test_rates_match_exact_maxmin(self, big_result):
        scenario, result = big_result
        reference = weighted_maxmin(
            {
                spec.flow_id: (spec.weight, spec.interfaces)
                for spec in scenario.flows
            },
            scenario.capacities(),
        )
        for spec in scenario.flows:
            measured = result.rate(spec.flow_id, WARMUP, DURATION)
            expected = reference.rate(spec.flow_id)
            assert measured == pytest.approx(expected, rel=0.10), (
                f"{spec.flow_id}: {measured / 1e6:.2f} vs {expected / 1e6:.2f} Mb/s"
            )

    def test_theorem2_conditions(self, big_result):
        scenario, result = big_result
        prefs = PreferenceSet(scenario.interface_ids())
        for spec in scenario.flows:
            prefs.add_flow(
                spec.flow_id, weight=spec.weight, interfaces=spec.interfaces
            )
        matrix = result.stats.pair_service_in_window(WARMUP, DURATION)
        violations = check_maxmin_conditions(
            matrix,
            scenario.weights(),
            prefs,
            window=DURATION - WARMUP,
            rel_tolerance=0.15,
        )
        assert not violations, "\n".join(violations[:5])

    def test_decision_telemetry_sane(self, big_result):
        scenario, result = big_result
        scheduler = result.engine.scheduler
        examined = scheduler.decision_flows_examined
        assert examined, "no decisions recorded"
        # Bounded skip-scan: never more than the cap × flow count.
        assert max(examined) <= 66 * NUM_FLOWS + 1


class TestTraceDrivenChurn:
    def test_smartphone_trace_drives_flow_churn(self):
        """Flows arrive/depart per the Figure 7 workload model; the
        engine must stay work-conserving throughout."""
        from repro.trace.smartphone import (
            DeviceTraceConfig,
            SmartphoneTraceGenerator,
        )

        config = DeviceTraceConfig(duration=240.0, mean_gap=60.0)
        intervals = SmartphoneTraceGenerator(config, seed=3).generate()[:40]
        assert intervals, "trace generated no flows"
        horizon = 30.0
        scale = horizon / max(interval.end for interval in intervals)
        flows = []
        for index, interval in enumerate(intervals):
            start = interval.start * scale
            length = max(0.5, interval.duration * scale)
            # Size the transfer so the flow stays alive roughly its
            # trace lifetime at a 1 Mb/s-ish share.
            flows.append(
                FlowSpec(
                    f"t{index:02d}",
                    start_time=round(start, 3),
                    traffic=TrafficSpec(
                        "bulk", total_bytes=max(15_000, int(1e6 * length / 8))
                    ),
                )
            )
        scenario = Scenario(
            name="trace-churn",
            interfaces=(
                InterfaceSpec("wifi", mbps(10)),
                InterfaceSpec("lte", mbps(5)),
            ),
            flows=tuple(flows),
            duration=horizon,
        )
        result = run_scenario(scenario, MiDrrScheduler)
        # Every byte offered was eventually served (no stuck flows).
        total_offered = sum(spec.traffic.total_bytes for spec in flows)
        total_served = sum(
            result.stats.bytes_sent(spec.flow_id) for spec in flows
        )
        served_fraction = total_served / total_offered
        assert served_fraction > 0.95
        # And most flows completed within the horizon.
        assert len(result.completions) >= 0.8 * len(flows)
