"""Tests for the fluid reference simulator and the theory artifacts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, FairnessError
from repro.fairness.fluid import (
    FluidCapacityStep,
    FluidFlow,
    FluidSimulator,
    max_service_lag,
)
from repro.fairness.theory import (
    fate_sharing_holds,
    lemma_bounds,
    theorem1_counterexample,
)
from repro.units import mbps


class TestFluidSimulator:
    def test_static_allocation(self):
        simulator = FluidSimulator(
            {"if1": mbps(3), "if2": mbps(10)},
            [
                FluidFlow("a", interfaces=("if1",)),
                FluidFlow("b", weight=2.0),
                FluidFlow("c", interfaces=("if2",)),
            ],
        )
        result = simulator.run(10.0)
        assert result.rate_at("a", 5.0) == pytest.approx(mbps(3))
        assert result.rate_at("b", 5.0) == pytest.approx(mbps(20 / 3))
        assert result.cumulative_service("a", 10.0) == pytest.approx(
            mbps(3) * 10 / 8
        )

    def test_figure6_fluid_trajectory(self):
        """The whole Figure 6 timeline, exactly, with zero packets."""
        a_bytes = mbps(3) * 66 / 8
        b_bytes = (mbps(20 / 3) * 66 + mbps(26 / 3) * 19) / 8
        simulator = FluidSimulator(
            {"if1": mbps(3), "if2": mbps(10)},
            [
                FluidFlow("a", interfaces=("if1",), total_bytes=a_bytes),
                FluidFlow("b", weight=2.0, total_bytes=b_bytes),
                FluidFlow("c", interfaces=("if2",)),
            ],
        )
        result = simulator.run(100.0)
        assert result.completions["a"] == pytest.approx(66.0, rel=1e-6)
        assert result.completions["b"] == pytest.approx(85.0, rel=1e-6)
        assert result.rate_at("b", 50.0) == pytest.approx(mbps(20 / 3))
        assert result.rate_at("b", 70.0) == pytest.approx(mbps(26 / 3))
        assert result.rate_at("c", 90.0) == pytest.approx(mbps(10))

    def test_late_arrival(self):
        simulator = FluidSimulator(
            {"if1": mbps(2)},
            [FluidFlow("early"), FluidFlow("late", start_time=5.0)],
        )
        result = simulator.run(10.0)
        assert result.rate_at("early", 2.0) == pytest.approx(mbps(2))
        assert result.rate_at("early", 7.0) == pytest.approx(mbps(1))
        assert result.rate_at("late", 2.0) == 0.0
        assert result.rate_at("late", 7.0) == pytest.approx(mbps(1))

    def test_capacity_step(self):
        simulator = FluidSimulator(
            {"if1": mbps(1)},
            [FluidFlow("a")],
            capacity_steps=[FluidCapacityStep(5.0, "if1", mbps(4))],
        )
        result = simulator.run(10.0)
        assert result.rate_at("a", 2.0) == pytest.approx(mbps(1))
        assert result.rate_at("a", 7.0) == pytest.approx(mbps(4))
        total = result.cumulative_service("a", 10.0)
        assert total == pytest.approx((mbps(1) * 5 + mbps(4) * 5) / 8)

    def test_average_rate(self):
        simulator = FluidSimulator({"if1": mbps(2)}, [FluidFlow("a")])
        result = simulator.run(10.0)
        assert result.average_rate("a", 2.0, 8.0) == pytest.approx(mbps(2))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FluidSimulator({}, [])
        with pytest.raises(ConfigurationError):
            FluidSimulator({"if1": 1e6}, [FluidFlow("a"), FluidFlow("a")])
        with pytest.raises(ConfigurationError):
            FluidSimulator(
                {"if1": 1e6},
                [FluidFlow("a")],
                capacity_steps=[FluidCapacityStep(1.0, "nope", 2e6)],
            )
        with pytest.raises(ConfigurationError):
            FluidSimulator({"if1": 1e6}, [FluidFlow("a")]).run(0.0)


class TestPacketizedAgainstFluid:
    def test_midrr_service_lag_bounded_over_time(self):
        """System-level Lemma check: miDRR's cumulative service stays
        within a handful of packets of the fluid ideal at all times."""
        from repro.core.runner import run_scenario
        from repro.core.scenario import FlowSpec, InterfaceSpec, Scenario
        from repro.schedulers.midrr import MiDrrScheduler

        scenario = Scenario(
            interfaces=(InterfaceSpec("if1", mbps(3)), InterfaceSpec("if2", mbps(10))),
            flows=(
                FlowSpec("a", weight=1.0, interfaces=("if1",)),
                FlowSpec("b", weight=2.0),
                FlowSpec("c", weight=1.0, interfaces=("if2",)),
            ),
            duration=20.0,
        )
        packet_result = run_scenario(scenario, MiDrrScheduler)

        fluid = FluidSimulator(
            scenario.capacities(),
            [
                FluidFlow(spec.flow_id, weight=spec.weight, interfaces=spec.interfaces)
                for spec in scenario.flows
            ],
        ).run(20.0)

        measured = {}
        for checkpoint in (2.0, 5.0, 10.0, 15.0, 20.0):
            measured[checkpoint] = {
                spec.flow_id: packet_result.stats.service_in_window(
                    spec.flow_id, 0.0, checkpoint
                )
                for spec in scenario.flows
            }
        lags = max_service_lag(fluid, measured)
        # A quantum per weight plus a few MTUs of slop; generous x4.
        bound = 4 * (2 * 1500 + 1500)
        for flow_id, lag in lags.items():
            assert lag < bound, f"{flow_id} lag {lag} B exceeds {bound}"


class TestTheorem1:
    def test_finish_order_flips(self):
        future_1, future_2 = theorem1_counterexample()
        assert future_1.first_to_finish() == "b"
        assert future_2.first_to_finish() == "a"

    def test_future2_rates_match_paper(self):
        _, future_2 = theorem1_counterexample()
        # "flow a ... will remain at 1 Mb/s. Meanwhile flow b's rate
        # reduces to 1/4 Mb/s."
        assert future_2.rates["a"] == pytest.approx(1e6)
        assert future_2.rates["b"] == pytest.approx(0.25e6)

    def test_scales_with_capacity(self):
        future_1, future_2 = theorem1_counterexample(capacity_bps=8e6,
                                                     packet_bits_a=8e6,
                                                     packet_bits_b=4e6)
        assert future_1.first_to_finish() != future_2.first_to_finish()


class TestLemmaBounds:
    def test_values(self):
        bounds = lemma_bounds(quantum_base=1500.0)
        assert bounds["lemma5_lower"] == -3000.0
        assert bounds["lemma6_bound"] == 4500.0

    def test_validation(self):
        with pytest.raises(FairnessError):
            lemma_bounds(quantum_base=0)


class TestFateSharing:
    def test_holds_without_preferences(self):
        assert fate_sharing_holds({"if1": 1e6, "if2": 1e6})

    def test_holds_single_interface(self):
        assert fate_sharing_holds({"if1": 5e6}, num_initial_flows=3)

    def test_validation(self):
        with pytest.raises(FairnessError):
            fate_sharing_holds({"if1": 1e6}, num_initial_flows=0)


class TestFluidProperties:
    def test_capacity_conservation_random_instances(self):
        """Backlogged fluid flows consume exactly the reachable capacity."""
        import random

        from hypothesis import given, settings, strategies as st

        rng = random.Random(0)
        for trial in range(20):
            num_ifaces = rng.randint(1, 4)
            capacities = {
                f"if{j}": mbps(rng.randint(1, 10)) for j in range(num_ifaces)
            }
            iface_ids = list(capacities)
            flows = []
            for index in range(rng.randint(1, 5)):
                count = rng.randint(1, num_ifaces)
                willing = tuple(rng.sample(iface_ids, count))
                flows.append(
                    FluidFlow(
                        f"f{index}",
                        weight=rng.choice([1.0, 2.0]),
                        interfaces=willing,
                    )
                )
            result = FluidSimulator(capacities, flows).run(10.0)
            reachable = sum(
                capacity
                for interface_id, capacity in capacities.items()
                if any(interface_id in flow.interfaces for flow in flows)
            )
            total_served_bits = sum(
                result.cumulative_service(flow.flow_id, 10.0) * 8
                for flow in flows
            )
            assert total_served_bits == pytest.approx(reachable * 10.0, rel=1e-9)

    def test_rate_at_boundaries(self):
        simulator = FluidSimulator({"if1": mbps(2)}, [FluidFlow("a")])
        result = simulator.run(10.0)
        assert result.rate_at("a", 0.0) == pytest.approx(mbps(2))
        assert result.rate_at("a", 10.0) == pytest.approx(mbps(2))
        assert result.rate_at("a", 11.0) == 0.0
        assert result.rate_at("ghost", 5.0) == 0.0

    def test_cumulative_service_monotone(self):
        simulator = FluidSimulator(
            {"if1": mbps(3)},
            [FluidFlow("a", total_bytes=mbps(3) * 4 / 8), FluidFlow("b")],
        )
        result = simulator.run(10.0)
        previous = 0.0
        for t in [0.5 * k for k in range(21)]:
            current = result.cumulative_service("b", t)
            assert current >= previous - 1e-9
            previous = current


@st.composite
def fluid_scenario(draw):
    """A random piecewise scenario: staggered arrivals, finite flows,
    capacity steps (including outages)."""
    iface_count = draw(st.integers(min_value=1, max_value=3))
    capacities = {
        f"if{j}": mbps(draw(st.integers(min_value=1, max_value=10)))
        for j in range(iface_count)
    }
    iface_ids = list(capacities)
    flows = []
    for index in range(draw(st.integers(min_value=1, max_value=4))):
        willing = draw(
            st.one_of(
                st.none(),
                st.lists(
                    st.sampled_from(iface_ids),
                    min_size=1,
                    max_size=iface_count,
                    unique=True,
                ).map(tuple),
            )
        )
        flows.append(
            FluidFlow(
                f"f{index}",
                weight=draw(st.sampled_from([0.5, 1.0, 2.0])),
                interfaces=willing,
                start_time=draw(st.sampled_from([0.0, 1.5, 4.0])),
                total_bytes=draw(
                    st.one_of(st.none(), st.sampled_from([1e5, 1e6, 5e6]))
                ),
            )
        )
    steps = [
        FluidCapacityStep(
            time=draw(st.sampled_from([2.0, 3.5, 6.0, 8.0])),
            interface_id=draw(st.sampled_from(iface_ids)),
            rate_bps=mbps(draw(st.integers(min_value=0, max_value=8))),
        )
        for _ in range(draw(st.integers(min_value=0, max_value=3)))
    ]
    return capacities, flows, steps


class TestRateAtConservation:
    """Byte conservation pins the rate_at boundary semantics.

    ``cumulative_service`` integrates the segments directly; sampling
    ``rate_at`` at every segment's *start* (an exact boundary) and
    summing rate x span must reproduce it bit for bit. The pre-fix
    lookup shifted boundary times into the following segment, so the
    two disagreed on any scenario whose rates change over time.
    """

    DURATION = 10.0

    @settings(max_examples=60, deadline=None)
    @given(scenario=fluid_scenario())
    def test_rate_at_integrates_to_cumulative_service(self, scenario):
        capacities, flows, steps = scenario
        result = FluidSimulator(capacities, flows, steps).run(self.DURATION)
        for flow in flows:
            integral_bits = sum(
                result.rate_at(flow.flow_id, segment.start)
                * (segment.end - segment.start)
                for segment in result.segments
            )
            served = result.cumulative_service(flow.flow_id, self.DURATION)
            assert integral_bits / 8 == pytest.approx(
                served, rel=1e-9, abs=1e-6
            )

    @settings(max_examples=60, deadline=None)
    @given(scenario=fluid_scenario())
    def test_rate_at_is_right_continuous_at_boundaries(self, scenario):
        capacities, flows, steps = scenario
        result = FluidSimulator(capacities, flows, steps).run(self.DURATION)
        for segment in result.segments:
            for flow in flows:
                assert result.rate_at(flow.flow_id, segment.start) == (
                    segment.rates.get(flow.flow_id, 0.0)
                )

    @settings(max_examples=60, deadline=None)
    @given(scenario=fluid_scenario())
    def test_rate_at_final_end_and_beyond(self, scenario):
        capacities, flows, steps = scenario
        result = FluidSimulator(capacities, flows, steps).run(self.DURATION)
        last = result.segments[-1]
        for flow in flows:
            # Exactly `duration` still reads the final segment ...
            assert result.rate_at(flow.flow_id, last.end) == (
                last.rates.get(flow.flow_id, 0.0)
            )
            # ... but anything meaningfully past it is outside the window.
            assert result.rate_at(flow.flow_id, last.end + 1e-6) == 0.0
            assert result.rate_at(flow.flow_id, -1.0) == 0.0

    def test_rate_changes_at_an_exact_step_boundary(self):
        # Regression for the off-by-one-segment bug in its simplest
        # form: a capacity step at t=5 must be visible *at* t=5.
        result = FluidSimulator(
            {"if1": mbps(2)},
            [FluidFlow("a")],
            [FluidCapacityStep(time=5.0, interface_id="if1", rate_bps=mbps(6))],
        ).run(10.0)
        assert result.rate_at("a", 5.0 - 1e-3) == pytest.approx(mbps(2))
        assert result.rate_at("a", 5.0) == pytest.approx(mbps(6))
