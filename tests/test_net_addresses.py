"""Unit tests for MAC/IPv4 address types."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import HeaderError
from repro.net.addresses import MAC_BROADCAST, Ipv4Address, MacAddress


class TestMacAddress:
    def test_parse_and_str_roundtrip(self):
        mac = MacAddress.parse("aa:bb:cc:dd:ee:ff")
        assert str(mac) == "aa:bb:cc:dd:ee:ff"

    def test_bytes_roundtrip(self):
        mac = MacAddress.parse("02:00:00:01:02:03")
        assert MacAddress.from_bytes(mac.to_bytes()) == mac

    def test_broadcast(self):
        assert str(MAC_BROADCAST) == "ff:ff:ff:ff:ff:ff"

    @pytest.mark.parametrize("bad", ["", "aa:bb", "gg:00:00:00:00:00", "aabbccddeeff"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(HeaderError):
            MacAddress.parse(bad)

    def test_out_of_range_rejected(self):
        with pytest.raises(HeaderError):
            MacAddress(1 << 48)

    def test_from_bytes_wrong_length(self):
        with pytest.raises(HeaderError):
            MacAddress.from_bytes(b"\x00" * 5)

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_roundtrip_property(self, value):
        mac = MacAddress(value)
        assert MacAddress.parse(str(mac)) == mac
        assert MacAddress.from_bytes(mac.to_bytes()) == mac


class TestIpv4Address:
    def test_parse_and_str_roundtrip(self):
        addr = Ipv4Address.parse("192.168.1.23")
        assert str(addr) == "192.168.1.23"

    def test_bytes_roundtrip(self):
        addr = Ipv4Address.parse("10.0.0.1")
        assert Ipv4Address.from_bytes(addr.to_bytes()) == addr

    @pytest.mark.parametrize("bad", ["", "1.2.3", "256.1.1.1", "a.b.c.d", "1.2.3.4.5"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(HeaderError):
            Ipv4Address.parse(bad)

    def test_out_of_range_rejected(self):
        with pytest.raises(HeaderError):
            Ipv4Address(1 << 32)

    def test_ordering(self):
        assert Ipv4Address.parse("10.0.0.1") < Ipv4Address.parse("10.0.0.2")

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_roundtrip_property(self, value):
        addr = Ipv4Address(value)
        assert Ipv4Address.parse(str(addr)) == addr
        assert Ipv4Address.from_bytes(addr.to_bytes()) == addr
