"""Unit tests for timers and periodic processes."""

import pytest

from repro.errors import SimulationError
from repro.sim.process import PeriodicProcess, Timer


class TestTimer:
    def test_fires_after_delay(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.5)
        sim.run()
        assert fired == [2.5]

    def test_cancel_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_restart_rearms(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        timer.start(5.0)  # re-arm; only the later one fires
        sim.run()
        assert fired == [5.0]

    def test_armed_property(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        timer.start(1.0)
        assert timer.armed
        timer.cancel()
        assert not timer.armed

    def test_timer_not_armed_after_fire(self, sim):
        timer = Timer(sim, lambda: None)
        timer.start(1.0)
        sim.run()
        assert not timer.armed


class TestPeriodicProcess:
    def test_ticks_at_period(self, sim):
        ticks = []
        process = PeriodicProcess(sim, 1.0, ticks.append)
        process.start()
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_fire_immediately(self, sim):
        ticks = []
        process = PeriodicProcess(sim, 1.0, ticks.append, fire_immediately=True)
        process.start()
        sim.run(until=2.5)
        assert ticks == [0.0, 1.0, 2.0]

    def test_stop_ends_ticking(self, sim):
        ticks = []
        process = PeriodicProcess(sim, 1.0, ticks.append)
        process.start()
        sim.schedule(2.5, process.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_stop_from_callback(self, sim):
        ticks = []

        def tick(now):
            ticks.append(now)
            if len(ticks) == 2:
                process.stop()

        process = PeriodicProcess(sim, 1.0, tick)
        process.start()
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_start_is_idempotent(self, sim):
        ticks = []
        process = PeriodicProcess(sim, 1.0, ticks.append)
        process.start()
        process.start()
        sim.run(until=2.5)
        assert ticks == [1.0, 2.0]

    def test_invalid_period_rejected(self, sim):
        with pytest.raises(SimulationError):
            PeriodicProcess(sim, 0.0, lambda now: None)

    def test_running_property(self, sim):
        process = PeriodicProcess(sim, 1.0, lambda now: None)
        assert not process.running
        process.start()
        assert process.running
        process.stop()
        assert not process.running
