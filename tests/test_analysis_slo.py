"""The latency-SLO report: statistics helpers and determinism contract."""

import math

import pytest

from repro.analysis.slo import (
    DEFAULT_DEADLINE_BUDGETS,
    SCHEDULER_FAMILY,
    SloReport,
    SloRow,
    jain_index,
    p99,
    run_latency_slo,
)
from repro.errors import ConfigurationError


class TestStatistics:
    def test_p99_empty_sample(self):
        assert p99([]) == 0.0

    def test_p99_nearest_rank(self):
        values = list(range(1, 101))  # 1..100
        assert p99(values) == 99
        assert p99([7.0]) == 7.0
        assert p99([3.0, 1.0, 2.0]) == 3.0

    def test_jain_uniform_is_one(self):
        assert jain_index({"a": 5.0, "b": 5.0, "c": 5.0}) == pytest.approx(1.0)

    def test_jain_skew_is_less_than_one(self):
        skewed = jain_index({"a": 10.0, "b": 1.0})
        assert 0.5 < skewed < 1.0

    def test_jain_degenerate_cases(self):
        assert jain_index({}) == 1.0
        assert jain_index({"a": 0.0, "b": 0.0}) == 1.0

    def test_jain_clamps_nonfinite_rates(self):
        # Regression: a NaN (0/0 normalization) or inf (zero weight)
        # used to flow straight into the squares; now it scores as a
        # zero share and the index stays finite.
        value = jain_index({"a": float("nan"), "b": 5.0, "c": float("inf")})
        assert math.isfinite(value)
        assert value == pytest.approx(jain_index({"a": 0.0, "b": 5.0, "c": 0.0}))
        assert jain_index({"a": float("nan")}) == 1.0

    def test_nonfinite_rates_cannot_poison_the_report_hash(self):
        # The hash covers jain_fairness!r; a NaN there would make the
        # report hash unstable (nan != nan) and unreproducible.
        poisoned = jain_index({"a": float("nan"), "b": 1.0, "c": 2.0})
        clean = jain_index({"a": 0.0, "b": 1.0, "c": 2.0})
        row = dict(
            scheduler="midrr",
            deadline_packets=10,
            deadline_misses=0,
            p99_miss_lateness=0.0,
            bytes_total=1000,
            admission_rejected=0,
            admission_shed=0,
            alerts=0,
            invariant_violations=0,
        )
        report_a = SloReport(seed=1, duration=20.0, budgets={"f": 0.1})
        report_a.rows.append(SloRow(jain_fairness=poisoned, **row))
        report_b = SloReport(seed=1, duration=20.0, budgets={"f": 0.1})
        report_b.rows.append(SloRow(jain_fairness=clean, **row))
        assert "nan" not in report_a.rows[0].signature_line()
        assert report_a.report_hash() == report_b.report_hash()


class TestReportShape:
    def make_row(self, **overrides):
        base = dict(
            scheduler="midrr",
            deadline_packets=100,
            deadline_misses=3,
            p99_miss_lateness=0.25,
            jain_fairness=0.97,
            bytes_total=1_000_000,
            admission_rejected=0,
            admission_shed=0,
            alerts=0,
            invariant_violations=0,
        )
        base.update(overrides)
        return SloRow(**base)

    def test_miss_rate(self):
        assert self.make_row().miss_rate == pytest.approx(0.03)
        assert self.make_row(deadline_packets=0, deadline_misses=0).miss_rate == 0.0

    def test_hash_excludes_wall_clock_fields(self):
        # alerts counts depend on watchdog wall-phase and are shown but
        # never hashed; two reports differing only there hash equal.
        report_a = SloReport(seed=1, duration=20.0, budgets={"f": 0.1})
        report_a.rows.append(self.make_row(alerts=0))
        report_b = SloReport(seed=1, duration=20.0, budgets={"f": 0.1})
        report_b.rows.append(self.make_row(alerts=5))
        assert report_a.report_hash() == report_b.report_hash()

    def test_hash_sensitive_to_outcomes(self):
        report_a = SloReport(seed=1, duration=20.0, budgets={"f": 0.1})
        report_a.rows.append(self.make_row())
        report_b = SloReport(seed=1, duration=20.0, budgets={"f": 0.1})
        report_b.rows.append(self.make_row(deadline_misses=4))
        assert report_a.report_hash() != report_b.report_hash()

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigurationError):
            run_latency_slo(schedulers=["edf", "nope"])

    def test_family_covers_all_archetypes(self):
        assert list(SCHEDULER_FAMILY) == [
            "fifo", "wfq", "drr", "static", "midrr", "edf", "qaware",
        ]
        assert set(DEFAULT_DEADLINE_BUDGETS) == {"pinned", "video", "bulk", "wire"}


@pytest.mark.slo
class TestSloSmoke:
    """Tier-1 smoke: a short two-scheduler sweep, hashed on both
    backends (the acceptance determinism contract)."""

    def test_report_deterministic_across_backends(self):
        reports = {
            backend: run_latency_slo(
                seed=5,
                duration=20.0,
                schedulers=["edf", "qaware"],
                queue_backend=backend,
            )
            for backend in ("heap", "calendar")
        }
        heap_report = reports["heap"]
        assert [row.scheduler for row in heap_report.rows] == ["edf", "qaware"]
        for row in heap_report.rows:
            assert row.deadline_packets > 0
            assert row.bytes_total > 0
            assert 0.0 < row.jain_fairness <= 1.0
        assert (
            heap_report.report_hash() == reports["calendar"].report_hash()
        ), "SLO report must be byte-identical across event-queue backends"
        text = heap_report.to_text()
        assert heap_report.report_hash() in text
        assert "edf" in text and "qaware" in text
