"""Unit tests for the watchdog and the miDRR invariant checker."""

import pytest

from repro.core.engine import SchedulingEngine
from repro.errors import WatchdogError
from repro.health.invariants import MiDrrInvariantChecker
from repro.health.watchdog import (
    ALERT_FLOW_STARVATION,
    ALERT_INTERFACE_STALL,
    ALERT_INVARIANT_VIOLATION,
    Watchdog,
)
from repro.net.flow import Flow
from repro.net.interface import Interface
from repro.net.sources import BulkSource
from repro.schedulers.midrr import MiDrrScheduler
from repro.units import mbps


def build_rig(sim, interfaces=1):
    """An engine with a continuously backlogged any-interface flow."""
    scheduler = MiDrrScheduler()
    engine = SchedulingEngine(sim, scheduler)
    for index in range(interfaces):
        engine.add_interface(Interface(sim, f"if{index + 1}", mbps(1)))
    flow = Flow("a")
    BulkSource(sim, flow)
    engine.add_flow(flow)
    return engine, scheduler, flow


class TestWatchdogConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"period": 0},
            {"period": -1},
            {"starvation_timeout": 0},
            {"stall_timeout": -2},
        ],
    )
    def test_invalid_config_rejected(self, sim, kwargs):
        engine, _, _ = build_rig(sim)
        with pytest.raises(WatchdogError):
            Watchdog(sim, engine, **kwargs)

    def test_start_stop(self, sim):
        engine, _, _ = build_rig(sim)
        watchdog = Watchdog(sim, engine, period=0.5)
        assert not watchdog.running
        watchdog.start()
        assert watchdog.running
        engine.start()
        sim.run(until=2.0)
        watchdog.stop()
        assert not watchdog.running
        ticks_at_stop = watchdog.ticks
        sim.run(until=4.0)
        assert watchdog.ticks == ticks_at_stop


class TestStarvationAndStall:
    def _starved_rig(self, sim, **watchdog_kwargs):
        """Backlogged flow the scheduler lost track of: the canonical
        starvation *and* work-conservation breach."""
        engine, scheduler, flow = build_rig(sim)
        scheduler.remove_flow("a")  # simulate a lost registration
        kwargs = dict(period=0.5, starvation_timeout=2.0, stall_timeout=2.0)
        kwargs.update(watchdog_kwargs)
        watchdog = Watchdog(sim, engine, **kwargs)
        watchdog.start()
        engine.start()
        return engine, watchdog

    def test_starvation_alert_raised(self, sim):
        _, watchdog = self._starved_rig(sim)
        sim.run(until=6.0)
        alerts = watchdog.alerts_of(ALERT_FLOW_STARVATION)
        assert alerts
        assert alerts[0].subject == "a"
        assert alerts[0].time >= 2.0  # not before the timeout
        assert "no service" in alerts[0].detail

    def test_interface_stall_alert_raised(self, sim):
        _, watchdog = self._starved_rig(sim)
        sim.run(until=6.0)
        alerts = watchdog.alerts_of(ALERT_INTERFACE_STALL)
        assert alerts
        assert alerts[0].subject == "if1"

    def test_repeat_alerts_are_rate_limited(self, sim):
        _, watchdog = self._starved_rig(sim)
        sim.run(until=10.0)
        # One starvation alert per starvation_timeout, not per tick.
        assert len(watchdog.alerts_of(ALERT_FLOW_STARVATION)) <= 5

    def test_on_alert_listener_sees_everything(self, sim):
        _, watchdog = self._starved_rig(sim)
        seen = []
        watchdog.on_alert(seen.append)
        sim.run(until=6.0)
        assert seen == watchdog.alerts

    def test_strict_mode_escalates(self, sim):
        self._starved_rig(sim, strict=True)
        with pytest.raises(WatchdogError):
            sim.run(until=6.0)

    def test_healthy_run_is_silent(self, sim):
        engine, scheduler, _ = build_rig(sim, interfaces=2)
        checker = MiDrrInvariantChecker(scheduler, engine=engine)
        watchdog = Watchdog(sim, engine, period=0.5, invariant_checker=checker)
        watchdog.start()
        engine.start()
        sim.run(until=10.0)
        assert watchdog.alerts == []
        assert watchdog.ticks >= 15
        assert checker.checks_run == watchdog.ticks
        assert checker.violations == []

    def test_quarantined_flow_is_exempt(self, sim):
        engine, _, _ = build_rig(sim, interfaces=2)
        pinned = Flow("p", allowed_interfaces=("if1",))
        BulkSource(sim, pinned)
        engine.add_flow(pinned)
        watchdog = Watchdog(
            sim, engine, period=0.5, starvation_timeout=2.0, stall_timeout=2.0
        )
        sim.schedule(1.0, engine.interfaces["if1"].bring_down)
        watchdog.start()
        engine.start()
        sim.run(until=8.0)
        assert "p" in engine.quarantined_flows
        # Parked by design: never reported starved, and the downed
        # interface is never reported stalled.
        assert watchdog.alerts == []

    def test_repeats_collapse_into_escalating_series(self, sim):
        _, watchdog = self._starved_rig(sim)
        sim.run(until=10.0)
        alerts = watchdog.alerts_of(ALERT_FLOW_STARVATION)
        # Escalating gaps: first at the timeout (~2 s), then the gap
        # doubles — ~4 s, ~8 s. Three emissions in 10 s, not sixteen.
        assert len(alerts) == 3
        assert alerts[0].time == pytest.approx(2.0, abs=0.5)
        assert alerts[1].time == pytest.approx(4.0, abs=0.5)
        assert alerts[2].time == pytest.approx(8.0, abs=0.5)
        # Ticks that fell inside a gap were counted, not lost.
        assert watchdog.alerts_suppressed > 0
        assert "repeats suppressed" in alerts[1].detail

    def test_alert_reports_growing_outage_length(self, sim):
        _, watchdog = self._starved_rig(sim)
        sim.run(until=10.0)
        alerts = watchdog.alerts_of(ALERT_FLOW_STARVATION)
        outages = [
            float(alert.detail.split("for ")[1].split("s")[0])
            for alert in alerts
        ]
        # The starvation clock keeps running across emissions — each
        # alert reports the true outage length, not the gap since the
        # previous alert.
        assert outages == sorted(outages)
        assert outages[-1] > outages[0]

    def test_gap_is_capped(self, sim):
        _, watchdog = self._starved_rig(sim, max_alert_gap=2.0)
        sim.run(until=10.0)
        alerts = watchdog.alerts_of(ALERT_FLOW_STARVATION)
        # Capped at 2 s the series never escalates past one alert per
        # two seconds: emissions at ~2, 4, 6, 8.
        assert len(alerts) == 4

    def test_series_resets_on_progress(self, sim):
        engine, watchdog = self._starved_rig(sim)
        sim.run(until=5.0)
        first_phase = len(watchdog.alerts_of(ALERT_FLOW_STARVATION))
        assert first_phase >= 1
        # Service resumes: re-register the flow, let it drain a while.
        engine.scheduler.add_flow(engine.flows["a"])
        sim.run(until=7.0)
        # Then starve it again — the escalation series must restart
        # from the base gap, emitting promptly rather than waiting out
        # the previously escalated gap.
        engine.scheduler.remove_flow("a")
        sim.run(until=12.0)
        assert len(watchdog.alerts_of(ALERT_FLOW_STARVATION)) > first_phase

    def test_snapshot_restore_round_trip(self, sim):
        import json

        _, watchdog = self._starved_rig(sim)
        sim.run(until=6.0)
        state = json.loads(json.dumps(watchdog.snapshot_state()))
        restored = Watchdog(sim, watchdog._engine)
        restored.restore_state(state)
        assert restored.ticks == watchdog.ticks
        assert restored.alerts == watchdog.alerts
        assert restored.alerts_suppressed == watchdog.alerts_suppressed
        assert restored.snapshot_state() == watchdog.snapshot_state()

    def test_invariant_violations_become_alerts(self, sim):
        engine, scheduler, _ = build_rig(sim)
        checker = MiDrrInvariantChecker(scheduler, engine=engine)
        watchdog = Watchdog(sim, engine, period=0.5, invariant_checker=checker)
        watchdog.start()
        engine.start()
        sim.run(until=1.0)
        # A key no live scheduling touches, so it survives until the tick.
        scheduler._deficit[("ghost", "if1")] = -5.0
        sim.run(until=1.6)
        alerts = watchdog.alerts_of(ALERT_INVARIANT_VIOLATION)
        assert alerts
        assert "negative deficit" in alerts[0].detail


class TestInvariantChecker:
    def test_healthy_state_is_clean(self, sim):
        engine, scheduler, _ = build_rig(sim, interfaces=2)
        engine.start()
        sim.run(until=2.0)
        checker = MiDrrInvariantChecker(scheduler, engine=engine)
        assert checker.check() == []
        assert checker.checks_run == 1
        assert checker.violations == []

    def test_negative_deficit_flagged(self, sim):
        engine, scheduler, _ = build_rig(sim)
        engine.start()
        sim.run(until=1.0)
        scheduler._deficit[("a", "if1")] = -5.0
        violations = MiDrrInvariantChecker(scheduler).check()
        assert any("negative deficit" in v for v in violations)

    def test_service_flag_out_of_range_flagged(self, sim):
        engine, scheduler, _ = build_rig(sim)
        engine.start()
        sim.run(until=1.0)
        scheduler._service_flags[("a", "if1")] = 7
        violations = MiDrrInvariantChecker(scheduler).check()
        assert any("service flag" in v for v in violations)

    def test_drained_flow_holding_deficit_flagged(self, sim):
        engine, scheduler, _ = build_rig(sim)
        idle = Flow("idle")  # no source: never backlogged
        engine.add_flow(idle)
        scheduler._deficit[("idle", "if1")] = 10.0
        violations = MiDrrInvariantChecker(scheduler).check()
        assert any("drained flow 'idle'" in v for v in violations)

    def test_quarantined_flow_still_registered_flagged(self, sim):
        engine, scheduler, _ = build_rig(sim, interfaces=2)
        pinned = Flow("p", allowed_interfaces=("if1",))
        engine.add_flow(pinned)
        engine.interfaces["if1"].bring_down()
        assert "p" in engine.quarantined_flows
        assert not scheduler.has_flow("p")
        scheduler.add_flow(pinned)  # break the degradation contract by hand
        checker = MiDrrInvariantChecker(scheduler, engine=engine)
        violations = checker.check()
        assert any("quarantined flow 'p'" in v for v in violations)
        assert checker.violations == violations
