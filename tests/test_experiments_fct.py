"""Tests for the trace-driven FCT extension experiment."""

import pytest

from repro.experiments import fct


class TestWorkloadBuilder:
    def test_deterministic(self):
        first = fct.build_workload(seed=3)
        second = fct.build_workload(seed=3)
        assert first == second

    def test_seed_changes_workload(self):
        assert fct.build_workload(seed=1) != fct.build_workload(seed=2)

    def test_flow_count_respected(self):
        scenario = fct.build_workload(seed=0, max_flows=20)
        assert len(scenario.flows) == 20

    def test_elephant_added_on_request(self):
        scenario = fct.build_workload(seed=0, with_elephant=True)
        assert any(spec.flow_id == "elephant" for spec in scenario.flows)
        plain = fct.build_workload(seed=0, with_elephant=False)
        assert not any(spec.flow_id == "elephant" for spec in plain.flows)

    def test_preference_mix_present(self):
        scenario = fct.build_workload(seed=0)
        willing_sets = {spec.interfaces for spec in scenario.flows}
        assert ("wifi",) in willing_sets
        assert None in willing_sets

    def test_all_transfers_finite(self):
        scenario = fct.build_workload(seed=0)
        for spec in scenario.flows:
            assert spec.traffic.total_bytes is not None
            assert spec.traffic.total_bytes >= 1500

    def test_arrivals_within_horizon(self):
        scenario = fct.build_workload(seed=0)
        assert all(spec.start_time < fct.DURATION for spec in scenario.flows)


class TestFctRun:
    @pytest.fixture(scope="class")
    def results(self):
        return fct.run(seed=1, max_flows=40, with_elephant=True)

    def test_every_scheduler_ran(self, results):
        assert set(results) == set(fct.SCHEDULERS)

    def test_midrr_completes_everything(self, results):
        assert results["miDRR"].completion_fraction() == 1.0

    def test_elephant_excluded_from_fct(self, results):
        for result in results.values():
            assert "elephant" not in result.completion_times

    def test_fct_statistics_consistent(self, results):
        for result in results.values():
            if result.completed == 0:
                continue
            assert result.median() <= result.p90()
            assert all(value > 0 for value in result.completion_times.values())

    def test_midrr_not_dominated(self, results):
        midrr = results["miDRR"]
        for label, result in results.items():
            assert result.completed <= midrr.completed, label


class TestTransferSizes:
    def test_lognormal_sizes_by_app(self):
        import random

        from repro.trace.smartphone import APP_MEDIAN_BYTES, FlowInterval

        rng = random.Random(0)
        video = FlowInterval(0.0, 10.0, "video")
        sizes = [video.transfer_bytes(rng) for _ in range(300)]
        assert min(sizes) >= 1500
        # Median lands within a factor ~2 of the configured median.
        sizes.sort()
        median = sizes[len(sizes) // 2]
        target = APP_MEDIAN_BYTES["video"]
        assert target / 2 < median < target * 2

    def test_unknown_app_uses_default(self):
        import random

        from repro.trace.smartphone import FlowInterval

        size = FlowInterval(0.0, 1.0, "mystery").transfer_bytes(random.Random(1))
        assert size >= 1500
