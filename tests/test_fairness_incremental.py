"""Tests for the incremental (warm-started) weighted max-min solver.

Everything here runs with ``debug=True`` so the solver self-asserts
exact agreement with :func:`weighted_maxmin` after every single delta;
the explicit equality checks in the tests are then documentation of
*what* exact means (Fraction rates, identical idle sets).
"""

import itertools
import json
import random
from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import FairnessError
from repro.fairness.incremental import IncrementalMaxMinSolver
from repro.fairness.waterfill import weighted_maxmin


def assert_matches_scratch(solver):
    scratch = weighted_maxmin(
        {
            flow_id: (solver.weight_of(flow_id), solver.row_of(flow_id))
            for flow_id in solver.flow_ids
        },
        {j: solver.capacity(j) for j in solver.interface_ids},
    )
    assert solver.allocation.rates == scratch.rates
    assert solver.allocation.idle_interfaces == scratch.idle_interfaces


class TestDeltas:
    def test_empty_instance(self):
        solver = IncrementalMaxMinSolver(debug=True)
        assert solver.allocation.rates == {}
        assert solver.deltas_total == 0
        assert solver.incremental_ratio == 1.0

    def test_arrival_in_upper_stage_is_incremental(self):
        solver = IncrementalMaxMinSolver(
            {"if1": 1e6, "if2": 8e6},
            {"a": (1.0, ["if1"]), "b": (1.0, ["if2"])},
            debug=True,
        )
        solver.add_flow("c", 1.0, ["if2"])
        assert solver.incremental_solves == 1
        assert solver.full_solves == 0
        assert solver.rate("b") == Fraction(4_000_000)
        assert solver.rate("c") == Fraction(4_000_000)
        assert solver.rate("a") == Fraction(1_000_000)

    def test_arrival_with_open_row_forces_full_solve(self):
        solver = IncrementalMaxMinSolver(
            {"if1": 1e6, "if2": 8e6},
            {"a": (1.0, ["if1"])},
            debug=True,
        )
        # A None row reaches every interface, including stage 0.
        solver.add_flow("roamer", 1.0, None)
        assert solver.full_solves == 1
        assert solver.rate("roamer") == Fraction(8_000_000)

    def test_departure_from_upper_stage_is_incremental(self):
        solver = IncrementalMaxMinSolver(
            {"if1": 1e6, "if2": 8e6},
            {"a": (1.0, ["if1"]), "b": (1.0, ["if2"]), "c": (1.0, ["if2"])},
            debug=True,
        )
        solver.remove_flow("c")
        assert solver.incremental_solves == 1
        assert solver.rate("b") == Fraction(8_000_000)
        assert not solver.has_flow("c")

    def test_reweight_is_scoped_to_the_flows_stage(self):
        solver = IncrementalMaxMinSolver(
            {"if1": 1e6, "if2": 8e6},
            {"a": (1.0, ["if1"]), "b": (1.0, ["if2"]), "c": (1.0, ["if2"])},
            debug=True,
        )
        solver.set_weight("b", 3.0)
        assert solver.incremental_solves == 1
        assert solver.rate("b") == Fraction(6_000_000)
        assert solver.rate("c") == Fraction(2_000_000)

    def test_restriction_narrows_the_row(self):
        solver = IncrementalMaxMinSolver(
            {"if1": 1e6, "if2": 8e6},
            {"a": (1.0, ["if1"]), "b": (1.0, ["if1", "if2"])},
            debug=True,
        )
        solver.restrict_flow("b", ["if2"])
        assert solver.rate("b") == Fraction(8_000_000)
        assert solver.row_of("b") == frozenset({"if2"})

    def test_capacity_change_in_upper_stage_is_incremental(self):
        solver = IncrementalMaxMinSolver(
            {"if1": 1e6, "if2": 8e6},
            {"a": (1.0, ["if1"]), "b": (1.0, ["if2"])},
            debug=True,
        )
        solver.set_capacity("if2", 12e6)
        assert solver.incremental_solves == 1
        assert solver.rate("b") == Fraction(12_000_000)

    def test_outage_pins_the_confined_flow_at_zero(self):
        solver = IncrementalMaxMinSolver(
            {"if1": 1e6, "if2": 8e6},
            {"a": (1.0, ["if1"]), "b": (1.0, ["if2"])},
            debug=True,
        )
        solver.set_capacity("if2", 0)
        assert solver.rate("b") == 0
        assert solver.rate("a") == Fraction(1_000_000)

    def test_new_idle_interface_is_incremental(self):
        solver = IncrementalMaxMinSolver(
            {"if1": 1e6}, {"a": (1.0, ["if1"])}, debug=True
        )
        solver.set_capacity("if2", 2e6)
        assert solver.has_interface("if2")
        assert solver.incremental_solves == 1
        assert "if2" in solver.allocation.idle_interfaces

    def test_new_interface_reachable_by_open_rows(self):
        solver = IncrementalMaxMinSolver(
            {"if1": 1e6}, {"a": (1.0, None)}, debug=True
        )
        solver.set_capacity("if2", 2e6)
        assert solver.rate("a") == Fraction(3_000_000)


class TestFenceFallback:
    """Deltas that pull the suffix level below a kept level must fall
    back to a full solve — and still agree exactly with scratch."""

    def two_stage_solver(self):
        solver = IncrementalMaxMinSolver(
            {"if1": 1e6, "if2": 10e6},
            {"low": (1.0, ["if1"]), "high": (1.0, ["if2"])},
            debug=True,
        )
        levels = [float(s.level) for s in solver.allocation.stages]
        assert levels == [1e6, 10e6]
        return solver

    def test_reweight_below_the_fence(self):
        solver = self.two_stage_solver()
        # Normalized level of "high" becomes 10e6/100 = 1e5 < 1e6: the
        # stage order inverts, which the suffix cannot decide locally.
        solver.set_weight("high", 100.0)
        assert solver.fence_fallbacks == 1
        assert solver.rate("high") == Fraction(10_000_000)
        assert solver.rate("low") == Fraction(1_000_000)

    def test_capacity_collapse_below_the_fence(self):
        solver = self.two_stage_solver()
        solver.set_capacity("if2", 0.5e6)
        assert solver.fence_fallbacks == 1
        assert solver.rate("high") == Fraction(500_000)
        assert solver.rate("low") == Fraction(1_000_000)

    def test_arrival_storm_merges_clusters(self):
        solver = self.two_stage_solver()
        # Twenty arrivals on if2 drive its per-flow share to ~0.48e6,
        # below if1's 1e6 level: the clusters reorder around the new
        # bottleneck. Every post-breach delta still resolves exactly.
        before = solver.fence_fallbacks
        for index in range(20):
            solver.add_flow(f"n{index}", 1.0, ["if2"])
        assert solver.fence_fallbacks > before
        assert solver.rate("high") == Fraction(10_000_000, 21)
        assert solver.rate("low") == Fraction(1_000_000)
        assert_matches_scratch(solver)


class TestValidation:
    def test_duplicate_arrival_rejected(self):
        solver = IncrementalMaxMinSolver({"if1": 1e6}, {"a": (1.0, None)})
        with pytest.raises(FairnessError):
            solver.add_flow("a")

    def test_unknown_departure_rejected(self):
        solver = IncrementalMaxMinSolver({"if1": 1e6})
        with pytest.raises(FairnessError):
            solver.remove_flow("ghost")

    def test_nonpositive_weight_rejected(self):
        solver = IncrementalMaxMinSolver({"if1": 1e6}, {"a": (1.0, None)})
        with pytest.raises(FairnessError):
            solver.set_weight("a", 0.0)
        with pytest.raises(FairnessError):
            solver.add_flow("b", weight=-1.0)

    def test_row_without_any_known_interface_rejected(self):
        solver = IncrementalMaxMinSolver({"if1": 1e6}, {"a": (1.0, None)})
        with pytest.raises(FairnessError):
            solver.add_flow("b", interfaces=["nope"])
        with pytest.raises(FairnessError):
            solver.restrict_flow("a", ["nope"])

    def test_negative_capacity_rejected(self):
        solver = IncrementalMaxMinSolver({"if1": 1e6})
        with pytest.raises(FairnessError):
            solver.set_capacity("if1", -1.0)


class TestSnapshotRestore:
    def test_roundtrip_is_json_safe_and_exact(self):
        solver = IncrementalMaxMinSolver(
            {"if1": 1e6, "if2": 8e6},
            {"a": (1.5, ["if1"]), "b": (1.0, None)},
            debug=True,
        )
        solver.add_flow("c", 2.0, ["if2"])
        solver.set_capacity("if1", 0)
        snap = json.loads(json.dumps(solver.snapshot_state()))

        restored = IncrementalMaxMinSolver(debug=True)
        restored.restore_state(snap)
        assert restored.allocation.rates == solver.allocation.rates
        assert (
            restored.allocation.idle_interfaces
            == solver.allocation.idle_interfaces
        )
        assert restored.deltas_total == solver.deltas_total
        assert restored.incremental_solves == solver.incremental_solves
        assert restored.full_solves == solver.full_solves
        assert restored.fence_fallbacks == solver.fence_fallbacks
        # Restore re-derives the allocation without counting a solve.
        restored.add_flow("d", 1.0, ["if2"])
        assert restored.deltas_total == solver.deltas_total + 1

    def test_snapshot_preserves_exact_fractions(self):
        solver = IncrementalMaxMinSolver(
            {"if1": 1e6},
            {"a": (1.0, None), "b": (1.0, None), "c": (1.0, None)},
        )
        restored = IncrementalMaxMinSolver()
        restored.restore_state(solver.snapshot_state())
        assert restored.rate("a") == Fraction(1_000_000, 3)


class TestAcceptanceSequence:
    """The ISSUE acceptance run: a seeded 500-delta sequence where the
    incremental path resolves >= 80% of deltas, exact throughout."""

    def test_seeded_500_delta_sequence(self):
        rng = random.Random(20260809)
        tiers = 8
        caps = {f"if{k}": 1e6 * (4 ** k) for k in range(tiers)}
        flows = {f"seed{k}": (1.0, [f"if{k}"]) for k in range(tiers)}
        solver = IncrementalMaxMinSolver(caps, flows, debug=True)

        counter = itertools.count()
        extras = {k: [] for k in range(tiers)}  # non-seed pinned flows
        roamers = []

        for _ in range(500):
            if rng.random() < 0.08:
                # Occasional global churn: open-row flows reach stage 0
                # and force a full solve — the workload's noise floor.
                if roamers and rng.random() < 0.5:
                    solver.remove_flow(roamers.pop())
                else:
                    flow_id = f"r{next(counter)}"
                    solver.add_flow(flow_id, 1.0, None)
                    roamers.append(flow_id)
                continue
            # Steady-state churn lives in the upper stages: pinned
            # flows on well-separated tiers (4x capacity steps keep
            # every per-flow level strictly inside its tier, so the
            # fence is never breached).
            k = rng.randrange(1, tiers)
            op = rng.random()
            if op < 0.4 and not extras[k]:
                flow_id = f"p{next(counter)}"
                solver.add_flow(flow_id, 1.0, [f"if{k}"])
                extras[k].append(flow_id)
            elif op < 0.4:
                solver.remove_flow(extras[k].pop())
            elif op < 0.7:
                solver.set_weight(f"seed{k}", rng.uniform(0.8, 1.25))
            else:
                solver.set_capacity(
                    f"if{k}", caps[f"if{k}"] * rng.uniform(0.9, 1.1)
                )

        assert solver.deltas_total == 500
        assert solver.incremental_ratio >= 0.8, repr(solver)
        # Roamers parked in a tier can nudge its level across a fence;
        # that stays a rare event on this workload, never the norm.
        assert solver.fence_fallbacks <= 5, repr(solver)
        assert_matches_scratch(solver)


@st.composite
def delta_script(draw):
    """A small instance plus a sequence of typed deltas against it."""
    iface_count = draw(st.integers(min_value=2, max_value=4))
    ifaces = [f"if{j}" for j in range(iface_count)]
    cap = st.sampled_from([0, 1e6, 2e6, 5e6, 8e6])
    caps = {j: draw(cap) for j in ifaces}
    row = st.one_of(
        st.none(),
        st.lists(
            st.sampled_from(ifaces), min_size=1, max_size=iface_count
        ).map(frozenset),
    )
    weight = st.sampled_from([0.5, 1.0, 2.0, 3.0])
    flow_count = draw(st.integers(min_value=0, max_value=4))
    flows = {
        f"f{i}": (draw(weight), draw(row)) for i in range(flow_count)
    }
    steps = draw(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["add", "remove", "reweight", "restrict", "capacity"]
                ),
                st.randoms(use_true_random=False),
            ),
            min_size=1,
            max_size=12,
        )
    )
    script = []
    live = list(flows)
    fresh = itertools.count(flow_count)
    for op, rng in steps:
        if op == "add":
            flow_id = f"f{next(fresh)}"
            script.append(("add", flow_id, rng.choice([0.5, 1.0, 2.0, 3.0]),
                           rng.choice([None, frozenset(rng.sample(ifaces, rng.randint(1, iface_count)))])))
            live.append(flow_id)
        elif op == "remove" and live:
            flow_id = live.pop(rng.randrange(len(live)))
            script.append(("remove", flow_id))
        elif op == "reweight" and live:
            script.append(("reweight", rng.choice(live),
                           rng.choice([0.5, 1.0, 2.0, 3.0])))
        elif op == "restrict" and live:
            script.append(("restrict", rng.choice(live),
                           rng.choice([None, frozenset(rng.sample(ifaces, rng.randint(1, iface_count)))])))
        elif op == "capacity":
            script.append(("capacity", rng.choice(ifaces),
                           rng.choice([0, 1e6, 2e6, 5e6, 8e6])))
    return caps, flows, script


class TestEquivalenceProperties:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(case=delta_script())
    def test_incremental_equals_scratch_after_every_delta(self, case):
        caps, flows, script = case
        solver = IncrementalMaxMinSolver(caps, flows, debug=True)
        for step in script:
            if step[0] == "add":
                solver.add_flow(step[1], step[2], step[3])
            elif step[0] == "remove":
                solver.remove_flow(step[1])
            elif step[0] == "reweight":
                solver.set_weight(step[1], step[2])
            elif step[0] == "restrict":
                solver.restrict_flow(step[1], step[2])
            elif step[0] == "capacity":
                solver.set_capacity(step[1], step[2])
            # debug=True already asserted; make the contract explicit
            # at the end of the sequence too.
        assert_matches_scratch(solver)
        assert (
            solver.incremental_solves + solver.full_solves
            == solver.deltas_total
        )
