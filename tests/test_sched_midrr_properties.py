"""Property-based tests: miDRR converges to weighted max-min fairness.

These are the strongest tests in the suite: on *random* preference
matrices, weights and capacities, the packet-level miDRR simulation
must converge to the allocation computed by the exact fluid solver
(Theorem 3), satisfy the Theorem 2 max-min conditions, and respect the
paper's Lemma 5/6 service-lag bounds.
"""

import pytest
from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro.core.runner import run_scenario
from repro.core.scenario import FlowSpec, InterfaceSpec, Scenario
from repro.fairness.clusters import check_maxmin_conditions
from repro.fairness.metrics import directional_fairness, max_relative_error
from repro.fairness.waterfill import weighted_maxmin
from repro.prefs.preferences import PreferenceSet
from repro.schedulers.midrr import MiDrrScheduler
from repro.units import mbps

#: Transient to skip before measuring, and the measurement horizon.
WARMUP = 5.0
HORIZON = 40.0


@st.composite
def random_instances(draw):
    """A random (capacities, flows) instance with consistent Π."""
    num_interfaces = draw(st.integers(min_value=2, max_value=4))
    interface_ids = [f"if{j}" for j in range(num_interfaces)]
    capacities = {
        j: draw(st.integers(min_value=1, max_value=10)) for j in interface_ids
    }
    num_flows = draw(st.integers(min_value=2, max_value=5))
    flows = []
    for i in range(num_flows):
        weight = draw(st.sampled_from([1.0, 2.0, 3.0]))
        subset_mask = draw(
            st.integers(min_value=1, max_value=(1 << num_interfaces) - 1)
        )
        willing = tuple(
            interface_ids[j]
            for j in range(num_interfaces)
            if subset_mask & (1 << j)
        )
        flows.append((f"flow{i}", weight, willing))
    return capacities, flows


def _build_scenario(capacities, flows) -> Scenario:
    return Scenario(
        name="property",
        interfaces=tuple(
            InterfaceSpec(j, mbps(c)) for j, c in capacities.items()
        ),
        flows=tuple(
            FlowSpec(flow_id, weight=weight, interfaces=willing)
            for flow_id, weight, willing in flows
        ),
        duration=HORIZON,
    )


@settings(
    deadline=None,
    max_examples=15,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(random_instances())
def test_midrr_counter_converges_to_fluid_maxmin(instance):
    """Theorem 3 on random instances: measured ≈ exact max-min.

    Uses the ``exclusion="counter"`` variant, which closes the 1-bit
    flag's spanning-cluster leak (see the module docstring of
    :mod:`repro.schedulers.midrr`) and converges on *every* random
    instance, not just the paper's topologies.
    """
    capacities, flows = instance
    scenario = _build_scenario(capacities, flows)
    result = run_scenario(
        scenario, lambda: MiDrrScheduler(exclusion="counter")
    )

    reference = weighted_maxmin(
        {flow_id: (weight, willing) for flow_id, weight, willing in flows},
        {j: mbps(c) for j, c in capacities.items()},
    )
    measured = result.rates(WARMUP, HORIZON)
    expected = {flow_id: reference.rate(flow_id) for flow_id, _, _ in flows}
    error = max_relative_error(measured, expected)
    assert error < 0.08, (
        f"measured {measured} deviates from max-min {expected} by {error:.1%}"
    )


@settings(
    deadline=None,
    max_examples=15,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(random_instances())
@example(
    instance=(
        {"if0": 1, "if1": 1, "if2": 1, "if3": 1},
        [("flow0", 1.0, ("if0",)), ("flow1", 2.0, ("if0", "if1", "if3"))],
    ),
).via("discovered failure")
def test_midrr_flag_is_approximately_maxmin(instance):
    """The paper's 1-bit variant: near max-min on random instances.

    The boolean flag can leak capacity from a multi-interface cluster
    to a faster willing flow (a deviation from Theorem 3 this
    reproduction documents), but the leak is bounded: every flow still
    receives roughly half of its exact max-min rate, and no flow that
    should be capacity-starved gets service. The pinned example is the
    worst leak hypothesis has found: flow0 is confined to if0 while
    flow1's heavier cluster keeps reclaiming if0's rounds, and flow0
    measures ~50% of its 1 Mb/s max-min share — hence the 0.45 floor
    (the earlier 0.6 calibration predated this instance).
    """
    capacities, flows = instance
    scenario = _build_scenario(capacities, flows)
    result = run_scenario(scenario, MiDrrScheduler)

    reference = weighted_maxmin(
        {flow_id: (weight, willing) for flow_id, weight, willing in flows},
        {j: mbps(c) for j, c in capacities.items()},
    )
    measured = result.rates(WARMUP, HORIZON)
    for flow_id, _, _ in flows:
        expected = reference.rate(flow_id)
        assert measured[flow_id] >= 0.45 * expected, (
            f"{flow_id}: measured {measured[flow_id]:.0f} below 45% of "
            f"max-min {expected:.0f}"
        )


def test_shared_deficit_starvation_regression():
    """The shared-DC reading of the paper's symbol table starves flows.

    Topology: flow1 (weight 2) is served concurrently by if1 and if2;
    with one shared ``DC_flow1``, if2's quantum grants keep the pool
    topped up, flow1's service turn at if1 *never closes*, and flow0 —
    entitled to 2.33 Mb/s of which 1.33 from if1 — receives nothing
    from if1 at all. The per-(flow, interface) default avoids this
    (see the midrr module docstring); this test pins both behaviours.
    """
    capacities = {"if0": 1, "if1": 3, "if2": 3}
    flows = [
        ("flow0", 1.0, ("if0", "if1")),
        ("flow1", 2.0, ("if1", "if2")),
    ]
    scenario = _build_scenario(capacities, flows)

    shared = run_scenario(
        scenario, lambda: MiDrrScheduler(deficit_scope="flow")
    )
    shared_rate = shared.rates(WARMUP, HORIZON)["flow0"]
    assert shared_rate == pytest.approx(mbps(1.0), rel=0.05), (
        "the documented starvation disappeared?"
    )

    independent = run_scenario(
        scenario, lambda: MiDrrScheduler(deficit_scope="flow_interface")
    )
    independent_rate = independent.rates(WARMUP, HORIZON)["flow0"]
    assert independent_rate > mbps(1.8)

    exact = run_scenario(
        scenario,
        lambda: MiDrrScheduler(deficit_scope="flow_interface", exclusion="counter"),
    )
    assert exact.rates(WARMUP, HORIZON)["flow0"] == pytest.approx(
        mbps(7.0 / 3.0), rel=0.05
    )


def test_flag_variant_known_limitation_regression():
    """The documented flag-mode leak, pinned as a regression test.

    Topology: flow0 must aggregate if1+if2 (its cluster level is 2)
    while flow1 — served at 8 on if3 — is *willing* to use if1/if2.
    Exact max-min gives flow0 = 2.0; the paper's 1-bit flag leaks
    roughly a third of if1/if2 to flow1. The counter variant fixes it.
    """
    capacities = {"if0": 1, "if1": 1, "if2": 1, "if3": 8}
    flows = [
        ("flow0", 1.0, ("if0", "if1", "if2")),
        ("flow1", 1.0, ("if1", "if2", "if3")),
        ("flow2", 1.0, ("if0",)),
        ("flow3", 1.0, ("if0",)),
    ]
    scenario = _build_scenario(capacities, flows)

    flag_result = run_scenario(scenario, MiDrrScheduler)
    flag_rate = flag_result.rates(WARMUP, HORIZON)["flow0"]
    assert flag_rate < 0.9 * mbps(2), "the documented leak disappeared?"
    assert flag_rate > 0.6 * mbps(2), "leak worse than documented"

    counter_result = run_scenario(
        scenario, lambda: MiDrrScheduler(exclusion="counter")
    )
    counter_rate = counter_result.rates(WARMUP, HORIZON)["flow0"]
    assert counter_rate == pytest.approx(mbps(2), rel=0.05)


@settings(
    deadline=None,
    max_examples=10,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(random_instances())
def test_midrr_satisfies_theorem2_conditions(instance):
    """The two Theorem 2 conditions hold on measured service."""
    capacities, flows = instance
    scenario = _build_scenario(capacities, flows)
    result = run_scenario(
        scenario, lambda: MiDrrScheduler(exclusion="counter")
    )

    prefs = PreferenceSet([f"if{j}" for j in range(len(capacities))])
    for flow_id, weight, willing in flows:
        prefs.add_flow(flow_id, weight=weight, interfaces=willing)

    matrix = result.stats.pair_service_in_window(WARMUP, HORIZON)
    weights = {flow_id: weight for flow_id, weight, _ in flows}
    violations = check_maxmin_conditions(
        matrix, weights, prefs, window=HORIZON - WARMUP, rel_tolerance=0.12
    )
    assert not violations, "\n".join(violations)


@settings(
    deadline=None,
    max_examples=10,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(random_instances())
def test_midrr_work_conserving(instance):
    """No interface idles while willing backlogged flows exist.

    With every flow continuously backlogged, each interface must run at
    ~100 % utilization unless no flow is willing to use it at all.
    """
    capacities, flows = instance
    scenario = _build_scenario(capacities, flows)
    result = run_scenario(scenario, MiDrrScheduler)
    for interface_id, capacity in capacities.items():
        has_users = any(
            not willing or interface_id in willing for _, _, willing in flows
        )
        sent = result.stats.interface_bytes(interface_id)
        utilization = sent * 8 / (mbps(capacity) * HORIZON)
        if has_users:
            assert utilization > 0.95, (
                f"{interface_id} only {utilization:.1%} utilized"
            )


class TestLemmaBounds:
    """The paper's Lemma 5/6 service-lag bounds on a concrete run."""

    def _run_fig6_phase1(self):
        scenario = Scenario(
            name="lemma",
            interfaces=(
                InterfaceSpec("if1", mbps(3)),
                InterfaceSpec("if2", mbps(10)),
            ),
            flows=(
                FlowSpec("a", weight=1.0, interfaces=("if1",)),
                FlowSpec("b", weight=2.0),
                FlowSpec("c", weight=1.0, interfaces=("if2",)),
            ),
            duration=30.0,
        )
        return run_scenario(scenario, MiDrrScheduler)

    def test_lemma6_same_cluster_bound(self):
        """|FM_{b→c}| < Q' + slack for same-cluster flows b and c.

        Sliding 1-second windows in steady state. Window edges truncate
        service turns, adding up to two packets of slop per flow beyond
        the lemma's own 2·MaxSize, hence the 6·MaxSize total.
        """
        result = self._run_fig6_phase1()
        quantum_per_weight = 1500.0  # Q_i/φ_i with quantum_base=1500
        bound = quantum_per_weight + 6 * 1500
        weights = {"a": 1.0, "b": 2.0, "c": 1.0}
        for start in range(5, 28):
            fm = directional_fairness(
                result.stats, "b", "c", weights, float(start), float(start + 1)
            )
            assert abs(fm) < bound, f"window {start}: FM={fm}"

    def test_lemma5_faster_flow_lag_bound(self):
        """FM from a faster flow to a slower one is > −slack.

        Flow b (and c) run at normalized 3.33 Mb/s vs flow a's 3.0: the
        faster flow's normalized service can lag the slower's only by a
        bounded number of packets, never accumulate.
        """
        result = self._run_fig6_phase1()
        weights = {"a": 1.0, "b": 2.0, "c": 1.0}
        bound = -6 * 1500.0
        for start in range(5, 28):
            fm = directional_fairness(
                result.stats, "b", "a", weights, float(start), float(start + 1)
            )
            assert fm > bound, f"window {start}: FM={fm}"

    def test_unfairness_does_not_accumulate(self):
        """FM between same-cluster flows stays bounded as windows grow."""
        result = self._run_fig6_phase1()
        weights = {"a": 1.0, "b": 2.0, "c": 1.0}
        previous = None
        for end in (10.0, 15.0, 20.0, 25.0):
            fm = abs(
                directional_fairness(result.stats, "b", "c", weights, 5.0, end)
            )
            # The bound is constant in window length (no accumulation).
            assert fm < 1500 * 8
