"""Unit tests for packets and five-tuples."""

import pytest

from repro.errors import ConfigurationError
from repro.net.addresses import Ipv4Address
from repro.net.headers import IPPROTO_TCP
from repro.net.packet import FiveTuple, Packet


class TestPacket:
    def test_size_bits(self):
        assert Packet(flow_id="a", size_bytes=100).size_bits == 800

    def test_seqnos_are_unique_and_increasing(self):
        first = Packet(flow_id="a", size_bytes=1)
        second = Packet(flow_id="a", size_bytes=1)
        assert second.seqno > first.seqno

    @pytest.mark.parametrize("size", [0, -1])
    def test_nonpositive_size_rejected(self, size):
        with pytest.raises(ConfigurationError):
            Packet(flow_id="a", size_bytes=size)

    def test_repr_is_compact(self):
        packet = Packet(flow_id="video", size_bytes=1500)
        assert "video" in repr(packet)
        assert "1500B" in repr(packet)

    def test_deadline_defaults_to_elastic(self):
        assert Packet(flow_id="a", size_bytes=1).deadline is None


class TestDeadlineCodec:
    def test_deadline_round_trips(self):
        from repro.net.packet import decode_packet, encode_packet

        packet = Packet(flow_id="a", size_bytes=100, created_at=1.5, deadline=2.25)
        doc = encode_packet(packet)
        assert doc["deadline"] == 2.25
        restored = decode_packet(doc)
        assert restored.deadline == 2.25
        assert restored.seqno == packet.seqno

    def test_pre_deadline_documents_still_decode(self):
        from repro.net.packet import decode_packet, encode_packet

        doc = encode_packet(Packet(flow_id="a", size_bytes=100))
        del doc["deadline"]  # a checkpoint written before ISSUE 9
        assert decode_packet(doc).deadline is None


class TestFiveTuple:
    def _tuple(self):
        return FiveTuple(
            src=Ipv4Address.parse("10.0.0.1"),
            dst=Ipv4Address.parse("10.0.0.2"),
            src_port=1234,
            dst_port=80,
            protocol=IPPROTO_TCP,
        )

    def test_reversed_swaps_endpoints(self):
        forward = self._tuple()
        backward = forward.reversed()
        assert backward.src == forward.dst
        assert backward.dst == forward.src
        assert backward.src_port == forward.dst_port
        assert backward.dst_port == forward.src_port
        assert backward.protocol == forward.protocol

    def test_double_reverse_is_identity(self):
        forward = self._tuple()
        assert forward.reversed().reversed() == forward

    def test_hashable(self):
        assert len({self._tuple(), self._tuple()}) == 1

    def test_str_format(self):
        text = str(self._tuple())
        assert "10.0.0.1:1234" in text
        assert "10.0.0.2:80" in text
