"""Fleet runner tests: sharding, determinism, merge exactness.

The contract under test (docs/architecture.md "Fleet-scale runs"):

* the shard plan is a function of the device count alone — never the
  worker count — so merge grouping, and therefore every float sum in
  the merged telemetry, is identical whatever the pool looks like;
* any device replays standalone byte-identically from
  ``(fleet_seed, device_id)``;
* the merged fleet percentiles equal a single registry fed every
  device's telemetry (sketch merge is exact);
* the report hash pins all of the above: equal across repeat runs,
  executors and worker counts.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.fleet import (
    DEFAULT_MAX_SHARDS,
    DELAY_SKETCH,
    EXECUTORS,
    PAYLOAD_SCHEMA_VERSION,
    compute_report_hash,
    decode_shard,
    default_shard_count,
    device_ids,
    device_seed,
    encode_shard,
    plan_shards,
    read_shard_jsonl,
    run_device,
    run_fleet,
    run_shard,
    validate_shard,
    write_shard_jsonl,
)
from repro.obs import (
    SNAPSHOT_SCHEMA_VERSION,
    MetricsRegistry,
    SnapshotProcess,
    read_jsonl,
    write_jsonl,
)
from repro.sim.randomness import derive_seed
from repro.sim.simulator import Simulator
from repro.trace import DeviceWorkload

#: Small identical-work-per-device workload: fast and fully active.
BULK = DeviceWorkload(kind="bulk", duration=0.25, num_flows=4, num_interfaces=2)
#: Short smartphone workload: exercises the trace-driven path.
PHONE = DeviceWorkload(kind="smartphone", duration=5.0, num_interfaces=2)


class TestShardPlan:
    def test_device_ids_canonical(self):
        assert device_ids(3) == ["d0", "d1", "d2"]
        with pytest.raises(ConfigurationError):
            device_ids(0)

    def test_device_seed_is_published_derivation(self):
        """The replay contract: seed = derive_seed(fleet_seed, 'device:<id>')."""
        assert device_seed(7, "d3") == derive_seed(7, "device:d3")
        assert device_seed(7, "d3") != device_seed(7, "d4")
        assert device_seed(7, "d3") != device_seed(8, "d3")

    def test_default_shard_count_ignores_workers(self):
        """Workers never enter the shard count: merge grouping — and the
        float sums inside it — must not depend on the pool size."""
        assert default_shard_count(5) == 5
        assert default_shard_count(1000) == DEFAULT_MAX_SHARDS

    def test_plan_balanced_contiguous(self):
        plan = plan_shards(10, 3)
        sizes = [len(shard.device_ids) for shard in plan.shards]
        assert sizes == [4, 3, 3]
        assert plan.device_order() == device_ids(10)
        assert [shard.shard_id for shard in plan.shards] == [0, 1, 2]

    def test_plan_clamps_to_devices(self):
        assert len(plan_shards(3, 8).shards) == 3

    def test_plan_auto(self):
        assert len(plan_shards(5).shards) == 5
        assert len(plan_shards(100).shards) == DEFAULT_MAX_SHARDS

    def test_plan_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            plan_shards(0)
        with pytest.raises(ConfigurationError):
            plan_shards(4, -1)


class TestRunDevice:
    def test_byte_identical_replay(self):
        first = run_device("d0", 1234, BULK)
        second = run_device("d0", 1234, BULK)
        assert first == second
        assert first["packets"] > 0

    def test_seed_changes_trace(self):
        a = run_device("d0", 1, PHONE)
        b = run_device("d0", 2, PHONE)
        assert a["trace_sha256"] != b["trace_sha256"]

    def test_rejects_unresolved_batching(self):
        with pytest.raises(ConfigurationError, match="resolved bool"):
            run_device("d0", 0, BULK, batching="auto")


def shard_payload(device_count=2, shard_id=0):
    plan = plan_shards(device_count, 1)
    return run_shard(
        {
            "shard_id": shard_id,
            "device_ids": list(plan.shards[0].device_ids),
            "fleet_seed": 0,
            "workload": BULK.to_dict(),
            "backend": "heap",
            "batching": False,
        }
    )


class TestShardCodec:
    def test_roundtrip(self):
        payload = shard_payload()
        assert payload["schema_version"] == PAYLOAD_SCHEMA_VERSION
        assert decode_shard(encode_shard(payload)) == validate_shard(payload)

    def test_jsonl_roundtrip(self, tmp_path):
        payloads = [shard_payload(1, 0), shard_payload(2, 1)]
        path = str(tmp_path / "shards.jsonl")
        assert write_shard_jsonl(path, payloads) == 2
        assert read_shard_jsonl(path) == payloads

    def test_missing_keys_rejected(self):
        payload = shard_payload()
        payload.pop("registry")
        with pytest.raises(ConfigurationError, match="missing keys"):
            validate_shard(payload)

    def test_newer_schema_rejected(self):
        payload = shard_payload()
        payload["schema_version"] = PAYLOAD_SCHEMA_VERSION + 1
        with pytest.raises(ConfigurationError, match="newer"):
            validate_shard(payload)

    def test_device_summary_shape_checked(self):
        payload = shard_payload()
        del payload["devices"][0]["trace_sha256"]
        with pytest.raises(ConfigurationError, match="missing keys"):
            validate_shard(payload)

    def test_bad_json_line_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid shard payload"):
            decode_shard("{not json")


@pytest.mark.fleet
class TestFleetSmoke:
    """Tier-1 fleet smoke: small fleets, the full determinism contract."""

    def test_serial_report_deterministic(self):
        first = run_fleet(6, BULK, fleet_seed=3, executor="serial")
        second = run_fleet(6, BULK, fleet_seed=3, executor="serial")
        assert first["report_hash"] == second["report_hash"]
        assert first["report_hash"] == compute_report_hash(first)
        assert first["totals"]["packets"] > 0
        assert first["totals"]["devices"] == 6
        # Wall clock varies between runs but must not enter the hash.
        assert first["run"]["wall_seconds"] != 0.0

    def test_process_executor_matches_serial(self):
        serial = run_fleet(4, BULK, fleet_seed=1, executor="serial")
        pooled = run_fleet(4, BULK, fleet_seed=1, workers=2, executor="process")
        assert pooled["report_hash"] == serial["report_hash"]
        assert pooled["run"]["executor"] == "process"
        assert pooled["run"]["workers"] == 2

    def test_worker_count_does_not_change_report(self):
        one = run_fleet(4, BULK, fleet_seed=2, workers=1, executor="process")
        two = run_fleet(4, BULK, fleet_seed=2, workers=2, executor="process")
        assert one["report_hash"] == two["report_hash"]

    def test_standalone_device_replay(self, tmp_path):
        """Any device re-runs standalone byte-identically from
        ``(fleet_seed, device_id)`` — the debugging workflow the seed
        derivation exists for."""
        log = str(tmp_path / "shards.jsonl")
        run_fleet(3, PHONE, fleet_seed=9, executor="serial", shard_log_path=log)
        summaries = [
            summary
            for payload in read_shard_jsonl(log)
            for summary in payload["devices"]
        ]
        assert [s["device_id"] for s in summaries] == device_ids(3)
        for summary in summaries:
            standalone = run_device(
                summary["device_id"],
                device_seed(9, summary["device_id"]),
                PHONE,
            )
            standalone.pop("registry")
            assert standalone == summary

    def test_merged_percentiles_match_single_registry(self):
        """Fleet delay p50/p95/p99 == a single registry fed every
        device's telemetry: sketch merge is exact, not approximate."""
        report = run_fleet(5, BULK, fleet_seed=4, executor="serial")
        reference = MetricsRegistry()
        for did in device_ids(5):
            payload = run_device(did, device_seed(4, did), BULK)
            reference.merge_state(payload["registry"])
        sketch = reference.get(DELAY_SKETCH)
        assert report["delay"]["count"] == sketch.count
        assert report["delay"]["p50"] == sketch.quantile(0.5)
        assert report["delay"]["p95"] == sketch.quantile(0.95)
        assert report["delay"]["p99"] == sketch.quantile(0.99)
        assert report["registry"] == reference.snapshot_state()

    def test_report_file_written(self, tmp_path):
        path = str(tmp_path / "fleet.json")
        report = run_fleet(
            2, BULK, fleet_seed=0, executor="serial", report_path=path
        )
        with open(path, "r", encoding="utf-8") as handle:
            on_disk = json.load(handle)
        assert on_disk == report
        assert on_disk["report_hash"] == compute_report_hash(on_disk)

    def test_fairness_and_interfaces_reported(self):
        report = run_fleet(3, BULK, fleet_seed=0, executor="serial")
        assert 0.0 < report["fairness"]["jain_index"] <= 1.0
        assert set(report["interfaces"]) == {"if0", "if1"}
        for row in report["interfaces"].values():
            assert row["bytes"] > 0
            assert 0.0 < row["utilization"] <= 1.0

    def test_bad_arguments_rejected(self):
        assert EXECUTORS == ("serial", "process")
        with pytest.raises(ConfigurationError, match="executor"):
            run_fleet(2, BULK, executor="threads")
        with pytest.raises(ConfigurationError, match="workers"):
            run_fleet(2, BULK, workers=0)
        with pytest.raises(ConfigurationError, match="batching"):
            run_fleet(2, BULK, executor="serial", batching="sometimes")


class TestFleetCli:
    def test_parses_documented_quickstart(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["fleet", "--devices", "1000", "--workers", "4"]
        )
        assert callable(args.func)
        assert args.devices == 1000 and args.workers == 4

    def test_runs_and_reports(self, tmp_path, capsys):
        from repro.cli import main

        report_path = tmp_path / "fleet.json"
        exit_code = main(
            [
                "fleet",
                "--devices", "2",
                "--executor", "serial",
                "--workload", "bulk",
                "--duration", "0.25",
                "--flows", "4",
                "--report", str(report_path),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "report hash" in out
        assert report_path.exists()


class TestSnapshotShardLabels:
    def make_process(self, **kwargs):
        sim = Simulator()
        registry = MetricsRegistry()
        registry.counter("c").inc(1)
        return SnapshotProcess(sim, registry, period=1.0, **kwargs)

    def test_labels_emitted(self):
        record = self.make_process(shard_id=3, device_id="d7").sample_now()
        assert record["schema_version"] == SNAPSHOT_SCHEMA_VERSION
        assert record["shard_id"] == 3
        assert record["device_id"] == "d7"

    def test_labels_absent_when_unlabelled(self):
        record = self.make_process().sample_now()
        assert "shard_id" not in record
        assert "device_id" not in record

    def test_v1_records_still_read(self, tmp_path):
        """A pre-fleet stream (no schema_version, no labels) reads fine."""
        path = str(tmp_path / "snaps.jsonl")
        legacy = {"t": 0.0, "seq": 0, "metrics": {"c": {"type": "counter", "value": 1}}}
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(legacy) + "\n")
        records = read_jsonl(path)
        assert records == [legacy]
        assert "shard_id" not in records[0]

    def test_newer_schema_rejected(self, tmp_path):
        path = str(tmp_path / "snaps.jsonl")
        record = {
            "t": 0.0,
            "seq": 0,
            "schema_version": SNAPSHOT_SCHEMA_VERSION + 1,
            "metrics": {},
        }
        write_jsonl(path, [record])
        with pytest.raises(ConfigurationError, match="newer"):
            read_jsonl(path)

    def test_labelled_roundtrip(self, tmp_path):
        process = self.make_process(shard_id=0, device_id="d0")
        process.sample_now()
        path = str(tmp_path / "snaps.jsonl")
        assert process.write_jsonl(path) == 1
        assert read_jsonl(path)[0]["device_id"] == "d0"
