"""Unit + property tests for HTTP/1.1 message handling."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import HttpError
from repro.httpproxy.http11 import (
    ByteRange,
    Headers,
    HttpRequest,
    HttpResponse,
    parse_content_range,
    parse_range_header,
)


class TestHeaders:
    def test_case_insensitive_get(self):
        headers = Headers({"Content-Length": "10"})
        assert headers.get("content-length") == "10"
        assert headers.get("CONTENT-LENGTH") == "10"

    def test_set_replaces(self):
        headers = Headers()
        headers.set("Range", "bytes=0-1")
        headers.set("range", "bytes=2-3")
        assert headers.get("Range") == "bytes=2-3"
        assert len(headers) == 1

    def test_contains(self):
        headers = Headers({"Accept": "*/*"})
        assert "accept" in headers
        assert "range" not in headers

    def test_serialize_format(self):
        headers = Headers({"Host": "example.com"})
        assert headers.serialize() == b"Host: example.com\r\n"

    def test_parse_malformed_line(self):
        with pytest.raises(HttpError):
            Headers.parse([b"no colon here"])

    def test_parse_strips_whitespace(self):
        headers = Headers.parse([b"Host:   example.com  "])
        assert headers.get("host") == "example.com"


class TestRequest:
    def test_roundtrip(self):
        request = HttpRequest(
            method="GET",
            target="/video",
            headers=Headers({"Range": "bytes=0-499"}),
        )
        parsed = HttpRequest.parse(request.serialize())
        assert parsed.method == "GET"
        assert parsed.target == "/video"
        assert parsed.headers.get("range") == "bytes=0-499"

    def test_body_roundtrip(self):
        request = HttpRequest(method="POST", target="/x", body=b"payload")
        parsed = HttpRequest.parse(request.serialize())
        assert parsed.body == b"payload"
        assert parsed.headers.get("content-length") == "7"

    def test_malformed_request_line(self):
        with pytest.raises(HttpError):
            HttpRequest.parse(b"GET /\r\n\r\n")

    def test_truncated_body_rejected(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"
        with pytest.raises(HttpError, match="truncated"):
            HttpRequest.parse(raw)


class TestResponse:
    def test_roundtrip(self):
        response = HttpResponse(status=206, body=b"chunk")
        response.headers.set("Content-Range", "bytes 0-4/100")
        parsed = HttpResponse.parse(response.serialize())
        assert parsed.status == 206
        assert parsed.body == b"chunk"
        assert parsed.headers.get("content-range") == "bytes 0-4/100"

    def test_reason_phrases(self):
        assert HttpResponse(status=200).reason == "OK"
        assert HttpResponse(status=206).reason == "Partial Content"
        assert HttpResponse(status=416).reason == "Range Not Satisfiable"
        assert HttpResponse(status=599).reason == "Unknown"

    def test_content_length_set_on_serialize(self):
        response = HttpResponse(status=200, body=b"12345")
        raw = response.serialize()
        assert b"Content-Length: 5" in raw

    def test_malformed_status_line(self):
        with pytest.raises(HttpError):
            HttpResponse.parse(b"HTTP/1.1\r\n\r\n")


class TestByteRange:
    def test_length_inclusive(self):
        assert ByteRange(0, 0).length == 1
        assert ByteRange(10, 19).length == 10

    def test_invalid_ranges(self):
        with pytest.raises(HttpError):
            ByteRange(-1, 5)
        with pytest.raises(HttpError):
            ByteRange(10, 9)

    def test_header_value(self):
        assert ByteRange(0, 499).header_value() == "bytes=0-499"

    def test_content_range(self):
        assert ByteRange(500, 999).content_range(1200) == "bytes 500-999/1200"

    def test_ordering(self):
        assert ByteRange(0, 9) < ByteRange(10, 19)


class TestParseRangeHeader:
    def test_explicit(self):
        assert parse_range_header("bytes=0-499", 1000) == ByteRange(0, 499)

    def test_open_ended(self):
        assert parse_range_header("bytes=500-", 1000) == ByteRange(500, 999)

    def test_suffix(self):
        assert parse_range_header("bytes=-200", 1000) == ByteRange(800, 999)

    def test_suffix_larger_than_object(self):
        assert parse_range_header("bytes=-5000", 1000) == ByteRange(0, 999)

    def test_end_clamped_to_object(self):
        assert parse_range_header("bytes=900-5000", 1000) == ByteRange(900, 999)

    @pytest.mark.parametrize(
        "value",
        ["items=0-1", "bytes=0-1,5-9", "bytes=-", "bytes=-0", "bytes=1000-1200"],
    )
    def test_rejects(self, value):
        with pytest.raises(HttpError):
            parse_range_header(value, 1000)


class TestParseContentRange:
    def test_roundtrip_with_byte_range(self):
        byte_range, total = parse_content_range("bytes 500-999/1200")
        assert byte_range == ByteRange(500, 999)
        assert total == 1200

    @pytest.mark.parametrize("value", ["items 0-1/2", "bytes x-y/z", "bytes 0-1"])
    def test_rejects(self, value):
        with pytest.raises(HttpError):
            parse_content_range(value)


@given(
    start=st.integers(min_value=0, max_value=10_000),
    length=st.integers(min_value=1, max_value=10_000),
    total_extra=st.integers(min_value=0, max_value=1000),
)
def test_range_header_roundtrip_property(start, length, total_extra):
    byte_range = ByteRange(start, start + length - 1)
    total = byte_range.end + 1 + total_extra
    reparsed = parse_range_header(byte_range.header_value(), total)
    assert reparsed == byte_range
    content_range, parsed_total = parse_content_range(
        byte_range.content_range(total)
    )
    assert content_range == byte_range
    assert parsed_total == total
