"""Integration tests: instrumentation, snapshots, and the selftest.

The load-bearing property here is **workload invariance**: attaching
the full observability stack must not change a single scheduling
decision. Everything else (gauge consistency, snapshot determinism,
the JSONL round trip) builds on that.
"""

import pytest

from repro.core.runner import run_scenario
from repro.errors import ConfigurationError
from repro.health.watchdog import Watchdog
from repro.obs import (
    SNAPSHOT_SCHEMA_VERSION,
    MetricsRegistry,
    SnapshotProcess,
    instrument_engine,
    instrument_watchdog,
    read_jsonl,
    render_final_report,
    write_jsonl,
)
from repro.obs.selftest import run_selftest
from repro.perf import build_core_scenario
from repro.schedulers.midrr import MiDrrScheduler
from repro.sim.simulator import Simulator


def _run_instrumented(num_flows=20, num_interfaces=2, target_packets=400):
    scenario = build_core_scenario(
        num_flows, num_interfaces, target_packets=target_packets
    )
    registry = MetricsRegistry()
    captured = {}

    def on_engine(sim, engine):
        instrumentation = instrument_engine(engine, registry)
        snapshots = SnapshotProcess(
            sim,
            registry,
            period=scenario.duration / 10,
            pre_sample=[instrumentation.sample],
        )
        snapshots.start()
        captured["snapshots"] = snapshots
        captured["instrumentation"] = instrumentation

    result = run_scenario(scenario, MiDrrScheduler, on_engine=on_engine)
    captured["snapshots"].sample_now()
    return result, registry, captured


class TestEngineInstrumentation:
    def test_gauges_track_engine_state(self):
        result, registry, _ = _run_instrumented()
        engine = result.engine
        collected = registry.collect()
        packets = sum(
            interface.packets_sent
            for interface in engine.interfaces.values()
        )
        assert collected["engine.packets_sent_total"]["value"] == packets
        assert collected["engine.flows"]["value"] == 20
        assert collected["sched.decisions_total"]["value"] == len(
            engine.scheduler.decision_flows_examined
        )
        assert collected["sched.flags_set_total"]["value"] > 0
        for interface_id in engine.interfaces:
            assert f"iface.{interface_id}.utilization" in registry

    def test_decision_latency_sampled(self):
        _, registry, _ = _run_instrumented()
        sketch = registry.get("engine.decision_latency_seconds")
        # One timed decision per 64; this run makes ~400+ decisions.
        assert sketch.count > 0
        assert sketch.quantile(0.5) > 0

    def test_decision_work_drained_exactly_once(self):
        result, registry, captured = _run_instrumented()
        histogram = registry.get("sched.decision_work")
        assert histogram.count == len(
            result.engine.scheduler.decision_flows_examined
        )
        # Draining again adds nothing: the watermark advanced.
        captured["instrumentation"].sample(result.sim.now)
        assert histogram.count == len(
            result.engine.scheduler.decision_flows_examined
        )

    def test_workload_invariance(self):
        scenario = build_core_scenario(20, 2, target_packets=400)

        def totals(result):
            return (
                sum(
                    interface.packets_sent
                    for interface in result.engine.interfaces.values()
                ),
                len(result.engine.scheduler.decision_flows_examined),
            )

        bare = run_scenario(scenario, MiDrrScheduler)

        def on_engine(sim, engine):
            instrumentation = instrument_engine(engine)
            snapshots = SnapshotProcess(
                sim,
                instrumentation.registry,
                period=scenario.duration / 10,
                pre_sample=[instrumentation.sample],
            )
            snapshots.start()

        instrumented = run_scenario(
            scenario, MiDrrScheduler, on_engine=on_engine
        )
        assert totals(bare) == totals(instrumented)

    def test_snapshots_deterministic_across_runs(self):
        _, first_registry, first = _run_instrumented()
        _, second_registry, second = _run_instrumented()

        def stable(snapshots):
            # Drop the only wall-clock-derived metric.
            cleaned = []
            for record in snapshots:
                metrics = {
                    name: payload
                    for name, payload in record["metrics"].items()
                    if name != "engine.decision_latency_seconds"
                }
                cleaned.append({**record, "metrics": metrics})
            return cleaned

        assert stable(first["snapshots"].snapshots) == stable(
            second["snapshots"].snapshots
        )

    def test_detach_removes_probe(self):
        result, _, captured = _run_instrumented()
        captured["instrumentation"].detach()
        assert result.engine._decision_probe is None

    def test_invalid_sample_every(self):
        scenario = build_core_scenario(2, 2, target_packets=50)
        with pytest.raises(ConfigurationError):
            run_scenario(
                scenario,
                MiDrrScheduler,
                on_engine=lambda sim, engine: instrument_engine(
                    engine, sample_every=0
                ),
            )


class TestSnapshotProcess:
    def test_periodic_sampling_on_virtual_clock(self):
        sim = Simulator()
        registry = MetricsRegistry()
        counter = registry.counter("ticks")
        snapshots = SnapshotProcess(sim, registry, period=1.0)
        for t in range(5):
            sim.schedule(float(t), counter.inc)
        snapshots.start()
        sim.run(until=5.0)
        snapshots.stop()
        assert len(snapshots.snapshots) == 5
        assert [record["seq"] for record in snapshots.snapshots] == list(
            range(5)
        )
        assert all(
            record["schema_version"] == SNAPSHOT_SCHEMA_VERSION
            for record in snapshots.snapshots
        )

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            SnapshotProcess(Simulator(), MetricsRegistry(), period=0.0)

    def test_jsonl_round_trip(self, tmp_path):
        sim = Simulator()
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        snapshots = SnapshotProcess(sim, registry)
        snapshots.sample_now()
        path = tmp_path / "snap.jsonl"
        assert snapshots.write_jsonl(str(path)) == 1
        assert read_jsonl(str(path)) == snapshots.snapshots

    def test_read_jsonl_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ConfigurationError):
            read_jsonl(str(path))
        path.write_text('{"no_metrics": true}\n')
        with pytest.raises(ConfigurationError):
            read_jsonl(str(path))

    def test_module_level_write(self, tmp_path):
        path = tmp_path / "snap.jsonl"
        records = [{"t": 0.0, "seq": 0, "metrics": {}}]
        assert write_jsonl(str(path), records) == 1
        assert read_jsonl(str(path)) == records


class TestWatchdogInstrumentation:
    def test_ticks_and_alert_counters(self):
        scenario = build_core_scenario(5, 2, target_packets=4000)
        registry = MetricsRegistry()
        captured = {}

        def on_engine(sim, engine):
            watchdog = Watchdog(sim, engine, period=scenario.duration / 10)
            instrument_watchdog(watchdog, registry)
            watchdog.start()
            captured["watchdog"] = watchdog

        run_scenario(scenario, MiDrrScheduler, on_engine=on_engine)
        watchdog = captured["watchdog"]
        collected = registry.collect()
        assert collected["health.ticks"]["value"] == watchdog.ticks > 0
        assert collected["health.alerts_total"]["value"] == len(
            watchdog.alerts
        )

    def test_alert_listener_counts_by_kind(self):
        sim = Simulator()
        scenario = build_core_scenario(2, 2, target_packets=50)
        registry = MetricsRegistry()

        def on_engine(sim, engine):
            watchdog = Watchdog(sim, engine)
            instrument_watchdog(watchdog, registry)
            # Drive the listener directly: alert plumbing is what is
            # under test, not the detection heuristics.
            watchdog._raise("flow_starvation", "a", "test")
            watchdog._raise("flow_starvation", "b", "test")

        run_scenario(scenario, MiDrrScheduler, on_engine=on_engine)
        collected = registry.collect()
        assert collected["health.alerts_raised_total"]["value"] == 2
        assert collected["health.alerts.flow_starvation_total"]["value"] == 2


class TestReportAndSelftest:
    def test_render_final_report(self):
        _, registry, _ = _run_instrumented(
            num_flows=5, num_interfaces=2, target_packets=100
        )
        text = render_final_report(registry, title="== t ==")
        assert text.splitlines()[0] == "== t =="
        assert "engine.packets_sent_total" in text
        assert "sched.decision_work" in text

    def test_selftest_healthy(self):
        assert run_selftest() == []

    def test_selftest_writes_requested_artifact(self, tmp_path):
        path = tmp_path / "selftest.jsonl"
        assert run_selftest(str(path)) == []
        assert len(read_jsonl(str(path))) == 10
