"""End-to-end: real packets through the bridge reproduce Figure 1(c).

The most literal version of the paper's outbound system: applications
emit raw IPv4/UDP packets into the virtual interface, the classifier
maps ports to policy flows, miDRR steers, NAT rewrites headers with
valid checksums — and the resulting byte counts still land on the
max-min allocation. Also verifies every transmitted packet parses and
checksums cleanly, which a pure-abstraction test cannot.
"""

import pytest

from repro.bridge.bridge import MiDrrBridge
from repro.bridge.classifier import FlowClassifier, MatchRule, parse_five_tuple
from repro.net.addresses import Ipv4Address
from repro.net.flow import Flow
from repro.net.headers import IPPROTO_UDP, Ipv4Header, UdpHeader
from repro.net.interface import Interface
from repro.net.packet import Packet
from repro.schedulers.midrr import MiDrrScheduler
from repro.units import mbps

VIRTUAL = Ipv4Address.parse("10.0.0.1")
IF1_ADDR = Ipv4Address.parse("192.168.1.2")
IF2_ADDR = Ipv4Address.parse("100.64.0.2")
SERVER = Ipv4Address.parse("203.0.113.10")

PORT_A = 8801
PORT_B = 8802
PAYLOAD = b"z" * 1200


def udp_packet(dst_port):
    udp = UdpHeader(4000, dst_port, UdpHeader.LENGTH + len(PAYLOAD))
    total = Ipv4Header.LENGTH + UdpHeader.LENGTH + len(PAYLOAD)
    ip = Ipv4Header(
        src=VIRTUAL, dst=SERVER, protocol=IPPROTO_UDP, total_length=total
    )
    return ip.pack() + udp.pack(VIRTUAL, SERVER, PAYLOAD) + PAYLOAD


@pytest.fixture
def rig(sim):
    classifier = FlowClassifier()
    classifier.add_rule(MatchRule(flow_id="a", dst_port=PORT_A))
    classifier.add_rule(MatchRule(flow_id="b", dst_port=PORT_B))
    bridge = MiDrrBridge(sim, MiDrrScheduler(), VIRTUAL, classifier=classifier)
    if1 = Interface(sim, "if1", mbps(1))
    if2 = Interface(sim, "if2", mbps(1))
    bridge.add_physical_interface(if1, IF1_ADDR)
    bridge.add_physical_interface(if2, IF2_ADDR)
    bridge.add_flow(Flow("a"))
    bridge.add_flow(Flow("b", allowed_interfaces=["if2"]))

    transmitted = []

    def capture(interface, packet):
        transmitted.append((interface.interface_id, packet))

    if1.on_sent(capture)
    if2.on_sent(capture)

    def feed():
        # Keep both apps overloaded: 8 × 1228 B per 50 ms ≈ 1.6 Mb/s
        # offered per flow against 1 Mb/s of fair share.
        for _ in range(8):
            bridge.virtual.send(udp_packet(PORT_A))
            bridge.virtual.send(udp_packet(PORT_B))
        if sim.now < 30.0:
            sim.call_later(0.05, feed)

    sim.call_now(feed)
    return bridge, transmitted


class TestBridgeFigure1c:
    def test_maxmin_split_on_real_packets(self, sim, rig):
        bridge, _ = rig
        sim.run(until=30.0)
        a_rate = bridge.stats.rate_in_window("a", 3, 30)
        b_rate = bridge.stats.rate_in_window("b", 3, 30)
        assert a_rate == pytest.approx(mbps(1), rel=0.05)
        assert b_rate == pytest.approx(mbps(1), rel=0.05)

    def test_pi_on_the_wire(self, sim, rig):
        bridge, transmitted = rig
        sim.run(until=10.0)
        for interface_id, packet in transmitted:
            if packet.flow_id == "b":
                assert interface_id == "if2"

    def test_every_transmitted_packet_is_valid(self, sim, rig):
        """Headers on the wire parse, checksum, and carry NAT identity."""
        bridge, transmitted = rig
        sim.run(until=5.0)
        assert transmitted
        expected_src = {"if1": IF1_ADDR, "if2": IF2_ADDR}
        for interface_id, packet in transmitted:
            assert packet.wire_bytes is not None
            five_tuple, ip_header = parse_five_tuple(packet.wire_bytes)
            # parse validates the IPv4 checksum; check the rewrite too.
            assert five_tuple.src == expected_src[interface_id]
            assert five_tuple.dst == SERVER
            udp = UdpHeader.unpack(packet.wire_bytes[Ipv4Header.LENGTH:])
            body = packet.wire_bytes[Ipv4Header.LENGTH + UdpHeader.LENGTH:]
            assert udp.verify(ip_header.src, ip_header.dst, body)
            assert body == PAYLOAD

    def test_distinct_nat_identities_per_interface(self, sim, rig):
        bridge, transmitted = rig
        sim.run(until=5.0)
        ports_by_interface = {}
        for interface_id, packet in transmitted:
            if packet.flow_id != "a":
                continue
            five_tuple, _ = parse_five_tuple(packet.wire_bytes)
            ports_by_interface.setdefault(interface_id, set()).add(
                five_tuple.src_port
            )
        # Flow a crosses both interfaces with disjoint NAT ports.
        if len(ports_by_interface) == 2:
            assert not (
                ports_by_interface["if1"] & ports_by_interface["if2"]
            )

    def test_work_conservation_on_wire(self, sim, rig):
        bridge, _ = rig
        sim.run(until=30.0)
        for interface_id in ("if1", "if2"):
            sent_bits = bridge.stats.interface_bytes(interface_id) * 8
            assert sent_bits / (mbps(1) * 30.0) > 0.9
