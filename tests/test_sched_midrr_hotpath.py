"""Regression tests for the event-driven miDRR hot path.

Covers the three bugfixes that rode along with the rescan removal —
the turn-spanning telemetry miscount, the deficit/flag state leaks,
and the over-broad completion kicks — plus a hypothesis equivalence
test showing event-driven activation reproduces the old per-decision
flow-table rescan decision-for-decision.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import make_flow

from repro.core.engine import SchedulingEngine
from repro.health.invariants import MiDrrInvariantChecker
from repro.net.flow import Flow
from repro.net.interface import Interface
from repro.net.packet import Packet
from repro.schedulers.midrr import MiDrrScheduler


def flow_keys(mapping, flow_id):
    """Keys in a scheduler state dict belonging to *flow_id*."""
    return [
        key
        for key in mapping
        if (key[0] if isinstance(key, tuple) else key) == flow_id
    ]


class TestTelemetrySemantics:
    """``decision_flows_examined`` counts once per flow considered."""

    def test_serve_from_resumed_turn_records_one(self):
        scheduler = MiDrrScheduler(quantum_base=4500)
        scheduler.register_interface("if0")
        scheduler.add_flow(make_flow("a", backlog_packets=2))
        assert scheduler.select("if0").flow_id == "a"
        assert scheduler.decision_flows_examined[-1] == 1
        # The turn stayed open (3000 B of deficit left); the next
        # decision resumes it and serves without a cursor scan.
        assert scheduler.select("if0").flow_id == "a"
        assert scheduler.decision_flows_examined[-1] == 1

    def test_turn_spanning_decision_counts_resumed_flow(self):
        scheduler = MiDrrScheduler(quantum_base=4500)
        scheduler.register_interface("if0")
        a = make_flow("a", backlog_packets=3)
        b = make_flow("b", backlog_packets=1)
        scheduler.add_flow(a)
        scheduler.add_flow(b)
        assert scheduler.select("if0").flow_id == "a"
        # Drain a's remaining backlog behind the scheduler's back; its
        # service turn is still open.
        while a.backlogged:
            a.pull()
        # The next decision considers the resumed (now drained) flow a,
        # closes its turn, then scans to b: two flows considered. The
        # pre-fix counter forgot the resumed flow and reported 1.
        assert scheduler.select("if0").flow_id == "b"
        assert scheduler.decision_flows_examined[-1] == 2

    def test_idle_interface_records_zero(self):
        scheduler = MiDrrScheduler()
        scheduler.register_interface("if0")
        scheduler.add_flow(make_flow("a"))
        assert scheduler.select("if0") is None
        assert scheduler.decision_flows_examined[-1] == 0


class TestStateLeaks:
    """Drain and removal must pop state keys, not zero them."""

    def test_drain_pops_deficit_keys(self):
        scheduler = MiDrrScheduler()
        scheduler.register_interface("if0")
        scheduler.register_interface("if1")
        flow = make_flow("a", backlog_packets=1)
        scheduler.add_flow(flow)
        assert scheduler.select("if0").flow_id == "a"
        assert not flow.backlogged
        # Pre-fix, _deactivate wrote a 0.0 entry per interface —
        # including interfaces that never granted the flow a quantum —
        # so the dict grew by one key per (flow ever served, interface).
        assert flow_keys(scheduler._deficit, "a") == []
        # Introspection still reads the popped counters as zero.
        assert scheduler.deficit("a") == 0.0

    def test_drain_pops_flow_scoped_deficit(self):
        scheduler = MiDrrScheduler(deficit_scope="flow")
        scheduler.register_interface("if0")
        flow = make_flow("a", backlog_packets=1)
        scheduler.add_flow(flow)
        assert scheduler.select("if0").flow_id == "a"
        assert flow_keys(scheduler._deficit, "a") == []

    def test_remove_flow_pops_flags_and_deficits(self):
        scheduler = MiDrrScheduler()
        scheduler.register_interface("if0")
        scheduler.register_interface("if1")
        flow = make_flow("a", backlog_packets=5)
        scheduler.add_flow(flow)
        scheduler.add_flow(make_flow("b", backlog_packets=5))
        assert scheduler.select("if0").flow_id == "a"
        scheduler.remove_flow("a")
        assert flow_keys(scheduler._service_flags, "a") == []
        assert flow_keys(scheduler._deficit, "a") == []
        assert MiDrrInvariantChecker(scheduler).check() == []

    def test_flags_initialized_for_willing_interfaces_only(self):
        scheduler = MiDrrScheduler()
        scheduler.register_interface("if0")
        scheduler.register_interface("if1")
        scheduler.add_flow(make_flow("a", interfaces=("if0",)))
        assert flow_keys(scheduler._service_flags, "a") == [("a", "if0")]

    def test_checker_reports_injected_stale_key(self):
        scheduler = MiDrrScheduler()
        scheduler.register_interface("if0")
        scheduler._service_flags[("ghost", "if0")] = 1
        scheduler._deficit[("ghost", "if0")] = 0.0
        violations = MiDrrInvariantChecker(scheduler).check()
        assert sum("stale" in violation for violation in violations) == 2


class TestActivationContract:
    """select() never rescans; notify_backlogged is the wake-up path."""

    def test_rebacklogged_flow_needs_notification(self):
        scheduler = MiDrrScheduler()
        scheduler.register_interface("if0")
        flow = make_flow("a", backlog_packets=1)
        scheduler.add_flow(flow)
        assert scheduler.select("if0").flow_id == "a"
        flow.offer(Packet(flow_id="a", size_bytes=1500))
        # Without the notification the flow stays out of the round —
        # the per-decision flow-table rescan that used to paper over a
        # missing notify is gone (see notify_backlogged's docstring).
        assert scheduler.select("if0") is None
        scheduler.notify_backlogged(flow)
        assert scheduler.select("if0").flow_id == "a"


class TestWillingIndex:
    """The cached Π_i row self-heals on preference/topology changes."""

    def test_direct_restrict_to_invalidates(self):
        scheduler = MiDrrScheduler()
        scheduler.register_interface("if0")
        scheduler.register_interface("if1")
        flow = make_flow("a")
        scheduler.add_flow(flow)
        assert scheduler.willing_interfaces(flow) == ("if0", "if1")
        flow.restrict_to({"if1"})  # no notification on purpose
        assert scheduler.willing_interfaces(flow) == ("if1",)

    def test_late_interface_registration_invalidates(self):
        scheduler = MiDrrScheduler()
        scheduler.register_interface("if0")
        flow = make_flow("a")
        scheduler.add_flow(flow)
        assert scheduler.willing_interfaces(flow) == ("if0",)
        scheduler.register_interface("if1")
        assert scheduler.willing_interfaces(flow) == ("if0", "if1")


class CountingInterface(Interface):
    """An interface that counts kick() calls."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.kick_calls = 0

    def kick(self):
        self.kick_calls += 1
        super().kick()


class TestKickScope:
    """Engine kicks reach only up, willing interfaces."""

    def build(self, sim):
        engine = SchedulingEngine(sim, MiDrrScheduler())
        interfaces = {}
        for interface_id in ("if0", "if1", "if2"):
            interface = CountingInterface(sim, interface_id, 12_000)
            engine.add_interface(interface)
            interfaces[interface_id] = interface
        return engine, interfaces

    def test_completion_kicks_only_up_willing(self, sim):
        engine, interfaces = self.build(sim)
        interfaces["if2"].bring_down()
        flow = make_flow("a", interfaces=("if0", "if2"))
        engine.add_flow(flow)
        for interface in interfaces.values():
            interface.kick_calls = 0
        engine._complete_flow(flow)
        assert interfaces["if0"].kick_calls == 1
        assert interfaces["if1"].kick_calls == 0  # unwilling
        assert interfaces["if2"].kick_calls == 0  # down

    def test_preference_change_kicks_only_up_willing(self, sim):
        engine, interfaces = self.build(sim)
        interfaces["if2"].bring_down()
        flow = make_flow("a", interfaces=("if0",), backlog_packets=1)
        engine.add_flow(flow)
        flow.restrict_to({"if1", "if2"})
        for interface in interfaces.values():
            interface.kick_calls = 0
        engine.notify_preferences_changed("a")
        assert interfaces["if0"].kick_calls == 0  # no longer willing
        assert interfaces["if1"].kick_calls == 1
        assert interfaces["if2"].kick_calls == 0  # down


class RescanMiDrrScheduler(MiDrrScheduler):
    """Reference model: the pre-refactor per-decision table rescan."""

    def select(self, interface_id):
        state = self._states.get(interface_id)
        if state is not None:
            for flow in self._flows.values():
                if (
                    flow.backlogged
                    and flow.willing_to_use(interface_id)
                    and flow.flow_id not in state.active
                ):
                    state.active[flow.flow_id] = None
        return super().select(interface_id)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_event_driven_activation_matches_rescan(data):
    """Notified activation ≡ per-decision rescan, decision for decision.

    Random topology, Π, weights and an interleaved offer/select op
    sequence; both schedulers receive identical notifications (the
    engine's contract). The served sequences and the per-decision
    telemetry must agree exactly.
    """
    num_interfaces = data.draw(st.integers(1, 3), label="interfaces")
    interface_ids = [f"if{j}" for j in range(num_interfaces)]
    flow_specs = data.draw(
        st.lists(
            st.tuples(
                st.sampled_from([0.5, 1.0, 2.0]),
                st.sets(st.sampled_from(interface_ids), min_size=1),
            ),
            min_size=1,
            max_size=5,
        ),
        label="flows",
    )
    ops = data.draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("offer"),
                    st.integers(0, len(flow_specs) - 1),
                    st.sampled_from([500, 1000, 1500]),
                ),
                st.tuples(st.just("select"), st.integers(0, num_interfaces - 1)),
            ),
            max_size=60,
        ),
        label="ops",
    )

    def build(scheduler_class):
        scheduler = scheduler_class(quantum_base=1500)
        for interface_id in interface_ids:
            scheduler.register_interface(interface_id)
        flows = []
        for index, (weight, willing) in enumerate(flow_specs):
            flow = Flow(
                f"flow{index}", weight=weight, allowed_interfaces=sorted(willing)
            )
            scheduler.add_flow(flow)
            flows.append(flow)
        return scheduler, flows

    subject, subject_flows = build(MiDrrScheduler)
    reference, reference_flows = build(RescanMiDrrScheduler)

    subject_trace = []
    reference_trace = []
    for op in ops:
        if op[0] == "offer":
            _, index, size = op
            for scheduler, flows in (
                (subject, subject_flows),
                (reference, reference_flows),
            ):
                flow = flows[index]
                was_empty = not flow.backlogged
                flow.offer(Packet(flow_id=flow.flow_id, size_bytes=size))
                if was_empty:
                    scheduler.notify_backlogged(flow)
        else:
            interface_id = interface_ids[op[1]]
            for scheduler, trace in (
                (subject, subject_trace),
                (reference, reference_trace),
            ):
                packet = scheduler.select(interface_id)
                trace.append(
                    None
                    if packet is None
                    else (interface_id, packet.flow_id, packet.size_bytes)
                )
    assert subject_trace == reference_trace
    assert (
        subject.decision_flows_examined == reference.decision_flows_examined
    )


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_forced_resume_matches_rescan_select(data):
    """``plan_batch`` + ``forced_resume`` ≡ per-decision rescan select.

    Extends the rescan-equivalence property to the batcher: whenever
    the subject's plan proves the next *extra* decisions forced and
    replays them through the scan-free ``forced_resume`` path, the
    rescan reference model — taking the same number of full ``select``
    calls — must serve the identical packets and record the identical
    one-flow-examined telemetry. Small packets against the default
    quantum make multi-packet turns (and therefore non-trivial plans)
    the common case.
    """
    num_interfaces = data.draw(st.integers(1, 3), label="interfaces")
    interface_ids = [f"if{j}" for j in range(num_interfaces)]
    flow_specs = data.draw(
        st.lists(
            st.tuples(
                st.sampled_from([0.5, 1.0, 2.0]),
                st.sets(st.sampled_from(interface_ids), min_size=1),
            ),
            min_size=1,
            max_size=4,
        ),
        label="flows",
    )
    ops = data.draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("offer"),
                    st.integers(0, len(flow_specs) - 1),
                    st.sampled_from([200, 300, 500]),
                ),
                st.tuples(st.just("serve"), st.integers(0, num_interfaces - 1)),
            ),
            max_size=50,
        ),
        label="ops",
    )

    def build(scheduler_class):
        scheduler = scheduler_class(quantum_base=1500)
        for interface_id in interface_ids:
            scheduler.register_interface(interface_id)
        flows = []
        for index, (weight, willing) in enumerate(flow_specs):
            flow = Flow(
                f"flow{index}", weight=weight, allowed_interfaces=sorted(willing)
            )
            scheduler.add_flow(flow)
            flows.append(flow)
        return scheduler, flows

    subject, subject_flows = build(MiDrrScheduler)
    reference, reference_flows = build(RescanMiDrrScheduler)

    subject_trace = []
    reference_trace = []
    planned_windows = 0
    for op in ops:
        if op[0] == "offer":
            _, index, size = op
            for scheduler, flows in (
                (subject, subject_flows),
                (reference, reference_flows),
            ):
                flow = flows[index]
                was_empty = not flow.backlogged
                flow.offer(Packet(flow_id=flow.flow_id, size_bytes=size))
                if was_empty:
                    scheduler.notify_backlogged(flow)
        else:
            interface_id = interface_ids[op[1]]
            packet = subject.select(interface_id)
            subject_trace.append(
                None if packet is None else (packet.flow_id, packet.size_bytes)
            )
            extra = 0
            if packet is not None:
                plan = subject.plan_batch(interface_id)
                if plan is not None:
                    _, extra = plan
                    planned_windows += 1
                for _ in range(extra):
                    forced = subject.forced_resume(interface_id)
                    subject_trace.append((forced.flow_id, forced.size_bytes))
            # The reference takes 1 + extra plain selects.
            for _ in range(1 + extra):
                packet = reference.select(interface_id)
                reference_trace.append(
                    None
                    if packet is None
                    else (packet.flow_id, packet.size_bytes)
                )
    assert subject_trace == reference_trace
    assert (
        subject.decision_flows_examined == reference.decision_flows_examined
    )


def test_forced_window_forms_and_replays():
    """Deterministic check that plan_batch actually proves a window
    (so the property above is not vacuous) and forced_resume drains it
    with the exact deficit arithmetic of select."""
    scheduler = MiDrrScheduler(quantum_base=1500)
    scheduler.register_interface("if0")
    flow = Flow("f", weight=2.0, allowed_interfaces=["if0"])
    scheduler.add_flow(flow)
    for _ in range(5):
        flow.offer(Packet(flow_id="f", size_bytes=500))
    scheduler.notify_backlogged(flow)

    first = scheduler.select("if0")
    assert first is not None and first.size_bytes == 500
    plan = scheduler.plan_batch("if0")
    assert plan is not None
    planned_flow, extra = plan
    assert planned_flow is flow
    # Quantum 3000, 500 spent: 2500 of deficit covers the remaining
    # four packets but the plan stops one short of emptying the queue.
    assert extra == 3
    for _ in range(extra):
        assert scheduler.forced_resume("if0").size_bytes == 500
    assert len(flow.queue) == 1
    assert scheduler.decision_flows_examined[-extra:] == [1] * extra
