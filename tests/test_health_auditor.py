"""Inline fairness auditor: alert dedup, tracking, drift, determinism.

The tier-1 smoke here runs the auditor with ``debug=True`` so the
incremental solver cross-checks itself against a from-scratch
``weighted_maxmin`` after every live delta the engine feeds it.
"""

import json

import pytest

from repro.core.runner import run_scenario
from repro.core.scenario import FlowSpec, InterfaceSpec, Scenario, TrafficSpec
from repro.errors import WatchdogError
from repro.faults.chaos import ChaosRun
from repro.health import (
    ALERT_FAIRNESS_DRIFT,
    Alert,
    AlertDeduper,
    FairnessAuditor,
)
from repro.recovery import RecoverableScenarioRun
from repro.schedulers.midrr import MiDrrScheduler
from repro.schedulers.per_interface import PerInterfaceScheduler
from repro.units import mbps


def steady_scenario(duration=8.0, seed=5):
    """Two always-backlogged flows over two stable interfaces."""
    return Scenario(
        name="audit-steady",
        interfaces=(
            InterfaceSpec("wifi", mbps(4)),
            InterfaceSpec("cell", mbps(1)),
        ),
        flows=(
            FlowSpec("bulk", traffic=TrafficSpec("bulk")),
            FlowSpec(
                "pinned",
                weight=2.0,
                interfaces=("cell",),
                traffic=TrafficSpec("bulk"),
            ),
        ),
        duration=duration,
        seed=seed,
    )


def skewed_scenario(duration=12.0, seed=5):
    """One interface, φ = 1 vs 9: a weight-blind scheduler must drift."""
    return Scenario(
        name="audit-skewed",
        interfaces=(InterfaceSpec("if1", mbps(2)),),
        flows=(
            FlowSpec("light", weight=1.0, traffic=TrafficSpec("bulk")),
            FlowSpec("heavy", weight=9.0, traffic=TrafficSpec("bulk")),
        ),
        duration=duration,
        seed=seed,
    )


def audited_run(
    scenario,
    scheduler_factory=MiDrrScheduler,
    backend="heap",
    batching=False,
    **auditor_kwargs,
):
    box = {}

    def attach(sim, engine):
        auditor = FairnessAuditor(sim, engine, period=0.5, **auditor_kwargs)
        auditor.start()
        box["auditor"] = auditor

    result = run_scenario(
        scenario,
        scheduler_factory,
        on_engine=attach,
        queue_backend=backend,
        batching=batching,
    )
    return result, box["auditor"]


class TestAlertDeduper:
    def test_first_occurrence_emits_verbatim(self):
        deduper = AlertDeduper(max_gap=60.0)
        assert deduper.admit("kind", "s", "detail", base_gap=2.0, now=0.0) == (
            "detail"
        )

    def test_repeats_inside_the_gap_are_suppressed_and_counted(self):
        deduper = AlertDeduper(max_gap=60.0)
        deduper.admit("kind", "s", "d", base_gap=2.0, now=0.0)
        assert deduper.admit("kind", "s", "d", base_gap=2.0, now=0.5) is None
        assert deduper.admit("kind", "s", "d", base_gap=2.0, now=1.9) is None
        assert deduper.suppressed_total == 2
        assert deduper.admit("kind", "s", "d", base_gap=2.0, now=2.0) == (
            "d (2 repeats suppressed)"
        )

    def test_gap_escalates_and_caps(self):
        deduper = AlertDeduper(max_gap=5.0)
        now, emitted = 0.0, []
        for _ in range(6):
            if deduper.admit("kind", "s", "d", base_gap=2.0, now=now) is not None:
                emitted.append(now)
            now += 1.0
        # Emits at 0, then after gaps 2, 4 (5 capped would be next).
        assert emitted == [0.0, 2.0]
        assert deduper.admit("kind", "s", "d", base_gap=2.0, now=6.0) is not None
        # Gap is now capped at 5, not 8.
        assert deduper.admit("kind", "s", "d", base_gap=2.0, now=10.9) is None
        assert deduper.admit("kind", "s", "d", base_gap=2.0, now=11.0) is not None

    def test_clear_resets_the_series(self):
        deduper = AlertDeduper(max_gap=60.0)
        deduper.admit("kind", "s", "d", base_gap=2.0, now=0.0)
        deduper.clear("kind", "s")
        # Recovered and re-broke: emits immediately again.
        assert deduper.admit("kind", "s", "d", base_gap=2.0, now=0.5) == "d"

    def test_series_are_independent_per_subject(self):
        deduper = AlertDeduper(max_gap=60.0)
        deduper.admit("kind", "a", "d", base_gap=2.0, now=0.0)
        assert deduper.admit("kind", "b", "d", base_gap=2.0, now=0.5) == "d"

    def test_snapshot_restore_roundtrip(self):
        deduper = AlertDeduper(max_gap=60.0)
        deduper.admit("kind", "s", "d", base_gap=2.0, now=0.0)
        deduper.admit("kind", "s", "d", base_gap=2.0, now=0.5)
        rows = json.loads(json.dumps(deduper.snapshot_series()))
        restored = AlertDeduper(max_gap=60.0)
        restored.restore_series(rows)
        # Still inside the original gap; the suppression state carried.
        assert restored.admit("kind", "s", "d", base_gap=2.0, now=1.0) is None
        assert restored.admit("kind", "s", "d", base_gap=2.0, now=2.0) == (
            "d (2 repeats suppressed)"
        )

    def test_alert_renders(self):
        alert = Alert(time=1.5, kind="fairness_drift", subject="f", detail="x")
        assert "fairness_drift" in str(alert)
        assert "f" in str(alert)


@pytest.mark.audit
class TestAuditorSmoke:
    """Tier-1 smoke: the auditor tracks a healthy run without noise."""

    def test_steady_midrr_run_audits_clean(self):
        result, auditor = audited_run(steady_scenario(), debug=True)
        assert auditor.ticks > 0
        assert auditor.audits_total > 0
        assert auditor.alerts == []
        # The live fluid optimum for the steady instance is exact.
        assert float(auditor.solver.rate("bulk")) == pytest.approx(mbps(4))
        assert float(auditor.solver.rate("pinned")) == pytest.approx(mbps(1))
        # A healthy miDRR tracks it well inside the drift allowance.
        assert auditor.drift_peak < 1.0

    def test_validation(self):
        scenario = steady_scenario(duration=1.0)

        def attach_bad(sim, engine):
            FairnessAuditor(sim, engine, period=0.0)

        with pytest.raises(WatchdogError):
            run_scenario(scenario, MiDrrScheduler, on_engine=attach_bad)

    def test_quiescence_gating_skips_early_windows(self):
        # Shorter than the window: every tick reconciles, none audits.
        result, auditor = audited_run(steady_scenario(duration=1.5))
        assert auditor.ticks > 0
        assert auditor.audits_total == 0


@pytest.mark.audit
class TestDriftDetection:
    def test_weight_blind_scheduler_trips_the_alert(self):
        result, auditor = audited_run(
            skewed_scenario(), scheduler_factory=PerInterfaceScheduler.fifo
        )
        assert auditor.audits_total > 0
        assert auditor.alerts, "fifo vs 9:1 weights must register as drift"
        assert {alert.kind for alert in auditor.alerts} == {
            ALERT_FAIRNESS_DRIFT
        }
        assert {alert.subject for alert in auditor.alerts} <= {
            "light",
            "heavy",
        }
        assert auditor.drift_peak > 1.0

    def test_midrr_stays_clean_on_the_same_workload(self):
        result, auditor = audited_run(skewed_scenario(), debug=True)
        assert auditor.audits_total > 0
        assert auditor.alerts == []

    def test_strict_mode_raises(self):
        with pytest.raises(WatchdogError, match="fairness_drift"):
            audited_run(
                skewed_scenario(),
                scheduler_factory=PerInterfaceScheduler.fifo,
                strict=True,
            )

    def test_repeated_drift_is_deduplicated(self):
        result, auditor = audited_run(
            skewed_scenario(duration=20.0),
            scheduler_factory=PerInterfaceScheduler.fifo,
        )
        # Persistent unfairness: a handful of escalating alerts, not
        # one per audit tick.
        assert 0 < len(auditor.alerts) < auditor.audits_total * 2
        assert auditor.alerts_suppressed > 0


@pytest.mark.audit
class TestReadOnlyDeterminism:
    def test_chaos_signatures_identical_with_and_without_auditor(self):
        bare = ChaosRun(seed=5, duration=20.0).run()
        audited_chaos = ChaosRun(seed=5, duration=20.0, with_auditor=True)
        audited = audited_chaos.run()
        assert audited.fault_signature() == bare.fault_signature()
        assert audited.stats_signature() == bare.stats_signature()
        assert audited_chaos.auditor.ticks > 0

    def test_fairness_snapshot_deterministic_across_backends_and_batching(
        self,
    ):
        scenario = steady_scenario()
        snapshots = {}
        for backend in ("heap", "calendar"):
            for batching in (False, True):
                result, auditor = audited_run(
                    scenario, backend=backend, batching=batching
                )
                snapshots[(backend, batching)] = auditor.snapshot_state()
        reference = snapshots[("heap", False)]
        assert reference["audits_total"] > 0
        for key, snapshot in snapshots.items():
            assert snapshot == reference, f"{key} diverged from (heap, False)"


def auditor_extras(run):
    auditor = FairnessAuditor(run.sim, run.engine, period=0.5, debug=True)
    auditor.start()
    run.attach("health:auditor", auditor)


@pytest.mark.audit
@pytest.mark.recovery
class TestCheckpointRestore:
    def test_auditor_checkpoints_and_resumes(self):
        scenario = steady_scenario(duration=6.0)
        reference = RecoverableScenarioRun(
            scenario, MiDrrScheduler, extras=auditor_extras
        )
        reference.run_to_completion()
        ref_auditor = reference._components["health:auditor"]
        assert ref_auditor.ticks > 0
        assert ref_auditor.audits_total > 0

        run = RecoverableScenarioRun(
            scenario, MiDrrScheduler, extras=auditor_extras
        )
        for _ in range(400):
            if run.finished or not run.step():
                break
        state = json.loads(json.dumps(run.checkpoint()))
        prefix = list(run.trace.entries)

        restored = RecoverableScenarioRun.restore(
            state, MiDrrScheduler, extras=auditor_extras
        )
        restored.run_to_completion()
        assert prefix + list(restored.trace.entries) == list(
            reference.trace.entries
        )
        auditor = restored._components["health:auditor"]
        assert auditor.ticks == ref_auditor.ticks
        assert auditor.audits_total == ref_auditor.audits_total
        assert auditor.drift_last == ref_auditor.drift_last
        assert auditor.drift_peak == ref_auditor.drift_peak
        assert (
            auditor.solver.allocation.rates
            == ref_auditor.solver.allocation.rates
        )
