"""Chaos regression tests: determinism, invariants, graceful degradation.

The seeded scenario tests carry the ``chaos`` marker (deselect with
``-m 'not chaos'``); the quarantine-resume rig below them is a plain
deterministic unit test of the engine's degradation layer.
"""

import pytest

from repro.core.engine import SchedulingEngine
from repro.errors import FaultError, SchedulingError
from repro.fairness.waterfill import weighted_maxmin
from repro.faults.chaos import CHAOS_BULK_FLOWS, run_chaos
from repro.net.flow import Flow
from repro.net.interface import Interface
from repro.net.sources import BulkSource
from repro.schedulers.midrr import MiDrrScheduler
from repro.sim.simulator import Simulator
from repro.units import mbps


@pytest.fixture(scope="module")
def seed7_pair():
    """The same 60 s chaos scenario executed twice."""
    return run_chaos(seed=7, duration=60.0), run_chaos(seed=7, duration=60.0)


@pytest.mark.chaos
class TestDeterminism:
    def test_same_seed_identical_fault_timeline(self, seed7_pair):
        first, second = seed7_pair
        assert first.fault_signature() == second.fault_signature()
        assert first.timeline.render_lines() == second.timeline.render_lines()
        assert len(first.timeline) > 0

    def test_same_seed_identical_stats(self, seed7_pair):
        first, second = seed7_pair
        assert first.stats_signature() == second.stats_signature()
        assert first.bytes_by_flow == second.bytes_by_flow
        assert first.drops_by_flow == second.drops_by_flow
        assert first.packets_lost == second.packets_lost
        assert first.packets_corrupted == second.packets_corrupted

    def test_different_seeds_diverge(self):
        first = run_chaos(seed=3, duration=20.0)
        second = run_chaos(seed=4, duration=20.0)
        assert first.fault_signature() != second.fault_signature()


@pytest.mark.chaos
class TestChaosHealth:
    def test_flapping_actually_happened(self, seed7_pair):
        report, _ = seed7_pair
        assert sum(report.interface_down_counts.values()) > 0
        assert report.timeline.of_kind("if_down")

    def test_zero_invariant_violations_over_60s(self, seed7_pair):
        report, _ = seed7_pair
        assert report.duration >= 60.0
        assert report.invariant_violations == []

    def test_no_watchdog_alerts(self, seed7_pair):
        report, _ = seed7_pair
        assert report.alerts == []

    def test_quarantine_spells_open_and_close(self, seed7_pair):
        report, _ = seed7_pair
        # Flapping parks the single-interface flows: `pinned` (wifi) and
        # the wire flow (cell) — never the multi-homed bulk flows.
        parked = {spell.flow_id for spell in report.quarantine_spells}
        assert "pinned" in parked
        assert parked <= {"pinned", "wire"}
        for spell in report.quarantine_spells:
            assert spell.end is not None  # all closed by the fault window
            assert spell.duration >= 0.0

    def test_every_corruption_is_detected(self, seed7_pair):
        report, _ = seed7_pair
        assert report.packets_corrupted > 0
        assert report.corruptions_detected == report.packets_corrupted

    def test_bounded_wire_queue_dropped_under_outage(self, seed7_pair):
        report, _ = seed7_pair
        assert report.drops_by_flow.get("wire", 0) > 0

    def test_recovery_within_ten_percent_of_maxmin(self, seed7_pair):
        report, _ = seed7_pair
        for flow_id in CHAOS_BULK_FLOWS:
            ratio = report.recovery_ratio(flow_id)
            assert ratio is not None
            assert 0.9 <= ratio <= 1.1, f"{flow_id} recovered at ratio {ratio}"

    def test_report_renders(self, seed7_pair):
        report, _ = seed7_pair
        text = report.to_text()
        assert "chaos run: seed=7" in text
        assert "fault signature:" in text
        assert "stats signature:" in text
        assert "recovery" in text


@pytest.mark.chaos
class TestChaosSmoke:
    def test_fast_seeded_smoke(self):
        report = run_chaos(seed=3, duration=20.0)
        assert report.invariant_violations == []
        assert report.alerts == []
        assert len(report.timeline) > 0
        assert report.bytes_by_flow["video"] > 0

    def test_short_duration_rejected(self):
        with pytest.raises(FaultError):
            run_chaos(seed=0, duration=5.0)


OUTAGE_START = 10.0
OUTAGE_END = 15.0
DURATION = 30.0


@pytest.fixture(scope="module")
def outage_rig():
    """A pinned flow loses its only interface for five seconds."""
    sim = Simulator()
    scheduler = MiDrrScheduler()
    engine = SchedulingEngine(sim, scheduler)
    engine.add_interface(Interface(sim, "wifi", mbps(8)))
    engine.add_interface(Interface(sim, "lte", mbps(5)))
    pinned = Flow("pinned", allowed_interfaces=("wifi",))
    bulk = Flow("bulk")
    BulkSource(sim, pinned)
    BulkSource(sim, bulk)
    engine.add_flow(pinned)
    engine.add_flow(bulk)

    events = []
    engine.on_quarantine_change(
        lambda flow, quarantined: events.append((sim.now, flow.flow_id, quarantined))
    )
    probes = {}

    def probe_during():
        probes["during"] = (
            "pinned" in engine.quarantined_flows,
            scheduler.has_flow("pinned"),
        )

    sim.schedule(OUTAGE_START, engine.interfaces["wifi"].bring_down)
    sim.schedule(OUTAGE_END, engine.interfaces["wifi"].bring_up)
    sim.schedule(12.0, probe_during)
    engine.start()
    sim.run(until=DURATION)
    return engine, events, probes


class TestQuarantineResume:
    def test_whole_pi_set_down_triggers_quarantine(self, outage_rig):
        engine, events, probes = outage_rig
        quarantined, registered = probes["during"]
        assert quarantined and not registered
        assert [(e[1], e[2]) for e in events] == [("pinned", True), ("pinned", False)]
        assert events[0][0] == pytest.approx(OUTAGE_START)
        assert events[1][0] == pytest.approx(OUTAGE_END)

    def test_parked_flow_receives_nothing(self, outage_rig):
        engine, _, _ = outage_rig
        assert engine.stats.rate_in_window("pinned", OUTAGE_START + 0.5, OUTAGE_END) == 0.0
        # The unconstrained flow keeps flowing on the survivor.
        assert engine.stats.rate_in_window("bulk", OUTAGE_START + 0.5, OUTAGE_END) > 0

    def test_pi_respected_throughout(self, outage_rig):
        engine, _, _ = outage_rig
        matrix = engine.stats.service_matrix()
        assert matrix.get(("pinned", "wifi"), 0) > 0
        assert ("pinned", "lte") not in matrix

    def test_resume_restores_weighted_maxmin(self, outage_rig):
        engine, _, _ = outage_rig
        reference = weighted_maxmin(
            {"pinned": (1.0, ["wifi"]), "bulk": (1.0, None)},
            {"wifi": mbps(8), "lte": mbps(5)},
        )
        for flow_id in ("pinned", "bulk"):
            target = float(reference.rate(flow_id))
            measured = engine.stats.rate_in_window(flow_id, OUTAGE_END + 2.0, DURATION)
            assert abs(measured - target) / target < 0.10

    def test_flow_stays_listed_while_quarantined(self, outage_rig):
        engine, _, _ = outage_rig
        # After recovery both flows are active and nothing is parked.
        assert set(engine.flows) == {"pinned", "bulk"}
        assert engine.quarantined_flows == {}


class TestQuarantineEdgeCases:
    def test_add_flow_straight_into_quarantine(self, sim):
        engine = SchedulingEngine(sim, MiDrrScheduler())
        engine.add_interface(Interface(sim, "wifi", mbps(8)))
        engine.interfaces["wifi"].bring_down()
        pinned = Flow("pinned", allowed_interfaces=("wifi",))
        engine.add_flow(pinned)
        assert "pinned" in engine.quarantined_flows
        assert not engine.scheduler.has_flow("pinned")
        engine.interfaces["wifi"].bring_up()
        assert engine.quarantined_flows == {}
        assert engine.scheduler.has_flow("pinned")

    def test_unknown_interface_still_rejected(self, sim):
        engine = SchedulingEngine(sim, MiDrrScheduler())
        engine.add_interface(Interface(sim, "wifi", mbps(8)))
        ghost = Flow("ghost", allowed_interfaces=("zzz",))
        with pytest.raises(SchedulingError):
            engine.add_flow(ghost)
