"""Tests for the conclusion applications (task pool, CPU affinity)."""

import pytest

from repro.apps.cpu_affinity import (
    CpuScheduler,
    ThreadSpec,
    big_cores_of,
    tegra_cores,
)
from repro.apps.taskpool import (
    JobSpec,
    MachineSpec,
    TaskPool,
    fair_shares,
)
from repro.errors import ConfigurationError


class TestSpecs:
    def test_machine_validation(self):
        with pytest.raises(ConfigurationError):
            MachineSpec("m", 0)

    def test_job_validation(self):
        with pytest.raises(ConfigurationError):
            JobSpec("j", weight=0)
        with pytest.raises(ConfigurationError):
            JobSpec("j", task_units=0)

    def test_pool_validation(self):
        with pytest.raises(ConfigurationError):
            TaskPool([], [])
        with pytest.raises(ConfigurationError):
            TaskPool(
                [MachineSpec("m", 100)],
                [JobSpec("j"), JobSpec("j")],
            )


class TestFairShares:
    def test_gpu_preference_example(self):
        """The paper's "tasks might prefer only more powerful machines"."""
        machines = [
            MachineSpec("gpu", 1000.0),
            MachineSpec("cpu", 400.0),
        ]
        jobs = [
            JobSpec("training", weight=1.0, machines=("gpu",)),
            JobSpec("etl", weight=1.0),
        ]
        allocation = fair_shares(machines, jobs)
        # training confined to gpu: levels — J={gpu}: 1000; J=all:
        # 1400/2 = 700 → both at 700.
        assert allocation.rate("training") == pytest.approx(700.0)
        assert allocation.rate("etl") == pytest.approx(700.0)

    def test_weighted_jobs(self):
        machines = [MachineSpec("m", 900.0)]
        jobs = [JobSpec("a", weight=2.0), JobSpec("b", weight=1.0)]
        allocation = fair_shares(machines, jobs)
        assert allocation.rate("a") == pytest.approx(600.0)
        assert allocation.rate("b") == pytest.approx(300.0)


class TestTaskPoolRuns:
    def test_throughput_matches_fluid(self):
        machines = [MachineSpec("fast", 1000.0), MachineSpec("slow", 200.0)]
        jobs = [
            JobSpec("picky", machines=("fast",)),
            JobSpec("flexible"),
        ]
        pool = TaskPool(machines, jobs)
        result = pool.run(20.0)
        allocation = fair_shares(machines, jobs)
        for job in jobs:
            assert result.throughput[job.job_id] == pytest.approx(
                allocation.rate(job.job_id), rel=0.10
            )

    def test_machine_preference_respected(self):
        machines = [MachineSpec("gpu", 500.0), MachineSpec("cpu", 500.0)]
        jobs = [JobSpec("gpu_only", machines=("gpu",)), JobSpec("any")]
        result = TaskPool(machines, jobs).run(10.0)
        assert ("gpu_only", "cpu") not in result.placement

    def test_finite_job_completes(self):
        machines = [MachineSpec("m", 100.0)]
        jobs = [JobSpec("batch", total_work=500)]
        result = TaskPool(machines, jobs).run(20.0)
        # 500 units at 100/s = 5 s.
        assert result.completions["batch"] == pytest.approx(5.0, rel=0.05)

    def test_invalid_duration(self):
        pool = TaskPool([MachineSpec("m", 10.0)], [JobSpec("j")])
        with pytest.raises(ConfigurationError):
            pool.run(0.5, warmup=1.0)


class TestCpuScheduler:
    def test_tegra_topology(self):
        cores = tegra_cores()
        assert len(cores) == 5
        assert big_cores_of(cores) == ("big0", "big1", "big2", "big3")
        with pytest.raises(ConfigurationError):
            tegra_cores(num_big=0)

    def test_render_avoids_companion_core(self):
        cores = tegra_cores()
        threads = [
            ThreadSpec("render", weight=2.0, affinity=big_cores_of(cores)),
            ThreadSpec("background"),
        ]
        scheduler = CpuScheduler(cores, threads)
        result = scheduler.run(10.0)
        assert ("render", "companion") not in result.placement
        assert result.throughput["render"] > 0

    def test_all_cores_utilized_under_load(self):
        cores = tegra_cores()
        threads = [
            ThreadSpec("render", weight=2.0, affinity=big_cores_of(cores)),
            ThreadSpec("audio"),
            ThreadSpec("background", weight=0.5),
        ]
        scheduler = CpuScheduler(cores, threads)
        result = scheduler.run(10.0)
        utilization = scheduler.core_utilization(result)
        for core_id, used in utilization.items():
            assert used > 0.95, f"{core_id} idle at {used:.2f}"

    def test_measured_close_to_fluid(self):
        cores = tegra_cores()
        threads = [
            ThreadSpec("render", weight=2.0, affinity=big_cores_of(cores)),
            ThreadSpec("physics", weight=1.0, affinity=big_cores_of(cores)),
            ThreadSpec("audio", weight=1.0),
            ThreadSpec("background", weight=0.5),
        ]
        scheduler = CpuScheduler(cores, threads)
        allocation = scheduler.fair_allocation()
        result = scheduler.run(15.0)
        for thread in threads:
            assert result.throughput[thread.thread_id] == pytest.approx(
                allocation.rate(thread.thread_id), rel=0.15
            )


class TestInboundIdealExperiment:
    def test_ideal_is_exact_and_dominates_http(self):
        from repro.experiments import inbound_ideal

        result = inbound_ideal.run()
        assert result.worst_deviation("ideal") < 0.02
        assert result.worst_deviation("http") < 0.30
        assert result.worst_deviation("ideal") < result.worst_deviation("http")
