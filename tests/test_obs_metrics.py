"""Unit tests for the metric primitives and the registry."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        counter = Counter("c")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_snapshot(self):
        counter = Counter("c")
        counter.inc(4)
        assert counter.snapshot() == {"type": "counter", "value": 4.0}


class TestGauge:
    def test_explicit_set(self):
        gauge = Gauge("g")
        gauge.set(7)
        assert gauge.value == 7.0
        assert not gauge.callback_backed

    def test_callback_backed_reads_lazily(self):
        backing = {"value": 1.0}
        gauge = Gauge("g", fn=lambda: backing["value"])
        assert gauge.value == 1.0
        backing["value"] = 9.0
        assert gauge.value == 9.0
        assert gauge.callback_backed

    def test_set_on_callback_gauge_rejected(self):
        gauge = Gauge("g", fn=lambda: 0.0)
        with pytest.raises(ConfigurationError):
            gauge.set(1.0)


class TestHistogram:
    def test_bucketing_inclusive_upper_edges(self):
        histogram = Histogram("h", bounds=(10, 100))
        for value in (5, 10, 50, 500):
            histogram.observe(value)
        # <=10, <=100, overflow
        assert histogram.bucket_counts() == [2, 1, 1]
        assert histogram.count == 4
        assert histogram.sum == 565

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=())
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=(10, 10))
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=(10, 5))

    def test_accepts_increasing_bounds(self):
        histogram = Histogram("h", bounds=(0, 1, 2, 4, 8))
        assert histogram.bounds == (0.0, 1.0, 2.0, 4.0, 8.0)

    def test_quantile_interpolates(self):
        histogram = Histogram("h", bounds=(10, 20, 30))
        for value in range(1, 31):
            histogram.observe(value)
        assert histogram.quantile(0.5) == pytest.approx(15, abs=5)
        assert histogram.quantile(0.0) <= histogram.quantile(1.0)
        assert histogram.quantile(1.0) == 30

    def test_quantile_empty_and_invalid(self):
        histogram = Histogram("h", bounds=(1,))
        assert histogram.quantile(0.5) == 0.0
        with pytest.raises(ConfigurationError):
            histogram.quantile(1.5)

    def test_snapshot_shape(self):
        histogram = Histogram("h", bounds=(1, 2))
        payload = histogram.snapshot()
        assert payload["count"] == 0
        assert "p50" not in payload
        histogram.observe(1.5)
        payload = histogram.snapshot()
        assert payload["min"] == payload["max"] == 1.5
        assert payload["counts"] == [0, 1, 0]


class TestQuantileSketch:
    def test_relative_error_bound(self):
        sketch = QuantileSketch("s")
        values = [1.0003**i for i in range(2000)]
        for value in values:
            sketch.observe(value)
        exact = sorted(values)
        for q in (0.1, 0.5, 0.9, 0.99):
            estimate = sketch.quantile(q)
            truth = exact[min(int(q * len(exact)), len(exact) - 1)]
            assert estimate == pytest.approx(truth, rel=0.06)

    def test_zero_and_negative_values(self):
        sketch = QuantileSketch("s")
        sketch.observe(0.0)
        sketch.observe(-1.0)
        sketch.observe(5.0)
        assert sketch.count == 3
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(1.0) == pytest.approx(5.0, rel=0.06)

    def test_merge(self):
        left = QuantileSketch("l")
        right = QuantileSketch("r")
        for i in range(1, 101):
            (left if i % 2 else right).observe(float(i))
        left.merge(right)
        assert left.count == 100
        assert left.quantile(0.5) == pytest.approx(50, rel=0.06)

    def test_merge_growth_mismatch_rejected(self):
        left = QuantileSketch("l", growth=1.05)
        right = QuantileSketch("r", growth=1.1)
        with pytest.raises(ConfigurationError):
            left.merge(right)

    def test_invalid_growth(self):
        with pytest.raises(ConfigurationError):
            QuantileSketch("s", growth=1.0)

    def test_empty_quantile(self):
        assert QuantileSketch("s").quantile(0.5) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.floats(1e-9, 1e9, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=200,
        ),
        q=st.floats(0.0, 1.0),
    )
    def test_quantile_within_observed_range(self, values, q):
        sketch = QuantileSketch("s")
        for value in values:
            sketch.observe(value)
        estimate = sketch.quantile(q)
        assert min(values) <= estimate <= max(values)
        assert sketch.count == len(values)
        assert sketch.sum == pytest.approx(math.fsum(values))


class TestMetricsRegistry:
    def test_idempotent_creation(self):
        registry = MetricsRegistry()
        first = registry.counter("a.total")
        second = registry.counter("a.total")
        assert first is second
        assert len(registry) == 1
        assert "a.total" in registry

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ConfigurationError):
            registry.gauge("a")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("")

    def test_get_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().get("nope")

    def test_collect_is_sorted_and_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("z.total").inc()
        registry.gauge("a.level").set(3)
        registry.histogram("m.sizes", (1, 2)).observe(1.5)
        registry.sketch("m.latency").observe(0.01)
        collected = registry.collect()
        assert list(collected) == sorted(collected)
        # Must survive a JSON round trip losslessly.
        assert json.loads(json.dumps(collected)) == collected

    def test_describe(self):
        registry = MetricsRegistry()
        registry.counter("a", help="alpha")
        assert registry.describe() == {"a": ("counter", "alpha")}
        assert registry.names() == ["a"]
