"""Checkpoint envelope, round-trip fixpoint and resume properties."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scenario import FlowSpec, InterfaceSpec, Scenario, TrafficSpec
from repro.errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointVersionError,
)
from repro.recovery import (
    CHECKPOINT_SCHEMA_VERSION,
    RecoverableScenarioRun,
    load_checkpoint,
    save_checkpoint,
    unwrap_state,
    wrap_state,
)
from repro.recovery.checkpoint import canonical_state_json
from repro.schedulers.midrr import MiDrrScheduler
from repro.units import mbps


def small_scenario(seed=3):
    return Scenario(
        name="recovery-small",
        interfaces=(InterfaceSpec("if1", mbps(1)), InterfaceSpec("if2", mbps(2))),
        flows=(
            FlowSpec("a"),
            FlowSpec(
                "b",
                interfaces=("if2",),
                traffic=TrafficSpec("poisson", rate_bps=mbps(0.5)),
            ),
            FlowSpec(
                "c", weight=2.0, traffic=TrafficSpec("bulk", total_bytes=200_000)
            ),
        ),
        duration=6.0,
        seed=seed,
    )


def run_for(scenario, events):
    run = RecoverableScenarioRun(scenario, MiDrrScheduler)
    for _ in range(events):
        if run.finished or not run.step():
            break
    return run


class TestEnvelope:
    def test_wrap_unwrap_round_trip(self):
        state = {"clock": {"now": 1.5}, "flows": {"a": [1, 2, 3]}}
        assert unwrap_state(wrap_state(state)) == state

    def test_envelope_survives_json(self):
        state = {"numbers": [1, 2.5, None, True], "nested": {"x": "y"}}
        document = json.loads(json.dumps(wrap_state(state)))
        assert unwrap_state(document) == state

    def test_version_mismatch_is_typed(self):
        document = wrap_state({"x": 1})
        document["schema_version"] = CHECKPOINT_SCHEMA_VERSION + 1
        with pytest.raises(CheckpointVersionError):
            unwrap_state(document)

    def test_version_checked_before_checksum(self):
        # A version-skewed file reports the skew even when also damaged.
        document = wrap_state({"x": 1})
        document["schema_version"] = CHECKPOINT_SCHEMA_VERSION + 1
        document["checksum"] = "not-a-checksum"
        with pytest.raises(CheckpointVersionError):
            unwrap_state(document)

    def test_tampered_state_is_corrupt(self):
        document = wrap_state({"x": 1})
        document["state"]["x"] = 2
        with pytest.raises(CheckpointCorruptError):
            unwrap_state(document)

    def test_tampered_checksum_is_corrupt(self):
        document = wrap_state({"x": 1})
        document["checksum"] = "0" * 64
        with pytest.raises(CheckpointCorruptError):
            unwrap_state(document)

    @pytest.mark.parametrize(
        "document",
        [
            None,
            [],
            {},
            {"schema_version": CHECKPOINT_SCHEMA_VERSION, "state": {}},
            {
                "schema_version": CHECKPOINT_SCHEMA_VERSION,
                "checksum": "x",
                "state": "not-a-dict",
            },
        ],
    )
    def test_structural_damage_is_corrupt(self, document):
        with pytest.raises(CheckpointCorruptError):
            unwrap_state(document)

    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        state = {"a": [1, 2], "b": {"c": None}}
        save_checkpoint(path, state)
        assert load_checkpoint(path) == state

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(str(path))

    def test_load_rejects_bitflip(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(path, {"deficit": 1500})
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text.replace("1500", "1501"))
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(str(path))

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.recursive(
                st.none()
                | st.booleans()
                | st.integers(-1_000_000, 1_000_000)
                | st.text(max_size=12),
                lambda inner: st.lists(inner, max_size=4)
                | st.dictionaries(st.text(min_size=1, max_size=6), inner, max_size=4),
                max_leaves=12,
            ),
            max_size=6,
        )
    )
    @settings(deadline=None, max_examples=60)
    def test_wrap_unwrap_fixpoint_property(self, state):
        document = json.loads(json.dumps(wrap_state(state)))
        recovered = unwrap_state(document)
        assert recovered == json.loads(json.dumps(state))
        # And re-wrapping the recovered state reproduces the checksum.
        assert wrap_state(recovered)["checksum"] == document["checksum"]


class TestRestoreFixpoint:
    @pytest.mark.parametrize("events", [0, 1, 37, 250, 900])
    def test_restore_checkpoint_fixpoint(self, events):
        run = run_for(small_scenario(), events)
        first = json.loads(json.dumps(run.checkpoint()))
        restored = RecoverableScenarioRun.restore(first, MiDrrScheduler)
        second = json.loads(json.dumps(restored.checkpoint()))
        assert canonical_state_json(first) == canonical_state_json(second)

    @given(st.integers(min_value=0, max_value=600))
    @settings(deadline=None, max_examples=15)
    def test_restore_checkpoint_fixpoint_property(self, events):
        run = run_for(small_scenario(), events)
        first = json.loads(json.dumps(run.checkpoint()))
        restored = RecoverableScenarioRun.restore(first, MiDrrScheduler)
        second = json.loads(json.dumps(restored.checkpoint()))
        assert canonical_state_json(first) == canonical_state_json(second)

    def test_restore_rejects_wrong_scheduler_kind(self):
        from repro.schedulers.per_interface import PerInterfaceScheduler

        run = run_for(small_scenario(), 50)
        state = json.loads(json.dumps(run.checkpoint()))
        with pytest.raises(CheckpointError):
            RecoverableScenarioRun.restore(state, PerInterfaceScheduler.wfq)

    def test_restore_rejects_missing_keys(self):
        run = run_for(small_scenario(), 50)
        state = json.loads(json.dumps(run.checkpoint()))
        del state["streams"]
        with pytest.raises(CheckpointError):
            RecoverableScenarioRun.restore(state, MiDrrScheduler)


def reference_trace(scenario):
    reference = RecoverableScenarioRun(scenario, MiDrrScheduler)
    reference.run_to_completion()
    return list(reference.trace.entries)


class TestResumeReproducesTrace:
    @given(st.integers(min_value=0, max_value=1200))
    @settings(deadline=None, max_examples=12)
    def test_resume_at_arbitrary_event_index(self, kill_index):
        scenario = small_scenario()
        if not hasattr(type(self), "_reference"):
            type(self)._reference = reference_trace(scenario)
        reference = type(self)._reference

        run = run_for(scenario, kill_index)
        state = json.loads(json.dumps(run.checkpoint()))
        prefix = list(run.trace.entries)
        restored = RecoverableScenarioRun.restore(state, MiDrrScheduler)
        restored.run_to_completion()
        suffix = list(restored.trace.entries)
        assert prefix == reference[: len(prefix)]
        assert suffix == reference[len(prefix) :]


def watchdog_extras(run):
    from repro.health import Watchdog

    watchdog = Watchdog(run.sim, run.engine)
    watchdog.start()
    run.attach("health:watchdog", watchdog)


class TestPeriodicExtras:
    """Components that schedule through an internal PeriodicProcess
    (the watchdog) must checkpoint: ``attach`` registers the delegated
    process so its pending tick event serializes."""

    def test_watchdog_extras_checkpoint_and_resume(self):
        scenario = small_scenario()
        reference = RecoverableScenarioRun(
            scenario, MiDrrScheduler, extras=watchdog_extras
        )
        reference.run_to_completion()
        ref_wd = reference._components["health:watchdog"]
        assert ref_wd.ticks > 0

        run = RecoverableScenarioRun(
            scenario, MiDrrScheduler, extras=watchdog_extras
        )
        for _ in range(400):
            if run.finished or not run.step():
                break
        # The pending watchdog tick must serialize, not raise.
        state = json.loads(json.dumps(run.checkpoint()))
        prefix = list(run.trace.entries)

        restored = RecoverableScenarioRun.restore(
            state, MiDrrScheduler, extras=watchdog_extras
        )
        restored.run_to_completion()
        assert prefix + list(restored.trace.entries) == list(
            reference.trace.entries
        )
        wd = restored._components["health:watchdog"]
        assert wd.ticks == ref_wd.ticks
        assert len(wd.alerts) == len(ref_wd.alerts)
