"""Unit and integration tests for the EDF scheduler + admission control."""

import pytest

from tests.helpers import make_flow

from repro.core.engine import SchedulingEngine
from repro.errors import ConfigurationError, SchedulingError
from repro.net.flow import Flow
from repro.net.interface import Interface
from repro.net.packet import Packet
from repro.schedulers.edf import AdmissionVerdict, EdfScheduler
from repro.sim.simulator import Simulator


class FakeInterface:
    """Just enough interface for capacity observation."""

    def __init__(self, interface_id, rate_bps, up=True):
        self.interface_id = interface_id
        self.rate_bps = rate_bps
        self.up = up


def deadline_flow(flow_id, deadlines, interfaces=None, nominal_rate_bps=None):
    """A flow pre-backlogged with one packet per deadline entry."""
    flow = Flow(
        flow_id,
        allowed_interfaces=interfaces,
        nominal_rate_bps=nominal_rate_bps,
    )
    for deadline in deadlines:
        flow.offer(Packet(flow_id=flow_id, size_bytes=1000, deadline=deadline))
    return flow


class TestDeadlineOrdering:
    def test_earliest_deadline_served_first(self):
        scheduler = EdfScheduler()
        scheduler.register_interface("if1")
        scheduler.add_flow(deadline_flow("late", [9.0, 9.5]))
        scheduler.add_flow(deadline_flow("soon", [1.0, 1.5]))
        scheduler.add_flow(deadline_flow("mid", [4.0]))
        order = [scheduler.select("if1").flow_id for _ in range(5)]
        assert order == ["soon", "soon", "mid", "late", "late"]

    def test_elastic_packets_sort_last_by_seqno(self):
        scheduler = EdfScheduler()
        scheduler.register_interface("if1")
        elastic_first = make_flow("e1", backlog_packets=1)
        scheduler.add_flow(elastic_first)
        scheduler.add_flow(deadline_flow("dl", [2.0]))
        elastic_second = make_flow("e2", backlog_packets=1)
        scheduler.add_flow(elastic_second)
        order = [scheduler.select("if1").flow_id for _ in range(3)]
        # Deadline beats both elastic packets; elastic falls back to
        # global arrival (seqno) order.
        assert order == ["dl", "e1", "e2"]

    def test_respects_interface_preferences(self):
        scheduler = EdfScheduler()
        scheduler.register_interface("if1")
        scheduler.register_interface("if2")
        scheduler.add_flow(deadline_flow("pinned", [0.1] * 5, interfaces=["if2"]))
        assert scheduler.select("if1") is None
        assert scheduler.select("if2").flow_id == "pinned"

    def test_work_conserving_after_preferred_drains(self):
        scheduler = EdfScheduler()
        scheduler.register_interface("if1")
        scheduler.add_flow(make_flow("only", backlog_packets=2))
        assert scheduler.select("if1") is not None
        assert scheduler.select("if1") is not None
        assert scheduler.select("if1") is None

    def test_unknown_interface_raises(self):
        scheduler = EdfScheduler()
        with pytest.raises(SchedulingError):
            scheduler.select("nope")

    def test_live_pi_edit_respected(self):
        scheduler = EdfScheduler()
        scheduler.register_interface("if1")
        scheduler.register_interface("if2")
        flow = deadline_flow("m", [1.0, 2.0, 3.0])
        scheduler.add_flow(flow)
        assert scheduler.select("if1").flow_id == "m"
        flow.restrict_to({"if2"})
        # The active entry on if1 is stale now: never served there.
        assert scheduler.select("if1") is None
        assert scheduler.select("if2").flow_id == "m"


class TestAdmissionControl:
    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            EdfScheduler(admission_control_threshold_low=0.0)
        with pytest.raises(ConfigurationError):
            EdfScheduler(
                admission_control_threshold_low=1.2,
                admission_control_threshold_high=1.1,
            )

    def test_inert_without_observed_capacity(self):
        scheduler = EdfScheduler()
        scheduler.register_interface("if1")
        verdict = scheduler.review_admission(
            Flow("greedy", nominal_rate_bps=1e12)
        )
        assert verdict.admitted
        assert verdict.action == "admit"
        assert scheduler.projected_load() == 0.0

    def test_rejects_past_low_threshold(self):
        scheduler = EdfScheduler()
        scheduler.register_interface("if1")
        scheduler.observe_interface(FakeInterface("if1", 1_000_000.0))
        scheduler.add_flow(Flow("first", nominal_rate_bps=500_000.0))
        assert scheduler.projected_load() == pytest.approx(0.5)
        verdict = scheduler.review_admission(
            Flow("second", nominal_rate_bps=500_000.0)
        )
        assert isinstance(verdict, AdmissionVerdict)
        assert not verdict.admitted
        assert verdict.action == "reject"
        assert verdict.projected_load == pytest.approx(1.0)
        assert scheduler.admission_rejected_total == 1

    def test_elastic_flows_always_admitted(self):
        scheduler = EdfScheduler()
        scheduler.register_interface("if1")
        scheduler.observe_interface(FakeInterface("if1", 1_000_000.0))
        scheduler.add_flow(Flow("declared", nominal_rate_bps=900_000.0))
        verdict = scheduler.review_admission(Flow("elastic"))
        assert verdict.admitted

    def test_sheds_latest_admitted_when_capacity_collapses(self):
        scheduler = EdfScheduler()
        scheduler.register_interface("if1")
        link = FakeInterface("if1", 2_000_000.0)
        scheduler.observe_interface(link)
        scheduler.add_flow(Flow("old", nominal_rate_bps=500_000.0))
        scheduler.add_flow(Flow("young", nominal_rate_bps=500_000.0))
        # Capacity collapses under the admitted set: load 1e6/5e5 = 2.0.
        link.rate_bps = 500_000.0
        verdict = scheduler.review_admission(Flow("next"))
        assert verdict.shed == ("young",)
        assert verdict.admitted  # elastic candidate itself still fits
        assert verdict.action == "shed"
        # Pure verdict: nothing was evicted yet (the engine does that).
        assert scheduler.declared_load_bps() == pytest.approx(1_000_000.0)

    def test_down_interfaces_carry_no_capacity(self):
        scheduler = EdfScheduler()
        scheduler.observe_interface(FakeInterface("if1", 1_000_000.0, up=False))
        scheduler.observe_interface(FakeInterface("if2", 250_000.0))
        assert scheduler.total_capacity_bps() == pytest.approx(250_000.0)


class TestEngineIntegration:
    def build(self, rate_bps=1_000_000.0):
        sim = Simulator()
        scheduler = EdfScheduler()
        engine = SchedulingEngine(sim, scheduler)
        engine.add_interface(Interface(sim, "if1", rate_bps))
        return sim, scheduler, engine

    def test_engine_wires_capacity_observation(self):
        _, scheduler, _ = self.build()
        assert scheduler.total_capacity_bps() == pytest.approx(1_000_000.0)

    def test_rejected_flow_parked_outside_scheduler(self):
        _, scheduler, engine = self.build()
        engine.add_flow(Flow("a", nominal_rate_bps=700_000.0))
        engine.add_flow(Flow("b", nominal_rate_bps=700_000.0))
        assert engine.num_shed == 1
        assert engine.admission_rejected_total == 1
        assert "b" in engine.shed_flows
        assert not scheduler.has_flow("b")
        # Removal of a parked flow must not touch the scheduler.
        engine.remove_flow("b")
        assert engine.num_shed == 0

    def test_shed_applies_through_engine(self):
        sim, scheduler, engine = self.build(rate_bps=2_000_000.0)
        engine.add_flow(Flow("old", nominal_rate_bps=500_000.0))
        engine.add_flow(Flow("young", nominal_rate_bps=500_000.0))
        engine.interfaces["if1"].set_rate(500_000.0)
        verdicts = []
        engine.on_admission_verdict(verdicts.append)
        engine.add_flow(Flow("elastic"))
        assert verdicts and verdicts[-1].shed == ("young",)
        assert "young" in engine.shed_flows
        assert not scheduler.has_flow("young")
        assert engine.admission_shed_total == 1
        assert scheduler.declared_load_bps() == pytest.approx(500_000.0)

    def test_deadline_miss_accounting(self):
        sim = Simulator()
        scheduler = EdfScheduler()
        engine = SchedulingEngine(sim, scheduler)
        engine.add_interface(Interface(sim, "if1", 8_000.0))  # 1 s/kB
        flow = Flow("slow", deadline_budget=0.5)
        engine.add_flow(flow)
        for _ in range(3):
            flow.offer(Packet(flow_id="slow", size_bytes=1000))
        misses = []
        engine.on_deadline_miss(
            lambda f, packet, lateness: misses.append((f.flow_id, lateness))
        )
        engine.start()
        sim.run(until=10.0)
        # 1 s per packet against a 0.5 s budget: packets 1-3 all finish
        # late (1.0, 2.0, 3.0 s vs deadlines 0.5, 0.5, 0.5).
        assert engine.deadline_packets_total == 3
        assert engine.deadline_misses_total == 3
        assert engine.deadline_misses_by_flow == {"slow": 3}
        assert len(misses) == 3
        assert all(lateness > 0 for _, lateness in misses)

    def test_snapshot_restores_admission_and_deadline_state(self):
        import json

        sim, scheduler, engine = self.build()
        engine.add_flow(Flow("a", nominal_rate_bps=700_000.0))
        engine.add_flow(Flow("b", nominal_rate_bps=700_000.0))  # rejected
        state = json.loads(json.dumps(engine.snapshot_state()))

        sim2 = Simulator()
        scheduler2 = EdfScheduler()
        engine2 = SchedulingEngine(sim2, scheduler2)
        engine2.add_interface(Interface(sim2, "if1", 1_000_000.0))
        engine2.add_flow(Flow("a", nominal_rate_bps=700_000.0))
        engine2.add_flow(Flow("b", nominal_rate_bps=700_000.0))
        engine2.restore_state(state)
        assert engine2.admission_rejected_total == 1
        assert "b" in engine2.shed_flows
        assert not scheduler2.has_flow("b")


class TestCheckpointing:
    def build_scheduler(self):
        scheduler = EdfScheduler()
        scheduler.register_interface("if1")
        scheduler.register_interface("if2")
        scheduler.add_flow(deadline_flow("x", [1.0, 2.0], nominal_rate_bps=1e5))
        scheduler.add_flow(deadline_flow("y", [1.5], interfaces=["if2"]))
        return scheduler

    def test_snapshot_round_trip_is_fixpoint(self):
        import json

        source = self.build_scheduler()
        source.select("if1")
        first = json.loads(json.dumps(source.snapshot_state()))

        target = self.build_scheduler()
        target.select("if1")
        target.restore_state(first, target._flows)
        second = json.loads(json.dumps(target.snapshot_state()))
        assert first == second

    def test_restore_rejects_mismatched_thresholds(self):
        source = self.build_scheduler()
        snapshot = source.snapshot_state()
        other = EdfScheduler(
            admission_control_threshold_low=0.5,
            admission_control_threshold_high=0.9,
        )
        other.register_interface("if1")
        other.register_interface("if2")
        flows = {
            "x": deadline_flow("x", [1.0], nominal_rate_bps=1e5),
            "y": deadline_flow("y", [1.5], interfaces=["if2"]),
        }
        for flow in flows.values():
            other.add_flow(flow)
        with pytest.raises(SchedulingError):
            other.restore_state(snapshot, flows)


class TestConformance:
    """ISSUE 9 acceptance: EDF passes Π-respect and work conservation."""

    def test_interface_preferences_and_work_conservation(self):
        from repro.fairness.conformance import (
            check_interface_preferences,
            check_work_conservation,
        )

        pi = check_interface_preferences(EdfScheduler)
        assert pi.passed, pi.detail
        wc = check_work_conservation(EdfScheduler)
        assert wc.passed, wc.detail
