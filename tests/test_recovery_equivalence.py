"""Crash-equivalence: kill/restore/replay must be byte-identical.

The harness (``repro.faults.crashes.run_crash_equivalence``) kills a
run at injected event indices, restores from the checkpoint taken at
the kill point (round-tripped through the real JSON envelope), replays
to the horizon and compares the scheduling-decision trace against an
uninterrupted run. These tests assert equivalence on the paper
workloads — Figure 1, Figure 6, a Figure 7-style stochastic mix — and
on a planned-fault chaos seed.
"""

import dataclasses

import pytest

from repro.core.scenario import FlowSpec, InterfaceSpec, Scenario, TrafficSpec
from repro.experiments import fig1, fig6
from repro.faults.crashes import (
    CrashInjector,
    SimulatedCrash,
    run_crash_equivalence,
)
from repro.faults.plan import FaultPlan, PlannedFault
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.midrr import MiDrrScheduler
from repro.schedulers.per_interface import PerInterfaceScheduler
from repro.schedulers.qaware import QAwareScheduler
from repro.units import mbps

KILL_POINTS = (150, 1200, 3500)


def fig7_workload():
    """A Figure 7-style stochastic mix: poisson and on/off flows."""
    return Scenario(
        name="fig7-workload",
        interfaces=(
            InterfaceSpec("wifi", mbps(4)),
            InterfaceSpec("lte", mbps(2)),
        ),
        flows=(
            FlowSpec(
                "web",
                traffic=TrafficSpec("poisson", rate_bps=mbps(1.5)),
            ),
            FlowSpec(
                "sync",
                weight=2.0,
                interfaces=("wifi",),
                traffic=TrafficSpec(
                    "onoff", rate_bps=mbps(3), mean_on=0.5, mean_off=0.8
                ),
            ),
            FlowSpec(
                "stream",
                start_time=1.5,
                traffic=TrafficSpec("cbr", rate_bps=mbps(0.8)),
            ),
        ),
        duration=8.0,
        seed=11,
    )


def assert_equivalent(report):
    assert report.total_decisions > 0
    for result in report.results:
        assert result.equivalent, (
            f"kill at event #{result.kill_index} diverged at decision "
            f"{result.first_divergence} "
            f"(prefix={result.decisions_at_kill}, "
            f"suffix={result.decisions_after_restore})"
        )


@pytest.mark.recovery
class TestPaperWorkloads:
    def test_fig1_equivalence(self):
        scenario = fig1.ALL_SCENARIOS["fig1a"]()
        report = run_crash_equivalence(scenario, MiDrrScheduler, KILL_POINTS)
        assert_equivalent(report)

    def test_fig6_equivalence(self):
        # The full 100 s run is tier-2 territory; the first phase holds
        # all the dynamics (finite transfers, shared if2) and keeps the
        # test fast.
        scenario = dataclasses.replace(fig6.scenario(), duration=12.0)
        report = run_crash_equivalence(scenario, MiDrrScheduler, KILL_POINTS)
        assert_equivalent(report)

    def test_fig7_workload_equivalence(self):
        report = run_crash_equivalence(fig7_workload(), MiDrrScheduler, KILL_POINTS)
        assert_equivalent(report)

    def test_equivalence_under_baseline_scheduler(self):
        # The protocol is scheduler-agnostic: a per-interface baseline
        # checkpoints and replays identically too.
        report = run_crash_equivalence(
            fig7_workload(), PerInterfaceScheduler.wfq, (200, 2500)
        )
        assert_equivalent(report)


@pytest.mark.recovery
@pytest.mark.chaos
class TestChaosSeedEquivalence:
    def test_planned_faults_equivalence(self):
        scenario = fig7_workload()
        plan = FaultPlan(
            [
                PlannedFault(
                    "churn", "*", 0.0, 6.0, params={"period": 1.5}
                ),
                PlannedFault(
                    "flap",
                    "lte",
                    0.5,
                    6.5,
                    params={"mean_up": 1.2, "mean_down": 0.4},
                ),
                PlannedFault(
                    "loss", "wifi", 1.0, params={"probability": 0.03}
                ),
                PlannedFault(
                    "collapse",
                    "wifi",
                    2.0,
                    5.0,
                    params={"collapse_factor": 0.2},
                ),
            ]
        )
        plan.validate(scenario)
        report = run_crash_equivalence(
            scenario, MiDrrScheduler, KILL_POINTS, extras=plan.apply
        )
        assert_equivalent(report)


def first_mid_batch_kill_index(scenario, queue_backend="calendar"):
    """Event index of the first step at which a fused batch is live.

    Found by probing a batched run: ``scheduler.batched_flows`` is the
    engine-shared registry of flows currently inside a fused window, so
    a kill at this index lands mid-batch by construction.
    """
    from repro.recovery import RecoverableScenarioRun

    probe = RecoverableScenarioRun(
        scenario,
        MiDrrScheduler,
        queue_backend=queue_backend,
        batching=True,
    )
    steps = 0
    while not probe.finished and probe.step():
        steps += 1
        if probe.scheduler.batched_flows:
            return steps
    pytest.fail(f"{scenario.name}: no fused batch ever formed")


@pytest.mark.recovery
class TestCalendarAndBatchingEquivalence:
    """ISSUE 7 acceptance: the crash protocol holds with the calendar
    event-queue backend and fused service quanta — including a kill
    point chosen to land mid-batch (snapshots drain live batches, so
    only plain per-packet completions are ever encoded)."""

    def test_fig6_calendar_batched_equivalence(self):
        scenario = dataclasses.replace(fig6.scenario(), duration=12.0)
        mid_batch = first_mid_batch_kill_index(scenario)
        report = run_crash_equivalence(
            scenario,
            MiDrrScheduler,
            (mid_batch,) + KILL_POINTS,
            queue_backend="calendar",
            batching=True,
        )
        assert_equivalent(report)

    def test_fig7_calendar_batched_equivalence(self):
        report = run_crash_equivalence(
            fig7_workload(),
            MiDrrScheduler,
            KILL_POINTS,
            queue_backend="calendar",
            batching=True,
        )
        assert_equivalent(report)

    def test_checkpoints_are_config_agnostic(self):
        """A checkpoint taken under (calendar, batching) restores into a
        (heap, unbatched) run — and vice versa — stitching the exact
        reference trace: snapshots carry no backend or batch state."""
        import json

        from repro.recovery import (
            RecoverableScenarioRun,
            unwrap_state,
            wrap_state,
        )

        scenario = fig7_workload()
        reference = RecoverableScenarioRun(scenario, MiDrrScheduler)
        reference.run_to_completion()
        reference_trace = list(reference.trace.entries)

        for source_config, target_config in (
            (("calendar", True), ("heap", False)),
            (("heap", False), ("calendar", True)),
        ):
            run = RecoverableScenarioRun(
                scenario,
                MiDrrScheduler,
                queue_backend=source_config[0],
                batching=source_config[1],
            )
            for _ in range(900):
                if run.finished or not run.step():
                    break
            state = unwrap_state(
                json.loads(json.dumps(wrap_state(run.checkpoint())))
            )
            restored = RecoverableScenarioRun.restore(
                state,
                MiDrrScheduler,
                queue_backend=target_config[0],
                batching=target_config[1],
            )
            restored.run_to_completion()
            stitched = list(run.trace.entries) + list(restored.trace.entries)
            assert stitched == reference_trace, (
                f"restore {source_config} -> {target_config} diverged"
            )

    def test_mid_batch_checkpoint_fixpoint(self):
        """restore(checkpoint()) is a fixpoint when the snapshot is
        taken while a fused window is live on the calendar backend."""
        import json

        from repro.recovery import RecoverableScenarioRun
        from repro.recovery.checkpoint import canonical_state_json

        scenario = dataclasses.replace(fig6.scenario(), duration=12.0)
        mid_batch = first_mid_batch_kill_index(scenario)
        run = RecoverableScenarioRun(
            scenario,
            MiDrrScheduler,
            queue_backend="calendar",
            batching=True,
        )
        for _ in range(mid_batch):
            if run.finished or not run.step():
                break
        assert run.scheduler.batched_flows  # snapshot lands mid-batch
        first = json.loads(json.dumps(run.checkpoint()))
        restored = RecoverableScenarioRun.restore(
            first, MiDrrScheduler, queue_backend="calendar", batching=True
        )
        second = json.loads(json.dumps(restored.checkpoint()))
        assert canonical_state_json(first) == canonical_state_json(second)


def deadline_workload():
    """The fig7 mix with per-packet deadlines on the latency flows.

    Deadline-carrying traffic exercises the EDF candidate scan and the
    engine's miss accounting across the kill/restore boundary.
    """
    scenario = fig7_workload()
    flows = tuple(
        dataclasses.replace(
            spec,
            traffic=dataclasses.replace(
                spec.traffic,
                deadline={"web": 0.25, "stream": 0.1}.get(spec.flow_id),
            ),
        )
        for spec in scenario.flows
    )
    return dataclasses.replace(scenario, flows=flows, name="deadline-workload")


@pytest.mark.recovery
class TestDeadlineFamilyEquivalence:
    """ISSUE 9 acceptance: EDF and QAware hold crash equivalence on both
    event-queue backends, batching on and off."""

    @pytest.mark.parametrize(
        "factory",
        [EdfScheduler, QAwareScheduler],
        ids=["edf", "qaware"],
    )
    @pytest.mark.parametrize(
        "queue_backend,batching",
        [("heap", False), ("calendar", True)],
        ids=["heap", "calendar+batch"],
    )
    def test_family_equivalence(self, factory, queue_backend, batching):
        report = run_crash_equivalence(
            deadline_workload(),
            factory,
            (200, 2500),
            queue_backend=queue_backend,
            batching=batching,
        )
        assert_equivalent(report)

    @pytest.mark.parametrize(
        "factory",
        [EdfScheduler, QAwareScheduler],
        ids=["edf", "qaware"],
    )
    def test_family_checkpoint_fixpoint(self, factory):
        """restore(checkpoint()) is a fixpoint for the new schedulers."""
        import json

        from repro.recovery import RecoverableScenarioRun
        from repro.recovery.checkpoint import canonical_state_json

        run = RecoverableScenarioRun(deadline_workload(), factory)
        for _ in range(900):
            if run.finished or not run.step():
                break
        first = json.loads(json.dumps(run.checkpoint()))
        restored = RecoverableScenarioRun.restore(first, factory)
        second = json.loads(json.dumps(restored.checkpoint()))
        assert canonical_state_json(first) == canonical_state_json(second)


@pytest.mark.recovery
class TestKillRestoreSmoke:
    """The tier-1 smoke: one injected kill, restore, identical outcome."""

    def test_kill_restore_smoke(self):
        import json

        from repro.recovery import (
            RecoverableScenarioRun,
            unwrap_state,
            wrap_state,
        )

        scenario = fig7_workload()
        reference = RecoverableScenarioRun(scenario, MiDrrScheduler)
        reference.run_to_completion()

        injector = CrashInjector(at_events=[800])
        run = RecoverableScenarioRun(scenario, MiDrrScheduler)
        with pytest.raises(SimulatedCrash):
            while not run.finished and run.step():
                injector.check(run.sim)
        state = unwrap_state(
            json.loads(json.dumps(wrap_state(run.checkpoint())))
        )
        restored = RecoverableScenarioRun.restore(state, MiDrrScheduler)
        restored.run_to_completion()
        stitched = list(run.trace.entries) + list(restored.trace.entries)
        assert stitched == list(reference.trace.entries)
        for spec in scenario.flows:
            assert restored.engine.stats.bytes_sent(
                spec.flow_id
            ) == reference.engine.stats.bytes_sent(spec.flow_id)
