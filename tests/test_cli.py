"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for command in ("fig1", "fig6", "fig7", "fig9", "fig10", "chaos", "all"):
            args = parser.parse_args([command])
            assert callable(args.func)

    def test_fig6_zoom_flag(self):
        args = build_parser().parse_args(["fig6", "--zoom"])
        assert args.zoom is True

    def test_fig7_seed(self):
        args = build_parser().parse_args(["fig7", "--seed", "9"])
        assert args.seed == 9


class TestSolveCommand:
    def test_solve_prints_allocation(self, capsys):
        exit_code = main(
            [
                "solve",
                "--interface", "if1=3e6",
                "--interface", "if2=10e6",
                "--flow", "a:1:if1",
                "--flow", "b:2:*",
                "--flow", "c:1:if2",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "3.00 Mb/s" in out
        assert "6.67 Mb/s" in out
        assert "3.33 Mb/s" in out

    def test_solve_rejects_malformed_interface(self):
        with pytest.raises(SystemExit):
            main(["solve", "--interface", "if1", "--flow", "a:1:*"])

    def test_solve_rejects_malformed_flow(self):
        with pytest.raises(SystemExit):
            main(["solve", "--interface", "if1=1e6", "--flow", "a"])

    def test_solve_reports_library_errors(self, capsys):
        exit_code = main(
            ["solve", "--interface", "if1=1e6", "--flow", "a:1:zzz"]
        )
        assert exit_code == 1
        assert "error:" in capsys.readouterr().err


class TestFigureCommands:
    def test_fig1_runs(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "fig1c" in out
        assert "miDRR" in out

    def test_fig7_runs(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "P[N ≥ 7 | active]" in out
        assert "35" in out

    def test_fig9_runs(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "interfaces" in out
        assert "16" in out


class TestIdealCommand:
    def test_ideal_runs(self, capsys):
        assert main(["ideal"]) == 0
        out = capsys.readouterr().out
        assert "ideal proxy" in out
        assert "worst deviation" in out


class TestRunCommand:
    def _write_scenario(self, tmp_path):
        import json

        from repro.core.scenario import FlowSpec, InterfaceSpec, Scenario
        from repro.units import mbps

        scenario = Scenario(
            name="clirun",
            interfaces=(
                InterfaceSpec("if1", mbps(1)),
                InterfaceSpec("if2", mbps(1)),
            ),
            flows=(FlowSpec("a"), FlowSpec("b", interfaces=("if2",))),
            duration=15.0,
        )
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(scenario.to_dict()))
        return path

    def test_run_with_midrr(self, capsys, tmp_path):
        path = self._write_scenario(tmp_path)
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "clirun" in out
        assert "0.0%" in out  # miDRR matches the reference

    def test_run_with_baseline(self, capsys, tmp_path):
        path = self._write_scenario(tmp_path)
        assert main(["run", str(path), "--scheduler", "wfq"]) == 0
        out = capsys.readouterr().out
        assert "50.0%" in out  # the classical failure shows up

    def test_unknown_scheduler_rejected(self, tmp_path):
        path = self._write_scenario(tmp_path)
        with pytest.raises(SystemExit):
            main(["run", str(path), "--scheduler", "nope"])


class TestChaosCommand:
    def test_chaos_flags_parse(self):
        args = build_parser().parse_args(
            ["chaos", "--seed", "9", "--duration", "25", "--no-churn"]
        )
        assert args.seed == 9
        assert args.duration == 25.0
        assert args.no_churn is True

    def test_chaos_runs_and_reports(self, capsys):
        assert main(["chaos", "--seed", "1", "--duration", "20"]) == 0
        out = capsys.readouterr().out
        assert "chaos run: seed=1" in out
        assert "fault signature:" in out
        assert "stats signature:" in out


class TestObsCommand:
    def test_obs_flags_parse(self):
        args = build_parser().parse_args(
            ["obs", "--flows", "7", "--interfaces", "3", "--out", "x.jsonl"]
        )
        assert args.flows == 7
        assert args.interfaces == 3
        assert args.out == "x.jsonl"
        assert args.selftest is False

    def test_obs_selftest_passes(self, capsys):
        assert main(["obs", "--selftest"]) == 0
        assert "obs selftest: ok" in capsys.readouterr().out

    def test_obs_run_writes_snapshots(self, capsys, tmp_path):
        out = tmp_path / "obs.jsonl"
        exit_code = main(
            [
                "obs",
                "--flows", "10",
                "--interfaces", "2",
                "--target-packets", "200",
                "--out", str(out),
            ]
        )
        assert exit_code == 0
        stdout = capsys.readouterr().out
        assert "engine.packets_sent_total" in stdout
        assert "health.ticks" in stdout

        from repro.obs import SNAPSHOT_SCHEMA_VERSION, read_jsonl

        records = read_jsonl(str(out))
        assert records
        assert all(
            record["schema_version"] == SNAPSHOT_SCHEMA_VERSION
            for record in records
        )

    def test_obs_run_from_scenario_file(self, capsys, tmp_path):
        import json

        from repro.core.scenario import FlowSpec, InterfaceSpec, Scenario
        from repro.units import mbps

        scenario = Scenario(
            name="obsfile",
            interfaces=(InterfaceSpec("if1", mbps(5)),),
            flows=(FlowSpec("a"),),
            duration=2.0,
        )
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(scenario.to_dict()))
        assert main(["obs", "--scenario", str(path)]) == 0
        assert "obsfile" in capsys.readouterr().out


class TestFctCommand:
    def test_fct_runs(self, capsys):
        assert main(["fct", "--light"]) == 0
        out = capsys.readouterr().out
        assert "flow completion times" in out
        assert "median FCT" in out
