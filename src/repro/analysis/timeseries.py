"""Time-series utilities for experiment post-processing."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

#: A series of ``(time, value)`` points.
Series = List[Tuple[float, float]]


def bin_events(
    events: Sequence[Tuple[float, float]],
    bin_width: float,
    start: float = 0.0,
    end: Optional[float] = None,
) -> Series:
    """Sum event values into fixed-width bins.

    ``events`` are ``(time, amount)`` pairs; the result maps each bin
    center to the summed amount, covering ``[start, end)``.
    """
    if bin_width <= 0:
        raise ConfigurationError(f"bin_width must be positive, got {bin_width}")
    horizon = end if end is not None else max((t for t, _ in events), default=start)
    if horizon <= start:
        return []
    num_bins = int((horizon - start) / bin_width + 1e-9)
    if num_bins <= 0:
        return []
    totals = [0.0] * num_bins
    for time, amount in events:
        index = int((time - start) / bin_width)
        if 0 <= index < num_bins:
            totals[index] += amount
    return [
        (start + (i + 0.5) * bin_width, totals[i]) for i in range(num_bins)
    ]


def moving_average(series: Series, window: int) -> Series:
    """Centered moving average over *window* points (odd windows)."""
    if window <= 0 or window % 2 == 0:
        raise ConfigurationError("window must be a positive odd integer")
    if not series:
        return []
    half = window // 2
    values = [v for _, v in series]
    smoothed: Series = []
    for i, (time, _) in enumerate(series):
        lo = max(0, i - half)
        hi = min(len(values), i + half + 1)
        smoothed.append((time, sum(values[lo:hi]) / (hi - lo)))
    return smoothed


def series_mean(series: Series, start: float, end: float) -> float:
    """Mean value of points whose timestamps fall in ``[start, end)``."""
    chosen = [v for t, v in series if start <= t < end]
    if not chosen:
        raise ConfigurationError(f"no series points in [{start}, {end})")
    return sum(chosen) / len(chosen)


def crossings(series: Series, threshold: float) -> List[float]:
    """Times where the series crosses *threshold* (linear interp)."""
    result: List[float] = []
    for (t0, v0), (t1, v1) in zip(series, series[1:]):
        if (v0 - threshold) * (v1 - threshold) < 0:
            fraction = (threshold - v0) / (v1 - v0)
            result.append(t0 + fraction * (t1 - t0))
    return result


def settle_time(
    series: Series,
    target: float,
    tolerance: float,
    hold: int = 3,
) -> Optional[float]:
    """First time the series stays within ``target ± tolerance``.

    Requires *hold* consecutive in-band points (avoids declaring
    convergence on a single lucky bin). Returns ``None`` if the series
    never settles — used to measure the Figure 6(c) transient.
    """
    if hold <= 0:
        raise ConfigurationError(f"hold must be positive, got {hold}")
    in_band = 0
    run_start: Optional[float] = None
    for time, value in series:
        if abs(value - target) <= tolerance:
            if in_band == 0:
                run_start = time
            in_band += 1
            if in_band >= hold:
                return run_start
        else:
            in_band = 0
            run_start = None
    return None
