"""ASCII report rendering for benches and examples.

The benchmark harness prints the same rows/series the paper's figures
show; these helpers keep that output aligned and readable without any
plotting dependency.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

from ..units import format_rate


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    columns = [str(h) for h in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in columns]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(columns))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_rate_table(
    rates_by_label: Mapping[str, Mapping[str, float]],
    flow_order: Sequence[str],
    title: Optional[str] = None,
) -> str:
    """Rows = labels (e.g. schedulers), columns = flows, cells = rates."""
    headers = ["", *flow_order]
    rows = []
    for label, rates in rates_by_label.items():
        rows.append(
            [label, *(format_rate(rates.get(flow, 0.0)) for flow in flow_order)]
        )
    return render_table(headers, rows, title=title)


def render_series(
    series: Sequence[Tuple[float, float]],
    label: str = "",
    width: int = 60,
    value_format: str = "{:.2f}",
) -> str:
    """Render a (time, value) series as a horizontal-bar strip chart."""
    if not series:
        return f"{label}: (empty series)"
    peak = max(value for _, value in series)
    lines = [f"{label} (peak {value_format.format(peak)})"] if label else []
    for time, value in series:
        bar = "#" * (int(value / peak * width) if peak > 0 else 0)
        lines.append(f"{time:8.2f}  {value_format.format(value):>10}  {bar}")
    return "\n".join(lines)


def render_comparison(
    measured: Mapping[str, float],
    reference: Mapping[str, float],
    title: Optional[str] = None,
) -> str:
    """Measured-vs-reference rates with per-flow relative error."""
    rows = []
    for flow_id in reference:
        expected = reference[flow_id]
        actual = measured.get(flow_id, 0.0)
        if expected > 0:
            error = f"{abs(actual - expected) / expected * 100:.1f}%"
        else:
            error = "-" if abs(actual) < 1e-9 else "inf"
        rows.append([flow_id, format_rate(actual), format_rate(expected), error])
    return render_table(
        ["flow", "measured", "reference", "rel err"], rows, title=title
    )
