"""Measurement post-processing: time series, CDFs, rate estimators and
ASCII reports."""

from .cdf import EmpiricalCdf
from .rates import EwmaRateEstimator, WindowedRateEstimator
from .report import (
    render_comparison,
    render_rate_table,
    render_series,
    render_table,
)
from .slo import (
    DEFAULT_DEADLINE_BUDGETS,
    SCHEDULER_FAMILY,
    SloReport,
    SloRow,
    jain_index,
    p99,
    run_latency_slo,
)
from .timeseries import (
    Series,
    bin_events,
    crossings,
    moving_average,
    series_mean,
    settle_time,
)

__all__ = [
    "DEFAULT_DEADLINE_BUDGETS",
    "EmpiricalCdf",
    "EwmaRateEstimator",
    "SCHEDULER_FAMILY",
    "Series",
    "SloReport",
    "SloRow",
    "WindowedRateEstimator",
    "bin_events",
    "crossings",
    "jain_index",
    "moving_average",
    "p99",
    "render_comparison",
    "render_rate_table",
    "render_series",
    "render_table",
    "run_latency_slo",
    "series_mean",
    "settle_time",
]
