"""Measurement post-processing: time series, CDFs, rate estimators and
ASCII reports."""

from .cdf import EmpiricalCdf
from .rates import EwmaRateEstimator, WindowedRateEstimator
from .report import (
    render_comparison,
    render_rate_table,
    render_series,
    render_table,
)
from .timeseries import (
    Series,
    bin_events,
    crossings,
    moving_average,
    series_mean,
    settle_time,
)

__all__ = [
    "EmpiricalCdf",
    "EwmaRateEstimator",
    "Series",
    "WindowedRateEstimator",
    "bin_events",
    "crossings",
    "moving_average",
    "render_comparison",
    "render_rate_table",
    "render_series",
    "render_table",
    "series_mean",
    "settle_time",
]
