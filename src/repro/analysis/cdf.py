"""Empirical CDF utilities (Figures 7 and 9 are CDF plots)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import ConfigurationError


class EmpiricalCdf:
    """An empirical cumulative distribution over float samples."""

    def __init__(self, samples: Sequence[float]) -> None:
        if not samples:
            raise ConfigurationError("EmpiricalCdf needs at least one sample")
        self._sorted = sorted(samples)

    def __len__(self) -> int:
        return len(self._sorted)

    @property
    def min(self) -> float:
        """Smallest sample."""
        return self._sorted[0]

    @property
    def max(self) -> float:
        """Largest sample."""
        return self._sorted[-1]

    def probability_at_most(self, value: float) -> float:
        """P[X ≤ value]."""
        lo, hi = 0, len(self._sorted)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._sorted[mid] <= value:
                lo = mid + 1
            else:
                hi = mid
        return lo / len(self._sorted)

    def quantile(self, q: float) -> float:
        """Smallest sample x with P[X ≤ x] ≥ q."""
        if not 0 < q <= 1:
            raise ConfigurationError(f"quantile must be in (0, 1], got {q}")
        index = min(len(self._sorted) - 1, max(0, int(q * len(self._sorted)) - 1))
        # Walk forward to honor the ≥ q definition under ties.
        while (
            index + 1 < len(self._sorted)
            and (index + 1) / len(self._sorted) < q - 1e-12
        ):
            index += 1
        return self._sorted[index]

    def median(self) -> float:
        """The 0.5 quantile."""
        return self.quantile(0.5)

    def points(self, num_points: int = 100) -> List[Tuple[float, float]]:
        """``(value, P[X ≤ value])`` pairs for plotting."""
        if num_points <= 1:
            raise ConfigurationError(f"num_points must be > 1, got {num_points}")
        n = len(self._sorted)
        result = []
        for k in range(num_points):
            index = min(n - 1, int(k * (n - 1) / (num_points - 1)))
            result.append((self._sorted[index], (index + 1) / n))
        return result

    def ascii_plot(self, width: int = 50, height: int = 10) -> str:
        """A terminal rendering of the CDF for bench output."""
        span = self.max - self.min
        rows = []
        for row in range(height, 0, -1):
            q = row / height
            value = self.quantile(q)
            position = (
                int((value - self.min) / span * (width - 1)) if span > 0 else 0
            )
            line = " " * position + "*"
            rows.append(f"{q:5.2f} |{line}")
        axis = f"      +{'-' * width}"
        labels = f"       {self.min:.3g}{' ' * max(1, width - 12)}{self.max:.3g}"
        return "\n".join(rows + [axis, labels])
