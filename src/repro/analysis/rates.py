"""Streaming rate estimators.

Experiments mostly post-process :class:`~repro.net.sink.StatsCollector`
samples, but live components (e.g. adaptive policies in the examples)
need on-line estimates; these two estimators cover the usual cases.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from ..errors import ConfigurationError


class WindowedRateEstimator:
    """Average rate over a sliding time window.

    ``add(time, nbytes)`` records service; ``rate_bps(now)`` returns the
    byte rate over the trailing window, in bits/second.
    """

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        self.window = window
        self._events: Deque[Tuple[float, int]] = deque()
        self._total_bytes = 0

    def add(self, time: float, nbytes: int) -> None:
        """Record *nbytes* of service at *time* (non-decreasing)."""
        if self._events and time < self._events[-1][0]:
            raise ConfigurationError("samples must arrive in time order")
        self._events.append((time, nbytes))
        self._total_bytes += nbytes
        self._evict(time)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        while self._events and self._events[0][0] <= cutoff:
            _, nbytes = self._events.popleft()
            self._total_bytes -= nbytes

    def rate_bps(self, now: float) -> float:
        """Rate over ``(now − window, now]``."""
        self._evict(now)
        return self._total_bytes * 8 / self.window


class EwmaRateEstimator:
    """Exponentially weighted moving-average rate.

    Standard TCP-style estimator: each inter-sample gap contributes an
    instantaneous rate that is folded in with gain ``alpha``.
    """

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0 < alpha <= 1:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._last_time: float = 0.0
        self._rate_bps: float = 0.0
        self._primed = False

    def add(self, time: float, nbytes: int) -> None:
        """Record *nbytes* delivered at *time*."""
        if not self._primed:
            self._last_time = time
            self._primed = True
            return
        gap = time - self._last_time
        if gap <= 0:
            return
        instantaneous = nbytes * 8 / gap
        self._rate_bps += self.alpha * (instantaneous - self._rate_bps)
        self._last_time = time

    @property
    def rate_bps(self) -> float:
        """Current smoothed estimate."""
        return self._rate_bps
