"""Streaming rate estimators.

Experiments mostly post-process :class:`~repro.net.sink.StatsCollector`
samples, but live components (e.g. adaptive policies in the examples)
need on-line estimates; these two estimators cover the usual cases.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..errors import ConfigurationError


class WindowedRateEstimator:
    """Average rate over a sliding time window.

    ``add(time, nbytes)`` records service; ``rate_bps(now)`` returns the
    byte rate over the trailing window, in bits/second.

    Cold start: before a full window's worth of time has elapsed since
    the first sample, the rate is computed over the *elapsed* span
    ``now - first_sample_time`` rather than the full window — dividing
    by the full window before it has filled systematically
    under-reports early rates (the pre-fix behaviour). The effective
    span is floored at ``COLD_START_FLOOR_FRACTION × window`` so a
    query issued at (or pathologically close to) the first sample's
    timestamp cannot divide by zero or report an absurd spike.
    """

    #: Floor on the cold-start effective window, as a fraction of the
    #: configured window (documented contract, see class docstring).
    COLD_START_FLOOR_FRACTION = 0.01

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        self.window = window
        self._events: Deque[Tuple[float, int]] = deque()
        self._total_bytes = 0
        self._first_time: Optional[float] = None

    def add(self, time: float, nbytes: int) -> None:
        """Record *nbytes* of service at *time* (non-decreasing)."""
        if self._events and time < self._events[-1][0]:
            raise ConfigurationError("samples must arrive in time order")
        if self._first_time is None:
            self._first_time = time
        self._events.append((time, nbytes))
        self._total_bytes += nbytes
        self._evict(time)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        while self._events and self._events[0][0] <= cutoff:
            _, nbytes = self._events.popleft()
            self._total_bytes -= nbytes

    def rate_bps(self, now: float) -> float:
        """Rate over ``(now − window, now]`` (elapsed-span cold start)."""
        self._evict(now)
        if self._first_time is None:
            return 0.0
        floor = self.window * self.COLD_START_FLOOR_FRACTION
        effective = min(self.window, max(now - self._first_time, floor))
        return self._total_bytes * 8 / effective


class EwmaRateEstimator:
    """Exponentially weighted moving-average rate.

    Standard TCP-style estimator: each inter-sample gap contributes an
    instantaneous rate that is folded in with gain ``alpha``.

    Byte conservation: the priming sample's bytes and the bytes of any
    sample sharing a timestamp with its predecessor are *carried
    forward* and attributed to the next positive inter-sample gap. The
    pre-fix implementation silently discarded both (an early-return on
    ``gap <= 0``), so bursts of same-instant deliveries — exactly what
    a multi-interface scheduler produces — were under-counted.
    """

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0 < alpha <= 1:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._last_time: float = 0.0
        self._rate_bps: float = 0.0
        self._pending_bytes: int = 0
        self._primed = False

    def add(self, time: float, nbytes: int) -> None:
        """Record *nbytes* delivered at *time*."""
        if not self._primed:
            self._last_time = time
            self._pending_bytes = nbytes
            self._primed = True
            return
        gap = time - self._last_time
        if gap <= 0:
            # Same-instant (or out-of-order) delivery: no span to rate
            # over yet — bank the bytes for the next real gap instead
            # of dropping them.
            self._pending_bytes += nbytes
            return
        instantaneous = (self._pending_bytes + nbytes) * 8 / gap
        self._rate_bps += self.alpha * (instantaneous - self._rate_bps)
        self._last_time = time
        self._pending_bytes = 0

    @property
    def rate_bps(self) -> float:
        """Current smoothed estimate."""
        return self._rate_bps
