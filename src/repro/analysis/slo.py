"""The latency-SLO report: deadline misses vs. fairness, per scheduler.

Runs the whole scheduler family — the naive FIFO/WFQ/DRR baselines,
static splitting, the paper's miDRR, and the deadline/queue-aware
additions (EDF with admission control, QAware steering) — through the
stock chaos scenario with per-flow deadline budgets attached, and
tabulates per scheduler:

* the deadline-miss rate (missed / deadline-carrying packets sent),
* the p99 miss lateness (how far past the deadline the worst misses
  land),
* Jain's fairness index over weight-normalized flow rates,
* total delivered bytes (work conservation under faults).

Everything is derived from the simulated clock, so the report is
wall-clock-free: the same seed produces a byte-identical table — and
:meth:`SloReport.report_hash` — on every backend × batching
combination (the determinism contract ``bench smoke`` gates on).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..faults.chaos import CHAOS_BULK_FLOWS, WIRE_FLOW, ChaosRun
from ..schedulers.edf import EdfScheduler
from ..schedulers.midrr import MiDrrScheduler
from ..schedulers.per_interface import PerInterfaceScheduler, StaticSplitScheduler
from ..schedulers.qaware import QAwareScheduler

#: The family the report sweeps, in report order: label → factory.
SCHEDULER_FAMILY: "Dict[str, Callable[[], object]]" = {
    "fifo": PerInterfaceScheduler.fifo,
    "wfq": PerInterfaceScheduler.wfq,
    "drr": PerInterfaceScheduler.drr,
    "static": StaticSplitScheduler,
    "midrr": MiDrrScheduler,
    "edf": EdfScheduler,
    "qaware": QAwareScheduler,
}

#: Per-flow packet latency budgets (seconds) for the chaos workload.
#: Tight enough that outages and fairness differences show up as
#: misses, loose enough that a healthy scheduler mostly meets them.
DEFAULT_DEADLINE_BUDGETS: Dict[str, float] = {
    "pinned": 0.060,
    "video": 0.040,
    "bulk": 0.250,
    WIRE_FLOW: 0.500,
}


def p99(values: Sequence[float]) -> float:
    """Deterministic p99 (nearest-rank); 0.0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(0.99 * len(ordered)))
    return ordered[rank - 1]


def jain_index(rates: Mapping[str, float]) -> float:
    """Jain's fairness index over the given per-flow rates (0..1].

    Non-finite rates (a NaN or the ``inf`` from normalizing by a zero
    weight) are clamped to 0.0 — the convention of
    :func:`repro.fairness.metrics.jain_index` — so a degenerate flow
    can never leak NaN/inf into :meth:`SloRow.signature_line` and the
    report hash.
    """
    values = [v if math.isfinite(v) else 0.0 for v in rates.values()]
    if not values:
        return 1.0
    square_of_sum = sum(values) ** 2
    sum_of_squares = sum(value * value for value in values)
    if sum_of_squares == 0.0:
        return 1.0
    return square_of_sum / (len(values) * sum_of_squares)


@dataclass
class SloRow:
    """One scheduler's line in the report."""

    scheduler: str
    deadline_packets: int
    deadline_misses: int
    p99_miss_lateness: float
    jain_fairness: float
    bytes_total: int
    admission_rejected: int
    admission_shed: int
    alerts: int
    invariant_violations: int

    @property
    def miss_rate(self) -> float:
        """Missed / deadline-carrying packets delivered."""
        if not self.deadline_packets:
            return 0.0
        return self.deadline_misses / self.deadline_packets

    def signature_line(self) -> str:
        """The canonical wall-clock-free line hashed into the report."""
        return (
            f"{self.scheduler}:{self.deadline_packets}:{self.deadline_misses}"
            f":{self.p99_miss_lateness!r}:{self.jain_fairness!r}"
            f":{self.bytes_total}:{self.admission_rejected}"
            f":{self.admission_shed}:{self.invariant_violations}"
        )


@dataclass
class SloReport:
    """The full latency-SLO table for one (seed, duration)."""

    seed: int
    duration: float
    budgets: Dict[str, float]
    rows: List[SloRow] = field(default_factory=list)

    def report_hash(self) -> str:
        """SHA-256 over every row's canonical signature line.

        Contains only simulated-clock quantities, so it is identical
        for the same seed across event-queue backends, batching modes
        and hosts.
        """
        digest = hashlib.sha256()
        digest.update(f"seed={self.seed}:duration={self.duration!r}\n".encode())
        for flow_id in sorted(self.budgets):
            digest.update(f"budget:{flow_id}={self.budgets[flow_id]!r}\n".encode())
        for row in self.rows:
            digest.update(row.signature_line().encode())
            digest.update(b"\n")
        return digest.hexdigest()

    def to_text(self) -> str:
        """The human-readable table the CLI prints."""
        header = (
            f"== latency-SLO report: seed={self.seed} "
            f"duration={self.duration:g}s ==\n"
            "budgets: "
            + " ".join(
                f"{flow_id}={self.budgets[flow_id] * 1e3:g}ms"
                for flow_id in sorted(self.budgets)
            )
        )
        lines = [
            header,
            "",
            f"{'scheduler':<10} {'dl pkts':>8} {'misses':>8} {'miss %':>8} "
            f"{'p99 late ms':>12} {'jain':>7} {'MB sent':>8} {'rej':>4} {'shed':>5}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.scheduler:<10} {row.deadline_packets:>8} "
                f"{row.deadline_misses:>8} {row.miss_rate * 100:>7.2f}% "
                f"{row.p99_miss_lateness * 1e3:>12.3f} {row.jain_fairness:>7.4f} "
                f"{row.bytes_total / 1e6:>8.2f} {row.admission_rejected:>4} "
                f"{row.admission_shed:>5}"
            )
        lines.append("")
        lines.append(f"report hash: {self.report_hash()}")
        return "\n".join(lines)


def run_latency_slo(
    seed: int = 0,
    duration: float = 30.0,
    schedulers: Optional[Sequence[str]] = None,
    queue_backend: str = "heap",
    with_churn: bool = True,
    deadline_budgets: Optional[Mapping[str, float]] = None,
) -> SloReport:
    """Sweep the scheduler family through the chaos workload.

    *schedulers* selects a subset of :data:`SCHEDULER_FAMILY` labels
    (report order is preserved); default is the whole family.
    """
    chosen: List[Tuple[str, Callable[[], object]]] = []
    if schedulers is None:
        chosen = list(SCHEDULER_FAMILY.items())
    else:
        unknown = set(schedulers) - set(SCHEDULER_FAMILY)
        if unknown:
            raise ConfigurationError(
                f"unknown schedulers {sorted(unknown)}; "
                f"expected among {list(SCHEDULER_FAMILY)}"
            )
        chosen = [
            (label, factory)
            for label, factory in SCHEDULER_FAMILY.items()
            if label in set(schedulers)
        ]
    budgets = dict(
        deadline_budgets if deadline_budgets is not None else DEFAULT_DEADLINE_BUDGETS
    )
    report = SloReport(seed=seed, duration=duration, budgets=budgets)
    for label, factory in chosen:
        run = ChaosRun(
            seed=seed,
            duration=duration,
            with_churn=with_churn,
            scheduler_factory=factory,
            deadline_budgets=budgets,
            queue_backend=queue_backend,
        )
        lateness: List[float] = []
        run.engine.on_deadline_miss(
            lambda flow, packet, late: lateness.append(late)
        )
        chaos_report = run.run()
        stats = run.engine.stats
        weighted_rates = {
            flow_id: stats.rate_in_window(flow_id, 0.0, duration)
            / CHAOS_BULK_FLOWS[flow_id][0]
            for flow_id in CHAOS_BULK_FLOWS
        }
        report.rows.append(
            SloRow(
                scheduler=label,
                deadline_packets=run.engine.deadline_packets_total,
                deadline_misses=run.engine.deadline_misses_total,
                p99_miss_lateness=p99(lateness),
                jain_fairness=jain_index(weighted_rates),
                bytes_total=sum(chaos_report.bytes_by_flow.values()),
                admission_rejected=run.engine.admission_rejected_total,
                admission_shed=run.engine.admission_shed_total,
                alerts=len(chaos_report.alerts),
                invariant_violations=len(chaos_report.invariant_violations),
            )
        )
    return report
