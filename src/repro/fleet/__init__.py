"""Fleet-scale sharded simulation: many devices, many processes.

The fleet subsystem is the step from "one process simulates one
device" to population-scale claims: :func:`run_fleet` shards N
independent devices (each its own engine + miDRR scheduler driven by a
:class:`~repro.trace.fleet_workloads.DeviceWorkload`) across worker
processes, merges the mergeable telemetry each shard streams back, and
emits one fleet report with population percentiles, utilization and
fairness proxies. See ``docs/architecture.md`` for the
coordinator/worker lifecycle and the determinism contract.
"""

from .codec import (
    PAYLOAD_SCHEMA_VERSION,
    decode_shard,
    encode_shard,
    read_shard_jsonl,
    validate_shard,
    write_shard_jsonl,
)
from .coordinator import (
    EXECUTORS,
    FLEET_REPORT_SCHEMA_VERSION,
    REPORT_HASH_FIELDS,
    compute_report_hash,
    run_fleet,
)
from .device import (
    DELAY_SKETCH,
    interface_bytes_metric,
    interface_packets_metric,
    run_device,
    trace_fingerprint,
)
from .plan import (
    DEFAULT_MAX_SHARDS,
    Shard,
    ShardPlan,
    default_shard_count,
    device_ids,
    device_seed,
    plan_shards,
)
from .worker import run_shard

__all__ = [
    "DEFAULT_MAX_SHARDS",
    "DELAY_SKETCH",
    "EXECUTORS",
    "FLEET_REPORT_SCHEMA_VERSION",
    "PAYLOAD_SCHEMA_VERSION",
    "REPORT_HASH_FIELDS",
    "Shard",
    "ShardPlan",
    "compute_report_hash",
    "decode_shard",
    "default_shard_count",
    "device_ids",
    "device_seed",
    "encode_shard",
    "interface_bytes_metric",
    "interface_packets_metric",
    "plan_shards",
    "read_shard_jsonl",
    "run_device",
    "run_fleet",
    "run_shard",
    "trace_fingerprint",
    "validate_shard",
    "write_shard_jsonl",
]
