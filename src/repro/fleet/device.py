"""Simulate one fleet device and summarize it as a mergeable payload.

:func:`run_device` is the unit of work the whole fleet decomposes
into: build the device's scenario from the shared workload spec, run
it under miDRR, and distil the result into

* a compact JSON-safe **summary** (packets, bytes, events, drops, flow
  counts, and a ``trace_sha256`` fingerprint of the full service
  trace), and
* a per-device :class:`~repro.obs.metrics.MetricsRegistry` **state**
  holding the mergeable telemetry — counters, the delay
  :class:`~repro.obs.metrics.QuantileSketch`, per-interface service,
  and the Jain-index accumulators (Σx, Σx², n) — which shard workers
  fold together with ``MetricsRegistry.merge_state`` and ship to the
  coordinator.

Everything here runs on the virtual clock: no wall-clock value enters
the payload, so the same ``(device_id, seed, workload, backend,
batching)`` tuple produces a byte-identical payload on every run and
every machine. That is the property the fleet's standalone-replay
test pins.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Dict, Optional

from ..core.runner import run_scenario
from ..errors import ConfigurationError
from ..obs.metrics import MetricsRegistry
from ..schedulers.base import MultiInterfaceScheduler
from ..schedulers.midrr import MiDrrScheduler
from ..trace.fleet_workloads import DeviceWorkload, build_device_scenario

#: Metric names the fleet pipeline aggregates. Shared between devices,
#: shards and the coordinator so merge lands on the same registry keys.
DELAY_SKETCH = "fleet.delay_seconds"
DEVICES_TOTAL = "fleet.devices_total"
PACKETS_TOTAL = "fleet.packets_total"
BYTES_TOTAL = "fleet.bytes_total"
EVENTS_TOTAL = "fleet.events_total"
DROPS_TOTAL = "fleet.drops_total"
FLOWS_TOTAL = "fleet.flows_total"
FLOWS_COMPLETED_TOTAL = "fleet.flows_completed_total"
FAIRNESS_SUM_RATE = "fleet.fairness.sum_rate"
FAIRNESS_SUM_RATE_SQ = "fleet.fairness.sum_rate_sq"
FAIRNESS_FLOWS = "fleet.fairness.flows"


def interface_bytes_metric(interface_id: str) -> str:
    """Registry name for one interface's fleet-wide byte counter."""
    return f"fleet.interface.{interface_id}.bytes_total"


def interface_packets_metric(interface_id: str) -> str:
    """Registry name for one interface's fleet-wide packet counter."""
    return f"fleet.interface.{interface_id}.packets_total"


def trace_fingerprint(samples) -> str:
    """SHA-256 over the canonical JSON of the full service trace.

    Each :class:`~repro.net.sink.ServiceSample` contributes
    ``[time, flow_id, interface_id, size_bytes, delay]``; JSON float
    formatting is the shortest-round-trip repr, identical across
    platforms for IEEE doubles, so equal traces — and only equal
    traces — produce equal fingerprints.
    """
    canonical = json.dumps(
        [
            [s.time, s.flow_id, s.interface_id, s.size_bytes, s.delay]
            for s in samples
        ],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def run_device(
    device_id: str,
    seed: int,
    workload: DeviceWorkload,
    backend: str = "heap",
    batching: bool = False,
    scheduler_factory: Optional[Callable[[], MultiInterfaceScheduler]] = None,
) -> Dict[str, object]:
    """Simulate one device; return its summary + registry payload.

    *batching* must already be a concrete bool: the ``"auto"``
    calibration is wall-clock-dependent, so the coordinator resolves
    it exactly once and every device — fleet-run or standalone replay
    — receives the same resolved value. Accepting ``"auto"`` here
    would let two replays of the same device disagree on event counts.
    """
    if not isinstance(batching, bool):
        raise ConfigurationError(
            f"run_device needs a resolved bool batching, got {batching!r}; "
            f"the coordinator resolves 'auto' before devices run"
        )
    scenario = build_device_scenario(workload, device_id, seed)
    result = run_scenario(
        scenario,
        scheduler_factory if scheduler_factory is not None else MiDrrScheduler,
        queue_backend=backend,
        batching=batching,
    )
    stats = result.stats
    samples = stats.samples
    packets = len(samples)
    bytes_total = sum(sample.size_bytes for sample in samples)
    drops = sum(stats.drops_by_flow().values())

    registry = MetricsRegistry()
    registry.counter(DEVICES_TOTAL).inc(1)
    registry.counter(PACKETS_TOTAL).inc(packets)
    registry.counter(BYTES_TOTAL).inc(bytes_total)
    registry.counter(EVENTS_TOTAL).inc(result.sim.events_processed)
    registry.counter(DROPS_TOTAL).inc(drops)
    registry.counter(FLOWS_TOTAL).inc(len(scenario.flows))
    registry.counter(FLOWS_COMPLETED_TOTAL).inc(len(result.completions))

    delay_sketch = registry.sketch(DELAY_SKETCH)
    for sample in samples:
        if sample.delay is not None:
            delay_sketch.observe(sample.delay)

    for spec in scenario.interfaces:
        registry.counter(interface_bytes_metric(spec.interface_id)).inc(
            stats.interface_bytes(spec.interface_id)
        )
    interface_packets: Dict[str, int] = {}
    for sample in samples:
        interface_packets[sample.interface_id] = (
            interface_packets.get(sample.interface_id, 0) + 1
        )
    for spec in scenario.interfaces:
        registry.counter(interface_packets_metric(spec.interface_id)).inc(
            interface_packets.get(spec.interface_id, 0)
        )

    # Jain-index accumulators over weight-normalized per-flow rates:
    # x_f = (bytes·8 / duration) / φ_f. Keeping only (Σx, Σx², n) makes
    # the fairness proxy mergeable without per-flow state.
    if scenario.flows:
        sum_rate = registry.counter(FAIRNESS_SUM_RATE)
        sum_rate_sq = registry.counter(FAIRNESS_SUM_RATE_SQ)
        flows_counter = registry.counter(FAIRNESS_FLOWS)
        for spec in scenario.flows:
            rate = (
                stats.bytes_sent(spec.flow_id) * 8 / scenario.duration
            ) / spec.weight
            sum_rate.inc(rate)
            sum_rate_sq.inc(rate * rate)
            flows_counter.inc(1)

    return {
        "device_id": device_id,
        "seed": seed,
        "flows": len(scenario.flows),
        "flows_completed": len(result.completions),
        "packets": packets,
        "bytes": bytes_total,
        "events": result.sim.events_processed,
        "drops": drops,
        "trace_sha256": trace_fingerprint(samples),
        "registry": registry.snapshot_state(),
    }
