"""Shard planning and deterministic per-device seed derivation.

The planner answers two questions for a fleet run of *N* devices:

* **Which device is which?** Device ids are ``d0 .. d{N-1}``, and each
  device's simulation seed is :func:`derive_seed` of the fleet seed and
  the device id — the same SHA-256 construction the simulator uses for
  named substreams, so a device's entire behaviour is a pure function
  of ``(fleet_seed, device_id)`` and any device can be re-run
  standalone, byte-identically, without the rest of the fleet.

* **Who simulates it?** Devices are split into contiguous, balanced
  shards. The shard count is deliberately a function of the *device
  count only* — never of the worker count: shard payloads carry
  floating-point aggregates (delay sums, fairness rate sums) and float
  addition is not associative, so a workers-dependent grouping would
  make the merged fleet report differ in the last bits between
  ``--workers 1`` and ``--workers 4``. With a fixed grouping the
  coordinator merges shard results in shard-id order and the report —
  and its hash — is identical no matter how many workers consumed the
  shards or which executor ran them. Overriding the shard count
  explicitly is supported but forfeits that cross-run hash stability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigurationError
from ..sim.randomness import derive_seed

#: Upper bound on the automatic shard count. 32 shards keep payload
#: overhead negligible while load-balancing any plausible worker pool
#: on this container class.
DEFAULT_MAX_SHARDS = 32


def device_ids(devices: int) -> List[str]:
    """Canonical device ids for a fleet of *devices* devices."""
    if devices < 1:
        raise ConfigurationError(f"devices must be ≥ 1, got {devices}")
    return [f"d{index}" for index in range(devices)]


def device_seed(fleet_seed: int, device_id: str) -> int:
    """The deterministic simulation seed for one device.

    Stable across platforms and Python builds (SHA-256 based, see
    :func:`repro.sim.randomness.derive_seed`), so it is part of the
    fleet's reproducibility contract: publish ``(fleet_seed,
    device_id)`` and anyone can replay the device.
    """
    return derive_seed(fleet_seed, f"device:{device_id}")


def default_shard_count(devices: int) -> int:
    """Automatic shard count: workers-independent by design."""
    if devices < 1:
        raise ConfigurationError(f"devices must be ≥ 1, got {devices}")
    return min(devices, DEFAULT_MAX_SHARDS)


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of the fleet, simulated by one worker call."""

    shard_id: int
    device_ids: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ConfigurationError(f"shard_id must be ≥ 0, got {self.shard_id}")
        if not self.device_ids:
            raise ConfigurationError("a shard must hold at least one device")


@dataclass(frozen=True)
class ShardPlan:
    """The full device → shard assignment for one fleet run."""

    devices: int
    shards: Tuple[Shard, ...]

    def device_order(self) -> List[str]:
        """Every device id in canonical (index) order."""
        ordered: List[str] = []
        for shard in self.shards:
            ordered.extend(shard.device_ids)
        return ordered


def plan_shards(devices: int, num_shards: int = 0) -> ShardPlan:
    """Split *devices* into contiguous balanced shards.

    ``num_shards = 0`` (the default) selects
    :func:`default_shard_count`. The first ``devices % num_shards``
    shards receive one extra device; shard *k* always holds the same
    devices for the same ``(devices, num_shards)`` pair.
    """
    ids = device_ids(devices)
    if num_shards == 0:
        num_shards = default_shard_count(devices)
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be ≥ 1, got {num_shards}")
    num_shards = min(num_shards, devices)
    base, extra = divmod(devices, num_shards)
    shards: List[Shard] = []
    cursor = 0
    for shard_id in range(num_shards):
        size = base + (1 if shard_id < extra else 0)
        shards.append(
            Shard(shard_id=shard_id, device_ids=tuple(ids[cursor : cursor + size]))
        )
        cursor += size
    return ShardPlan(devices=devices, shards=tuple(shards))
