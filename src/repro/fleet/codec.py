"""Wire format for shard result payloads.

A shard payload is the unit that crosses the worker → coordinator
boundary. The executor transports it as a plain dict (pickle for the
process pool, a direct reference for the serial executor), but the
*contract* is JSON: :func:`encode_shard` produces the canonical
compact line that lands in the optional per-shard JSONL stream, and
:func:`validate_shard` enforces the schema on receipt so a
misbehaving worker fails loudly at the coordinator instead of
corrupting the merged report.
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..errors import ConfigurationError

#: Version stamped into every shard payload.
PAYLOAD_SCHEMA_VERSION = 1

#: Required keys of a shard payload / a device summary inside it.
_SHARD_KEYS = ("schema_version", "shard_id", "devices", "registry", "wall_seconds")
_DEVICE_KEYS = (
    "device_id",
    "seed",
    "flows",
    "flows_completed",
    "packets",
    "bytes",
    "events",
    "drops",
    "trace_sha256",
)


def validate_shard(payload: Dict[str, object]) -> Dict[str, object]:
    """Check a shard payload's shape; returns it for chaining."""
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"shard payload must be a dict, got {type(payload).__name__}"
        )
    missing = [key for key in _SHARD_KEYS if key not in payload]
    if missing:
        raise ConfigurationError(f"shard payload missing keys {missing}")
    version = payload["schema_version"]
    if not isinstance(version, int) or version > PAYLOAD_SCHEMA_VERSION:
        raise ConfigurationError(
            f"shard payload schema {version!r} is newer than this build "
            f"understands (max {PAYLOAD_SCHEMA_VERSION})"
        )
    if not isinstance(payload["devices"], list):
        raise ConfigurationError("shard payload 'devices' must be a list")
    for summary in payload["devices"]:
        if not isinstance(summary, dict):
            raise ConfigurationError("device summary must be a dict")
        absent = [key for key in _DEVICE_KEYS if key not in summary]
        if absent:
            raise ConfigurationError(
                f"device summary {summary.get('device_id')!r} "
                f"missing keys {absent}"
            )
    if not isinstance(payload["registry"], dict):
        raise ConfigurationError("shard payload 'registry' must be a dict")
    return payload


def encode_shard(payload: Dict[str, object]) -> str:
    """Canonical compact JSON line for one shard payload."""
    validate_shard(payload)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def decode_shard(line: str) -> Dict[str, object]:
    """Parse and validate one shard payload line."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid shard payload line: {exc}") from exc
    return validate_shard(payload)


def write_shard_jsonl(path: str, payloads: List[Dict[str, object]]) -> int:
    """Write shard payloads one-per-line; returns the line count."""
    with open(path, "w", encoding="utf-8") as handle:
        for payload in payloads:
            handle.write(encode_shard(payload))
            handle.write("\n")
    return len(payloads)


def read_shard_jsonl(path: str) -> List[Dict[str, object]]:
    """Read back a per-shard JSONL stream written by the coordinator."""
    payloads: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payloads.append(decode_shard(line))
            except ConfigurationError as exc:
                raise ConfigurationError(f"{path}:{line_number}: {exc}") from exc
    return payloads
