"""Fleet coordinator: shard, dispatch, merge, report.

:func:`run_fleet` is the top of the fleet pipeline:

1. **Plan** — split N devices into contiguous shards whose count
   depends only on N (see :mod:`repro.fleet.plan` for why that makes
   the merged report workers-invariant), deriving every device's seed
   from ``(fleet_seed, device_id)``.
2. **Resolve** — collapse ``batching="auto"`` to a concrete bool
   *once*, here, via the perf layer's calibration micro-benchmark.
   The resolution is wall-clock-dependent, so letting each worker (or
   a standalone replay) re-run it would break byte-identical
   reproducibility; the resolved value is recorded in the report and
   shipped to every shard.
3. **Dispatch** — run shards on the serial in-process executor or a
   ``ProcessPoolExecutor`` (fork context when available). Workers
   stream compact payloads back as they finish.
4. **Merge** — fold shard registries into one fleet registry **in
   shard-id order** (float merge order must not depend on completion
   order), chain-hash the per-device trace fingerprints in canonical
   device order, and derive fleet-level percentiles, utilization and
   the Jain fairness proxy from the merged state.
5. **Report** — one JSON document, plus an optional per-shard JSONL
   stream. ``report_hash`` covers exactly the deterministic subset
   (config, totals, percentiles, merged registry, device chain) and
   excludes wall-clock and executor/worker facts, so equal hashes
   across ``--workers 1`` / ``--workers 4`` / serial-vs-process is the
   determinism guarantee — and a test pins it.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed
from time import perf_counter
from typing import Callable, Dict, List, Optional, Union

from ..errors import ConfigurationError
from ..obs.metrics import MetricsRegistry, QuantileSketch
from ..trace.fleet_workloads import DeviceWorkload
from .codec import validate_shard, write_shard_jsonl
from .device import (
    BYTES_TOTAL,
    DELAY_SKETCH,
    DEVICES_TOTAL,
    DROPS_TOTAL,
    EVENTS_TOTAL,
    FAIRNESS_FLOWS,
    FAIRNESS_SUM_RATE,
    FAIRNESS_SUM_RATE_SQ,
    FLOWS_COMPLETED_TOTAL,
    FLOWS_TOTAL,
    PACKETS_TOTAL,
    interface_bytes_metric,
    interface_packets_metric,
)
from .plan import ShardPlan, plan_shards
from .worker import run_shard

#: Version of the fleet report document.
FLEET_REPORT_SCHEMA_VERSION = 1

#: Executor kinds understood by :func:`run_fleet`.
EXECUTORS = ("serial", "process")

#: Fields of the report covered by ``report_hash`` — the deterministic
#: subset. ``run`` (wall clock, workers, executor) is deliberately
#: excluded: two runs of the same fleet config must hash equal no
#: matter how the work was spread.
REPORT_HASH_FIELDS = (
    "schema_version",
    "fleet",
    "totals",
    "delay",
    "interfaces",
    "fairness",
    "device_chain_sha256",
    "registry",
)


def compute_report_hash(report: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON of the deterministic subset."""
    subset = {key: report[key] for key in REPORT_HASH_FIELDS}
    canonical = json.dumps(subset, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _resolve_batching(
    batching: Union[bool, str], workload: DeviceWorkload, backend: str
) -> bool:
    if isinstance(batching, bool):
        return batching
    if batching == "auto":
        # Imported lazily: repro.perf imports repro.core at module
        # load, so a top-level import here would be circular.
        from ..perf.core_bench import auto_select_batching

        flows = workload.num_flows if workload.kind == "bulk" else 10
        return auto_select_batching(
            flows, workload.num_interfaces, backend=backend
        )
    raise ConfigurationError(
        f"batching must be a bool or 'auto', got {batching!r}"
    )


def _counter_value(registry: MetricsRegistry, name: str) -> float:
    return registry.counter(name).value


def _run_serial(
    tasks: List[Dict[str, object]],
    progress: Optional[Callable[[int, int], None]],
) -> List[Dict[str, object]]:
    payloads = []
    for done, task in enumerate(tasks, start=1):
        payloads.append(run_shard(task))
        if progress is not None:
            progress(done, len(tasks))
    return payloads


def _run_pool(
    tasks: List[Dict[str, object]],
    workers: int,
    progress: Optional[Callable[[int, int], None]],
) -> List[Dict[str, object]]:
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        context = None
    by_shard: Dict[int, Dict[str, object]] = {}
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        futures = {pool.submit(run_shard, task): task["shard_id"] for task in tasks}
        done = 0
        for future in as_completed(futures):
            payload = future.result()
            by_shard[payload["shard_id"]] = payload
            done += 1
            if progress is not None:
                progress(done, len(tasks))
    # Completion order is nondeterministic; merge order must not be.
    return [by_shard[task["shard_id"]] for task in tasks]


def run_fleet(
    devices: int,
    workload: Optional[DeviceWorkload] = None,
    fleet_seed: int = 0,
    workers: int = 1,
    shards: int = 0,
    executor: str = "process",
    backend: str = "heap",
    batching: Union[bool, str] = False,
    report_path: Optional[str] = None,
    shard_log_path: Optional[str] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> Dict[str, object]:
    """Simulate a fleet of *devices* devices; return the fleet report.

    ``shards=0`` selects the automatic, workers-independent shard
    count. ``executor="serial"`` runs every shard in-process (workers
    is ignored) — the debugging and test path; ``"process"`` uses a
    pool of *workers* OS processes.
    """
    if workload is None:
        workload = DeviceWorkload()
    if executor not in EXECUTORS:
        raise ConfigurationError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}"
        )
    if workers < 1:
        raise ConfigurationError(f"workers must be ≥ 1, got {workers}")
    batching_requested = batching
    resolved_batching = _resolve_batching(batching, workload, backend)
    plan: ShardPlan = plan_shards(devices, shards)
    tasks = [
        {
            "shard_id": shard.shard_id,
            "device_ids": list(shard.device_ids),
            "fleet_seed": fleet_seed,
            "workload": workload.to_dict(),
            "backend": backend,
            "batching": resolved_batching,
        }
        for shard in plan.shards
    ]

    started = perf_counter()
    if executor == "serial":
        payloads = _run_serial(tasks, progress)
    else:
        payloads = _run_pool(tasks, workers, progress)
    wall_seconds = perf_counter() - started

    fleet_registry = MetricsRegistry()
    summaries: Dict[str, Dict[str, object]] = {}
    for payload in payloads:  # already in shard-id order
        validate_shard(payload)
        fleet_registry.merge_state(payload["registry"])
        for summary in payload["devices"]:
            summaries[summary["device_id"]] = summary

    # Chain hash over per-device trace fingerprints in canonical
    # (plan) order: one hex digest that commits to every packet of
    # every device, cheap enough to diff across runs.
    chain = hashlib.sha256()
    for device_id in plan.device_order():
        if device_id not in summaries:
            raise ConfigurationError(
                f"shard payloads missing device {device_id!r}"
            )
        chain.update(summaries[device_id]["trace_sha256"].encode("ascii"))
    device_chain = chain.hexdigest()

    totals = {
        "packets": int(_counter_value(fleet_registry, PACKETS_TOTAL)),
        "bytes": int(_counter_value(fleet_registry, BYTES_TOTAL)),
        "events": int(_counter_value(fleet_registry, EVENTS_TOTAL)),
        "drops": int(_counter_value(fleet_registry, DROPS_TOTAL)),
        "flows": int(_counter_value(fleet_registry, FLOWS_TOTAL)),
        "flows_completed": int(
            _counter_value(fleet_registry, FLOWS_COMPLETED_TOTAL)
        ),
        "devices": int(_counter_value(fleet_registry, DEVICES_TOTAL)),
    }

    delay: Dict[str, object] = {"count": 0, "p50": None, "p95": None, "p99": None}
    if DELAY_SKETCH in fleet_registry:
        sketch = fleet_registry.get(DELAY_SKETCH)
        assert isinstance(sketch, QuantileSketch)
        if sketch.count:
            delay = {
                "count": sketch.count,
                "p50": sketch.quantile(0.5),
                "p95": sketch.quantile(0.95),
                "p99": sketch.quantile(0.99),
            }

    interfaces: Dict[str, Dict[str, object]] = {}
    for index in range(workload.num_interfaces):
        interface_id = f"if{index}"
        bytes_name = interface_bytes_metric(interface_id)
        packets_name = interface_packets_metric(interface_id)
        interface_bytes = (
            int(_counter_value(fleet_registry, bytes_name))
            if bytes_name in fleet_registry
            else 0
        )
        rate_bps = workload.interface_rate_bps / (index + 1)
        capacity_bits = rate_bps * workload.duration * devices
        interfaces[interface_id] = {
            "bytes": interface_bytes,
            "packets": (
                int(_counter_value(fleet_registry, packets_name))
                if packets_name in fleet_registry
                else 0
            ),
            "utilization": interface_bytes * 8 / capacity_bits,
        }

    fairness: Dict[str, object] = {"jain_index": None, "flows": 0}
    if FAIRNESS_FLOWS in fleet_registry:
        n = _counter_value(fleet_registry, FAIRNESS_FLOWS)
        sum_rate = _counter_value(fleet_registry, FAIRNESS_SUM_RATE)
        sum_rate_sq = _counter_value(fleet_registry, FAIRNESS_SUM_RATE_SQ)
        if n > 0 and sum_rate_sq > 0:
            fairness = {
                "jain_index": (sum_rate * sum_rate) / (n * sum_rate_sq),
                "flows": int(n),
            }
        else:
            fairness = {"jain_index": None, "flows": int(n)}

    report: Dict[str, object] = {
        "schema_version": FLEET_REPORT_SCHEMA_VERSION,
        "fleet": {
            "devices": devices,
            "fleet_seed": fleet_seed,
            "workload": workload.to_dict(),
            "backend": backend,
            "batching": resolved_batching,
        },
        "run": {
            "executor": executor,
            "workers": workers if executor == "process" else 1,
            "shards": len(plan.shards),
            "batching_requested": batching_requested,
            "wall_seconds": wall_seconds,
            "packets_per_sec": totals["packets"] / wall_seconds
            if wall_seconds > 0
            else 0.0,
            "devices_per_sec": devices / wall_seconds if wall_seconds > 0 else 0.0,
        },
        "totals": totals,
        "delay": delay,
        "interfaces": interfaces,
        "fairness": fairness,
        "device_chain_sha256": device_chain,
        "registry": fleet_registry.snapshot_state(),
    }
    report["report_hash"] = compute_report_hash(report)

    if shard_log_path is not None:
        write_shard_jsonl(shard_log_path, payloads)
    if report_path is not None:
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, sort_keys=True, indent=2)
            handle.write("\n")
    return report
