"""Worker entrypoint: simulate one shard of the fleet.

:func:`run_shard` is a module-level function taking one JSON-safe task
dict, so it pickles cleanly into a :class:`ProcessPoolExecutor` and
runs identically under the serial in-process executor — the serial
path is not a mock, it is the same code the pool executes, which is
what lets the determinism tests compare the two byte-for-byte.

The worker folds its devices' registries into one shard registry as it
goes (devices in shard order), so the payload that travels back to the
coordinator is compact: one registry state plus one small summary per
device, regardless of how much traffic the shard simulated.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List

from ..errors import ConfigurationError
from ..obs.metrics import MetricsRegistry
from ..trace.fleet_workloads import DeviceWorkload
from .codec import PAYLOAD_SCHEMA_VERSION
from .device import run_device
from .plan import device_seed

#: Required keys of a shard task dict (built by the coordinator).
_TASK_KEYS = ("shard_id", "device_ids", "fleet_seed", "workload", "backend", "batching")


def run_shard(task: Dict[str, object]) -> Dict[str, object]:
    """Simulate every device in one shard; return the shard payload.

    ``task['batching']`` must be a resolved bool (see
    :func:`repro.fleet.device.run_device` for why ``"auto"`` is
    rejected below the coordinator).
    """
    missing = [key for key in _TASK_KEYS if key not in task]
    if missing:
        raise ConfigurationError(f"shard task missing keys {missing}")
    workload = DeviceWorkload.from_dict(dict(task["workload"]))
    fleet_seed = task["fleet_seed"]
    backend = task["backend"]
    batching = task["batching"]

    started = perf_counter()
    registry = MetricsRegistry()
    summaries: List[Dict[str, object]] = []
    for device_id in task["device_ids"]:
        payload = run_device(
            device_id,
            device_seed(fleet_seed, device_id),
            workload,
            backend=backend,
            batching=batching,
        )
        registry.merge_state(payload.pop("registry"))
        summaries.append(payload)
    return {
        "schema_version": PAYLOAD_SCHEMA_VERSION,
        "shard_id": task["shard_id"],
        "devices": summaries,
        "registry": registry.snapshot_state(),
        "wall_seconds": perf_counter() - started,
    }
