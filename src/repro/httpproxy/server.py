"""Simulated HTTP origin server.

Serves synthetic objects (deterministic pseudo-random content so the
splicing proxy's integrity checks are meaningful) and implements GET
with RFC 7233 single-range support — 200 for full requests, 206 with
``Content-Range`` for ranged ones, 404/416 error paths included.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

from ..errors import HttpError
from .http11 import (
    ByteRange,
    Headers,
    HttpRequest,
    HttpResponse,
    parse_range_header,
)


def synthetic_body(url: str, size: int) -> bytes:
    """Deterministic content for *url*: repeated SHA-256 keystream.

    Two servers (or two runs) produce identical bytes for the same url
    and size, so spliced downloads can be verified end to end.
    """
    if size < 0:
        raise HttpError(f"size must be non-negative, got {size}")
    blocks = []
    produced = 0
    counter = 0
    while produced < size:
        block = hashlib.sha256(f"{url}:{counter}".encode("utf-8")).digest()
        blocks.append(block)
        produced += len(block)
        counter += 1
    return b"".join(blocks)[:size]


class HttpOriginServer:
    """An in-simulation origin holding named objects."""

    def __init__(self) -> None:
        self._objects: Dict[str, bytes] = {}
        self.requests_served = 0

    def put_object(self, url: str, body: bytes) -> None:
        """Store explicit content at *url*."""
        self._objects[url] = body

    def put_synthetic(self, url: str, size: int) -> bytes:
        """Store a deterministic synthetic object; returns its body."""
        body = synthetic_body(url, size)
        self._objects[url] = body
        return body

    def object_size(self, url: str) -> Optional[int]:
        """Size of the object at *url*, or ``None``."""
        body = self._objects.get(url)
        return len(body) if body is not None else None

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Process one request, returning the full response."""
        self.requests_served += 1
        if request.method == "HEAD":
            body = self._objects.get(request.target)
            if body is None:
                return HttpResponse(status=404)
            response = HttpResponse(status=200)
            # HEAD advertises the entity's length without a body.
            response.headers.set("Content-Length", str(len(body)))
            response.headers.set("Accept-Ranges", "bytes")
            return response
        if request.method != "GET":
            return HttpResponse(status=400, headers=Headers({"Allow": "GET, HEAD"}))
        body = self._objects.get(request.target)
        if body is None:
            return HttpResponse(status=404)
        range_value = request.headers.get("range")
        if range_value is None:
            response = HttpResponse(status=200, body=body)
            response.headers.set("Accept-Ranges", "bytes")
            return response
        try:
            byte_range = parse_range_header(range_value, len(body))
        except HttpError:
            response = HttpResponse(status=416)
            response.headers.set("Content-Range", f"bytes */{len(body)}")
            return response
        chunk = body[byte_range.start: byte_range.end + 1]
        response = HttpResponse(status=206, body=chunk)
        response.headers.set("Content-Range", byte_range.content_range(len(body)))
        response.headers.set("Accept-Ranges", "bytes")
        return response
