"""Byte-range splitting and response splicing.

The paper: "we make use of the byte-range option available in HTTP 1.1
to divide a single GET request into multiple requests ... The responses
are then collected, spliced together and returned to the application."

:func:`split_ranges` produces the chunk plan; :class:`Splicer`
reassembles out-of-order chunk bodies into the original object and
knows when the transfer is complete.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import HttpError
from .http11 import ByteRange

#: Default chunk size for range splitting (64 KiB, a typical proxy pick:
#: large enough to amortize request overhead, small enough to reschedule
#: between interfaces as conditions change).
DEFAULT_CHUNK_BYTES = 64 * 1024


def split_ranges(total_bytes: int, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> List[ByteRange]:
    """Cover ``[0, total_bytes)`` with consecutive chunks.

    The final chunk is short when *total_bytes* is not a multiple of
    *chunk_bytes*.
    """
    if total_bytes <= 0:
        raise HttpError(f"total_bytes must be positive, got {total_bytes}")
    if chunk_bytes <= 0:
        raise HttpError(f"chunk_bytes must be positive, got {chunk_bytes}")
    ranges = []
    offset = 0
    while offset < total_bytes:
        end = min(offset + chunk_bytes, total_bytes) - 1
        ranges.append(ByteRange(offset, end))
        offset = end + 1
    return ranges


class Splicer:
    """Reassembles range responses into the original object."""

    def __init__(self, total_bytes: int) -> None:
        if total_bytes <= 0:
            raise HttpError(f"total_bytes must be positive, got {total_bytes}")
        self.total_bytes = total_bytes
        self._chunks: Dict[int, bytes] = {}
        self._received = 0

    @property
    def bytes_received(self) -> int:
        """Distinct body bytes accepted so far."""
        return self._received

    @property
    def complete(self) -> bool:
        """Has every byte of the object arrived?"""
        return self._received >= self.total_bytes

    def add(self, byte_range: ByteRange, body: bytes) -> None:
        """Accept the body of one range response.

        Duplicate ranges are rejected (the proxy never re-requests) and
        length mismatches raise — silent corruption is the worst
        possible failure for a splicing proxy.
        """
        if len(body) != byte_range.length:
            raise HttpError(
                f"range {byte_range.header_value()} carries {len(body)} bytes, "
                f"expected {byte_range.length}"
            )
        if byte_range.end >= self.total_bytes:
            raise HttpError(
                f"range {byte_range.header_value()} exceeds object size "
                f"{self.total_bytes}"
            )
        if byte_range.start in self._chunks:
            raise HttpError(f"duplicate chunk at offset {byte_range.start}")
        self._chunks[byte_range.start] = body
        self._received += len(body)

    def assemble(self) -> bytes:
        """Concatenate all chunks; raises if any gap remains."""
        if not self.complete:
            raise HttpError(
                f"object incomplete: {self._received}/{self.total_bytes} bytes"
            )
        parts = []
        offset = 0
        for start in sorted(self._chunks):
            if start != offset:
                raise HttpError(f"gap or overlap at offset {offset}")
            body = self._chunks[start]
            parts.append(body)
            offset = start + len(body)
        if offset != self.total_bytes:
            raise HttpError(f"assembled {offset} bytes, expected {self.total_bytes}")
        return b"".join(parts)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Received chunks as a JSON-safe dict (bodies hex-encoded)."""
        return {
            "total_bytes": self.total_bytes,
            "chunks": {
                str(offset): body.hex() for offset, body in self._chunks.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite contents from :meth:`snapshot_state` output."""
        if state["total_bytes"] != self.total_bytes:
            raise HttpError(
                f"snapshot is for a {state['total_bytes']}-byte object, "
                f"this splicer holds {self.total_bytes}"
            )
        self._chunks = {
            int(offset): bytes.fromhex(body)
            for offset, body in state["chunks"].items()
        }
        self._received = sum(len(body) for body in self._chunks.values())

    def missing_prefix_length(self) -> int:
        """Length of the contiguous prefix received (streamable bytes)."""
        offset = 0
        for start in sorted(self._chunks):
            if start != offset:
                break
            offset = start + len(self._chunks[start])
        return offset
