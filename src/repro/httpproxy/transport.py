"""Simulated per-interface HTTP transport.

A :class:`DownlinkChannel` models one wireless interface as seen by the
HTTP proxy: requests go upstream instantly (they are tens of bytes),
the origin's response becomes ready after a fixed round-trip latency,
and response bodies are then serialized *in order* over the interface's
time-varying downlink rate — HTTP/1.1 pipelining semantics. The proxy
keeps up to ``pipeline_depth`` requests outstanding per channel so the
downlink never idles while work remains, exactly the paper's
"request pipelining ... making sure that all the available capacity is
utilized".

Robustness (``docs/fault_model.md``): channels can be taken down and
up (``bring_down`` / ``bring_up``), and an optional ``read_timeout``
arms a deadline per issued request. A request whose response has not
landed by its deadline is abandoned and reissued with capped
exponential backoff (``min(backoff_cap, backoff_base · 2^attempt)``)
up to ``max_retries`` times before being reported failed. When a
seeded ``rng`` is supplied the backoff is multiplied by a jitter
factor in ``[0.5, 1.0)`` drawn from that stream — never from the
module-level ``random`` — so retry timing stays reproducible under a
fixed scenario seed. The default ``read_timeout=None`` keeps the
legacy wait-forever behaviour.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Sequence

from ..errors import ConfigurationError
from ..net.interface import CapacityStep
from ..sim.events import Event
from ..sim.simulator import Simulator
from .http11 import HttpRequest, HttpResponse
from .server import HttpOriginServer

#: Called with the channel and the completed response.
ResponseHandler = Callable[["DownlinkChannel", HttpRequest, HttpResponse], None]

#: Called with the channel and the request that exhausted its retries.
FailureHandler = Callable[["DownlinkChannel", HttpRequest], None]

#: Serialized header overhead added to each response body, bytes.
RESPONSE_OVERHEAD_BYTES = 160


@dataclass
class _PendingTransfer:
    request: HttpRequest
    response: HttpResponse
    ready_at: float
    on_response: ResponseHandler
    attempts: int = 0
    deadline_event: Optional[Event] = field(default=None, repr=False)
    finish_event: Optional[Event] = field(default=None, repr=False)


class DownlinkChannel:
    """One interface's pipelined request/response path to the origin."""

    def __init__(
        self,
        sim: Simulator,
        channel_id: str,
        server: HttpOriginServer,
        rate_bps: float,
        rtt: float = 0.05,
        pipeline_depth: int = 4,
        read_timeout: Optional[float] = None,
        max_retries: int = 2,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate_bps}")
        if pipeline_depth <= 0:
            raise ConfigurationError(
                f"pipeline_depth must be positive, got {pipeline_depth}"
            )
        if rtt < 0:
            raise ConfigurationError(f"rtt must be non-negative, got {rtt}")
        if read_timeout is not None and read_timeout <= 0:
            raise ConfigurationError(
                f"read_timeout must be positive, got {read_timeout}"
            )
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be non-negative, got {max_retries}"
            )
        if backoff_base <= 0 or backoff_cap < backoff_base:
            raise ConfigurationError(
                f"need 0 < backoff_base <= backoff_cap, got "
                f"base={backoff_base}, cap={backoff_cap}"
            )
        self._sim = sim
        self.channel_id = channel_id
        self._server = server
        self._rate_bps = float(rate_bps)
        self._rtt = rtt
        self.pipeline_depth = pipeline_depth
        self._read_timeout = read_timeout
        self._max_retries = max_retries
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._rng = rng
        self._transfers: Deque[_PendingTransfer] = deque()
        self._transferring = False
        self._start_event: Optional[Event] = None
        self._up = True
        self._slot_listeners: List[Callable[["DownlinkChannel"], None]] = []
        self._failure_listeners: List[FailureHandler] = []
        self.bytes_delivered = 0
        self.responses_delivered = 0
        self.timeouts = 0
        self.retries = 0
        self.failed_requests = 0

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def rate_bps(self) -> float:
        """Current downlink rate."""
        return self._rate_bps

    def set_rate(self, rate_bps: float) -> None:
        """Change the downlink rate (affects the next transfer)."""
        if rate_bps <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate_bps}")
        self._rate_bps = float(rate_bps)

    def apply_capacity_schedule(self, steps: Sequence[CapacityStep]) -> None:
        """Schedule future rate changes."""
        for step in steps:
            self._sim.schedule(step.time, self.set_rate, step.rate_bps)

    # ------------------------------------------------------------------
    # Administrative state
    # ------------------------------------------------------------------
    @property
    def up(self) -> bool:
        """``True`` while the channel can start transfers."""
        return self._up

    def bring_down(self) -> None:
        """Take the channel down (outage).

        The transfer currently serializing is abandoned mid-flight (its
        bytes are lost, unlike a link-layer interface whose in-flight
        frame completes) and its deadline keeps running, so with a
        ``read_timeout`` configured it will be retried — on this channel
        once it recovers, which is exactly how a stalled HTTP connection
        behaves. Queued transfers simply wait.
        """
        if not self._up:
            return
        self._up = False
        if self._transferring:
            head = self._transfers[0]
            if head.finish_event is not None:
                self._sim.cancel(head.finish_event)
                head.finish_event = None
            self._abort_pending_start()
            self._transferring = False

    def bring_up(self) -> None:
        """Restore the channel and restart the pipeline."""
        if self._up:
            return
        self._up = True
        for transfer in self._transfers:
            # Responses readied during the outage start serializing now.
            transfer.ready_at = max(transfer.ready_at, self._sim.now)
        self._maybe_start()

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Requests issued whose responses are not yet delivered.

        The transfer currently serializing stays in the queue until it
        finishes, so the queue length is the full count.
        """
        return len(self._transfers)

    @property
    def has_slot(self) -> bool:
        """Can another request be pipelined right now?"""
        return self.outstanding < self.pipeline_depth

    def on_slot_free(self, listener: Callable[["DownlinkChannel"], None]) -> None:
        """Register a callback fired whenever a pipeline slot frees."""
        self._slot_listeners.append(listener)

    def on_failure(self, listener: FailureHandler) -> None:
        """Register a callback fired when a request exhausts its retries."""
        self._failure_listeners.append(listener)

    def issue(self, request: HttpRequest, on_response: ResponseHandler) -> None:
        """Send *request*; *on_response* fires when its body lands."""
        if not self.has_slot:
            raise ConfigurationError(
                f"channel {self.channel_id!r} pipeline is full"
            )
        self._enqueue(request, on_response, attempts=0)
        self._maybe_start()

    def _enqueue(
        self, request: HttpRequest, on_response: ResponseHandler, attempts: int
    ) -> None:
        response = self._server.handle(request)
        transfer = _PendingTransfer(
            request=request,
            response=response,
            ready_at=self._sim.now + self._rtt,
            on_response=on_response,
            attempts=attempts,
        )
        if self._read_timeout is not None:
            transfer.deadline_event = self._sim.call_later(
                self._read_timeout, self._deadline_expired, transfer
            )
        self._transfers.append(transfer)

    def _maybe_start(self) -> None:
        if self._transferring or not self._up or not self._transfers:
            return
        head = self._transfers[0]
        delay = max(0.0, head.ready_at - self._sim.now)
        self._transferring = True
        self._start_event = self._sim.call_later(delay, self._start_transfer)

    def _abort_pending_start(self) -> None:
        if self._start_event is not None:
            self._sim.cancel(self._start_event)
            self._start_event = None

    def _start_transfer(self) -> None:
        self._start_event = None
        head = self._transfers[0]
        size = len(head.response.body) + RESPONSE_OVERHEAD_BYTES
        duration = size * 8 / self._rate_bps
        head.finish_event = self._sim.call_later(duration, self._finish_transfer)

    def _finish_transfer(self) -> None:
        transfer = self._transfers.popleft()
        transfer.finish_event = None
        if transfer.deadline_event is not None:
            self._sim.cancel(transfer.deadline_event)
            transfer.deadline_event = None
        self._transferring = False
        self.bytes_delivered += len(transfer.response.body)
        self.responses_delivered += 1
        transfer.on_response(self, transfer.request, transfer.response)
        # Wake the pipeline before notifying slot listeners so listeners
        # observe a consistent outstanding count.
        self._maybe_start()
        for listener in self._slot_listeners:
            listener(self)

    # ------------------------------------------------------------------
    # Timeouts and retries
    # ------------------------------------------------------------------
    def _deadline_expired(self, transfer: _PendingTransfer) -> None:
        if transfer not in self._transfers:
            return
        self.timeouts += 1
        serializing = self._transferring and self._transfers[0] is transfer
        if transfer.finish_event is not None:
            self._sim.cancel(transfer.finish_event)
            transfer.finish_event = None
        self._transfers.remove(transfer)
        if serializing:
            self._abort_pending_start()
            self._transferring = False
        if transfer.attempts < self._max_retries:
            self.retries += 1
            backoff = min(
                self._backoff_cap, self._backoff_base * 2**transfer.attempts
            )
            if self._rng is not None:
                # Jitter drawn from the run's seeded stream, never from
                # the module-level random — retries stay reproducible.
                backoff *= 0.5 + 0.5 * self._rng.random()
            self._sim.call_later(
                backoff,
                self._enqueue_retry,
                transfer.request,
                transfer.on_response,
                transfer.attempts + 1,
            )
        else:
            self.failed_requests += 1
            for listener in self._failure_listeners:
                listener(self, transfer.request)
        # The abandoned slot can serve the next queued response.
        self._maybe_start()
        for listener in self._slot_listeners:
            listener(self)

    def _enqueue_retry(
        self, request: HttpRequest, on_response: ResponseHandler, attempts: int
    ) -> None:
        self._enqueue(request, on_response, attempts=attempts)
        self._maybe_start()
