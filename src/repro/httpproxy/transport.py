"""Simulated per-interface HTTP transport.

A :class:`DownlinkChannel` models one wireless interface as seen by the
HTTP proxy: requests go upstream instantly (they are tens of bytes),
the origin's response becomes ready after a fixed round-trip latency,
and response bodies are then serialized *in order* over the interface's
time-varying downlink rate — HTTP/1.1 pipelining semantics. The proxy
keeps up to ``pipeline_depth`` requests outstanding per channel so the
downlink never idles while work remains, exactly the paper's
"request pipelining ... making sure that all the available capacity is
utilized".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Sequence

from ..errors import ConfigurationError
from ..net.interface import CapacityStep
from ..sim.simulator import Simulator
from .http11 import HttpRequest, HttpResponse
from .server import HttpOriginServer

#: Called with the channel and the completed response.
ResponseHandler = Callable[["DownlinkChannel", HttpRequest, HttpResponse], None]

#: Serialized header overhead added to each response body, bytes.
RESPONSE_OVERHEAD_BYTES = 160


@dataclass
class _PendingTransfer:
    request: HttpRequest
    response: HttpResponse
    ready_at: float
    on_response: ResponseHandler


class DownlinkChannel:
    """One interface's pipelined request/response path to the origin."""

    def __init__(
        self,
        sim: Simulator,
        channel_id: str,
        server: HttpOriginServer,
        rate_bps: float,
        rtt: float = 0.05,
        pipeline_depth: int = 4,
    ) -> None:
        if rate_bps <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate_bps}")
        if pipeline_depth <= 0:
            raise ConfigurationError(
                f"pipeline_depth must be positive, got {pipeline_depth}"
            )
        if rtt < 0:
            raise ConfigurationError(f"rtt must be non-negative, got {rtt}")
        self._sim = sim
        self.channel_id = channel_id
        self._server = server
        self._rate_bps = float(rate_bps)
        self._rtt = rtt
        self.pipeline_depth = pipeline_depth
        self._transfers: Deque[_PendingTransfer] = deque()
        self._transferring = False
        self._slot_listeners: List[Callable[["DownlinkChannel"], None]] = []
        self.bytes_delivered = 0
        self.responses_delivered = 0

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def rate_bps(self) -> float:
        """Current downlink rate."""
        return self._rate_bps

    def set_rate(self, rate_bps: float) -> None:
        """Change the downlink rate (affects the next transfer)."""
        if rate_bps <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate_bps}")
        self._rate_bps = float(rate_bps)

    def apply_capacity_schedule(self, steps: Sequence[CapacityStep]) -> None:
        """Schedule future rate changes."""
        for step in steps:
            self._sim.schedule(step.time, self.set_rate, step.rate_bps)

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Requests issued whose responses are not yet delivered.

        The transfer currently serializing stays in the queue until it
        finishes, so the queue length is the full count.
        """
        return len(self._transfers)

    @property
    def has_slot(self) -> bool:
        """Can another request be pipelined right now?"""
        return self.outstanding < self.pipeline_depth

    def on_slot_free(self, listener: Callable[["DownlinkChannel"], None]) -> None:
        """Register a callback fired whenever a pipeline slot frees."""
        self._slot_listeners.append(listener)

    def issue(self, request: HttpRequest, on_response: ResponseHandler) -> None:
        """Send *request*; *on_response* fires when its body lands."""
        if not self.has_slot:
            raise ConfigurationError(
                f"channel {self.channel_id!r} pipeline is full"
            )
        response = self._server.handle(request)
        self._transfers.append(
            _PendingTransfer(
                request=request,
                response=response,
                ready_at=self._sim.now + self._rtt,
                on_response=on_response,
            )
        )
        self._maybe_start()

    def _maybe_start(self) -> None:
        if self._transferring or not self._transfers:
            return
        head = self._transfers[0]
        delay = max(0.0, head.ready_at - self._sim.now)
        self._transferring = True
        self._sim.call_later(delay, self._start_transfer)

    def _start_transfer(self) -> None:
        head = self._transfers[0]
        size = len(head.response.body) + RESPONSE_OVERHEAD_BYTES
        duration = size * 8 / self._rate_bps
        self._sim.call_later(duration, self._finish_transfer)

    def _finish_transfer(self) -> None:
        transfer = self._transfers.popleft()
        self._transferring = False
        self.bytes_delivered += len(transfer.response.body)
        self.responses_delivered += 1
        transfer.on_response(self, transfer.request, transfer.response)
        # Wake the pipeline before notifying slot listeners so listeners
        # observe a consistent outstanding count.
        self._maybe_start()
        for listener in self._slot_listeners:
            listener(self)
