"""The miDRR HTTP proxy (the paper's Figure 5 implementation).

The proxy sits on the device. For every application GET it learns the
object size, splits the transfer into byte-range chunks
(:func:`~repro.httpproxy.ranges.split_ranges`), and queues the chunks as
the flow's backlog. Whenever an interface's pipeline has a free slot,
the proxy asks the bound multi-interface scheduler which flow's next
chunk to request on that interface — miDRR at request granularity. By
choosing the interface a request goes out on, the proxy chooses the
interface the response body comes back over, which is how it schedules
*inbound* traffic without any in-network support.

Responses are spliced back together and verified before the application
callback fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError, HttpError
from ..net.flow import Flow
from ..net.packet import Packet
from ..net.sink import StatsCollector
from ..schedulers.base import MultiInterfaceScheduler
from ..schedulers.midrr import MiDrrScheduler
from ..sim.simulator import Simulator
from .http11 import ByteRange, Headers, HttpRequest, HttpResponse, parse_content_range
from .ranges import DEFAULT_CHUNK_BYTES, Splicer, split_ranges
from .server import HttpOriginServer
from .transport import DownlinkChannel

#: Callback fired with the assembled object when a fetch completes.
FetchCallback = Callable[["HttpFetch"], None]


@dataclass
class HttpFetch:
    """One application download managed by the proxy."""

    flow_id: str
    url: str
    total_bytes: int
    splicer: Splicer
    on_complete: Optional[FetchCallback] = None
    started_at: float = 0.0
    completed_at: Optional[float] = None
    body: Optional[bytes] = None
    #: Chunk ranges keyed by the queued packet's seqno.
    pending_ranges: Dict[int, ByteRange] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """Has every chunk landed?"""
        return self.splicer.complete

    def goodput_bps(self) -> float:
        """Average goodput over the fetch's lifetime."""
        if self.completed_at is None or self.completed_at <= self.started_at:
            return 0.0
        return self.total_bytes * 8 / (self.completed_at - self.started_at)


class SchedulingHttpProxy:
    """An on-device HTTP/1.1 proxy scheduling inbound traffic."""

    def __init__(
        self,
        sim: Simulator,
        scheduler: Optional[MultiInterfaceScheduler] = None,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        if chunk_bytes <= 0:
            raise ConfigurationError(f"chunk_bytes must be positive, got {chunk_bytes}")
        self._sim = sim
        # The schedulable unit here is a whole byte-range chunk, so the
        # DRR quantum must cover one chunk per turn (Shreedhar &
        # Varghese's Q ≥ MaxSize rule, at chunk granularity).
        self._scheduler = (
            scheduler
            if scheduler is not None
            else MiDrrScheduler(quantum_base=chunk_bytes)
        )
        self._chunk_bytes = chunk_bytes
        self._channels: Dict[str, DownlinkChannel] = {}
        self._flows: Dict[str, Flow] = {}
        self._fetches: Dict[str, HttpFetch] = {}
        self.stats = StatsCollector(sim)
        self.fetches_completed = 0

    @property
    def scheduler(self) -> MultiInterfaceScheduler:
        """The bound request scheduler."""
        return self._scheduler

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_channel(self, channel: DownlinkChannel) -> None:
        """Register one interface's transport channel."""
        if channel.channel_id in self._channels:
            raise ConfigurationError(
                f"channel {channel.channel_id!r} already registered"
            )
        self._channels[channel.channel_id] = channel
        self._scheduler.register_interface(channel.channel_id)
        channel.on_slot_free(self._pump)

    def add_flow(
        self,
        flow_id: str,
        weight: float = 1.0,
        interfaces: Optional[List[str]] = None,
    ) -> None:
        """Declare an application flow and its preferences."""
        if flow_id in self._flows:
            raise ConfigurationError(f"flow {flow_id!r} already registered")
        flow = Flow(flow_id, weight=weight, allowed_interfaces=interfaces)
        self._flows[flow_id] = flow
        self._scheduler.add_flow(flow)
        flow.on_arrival(self._chunk_queued)

    # ------------------------------------------------------------------
    # Application API
    # ------------------------------------------------------------------
    def fetch(
        self,
        flow_id: str,
        url: str,
        server: HttpOriginServer,
        on_complete: Optional[FetchCallback] = None,
    ) -> HttpFetch:
        """Download *url* for *flow_id*; returns the fetch handle.

        Every registered channel must front the same origin *server*
        (it is consulted once for the object size — the proxy's
        equivalent of an initial HEAD).
        """
        flow = self._flows.get(flow_id)
        if flow is None:
            raise ConfigurationError(f"unknown flow {flow_id!r}; call add_flow first")
        if flow_id in self._fetches and not self._fetches[flow_id].complete:
            raise ConfigurationError(f"flow {flow_id!r} already has an active fetch")
        # Learn the object size with a real HEAD transaction (the tiny
        # exchange itself is not modelled on the data path).
        head_response = server.handle(HttpRequest(method="HEAD", target=url))
        if head_response.status != 200:
            raise HttpError(
                f"HEAD {url!r} returned {head_response.status}"
            )
        length_header = head_response.headers.get("content-length")
        if length_header is None:
            raise HttpError(f"HEAD {url!r} carried no Content-Length")
        size = int(length_header)
        if size <= 0:
            raise HttpError(f"object at {url!r} is empty")
        fetch = HttpFetch(
            flow_id=flow_id,
            url=url,
            total_bytes=size,
            splicer=Splicer(size),
            on_complete=on_complete,
            started_at=self._sim.now,
        )
        self._fetches[flow_id] = fetch
        for byte_range in split_ranges(size, self._chunk_bytes):
            packet = Packet(
                flow_id=flow_id,
                size_bytes=byte_range.length,
                created_at=self._sim.now,
            )
            fetch.pending_ranges[packet.seqno] = byte_range
            flow.offer(packet)
        return fetch

    # ------------------------------------------------------------------
    # Scheduling pump
    # ------------------------------------------------------------------
    def _chunk_queued(self, flow: Flow, packet: Packet) -> None:
        if len(flow.queue) == 1:
            self._scheduler.notify_backlogged(flow)
        self._sim.call_now(self._pump_all)

    def _pump_all(self) -> None:
        for channel in self._channels.values():
            self._pump(channel)

    def _pump(self, channel: DownlinkChannel) -> None:
        """Fill *channel*'s pipeline with scheduler-chosen requests."""
        while channel.has_slot:
            packet = self._scheduler.select(channel.channel_id)
            if packet is None:
                return
            fetch = self._fetches.get(packet.flow_id)
            if fetch is None:
                continue  # fetch aborted; drop the chunk
            byte_range = fetch.pending_ranges.pop(packet.seqno, None)
            if byte_range is None:
                raise HttpError(
                    f"chunk packet {packet.seqno} has no pending range"
                )
            request = HttpRequest(
                method="GET",
                target=fetch.url,
                headers=Headers({"Range": byte_range.header_value()}),
            )
            # Bind the owning fetch into the callback: several flows may
            # download the same URL concurrently, so the response cannot
            # be matched back by target alone.
            channel.issue(
                request,
                lambda ch, req, resp, fetch=fetch: self._response_arrived(
                    ch, req, resp, fetch
                ),
            )

    def _response_arrived(
        self,
        channel: DownlinkChannel,
        request: HttpRequest,
        response: HttpResponse,
        fetch: HttpFetch,
    ) -> None:
        if response.status != 206:
            raise HttpError(
                f"origin returned {response.status} for "
                f"{request.headers.get('range')!r}"
            )
        content_range = response.headers.get("content-range")
        if content_range is None:
            raise HttpError("206 response missing Content-Range")
        byte_range, _total = parse_content_range(content_range)
        if self._fetches.get(fetch.flow_id) is not fetch:
            return  # fetch aborted/superseded mid-flight
        fetch.splicer.add(byte_range, response.body)
        self.stats.record(fetch.flow_id, channel.channel_id, byte_range.length)
        if fetch.complete:
            fetch.completed_at = self._sim.now
            fetch.body = fetch.splicer.assemble()
            self.fetches_completed += 1
            if fetch.on_complete is not None:
                fetch.on_complete(fetch)
        # Slot listeners re-pump this channel after we return.

    def abort(self, flow_id: str) -> bool:
        """Cancel *flow_id*'s active fetch (the app closed the tab).

        Unissued chunks are dropped from the flow's backlog; responses
        already in flight are discarded on arrival. Returns ``False``
        when there was nothing to abort.
        """
        fetch = self._fetches.get(flow_id)
        if fetch is None or fetch.complete:
            return False
        self._fetches.pop(flow_id, None)
        flow = self._flows.get(flow_id)
        if flow is not None:
            for packet in flow.queue.clear():
                fetch.pending_ranges.pop(packet.seqno, None)
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def fetch_for(self, flow_id: str) -> Optional[HttpFetch]:
        """The most recent fetch for *flow_id*, if any."""
        return self._fetches.get(flow_id)

    def goodput_timeseries(
        self, flow_id: str, bin_width: float = 1.0, end: Optional[float] = None
    ) -> List:
        """Binned goodput series for Figure 10-style plots."""
        horizon = end if end is not None else self._sim.now
        return self.stats.rate_timeseries(flow_id, bin_width, start=0.0, end=horizon)
