"""The miDRR HTTP proxy (the paper's Figure 5 implementation).

The proxy sits on the device. For every application GET it learns the
object size, splits the transfer into byte-range chunks
(:func:`~repro.httpproxy.ranges.split_ranges`), and queues the chunks as
the flow's backlog. Whenever an interface's pipeline has a free slot,
the proxy asks the bound multi-interface scheduler which flow's next
chunk to request on that interface — miDRR at request granularity. By
choosing the interface a request goes out on, the proxy chooses the
interface the response body comes back over, which is how it schedules
*inbound* traffic without any in-network support.

Responses are spliced back together and verified before the application
callback fires.

Drain/restart (``docs/fault_model.md``): :meth:`SchedulingHttpProxy.drain`
stops the scheduling pump — no new chunk requests are issued — while
responses already in flight land normally, so no body is ever
truncated. Once :attr:`SchedulingHttpProxy.drained` reports every
channel idle, :meth:`SchedulingHttpProxy.checkpoint_state` captures the
scheduler's deficits, every flow's queued chunks and every active
fetch's spliced bytes; :meth:`SchedulingHttpProxy.restore_state`
rebuilds all of it into a freshly constructed proxy, which resumes
exactly where the drained one stopped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import CheckpointError, ConfigurationError, HttpError
from ..net.flow import Flow
from ..net.packet import Packet, packet_seq_state, restore_packet_seq
from ..net.sink import StatsCollector
from ..schedulers.base import MultiInterfaceScheduler
from ..schedulers.midrr import MiDrrScheduler
from ..sim.simulator import Simulator
from .http11 import ByteRange, Headers, HttpRequest, HttpResponse, parse_content_range
from .ranges import DEFAULT_CHUNK_BYTES, Splicer, split_ranges
from .server import HttpOriginServer
from .transport import DownlinkChannel

#: Callback fired with the assembled object when a fetch completes.
FetchCallback = Callable[["HttpFetch"], None]


@dataclass
class HttpFetch:
    """One application download managed by the proxy."""

    flow_id: str
    url: str
    total_bytes: int
    splicer: Splicer
    on_complete: Optional[FetchCallback] = None
    started_at: float = 0.0
    completed_at: Optional[float] = None
    body: Optional[bytes] = None
    #: Chunk ranges keyed by the queued packet's seqno.
    pending_ranges: Dict[int, ByteRange] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """Has every chunk landed?"""
        return self.splicer.complete

    def goodput_bps(self) -> float:
        """Average goodput over the fetch's lifetime."""
        if self.completed_at is None or self.completed_at <= self.started_at:
            return 0.0
        return self.total_bytes * 8 / (self.completed_at - self.started_at)


class SchedulingHttpProxy:
    """An on-device HTTP/1.1 proxy scheduling inbound traffic."""

    def __init__(
        self,
        sim: Simulator,
        scheduler: Optional[MultiInterfaceScheduler] = None,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        if chunk_bytes <= 0:
            raise ConfigurationError(f"chunk_bytes must be positive, got {chunk_bytes}")
        self._sim = sim
        # The schedulable unit here is a whole byte-range chunk, so the
        # DRR quantum must cover one chunk per turn (Shreedhar &
        # Varghese's Q ≥ MaxSize rule, at chunk granularity).
        self._scheduler = (
            scheduler
            if scheduler is not None
            else MiDrrScheduler(quantum_base=chunk_bytes)
        )
        self._chunk_bytes = chunk_bytes
        self._channels: Dict[str, DownlinkChannel] = {}
        self._flows: Dict[str, Flow] = {}
        self._fetches: Dict[str, HttpFetch] = {}
        self.stats = StatsCollector(sim)
        self.fetches_completed = 0
        self._draining = False

    @property
    def scheduler(self) -> MultiInterfaceScheduler:
        """The bound request scheduler."""
        return self._scheduler

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_channel(self, channel: DownlinkChannel) -> None:
        """Register one interface's transport channel."""
        if channel.channel_id in self._channels:
            raise ConfigurationError(
                f"channel {channel.channel_id!r} already registered"
            )
        self._channels[channel.channel_id] = channel
        self._scheduler.register_interface(channel.channel_id)
        channel.on_slot_free(self._pump)

    def add_flow(
        self,
        flow_id: str,
        weight: float = 1.0,
        interfaces: Optional[List[str]] = None,
    ) -> None:
        """Declare an application flow and its preferences."""
        if flow_id in self._flows:
            raise ConfigurationError(f"flow {flow_id!r} already registered")
        flow = Flow(flow_id, weight=weight, allowed_interfaces=interfaces)
        self._flows[flow_id] = flow
        self._scheduler.add_flow(flow)
        flow.on_arrival(self._chunk_queued)

    # ------------------------------------------------------------------
    # Application API
    # ------------------------------------------------------------------
    def fetch(
        self,
        flow_id: str,
        url: str,
        server: HttpOriginServer,
        on_complete: Optional[FetchCallback] = None,
    ) -> HttpFetch:
        """Download *url* for *flow_id*; returns the fetch handle.

        Every registered channel must front the same origin *server*
        (it is consulted once for the object size — the proxy's
        equivalent of an initial HEAD).
        """
        if self._draining:
            raise HttpError("proxy is draining; not accepting new fetches")
        flow = self._flows.get(flow_id)
        if flow is None:
            raise ConfigurationError(f"unknown flow {flow_id!r}; call add_flow first")
        if flow_id in self._fetches and not self._fetches[flow_id].complete:
            raise ConfigurationError(f"flow {flow_id!r} already has an active fetch")
        # Learn the object size with a real HEAD transaction (the tiny
        # exchange itself is not modelled on the data path).
        head_response = server.handle(HttpRequest(method="HEAD", target=url))
        if head_response.status != 200:
            raise HttpError(
                f"HEAD {url!r} returned {head_response.status}"
            )
        length_header = head_response.headers.get("content-length")
        if length_header is None:
            raise HttpError(f"HEAD {url!r} carried no Content-Length")
        size = int(length_header)
        if size <= 0:
            raise HttpError(f"object at {url!r} is empty")
        fetch = HttpFetch(
            flow_id=flow_id,
            url=url,
            total_bytes=size,
            splicer=Splicer(size),
            on_complete=on_complete,
            started_at=self._sim.now,
        )
        self._fetches[flow_id] = fetch
        for byte_range in split_ranges(size, self._chunk_bytes):
            packet = Packet(
                flow_id=flow_id,
                size_bytes=byte_range.length,
                created_at=self._sim.now,
            )
            fetch.pending_ranges[packet.seqno] = byte_range
            flow.offer(packet)
        return fetch

    # ------------------------------------------------------------------
    # Scheduling pump
    # ------------------------------------------------------------------
    def _chunk_queued(self, flow: Flow, packet: Packet) -> None:
        if len(flow.queue) == 1:
            self._scheduler.notify_backlogged(flow)
        self._sim.call_now(self._pump_all)

    def _pump_all(self) -> None:
        for channel in self._channels.values():
            self._pump(channel)

    def _pump(self, channel: DownlinkChannel) -> None:
        """Fill *channel*'s pipeline with scheduler-chosen requests."""
        if self._draining:
            return  # in-flight responses still land; nothing new goes out
        while channel.has_slot:
            packet = self._scheduler.select(channel.channel_id)
            if packet is None:
                return
            fetch = self._fetches.get(packet.flow_id)
            if fetch is None:
                continue  # fetch aborted; drop the chunk
            byte_range = fetch.pending_ranges.pop(packet.seqno, None)
            if byte_range is None:
                raise HttpError(
                    f"chunk packet {packet.seqno} has no pending range"
                )
            request = HttpRequest(
                method="GET",
                target=fetch.url,
                headers=Headers({"Range": byte_range.header_value()}),
            )
            # Bind the owning fetch into the callback: several flows may
            # download the same URL concurrently, so the response cannot
            # be matched back by target alone.
            channel.issue(
                request,
                lambda ch, req, resp, fetch=fetch: self._response_arrived(
                    ch, req, resp, fetch
                ),
            )

    def _response_arrived(
        self,
        channel: DownlinkChannel,
        request: HttpRequest,
        response: HttpResponse,
        fetch: HttpFetch,
    ) -> None:
        if response.status != 206:
            raise HttpError(
                f"origin returned {response.status} for "
                f"{request.headers.get('range')!r}"
            )
        content_range = response.headers.get("content-range")
        if content_range is None:
            raise HttpError("206 response missing Content-Range")
        byte_range, _total = parse_content_range(content_range)
        if self._fetches.get(fetch.flow_id) is not fetch:
            return  # fetch aborted/superseded mid-flight
        fetch.splicer.add(byte_range, response.body)
        self.stats.record(fetch.flow_id, channel.channel_id, byte_range.length)
        if fetch.complete:
            fetch.completed_at = self._sim.now
            fetch.body = fetch.splicer.assemble()
            self.fetches_completed += 1
            if fetch.on_complete is not None:
                fetch.on_complete(fetch)
        # Slot listeners re-pump this channel after we return.

    def abort(self, flow_id: str) -> bool:
        """Cancel *flow_id*'s active fetch (the app closed the tab).

        Unissued chunks are dropped from the flow's backlog; responses
        already in flight are discarded on arrival. Returns ``False``
        when there was nothing to abort.
        """
        fetch = self._fetches.get(flow_id)
        if fetch is None or fetch.complete:
            return False
        self._fetches.pop(flow_id, None)
        flow = self._flows.get(flow_id)
        if flow is not None:
            for packet in flow.queue.clear():
                fetch.pending_ranges.pop(packet.seqno, None)
        return True

    # ------------------------------------------------------------------
    # Drain / restart
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        """``True`` once :meth:`drain` has been called."""
        return self._draining

    @property
    def drained(self) -> bool:
        """Draining and every channel's pipeline is empty.

        In-flight responses finish normally after :meth:`drain`; once
        this reports ``True`` no response body can be truncated by a
        restart.
        """
        return self._draining and all(
            channel.outstanding == 0 for channel in self._channels.values()
        )

    def drain(self) -> None:
        """Stop accepting fetches and stop issuing new chunk requests.

        Responses already in flight land and are spliced as usual —
        the pump simply never refills a freed slot. Poll
        :attr:`drained` (or run the simulator until it turns true),
        then call :meth:`checkpoint_state`.
        """
        self._draining = True

    def checkpoint_state(self) -> dict:
        """Serialize resumable proxy state; requires :attr:`drained`.

        Captures the scheduler snapshot, every flow's preferences and
        queued chunk backlog, and each active fetch's chunk plan and
        spliced bytes. Completed fetches are not carried — their
        bodies were already delivered to the application.
        """
        if not self.drained:
            raise CheckpointError(
                "proxy must be drained before checkpointing "
                "(call drain() and let in-flight responses land)"
            )
        return {
            "chunk_bytes": self._chunk_bytes,
            "packet_seq": packet_seq_state(),
            "fetches_completed": self.fetches_completed,
            "scheduler": self._scheduler.snapshot_state(),
            "flows": {
                flow_id: flow.snapshot_state()
                for flow_id, flow in self._flows.items()
            },
            "fetches": {
                flow_id: {
                    "url": fetch.url,
                    "total_bytes": fetch.total_bytes,
                    "started_at": fetch.started_at,
                    "pending_ranges": {
                        str(seqno): [byte_range.start, byte_range.end]
                        for seqno, byte_range in fetch.pending_ranges.items()
                    },
                    "splicer": fetch.splicer.snapshot_state(),
                }
                for flow_id, fetch in self._fetches.items()
                if not fetch.complete
            },
        }

    def restore_state(
        self,
        state: dict,
        on_complete: Optional[FetchCallback] = None,
    ) -> None:
        """Resume from :meth:`checkpoint_state` into this fresh proxy.

        The proxy must have its channels registered (the transport is
        rebuilt on restart, not checkpointed) and **no flows yet** —
        flows, their backlogs, the scheduler's deficits and every
        active fetch are recreated from the snapshot. *on_complete*
        rebinds the completion callback, which cannot be serialized.
        Scheduling resumes on the next simulator event.
        """
        if self._flows:
            raise CheckpointError(
                "restore_state needs a fresh proxy with no flows registered"
            )
        if state["chunk_bytes"] != self._chunk_bytes:
            raise CheckpointError(
                f"snapshot used chunk_bytes={state['chunk_bytes']}, "
                f"this proxy uses {self._chunk_bytes}"
            )
        try:
            for flow_id, flow_state in state["flows"].items():
                self.add_flow(
                    flow_id,
                    weight=flow_state["weight"],
                    interfaces=flow_state["allowed"],
                )
                # Queue contents restore directly — arrival listeners
                # must not fire for chunks that already arrived once.
                self._flows[flow_id].restore_state(flow_state)
            self._scheduler.restore_state(state["scheduler"], self._flows)
            for flow_id, fetch_state in state["fetches"].items():
                splicer = Splicer(fetch_state["total_bytes"])
                splicer.restore_state(fetch_state["splicer"])
                fetch = HttpFetch(
                    flow_id=flow_id,
                    url=fetch_state["url"],
                    total_bytes=fetch_state["total_bytes"],
                    splicer=splicer,
                    on_complete=on_complete,
                    started_at=fetch_state["started_at"],
                )
                fetch.pending_ranges = {
                    int(seqno): ByteRange(start, end)
                    for seqno, (start, end) in fetch_state["pending_ranges"].items()
                }
                self._fetches[flow_id] = fetch
            restore_packet_seq(state["packet_seq"])
            self.fetches_completed = state["fetches_completed"]
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed proxy snapshot: {exc}") from exc
        self._draining = False
        self._sim.call_now(self._pump_all)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def fetch_for(self, flow_id: str) -> Optional[HttpFetch]:
        """The most recent fetch for *flow_id*, if any."""
        return self._fetches.get(flow_id)

    def goodput_timeseries(
        self, flow_id: str, bin_width: float = 1.0, end: Optional[float] = None
    ) -> List:
        """Binned goodput series for Figure 10-style plots."""
        horizon = end if end is not None else self._sim.now
        return self.stats.rate_timeseries(flow_id, bin_width, start=0.0, end=horizon)
