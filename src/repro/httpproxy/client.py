"""Application-side helpers for driving the HTTP proxy in experiments.

:class:`RepeatingDownloader` keeps a flow persistently busy by starting
a new download of the same object every time the previous one finishes
— the HTTP analogue of a continuously backlogged flow, used by the
Figure 10 reproduction where goodput is measured over minutes while
interface rates fluctuate.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.simulator import Simulator
from .proxy import HttpFetch, SchedulingHttpProxy
from .server import HttpOriginServer


class RepeatingDownloader:
    """Re-fetches an object in a loop to keep a flow backlogged."""

    def __init__(
        self,
        sim: Simulator,
        proxy: SchedulingHttpProxy,
        server: HttpOriginServer,
        flow_id: str,
        url: str,
        stop_time: Optional[float] = None,
        verify_content: bool = True,
    ) -> None:
        self._sim = sim
        self._proxy = proxy
        self._server = server
        self.flow_id = flow_id
        self.url = url
        self._stop_time = stop_time
        self._verify = verify_content
        self._expected: Optional[bytes] = None
        self.downloads_completed = 0
        self.bytes_downloaded = 0
        self.integrity_failures = 0

    def start(self) -> None:
        """Begin the first download."""
        if self._verify:
            size = self._server.object_size(self.url)
            if size is not None and size <= 4 * 1024 * 1024:
                # Cache expected content for integrity checking; skip for
                # very large objects to keep experiment memory flat.
                from .server import synthetic_body

                self._expected = synthetic_body(self.url, size)
        self._begin_fetch()

    def _begin_fetch(self) -> None:
        if self._stop_time is not None and self._sim.now >= self._stop_time:
            return
        self._proxy.fetch(
            self.flow_id, self.url, self._server, on_complete=self._finished
        )

    def _finished(self, fetch: HttpFetch) -> None:
        self.downloads_completed += 1
        self.bytes_downloaded += fetch.total_bytes
        if self._expected is not None and fetch.body != self._expected:
            self.integrity_failures += 1
        self._sim.call_now(self._begin_fetch)
