"""HTTP/1.1 message parsing and serialization.

A small but honest HTTP/1.1 implementation covering what the paper's
512-line proxy needs: request/response framing with Content-Length,
case-insensitive headers, and the Range / Content-Range machinery of
RFC 7233 used to split one GET into per-interface byte-range requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..errors import HttpError

#: Line terminator on the wire.
CRLF = b"\r\n"

#: Reason phrases for the status codes the proxy uses.
REASON_PHRASES = {
    200: "OK",
    206: "Partial Content",
    400: "Bad Request",
    404: "Not Found",
    416: "Range Not Satisfiable",
    502: "Bad Gateway",
}


class Headers:
    """Case-insensitive, order-preserving header collection."""

    def __init__(self, items: Optional[Mapping[str, str]] = None) -> None:
        self._items: List[Tuple[str, str]] = []
        if items:
            for name, value in items.items():
                self.set(name, value)

    def set(self, name: str, value: str) -> None:
        """Set *name*, replacing any existing value."""
        lowered = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != lowered]
        self._items.append((name, str(value)))

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """First value of *name* (case-insensitive)."""
        lowered = name.lower()
        for item_name, value in self._items:
            if item_name.lower() == lowered:
                return value
        return default

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def serialize(self) -> bytes:
        """Wire form: ``Name: value`` lines without the final blank."""
        return b"".join(
            f"{name}: {value}".encode("latin-1") + CRLF for name, value in self._items
        )

    @classmethod
    def parse(cls, lines: List[bytes]) -> "Headers":
        """Parse raw header lines."""
        headers = cls()
        for line in lines:
            if b":" not in line:
                raise HttpError(f"malformed header line {line!r}")
            name, _, value = line.partition(b":")
            headers._items.append(
                (name.decode("latin-1").strip(), value.decode("latin-1").strip())
            )
        return headers


@dataclass
class HttpRequest:
    """An HTTP/1.1 request."""

    method: str
    target: str
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def serialize(self) -> bytes:
        """Full wire form including framing headers."""
        if self.body and "content-length" not in self.headers:
            self.headers.set("Content-Length", str(len(self.body)))
        start = f"{self.method} {self.target} {self.version}".encode("latin-1")
        return start + CRLF + self.headers.serialize() + CRLF + self.body

    @classmethod
    def parse(cls, data: bytes) -> "HttpRequest":
        """Parse a complete request from *data*."""
        head, _, body = data.partition(CRLF + CRLF)
        lines = head.split(CRLF)
        if not lines:
            raise HttpError("empty request")
        parts = lines[0].split(b" ")
        if len(parts) != 3:
            raise HttpError(f"malformed request line {lines[0]!r}")
        method, target, version = (p.decode("latin-1") for p in parts)
        headers = Headers.parse(lines[1:])
        length = headers.get("content-length")
        if length is not None:
            expected = int(length)
            if len(body) < expected:
                raise HttpError(
                    f"truncated body: have {len(body)}, expected {expected}"
                )
            body = body[:expected]
        return cls(
            method=method, target=target, headers=headers, body=body, version=version
        )


@dataclass
class HttpResponse:
    """An HTTP/1.1 response."""

    status: int
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def reason(self) -> str:
        """Standard reason phrase for :attr:`status`."""
        return REASON_PHRASES.get(self.status, "Unknown")

    def serialize(self) -> bytes:
        """Full wire form including Content-Length framing."""
        self.headers.set("Content-Length", str(len(self.body)))
        start = f"{self.version} {self.status} {self.reason}".encode("latin-1")
        return start + CRLF + self.headers.serialize() + CRLF + self.body

    @classmethod
    def parse(cls, data: bytes) -> "HttpResponse":
        """Parse a complete response from *data*."""
        head, _, body = data.partition(CRLF + CRLF)
        lines = head.split(CRLF)
        parts = lines[0].split(b" ", 2)
        if len(parts) < 2:
            raise HttpError(f"malformed status line {lines[0]!r}")
        version = parts[0].decode("latin-1")
        status = int(parts[1])
        headers = Headers.parse(lines[1:])
        length = headers.get("content-length")
        if length is not None:
            expected = int(length)
            if len(body) < expected:
                raise HttpError(
                    f"truncated body: have {len(body)}, expected {expected}"
                )
            body = body[:expected]
        return cls(status=status, headers=headers, body=body, version=version)


@dataclass(frozen=True, order=True)
class ByteRange:
    """A closed byte range ``[start, end]`` (RFC 7233 semantics)."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise HttpError(f"invalid byte range {self.start}-{self.end}")

    @property
    def length(self) -> int:
        """Number of bytes covered (inclusive bounds)."""
        return self.end - self.start + 1

    def header_value(self) -> str:
        """``bytes=start-end`` for a Range request header."""
        return f"bytes={self.start}-{self.end}"

    def content_range(self, total: int) -> str:
        """``bytes start-end/total`` for a Content-Range header."""
        return f"bytes {self.start}-{self.end}/{total}"


def parse_range_header(value: str, total: int) -> ByteRange:
    """Parse a single-range ``Range`` header against a *total* size.

    Supports the three RFC forms: ``bytes=a-b``, ``bytes=a-`` and the
    suffix form ``bytes=-n``. Multi-range requests are rejected (the
    proxy never issues them).
    """
    if not value.startswith("bytes="):
        raise HttpError(f"unsupported range unit in {value!r}")
    spec = value[len("bytes="):]
    if "," in spec:
        raise HttpError("multi-range requests are unsupported")
    start_text, _, end_text = spec.partition("-")
    if start_text == "" and end_text == "":
        raise HttpError(f"malformed range {value!r}")
    if start_text == "":
        # Suffix form: the final n bytes.
        suffix = int(end_text)
        if suffix <= 0:
            raise HttpError(f"malformed suffix range {value!r}")
        start = max(0, total - suffix)
        end = total - 1
    else:
        start = int(start_text)
        end = int(end_text) if end_text else total - 1
    if start >= total:
        raise HttpError(f"range {value!r} not satisfiable for size {total}")
    end = min(end, total - 1)
    return ByteRange(start, end)


def parse_content_range(value: str) -> Tuple[ByteRange, int]:
    """Parse ``Content-Range: bytes a-b/total`` into (range, total)."""
    if not value.startswith("bytes "):
        raise HttpError(f"unsupported content-range {value!r}")
    spec = value[len("bytes "):]
    range_part, _, total_part = spec.partition("/")
    start_text, _, end_text = range_part.partition("-")
    try:
        start, end, total = int(start_text), int(end_text), int(total_part)
    except ValueError as exc:
        raise HttpError(f"malformed content-range {value!r}") from exc
    return ByteRange(start, end), total
