"""HTTP/1.1 proxy substrate: messages, byte-range splitting/splicing,
simulated transports and the inbound miDRR scheduling proxy
(the paper's Figure 5)."""

from .client import RepeatingDownloader
from .http11 import (
    ByteRange,
    Headers,
    HttpRequest,
    HttpResponse,
    parse_content_range,
    parse_range_header,
)
from .proxy import HttpFetch, SchedulingHttpProxy
from .ranges import DEFAULT_CHUNK_BYTES, Splicer, split_ranges
from .server import HttpOriginServer, synthetic_body
from .transport import DownlinkChannel

__all__ = [
    "ByteRange",
    "DEFAULT_CHUNK_BYTES",
    "DownlinkChannel",
    "Headers",
    "HttpFetch",
    "HttpOriginServer",
    "HttpRequest",
    "HttpResponse",
    "RepeatingDownloader",
    "SchedulingHttpProxy",
    "Splicer",
    "parse_content_range",
    "parse_range_header",
    "split_ranges",
    "synthetic_body",
]
