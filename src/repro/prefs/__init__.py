"""User preference model: Π matrix, rate weights, and policy builders."""

from .policy import (
    AnyInterface,
    AppPolicy,
    DevicePolicy,
    Except,
    InterfaceRule,
    Only,
    Prefer,
)
from .preferences import FlowPreference, PreferenceSet

__all__ = [
    "AnyInterface",
    "AppPolicy",
    "DevicePolicy",
    "Except",
    "FlowPreference",
    "InterfaceRule",
    "Only",
    "Prefer",
    "PreferenceSet",
]
