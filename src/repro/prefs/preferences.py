"""User preferences: the connectivity matrix Π and rate weights φ.

The paper models preferences with two inputs to the scheduler
(Figure 2):

* ``Π = [π_ij]`` — a binary matrix where ``π_ij = 1`` iff flow *i* is
  willing to use interface *j* (*interface preferences*), and
* ``φ = [φ_i]`` — positive weights giving relative rates between flows
  (*rate preferences*).

:class:`PreferenceSet` is the canonical in-memory form; it validates
the inputs (every flow must be willing to use at least one interface),
converts to/from dense numpy matrices for the fluid solvers, and
supports live updates — the paper's "use new capacity" property is
exercised by editing preferences mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import PreferenceError


@dataclass(frozen=True)
class FlowPreference:
    """One flow's preferences: its weight and its willing-interface set.

    ``interfaces=None`` means "willing to use every interface".
    """

    weight: float = 1.0
    interfaces: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise PreferenceError(f"weight must be positive, got {self.weight}")
        if self.interfaces is not None and not self.interfaces:
            raise PreferenceError("interface preference set must not be empty")


class PreferenceSet:
    """The (Π, φ) pair for a set of flows over a set of interfaces."""

    def __init__(self, interface_ids: Iterable[str]) -> None:
        self._interface_ids: List[str] = list(dict.fromkeys(interface_ids))
        if not self._interface_ids:
            raise PreferenceError("at least one interface is required")
        self._flows: Dict[str, FlowPreference] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(
        cls,
        flow_ids: Sequence[str],
        interface_ids: Sequence[str],
        pi: Sequence[Sequence[int]],
        weights: Optional[Sequence[float]] = None,
    ) -> "PreferenceSet":
        """Build from an explicit Π matrix (rows = flows, cols = ifaces)."""
        prefs = cls(interface_ids)
        if len(pi) != len(flow_ids):
            raise PreferenceError(
                f"Π has {len(pi)} rows but there are {len(flow_ids)} flows"
            )
        for row_index, flow_id in enumerate(flow_ids):
            row = pi[row_index]
            if len(row) != len(interface_ids):
                raise PreferenceError(
                    f"Π row {row_index} has {len(row)} entries but there are "
                    f"{len(interface_ids)} interfaces"
                )
            willing = {
                interface_ids[j] for j, bit in enumerate(row) if bit
            }
            weight = weights[row_index] if weights is not None else 1.0
            prefs.add_flow(flow_id, weight=weight, interfaces=willing)
        return prefs

    def add_flow(
        self,
        flow_id: str,
        weight: float = 1.0,
        interfaces: Optional[Iterable[str]] = None,
    ) -> None:
        """Register *flow_id* with its weight and willing interfaces.

        ``interfaces=None`` means "any interface".
        """
        if flow_id in self._flows:
            raise PreferenceError(f"flow {flow_id!r} already registered")
        willing: Optional[FrozenSet[str]] = None
        if interfaces is not None:
            willing = frozenset(interfaces)
            unknown = willing - set(self._interface_ids)
            if unknown:
                raise PreferenceError(
                    f"flow {flow_id!r} references unknown interfaces {sorted(unknown)}"
                )
            if not willing:
                raise PreferenceError(
                    f"flow {flow_id!r} has an empty interface set — it could "
                    "never be served"
                )
        self._flows[flow_id] = FlowPreference(weight=float(weight), interfaces=willing)

    def remove_flow(self, flow_id: str) -> None:
        """Drop *flow_id* (e.g. the flow completed)."""
        self._flows.pop(flow_id, None)

    def add_interface(self, interface_id: str) -> None:
        """Register a new interface coming online."""
        if interface_id in self._interface_ids:
            raise PreferenceError(f"interface {interface_id!r} already registered")
        self._interface_ids.append(interface_id)

    def set_weight(self, flow_id: str, weight: float) -> None:
        """Live-update a flow's rate preference."""
        pref = self._require(flow_id)
        self._flows[flow_id] = FlowPreference(weight=float(weight), interfaces=pref.interfaces)

    def set_interfaces(self, flow_id: str, interfaces: Optional[Iterable[str]]) -> None:
        """Live-update a flow's interface preference."""
        pref = self._require(flow_id)
        willing = frozenset(interfaces) if interfaces is not None else None
        self._flows[flow_id] = FlowPreference(weight=pref.weight, interfaces=willing)
        if willing is not None:
            unknown = willing - set(self._interface_ids)
            if unknown:
                raise PreferenceError(
                    f"flow {flow_id!r} references unknown interfaces {sorted(unknown)}"
                )

    def _require(self, flow_id: str) -> FlowPreference:
        pref = self._flows.get(flow_id)
        if pref is None:
            raise PreferenceError(f"unknown flow {flow_id!r}")
        return pref

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def flow_ids(self) -> List[str]:
        """Registered flows, in insertion order."""
        return list(self._flows)

    @property
    def interface_ids(self) -> List[str]:
        """Registered interfaces, in insertion order."""
        return list(self._interface_ids)

    def weight(self, flow_id: str) -> float:
        """``φ_i``."""
        return self._require(flow_id).weight

    def willing(self, flow_id: str, interface_id: str) -> bool:
        """``π_ij == 1``?"""
        pref = self._require(flow_id)
        if interface_id not in self._interface_ids:
            return False
        return pref.interfaces is None or interface_id in pref.interfaces

    def willing_interfaces(self, flow_id: str) -> List[str]:
        """Interfaces flow *flow_id* is willing to use, in order."""
        pref = self._require(flow_id)
        if pref.interfaces is None:
            return list(self._interface_ids)
        return [j for j in self._interface_ids if j in pref.interfaces]

    def willing_flows(self, interface_id: str) -> List[str]:
        """``F_j`` — flows willing to use *interface_id*, in order."""
        return [i for i in self._flows if self.willing(i, interface_id)]

    def weights_vector(self) -> np.ndarray:
        """``φ`` as a dense array aligned with :attr:`flow_ids`."""
        return np.array([self._flows[i].weight for i in self._flows], dtype=float)

    def pi_matrix(self) -> np.ndarray:
        """``Π`` as a dense 0/1 array (rows = flows, cols = interfaces)."""
        matrix = np.zeros((len(self._flows), len(self._interface_ids)), dtype=int)
        for row, flow_id in enumerate(self._flows):
            for col, interface_id in enumerate(self._interface_ids):
                if self.willing(flow_id, interface_id):
                    matrix[row, col] = 1
        return matrix

    def validate(self) -> None:
        """Check global consistency; raises :class:`PreferenceError`.

        Every flow must be willing to use at least one *registered*
        interface, otherwise it can never be served.
        """
        for flow_id in self._flows:
            if not self.willing_interfaces(flow_id):
                raise PreferenceError(
                    f"flow {flow_id!r} is not willing to use any registered interface"
                )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """A JSON-safe document capturing (Π, φ).

        Flows willing to use every interface serialize with
        ``interfaces: null`` so adding an interface later keeps them
        unrestricted.
        """
        return {
            "interfaces": list(self._interface_ids),
            "flows": [
                {
                    "flow_id": flow_id,
                    "weight": pref.weight,
                    "interfaces": (
                        sorted(pref.interfaces)
                        if pref.interfaces is not None
                        else None
                    ),
                }
                for flow_id, pref in self._flows.items()
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PreferenceSet":
        """Reconstruct a set produced by :meth:`to_dict`."""
        try:
            prefs = cls(data["interfaces"])
            for item in data["flows"]:
                prefs.add_flow(
                    item["flow_id"],
                    weight=item.get("weight", 1.0),
                    interfaces=item.get("interfaces"),
                )
        except (KeyError, TypeError) as exc:
            raise PreferenceError(
                f"malformed preference document: {exc}"
            ) from exc
        prefs.validate()
        return prefs

    def __contains__(self, flow_id: str) -> bool:
        return flow_id in self._flows

    def __len__(self) -> int:
        return len(self._flows)

    def __repr__(self) -> str:
        return (
            f"PreferenceSet({len(self._flows)} flows × "
            f"{len(self._interface_ids)} interfaces)"
        )
