"""Named preference policies.

The paper's introduction motivates preferences in user terms —
"stream video over WiFi", "VoIP over 3G for continuity", "Netflix gets
twice Dropbox". This module provides a small, readable vocabulary for
writing those policies and compiling them into a
:class:`~repro.prefs.preferences.PreferenceSet`.

Example
-------
>>> policy = DevicePolicy(interfaces=["wifi", "lte"])
>>> policy.app("netflix", Only("wifi"), weight=2.0)
>>> policy.app("dropbox", AnyInterface(), weight=1.0)
>>> policy.app("voip", Prefer("lte"), weight=1.0)
>>> prefs = policy.compile()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..errors import PreferenceError
from .preferences import PreferenceSet


class InterfaceRule:
    """Base class for interface-preference rules."""

    def resolve(self, interfaces: Sequence[str]) -> Optional[FrozenSet[str]]:
        """Return the willing set given the device's interfaces.

        ``None`` means "any interface".
        """
        raise NotImplementedError


@dataclass(frozen=True)
class AnyInterface(InterfaceRule):
    """Willing to use every interface (π row of all ones)."""

    def resolve(self, interfaces: Sequence[str]) -> Optional[FrozenSet[str]]:
        return None


@dataclass(frozen=True)
class Only(InterfaceRule):
    """Willing to use exactly the named interfaces.

    ``Only("wifi")`` is the paper's "YouTube can only use WiFi".
    """

    names: Tuple[str, ...]

    def __init__(self, *names: str) -> None:
        if not names:
            raise PreferenceError("Only() needs at least one interface name")
        object.__setattr__(self, "names", tuple(names))

    def resolve(self, interfaces: Sequence[str]) -> Optional[FrozenSet[str]]:
        unknown = set(self.names) - set(interfaces)
        if unknown:
            raise PreferenceError(
                f"policy references unknown interfaces {sorted(unknown)}"
            )
        return frozenset(self.names)


@dataclass(frozen=True)
class Except(InterfaceRule):
    """Willing to use every interface except the named ones.

    ``Except("lte")`` captures "never touch my metered connection".
    """

    names: Tuple[str, ...]

    def __init__(self, *names: str) -> None:
        if not names:
            raise PreferenceError("Except() needs at least one interface name")
        object.__setattr__(self, "names", tuple(names))

    def resolve(self, interfaces: Sequence[str]) -> Optional[FrozenSet[str]]:
        remaining = frozenset(interfaces) - set(self.names)
        if not remaining:
            raise PreferenceError(
                "Except() rule excludes every interface on the device"
            )
        return remaining


@dataclass(frozen=True)
class Prefer(InterfaceRule):
    """Use only the first *available* interface from an ordered list.

    This models fallback policies ("WiFi, else LTE"): the willing set
    is the single highest-ranked interface present on the device. A
    scheduler-level binary Π cannot express soft ordering, so this rule
    compiles the ordering down to its currently-best choice; re-compile
    when interfaces come and go.
    """

    names: Tuple[str, ...]

    def __init__(self, *names: str) -> None:
        if not names:
            raise PreferenceError("Prefer() needs at least one interface name")
        object.__setattr__(self, "names", tuple(names))

    def resolve(self, interfaces: Sequence[str]) -> Optional[FrozenSet[str]]:
        for name in self.names:
            if name in interfaces:
                return frozenset({name})
        raise PreferenceError(
            f"none of the preferred interfaces {list(self.names)} exist"
        )


@dataclass(frozen=True)
class AppPolicy:
    """One application's compiled policy entry."""

    app_id: str
    rule: InterfaceRule
    weight: float


class DevicePolicy:
    """An ordered collection of per-app rules for one device."""

    def __init__(self, interfaces: Iterable[str]) -> None:
        self._interfaces: List[str] = list(dict.fromkeys(interfaces))
        if not self._interfaces:
            raise PreferenceError("a device needs at least one interface")
        self._apps: Dict[str, AppPolicy] = {}

    @property
    def interfaces(self) -> List[str]:
        """The device's interfaces, in registration order."""
        return list(self._interfaces)

    def app(self, app_id: str, rule: InterfaceRule, weight: float = 1.0) -> None:
        """Declare the policy for *app_id*."""
        if app_id in self._apps:
            raise PreferenceError(f"app {app_id!r} already has a policy")
        if weight <= 0:
            raise PreferenceError(f"weight must be positive, got {weight}")
        self._apps[app_id] = AppPolicy(app_id=app_id, rule=rule, weight=weight)

    def compile(self) -> PreferenceSet:
        """Resolve every rule into a :class:`PreferenceSet`."""
        prefs = PreferenceSet(self._interfaces)
        for app_id, policy in self._apps.items():
            willing = policy.rule.resolve(self._interfaces)
            prefs.add_flow(app_id, weight=policy.weight, interfaces=willing)
        prefs.validate()
        return prefs

    def __len__(self) -> int:
        return len(self._apps)
