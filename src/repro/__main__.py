"""``python -m repro`` — the CLI without installing the console script.

The documented fleet quickstart (``python -m repro fleet --devices
1000 --workers 4``) runs through here; it is byte-for-byte the same
entry point as the installed ``midrr`` command.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
