"""Extension experiment E13 — flow completion times under real churn.

The paper's evaluation uses continuously backlogged flows; real phones
run the Figure 7 workload — many short transfers arriving and leaving.
This experiment feeds a trace-driven workload (arrivals and transfer
sizes from :mod:`repro.trace.smartphone`) through the full engine and
compares schedulers on the metric users feel: **flow completion time**.

Setup: a two-interface device (WiFi 10 Mb/s, LTE 5 Mb/s). A fraction
of flows is WiFi-only (the user's cap-avoidance policy), a fraction
LTE-only (on-the-move apps), the rest flexible — so interface
preferences are always in play. The same arrival sequence is replayed
under every scheduler.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.cdf import EmpiricalCdf
from ..core.runner import ExperimentResult, run_scenario
from ..core.scenario import FlowSpec, InterfaceSpec, Scenario, TrafficSpec
from ..schedulers.base import MultiInterfaceScheduler
from ..schedulers.midrr import MiDrrScheduler
from ..schedulers.per_interface import PerInterfaceScheduler, StaticSplitScheduler
from ..trace.smartphone import DeviceTraceConfig, SmartphoneTraceGenerator
from ..units import mbps

DURATION = 60.0
CAPACITIES = {"wifi": mbps(10), "lte": mbps(5)}

#: Interface-preference mix for generated flows.
PREFERENCE_MIX: Tuple[Tuple[Optional[Tuple[str, ...]], float], ...] = (
    (("wifi",), 0.30),   # cap-avoidance: WiFi only
    (("lte",), 0.15),    # on the move: LTE only
    (None, 0.55),        # flexible
)

SCHEDULERS: Dict[str, Callable[[], MultiInterfaceScheduler]] = {
    "miDRR": MiDrrScheduler,
    "per-if DRR": PerInterfaceScheduler.drr,
    "per-if WFQ": PerInterfaceScheduler.wfq,
    "static split": StaticSplitScheduler,
}


@dataclass
class FctResult:
    """Completion times for one scheduler run."""

    scheduler: str
    completion_times: Dict[str, float]
    offered: int
    completed: int

    def fct_cdf(self) -> EmpiricalCdf:
        """CDF over completed flows' completion times."""
        return EmpiricalCdf(list(self.completion_times.values()))

    def median(self) -> float:
        """Median FCT (seconds)."""
        return self.fct_cdf().median()

    def p90(self) -> float:
        """90th percentile FCT (seconds)."""
        return self.fct_cdf().quantile(0.9)

    def completion_fraction(self) -> float:
        """Share of offered flows that finished within the horizon."""
        return self.completed / self.offered if self.offered else 0.0


def build_workload(
    seed: int = 0, max_flows: int = 60, with_elephant: bool = False
) -> Scenario:
    """A trace-driven scenario: arrivals + sizes from the phone model.

    ``with_elephant`` adds one endless, flexible bulk flow (a cloud
    backup) so the short flows must compete — the regime where the
    schedulers separate.
    """
    rng = random.Random(seed ^ 0x5EED)
    config = DeviceTraceConfig(duration=1200.0, mean_gap=120.0)
    intervals = SmartphoneTraceGenerator(config, seed=seed).generate()[:max_flows]
    if not intervals:
        raise ValueError("trace produced no flows")
    horizon_scale = (DURATION * 0.7) / max(i.start for i in intervals[1:] or intervals)
    flows: List[FlowSpec] = []
    for index, interval in enumerate(intervals):
        roll = rng.random()
        cumulative = 0.0
        willing: Optional[Tuple[str, ...]] = None
        for candidate, probability in PREFERENCE_MIX:
            cumulative += probability
            if roll < cumulative:
                willing = candidate
                break
        flows.append(
            FlowSpec(
                f"t{index:03d}",
                interfaces=willing,
                start_time=round(interval.start * horizon_scale, 4),
                traffic=TrafficSpec(
                    "bulk", total_bytes=interval.transfer_bytes(rng)
                ),
            )
        )
    if with_elephant:
        flows.append(FlowSpec("elephant", traffic=TrafficSpec("bulk")))
    return Scenario(
        name="fct-workload",
        interfaces=tuple(
            InterfaceSpec(name, rate) for name, rate in CAPACITIES.items()
        ),
        flows=tuple(flows),
        duration=DURATION,
        seed=seed,
    )


def completion_times(result: ExperimentResult) -> Dict[str, float]:
    """Flow id → completion latency (finish − start)."""
    starts = {spec.flow_id: spec.start_time for spec in result.scenario.flows}
    return {
        flow_id: finished - starts[flow_id]
        for flow_id, finished in result.completions.items()
    }


def run(
    seed: int = 0, max_flows: int = 60, with_elephant: bool = False
) -> Dict[str, FctResult]:
    """Replay one workload under every scheduler."""
    scenario = build_workload(
        seed=seed, max_flows=max_flows, with_elephant=with_elephant
    )
    trace_flow_ids = {
        spec.flow_id for spec in scenario.flows if spec.flow_id != "elephant"
    }
    results: Dict[str, FctResult] = {}
    for label, factory in SCHEDULERS.items():
        outcome = run_scenario(scenario, factory)
        times = {
            flow_id: value
            for flow_id, value in completion_times(outcome).items()
            if flow_id in trace_flow_ids
        }
        results[label] = FctResult(
            scheduler=label,
            completion_times=times,
            offered=len(trace_flow_ids),
            completed=len(times),
        )
    return results
