"""Paper experiment definitions, one module per figure.

* :mod:`repro.experiments.fig1` — motivating allocations (Figure 1)
* :mod:`repro.experiments.fig6` — fair scheduling + clusters (Figures 6, 8)
* :mod:`repro.experiments.fig7` — smartphone concurrency CDF (Figure 7)
* :mod:`repro.experiments.fig9` — scheduling overhead CDF (Figure 9)
* :mod:`repro.experiments.fig10` — HTTP proxy goodput + clusters
  (Figures 10, 11)
* :mod:`repro.experiments.inbound_ideal` — extension: Figure 4's ideal
  in-network proxy vs the Figure 5 HTTP approximation
* :mod:`repro.experiments.fct` — extension: flow completion times under
  trace-driven smartphone churn

Benchmarks under ``benchmarks/`` and the CLI call into these; tests
assert the paper's qualitative claims against them.
"""

from . import fct, fig1, fig6, fig7, fig9, fig10, inbound_ideal

__all__ = ["fct", "fig1", "fig6", "fig7", "fig9", "fig10", "inbound_ideal"]
