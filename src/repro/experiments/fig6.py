"""Experiments E2/E3/E5 — the paper's Figures 6 and 8.

Setup (Figure 6(a)): interface 1 at 3 Mb/s, interface 2 at 10 Mb/s.
Flow *a* (weight 1) uses only interface 1; flow *b* (weight 2) may use
both; flow *c* (weight 1) uses only interface 2.

Paper results:

* Phase 1 (0–66 s): a = 3, b = 6.67, c = 3.33 Mb/s; clusters
  {a, if1}@3 and {b, c, if2}@3.33 per unit weight (Figure 8 left).
* Flow a completes at 66 s → b jumps to 8.67 Mb/s (aggregating both
  interfaces), c to 4.33 Mb/s; one merged cluster (Figure 8 middle).
* Flow b completes at 85 s → c rises to 10 Mb/s (Figure 8 right).
* Figure 6(c): the first ~5 s transient where flow a briefly receives
  ≈2 Mb/s before miDRR converges.

Flows a and b carry finite transfers sized so that — at the max-min
rates — they complete at exactly the paper's 66 s and 85 s marks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..core.runner import ExperimentResult, run_scenario
from ..core.scenario import FlowSpec, InterfaceSpec, Scenario, TrafficSpec
from ..schedulers.base import MultiInterfaceScheduler
from ..schedulers.midrr import MiDrrScheduler
from ..units import mbps

DURATION = 100.0

#: Paper phase boundaries (seconds).
PHASE1_END = 66.0
PHASE2_END = 85.0

#: Paper phase rates in Mb/s per flow.
PAPER_PHASE_RATES: Dict[str, Dict[str, float]] = {
    "phase1": {"a": 3.0, "b": 6.67, "c": 3.33},
    "phase2": {"b": 8.67, "c": 4.33},
    "phase3": {"c": 10.0},
}

#: Paper clusters per phase: (flows, interfaces, level in Mb/s per
#: unit weight).
PAPER_CLUSTERS: Dict[str, List[Tuple[frozenset, frozenset, float]]] = {
    "phase1": [
        (frozenset({"a"}), frozenset({"if1"}), 3.0),
        (frozenset({"b", "c"}), frozenset({"if2"}), 10.0 / 3.0),
    ],
    "phase2": [
        (frozenset({"b", "c"}), frozenset({"if1", "if2"}), 13.0 / 3.0),
    ],
    "phase3": [
        (frozenset({"c"}), frozenset({"if2"}), 10.0),
    ],
}


def _transfer_bytes() -> Tuple[int, int]:
    """Transfer sizes making a and b finish at 66 s and 85 s."""
    a_bytes = int(mbps(3) * PHASE1_END / 8)
    b_bytes = int(
        (mbps(20.0 / 3.0) * PHASE1_END + mbps(26.0 / 3.0) * (PHASE2_END - PHASE1_END))
        / 8
    )
    return a_bytes, b_bytes


def scenario() -> Scenario:
    """The Figure 6(a) scenario."""
    a_bytes, b_bytes = _transfer_bytes()
    return Scenario(
        name="fig6",
        interfaces=(
            InterfaceSpec("if1", mbps(3)),
            InterfaceSpec("if2", mbps(10)),
        ),
        flows=(
            FlowSpec(
                "a",
                weight=1.0,
                interfaces=("if1",),
                traffic=TrafficSpec("bulk", total_bytes=a_bytes),
            ),
            FlowSpec(
                "b",
                weight=2.0,
                traffic=TrafficSpec("bulk", total_bytes=b_bytes),
            ),
            FlowSpec("c", weight=1.0, interfaces=("if2",)),
        ),
        duration=DURATION,
    )


def run(
    scheduler_factory: Callable[[], MultiInterfaceScheduler] = MiDrrScheduler,
) -> ExperimentResult:
    """Run the Figure 6 experiment (miDRR by default)."""
    return run_scenario(scenario(), scheduler_factory)


def phase_windows(result: ExperimentResult) -> Dict[str, Tuple[float, float]]:
    """Measurement windows inside each phase, trimmed of transients."""
    end1 = result.completions.get("a", PHASE1_END)
    end2 = result.completions.get("b", PHASE2_END)
    return {
        "phase1": (2.0, end1 - 1.0),
        "phase2": (end1 + 1.0, end2 - 1.0),
        "phase3": (end2 + 1.0, DURATION - 1.0),
    }


def phase_rates(result: ExperimentResult) -> Dict[str, Dict[str, float]]:
    """Measured per-phase rates in Mb/s (the Figure 6(b) levels)."""
    windows = phase_windows(result)
    rates: Dict[str, Dict[str, float]] = {}
    for phase, (start, end) in windows.items():
        expected_flows = PAPER_PHASE_RATES[phase]
        rates[phase] = {
            flow_id: result.rate(flow_id, start, end) / 1e6
            for flow_id in expected_flows
        }
    return rates


def phase_clusters(result: ExperimentResult) -> Dict[str, List]:
    """Measured clusters per phase (the Figure 8 panels)."""
    windows = phase_windows(result)
    return {
        phase: result.clusters(start, end) for phase, (start, end) in windows.items()
    }
