"""Extension experiment E9 — Figure 4's ideal in-network proxy.

The paper sketches two ways to schedule *inbound* traffic:

* **Ideal (Figure 4)** — a proxy inside the network, close to the
  last-mile links, that aggregates every flow headed to the device and
  runs miDRR at *packet* granularity over the paths to the different
  interfaces. Deployable only with operator support.
* **Practical (Figure 5)** — the on-device HTTP byte-range proxy,
  scheduling at *request chunk* granularity (reproduced in
  :mod:`repro.experiments.fig10`).

The paper argues the HTTP proxy "comes close to ideal" but never
quantifies it. This experiment does: both designs run over the same
Figure 10 capacity trace, and we report per-phase rates plus each
design's worst deviation from the exact fluid allocation.

The ideal proxy is simply the packet engine placed in the downlink
direction: interfaces model the last-mile links toward the device and
the proxy's per-flow queues are always backlogged, so the existing
:func:`repro.core.runner.run_scenario` machinery *is* the Figure 4
device — another instance of the abstractions transferring unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.runner import ExperimentResult, run_scenario
from ..core.scenario import FlowSpec, InterfaceSpec, Scenario
from ..net.interface import CapacityStep
from ..schedulers.midrr import MiDrrScheduler
from ..units import mbps
from . import fig10


@dataclass
class ComparisonResult:
    """Per-phase rates for both designs plus fluid references."""

    ideal: Dict[Tuple[float, float], Dict[str, float]]
    http: Dict[Tuple[float, float], Dict[str, float]]
    fluid: Dict[Tuple[float, float], Dict[str, float]]

    def worst_deviation(self, design: str) -> float:
        """Max relative error vs fluid across phases and flows."""
        measured = self.ideal if design == "ideal" else self.http
        worst = 0.0
        for window, reference in self.fluid.items():
            for flow_id, expected in reference.items():
                if expected <= 0:
                    continue
                actual = measured[window].get(flow_id, 0.0)
                worst = max(worst, abs(actual - expected) / expected)
        return worst


def ideal_scenario() -> Scenario:
    """The Figure 10 setup as a packet-level downlink scenario."""
    steps1 = tuple(
        CapacityStep(start, mbps(rate1))
        for start, _, rate1, _ in fig10.CAPACITY_PHASES[1:]
    )
    steps2 = tuple(
        CapacityStep(start, mbps(rate2))
        for start, _, _, rate2 in fig10.CAPACITY_PHASES[1:]
    )
    first = fig10.CAPACITY_PHASES[0]
    return Scenario(
        name="inbound-ideal",
        interfaces=(
            InterfaceSpec("if1", mbps(first[2]), capacity_steps=steps1),
            InterfaceSpec("if2", mbps(first[3]), capacity_steps=steps2),
        ),
        flows=(
            FlowSpec("a", interfaces=("if1",)),
            FlowSpec("b"),
            FlowSpec("c", interfaces=("if2",)),
        ),
        duration=fig10.DURATION,
    )


def _phase_windows() -> List[Tuple[float, float]]:
    return [
        (start + 2.0, end - 0.5) for start, end, _, _ in fig10.CAPACITY_PHASES
    ]


def run(seed: int = 0) -> ComparisonResult:
    """Run both designs over the same trace and compare to fluid."""
    ideal_result = run_scenario(ideal_scenario(), MiDrrScheduler)
    http_result = fig10.run(seed=seed)

    ideal: Dict[Tuple[float, float], Dict[str, float]] = {}
    http: Dict[Tuple[float, float], Dict[str, float]] = {}
    fluid: Dict[Tuple[float, float], Dict[str, float]] = {}
    for phase, window in zip(fig10.CAPACITY_PHASES, _phase_windows()):
        start, end = window
        ideal[window] = {
            flow_id: ideal_result.rate(flow_id, start, end)
            for flow_id in ("a", "b", "c")
        }
        http[window] = {
            flow_id: http_result.goodput(flow_id, start, end)
            for flow_id in ("a", "b", "c")
        }
        fluid[window] = fig10.expected_rates(phase)
    return ComparisonResult(ideal=ideal, http=http, fluid=fluid)
