"""Experiment E4 — Figure 7: CDF of concurrent flows on smartphones.

The paper's statement: "10% of the time, we have 7 or more ongoing
flows; the maximum number of concurrent flows hit a maximum of 35 in
our log." Our generative substitute (see
:mod:`repro.trace.smartphone`) is calibrated to those two statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..trace.concurrency import ConcurrencyStats, concurrency_stats
from ..trace.smartphone import DeviceTraceConfig, SmartphoneTraceGenerator

#: The paper's published statistics.
PAPER_FRACTION_7_OR_MORE = 0.10
PAPER_MAX_CONCURRENT = 35


@dataclass(frozen=True)
class Fig7Result:
    """Aggregated concurrency results for one simulated device-week."""

    stats: ConcurrencyStats
    num_flows: int

    @property
    def fraction_7_or_more(self) -> float:
        """P[N ≥ 7 | active] — compare against 0.10."""
        return self.stats.fraction_at_least(7)

    @property
    def max_concurrent(self) -> int:
        """Peak concurrency — compare against 35."""
        return self.stats.max_concurrent

    def cdf(self) -> List[Tuple[int, float]]:
        """The Figure 7 curve."""
        return self.stats.cdf()


def run(seed: int = 0, config: DeviceTraceConfig = None) -> Fig7Result:
    """Simulate one device-week and compute the concurrency CDF."""
    generator = SmartphoneTraceGenerator(config=config, seed=seed)
    intervals = generator.generate()
    return Fig7Result(stats=concurrency_stats(intervals), num_flows=len(intervals))
