"""Experiment E6 — Figure 9: scheduling-decision overhead.

The paper profiles its kernel bridge: 1,000 packets queued across all
flows, 4–16 (virtual) interfaces, recording the time each scheduling
decision takes. Findings: the decision time is independent of the
number of flows, but grows with the number of interfaces because more
service flags are set and must be skipped past; even at 16 interfaces
a decision takes < 2.5 µs (in kernel C).

We repeat the measurement on the Python miDRR implementation. Absolute
numbers are Python-scale; the two *shape* claims — growth with
interface count, independence from flow count — are reproduced and
asserted in the test suite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..analysis.cdf import EmpiricalCdf
from ..errors import ConfigurationError
from ..net.flow import Flow
from ..net.packet import Packet
from ..schedulers.midrr import MiDrrScheduler

#: Paper parameters.
PACKETS_PER_RUN = 1000
INTERFACE_COUNTS = (4, 8, 12, 16)
DEFAULT_FLOWS = 64


@dataclass
class OverheadResult:
    """Per-decision latency samples for one configuration."""

    num_interfaces: int
    num_flows: int
    decision_ns: List[int]
    flows_examined: List[int]

    def cdf(self) -> EmpiricalCdf:
        """The Figure 9 curve (decision time CDF)."""
        return EmpiricalCdf([ns / 1000.0 for ns in self.decision_ns])  # µs

    def median_us(self) -> float:
        """Median decision time in microseconds."""
        return self.cdf().median()

    def p99_us(self) -> float:
        """99th percentile decision time in microseconds."""
        return self.cdf().quantile(0.99)

    def mean_flows_examined(self) -> float:
        """Average flows considered per decision (the flag-skip cost)."""
        if not self.flows_examined:
            return 0.0
        return sum(self.flows_examined) / len(self.flows_examined)


def _build_scheduler(num_interfaces: int, num_flows: int) -> tuple:
    """A standing miDRR instance with every flow on every interface."""
    scheduler = MiDrrScheduler()
    interface_ids = [f"if{j}" for j in range(num_interfaces)]
    for interface_id in interface_ids:
        scheduler.register_interface(interface_id)
    flows = []
    for i in range(num_flows):
        flow = Flow(f"flow{i}")
        # Pre-backlog so the decision loop never idles.
        for _ in range(4):
            flow.offer(Packet(flow_id=flow.flow_id, size_bytes=1500))
        scheduler.add_flow(flow)
        flows.append(flow)
    return scheduler, interface_ids, flows


def measure(
    num_interfaces: int,
    num_flows: int = DEFAULT_FLOWS,
    packets: int = PACKETS_PER_RUN,
) -> OverheadResult:
    """Time *packets* scheduling decisions.

    Decisions rotate across interfaces (as free interfaces would in the
    bridge); each served flow is immediately re-backlogged so queues
    stay "spread across all the flows" as in the paper's setup. Service
    flags accumulate naturally from the algorithm's own bookkeeping.
    """
    if num_interfaces <= 0 or num_flows <= 0 or packets <= 0:
        raise ConfigurationError("all measurement parameters must be positive")
    scheduler, interface_ids, flows = _build_scheduler(num_interfaces, num_flows)
    flows_by_id = {flow.flow_id: flow for flow in flows}
    decision_ns: List[int] = []
    warmup = min(200, packets // 4)
    for index in range(packets + warmup):
        interface_id = interface_ids[index % num_interfaces]
        started = time.perf_counter_ns()
        packet = scheduler.select(interface_id)
        elapsed = time.perf_counter_ns() - started
        if index >= warmup:
            decision_ns.append(elapsed)
        if packet is not None:
            flow = flows_by_id[packet.flow_id]
            flow.offer(Packet(flow_id=flow.flow_id, size_bytes=1500))
            scheduler.notify_backlogged(flow)
    examined = scheduler.decision_flows_examined[-packets:]
    return OverheadResult(
        num_interfaces=num_interfaces,
        num_flows=num_flows,
        decision_ns=decision_ns,
        flows_examined=examined,
    )


def run(
    interface_counts: Sequence[int] = INTERFACE_COUNTS,
    num_flows: int = DEFAULT_FLOWS,
) -> Dict[int, OverheadResult]:
    """The full Figure 9 sweep."""
    return {
        count: measure(count, num_flows=num_flows) for count in interface_counts
    }


def flow_count_sweep(
    flow_counts: Sequence[int] = (16, 64, 256),
    num_interfaces: int = 8,
) -> Dict[int, OverheadResult]:
    """The paper's independence claim: vary flows at fixed interfaces."""
    return {
        count: measure(num_interfaces, num_flows=count) for count in flow_counts
    }
