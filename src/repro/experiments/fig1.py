"""Experiment E1 — the paper's Figure 1 motivating examples.

Three scenarios over 1 Mb/s interfaces:

* (a) one interface, two flows → both WFQ and miDRR give 0.5 Mb/s each
  (we scale to the paper's 2 Mb/s single pipe variant: 1 each).
* (b) two interfaces, no interface preferences → 1 Mb/s each.
* (c) two interfaces, flow *a* may use both, flow *b* only interface 2
  → per-interface WFQ gives (1.5, 0.5); miDRR gives (1.0, 1.0).

Also includes the §1 "infeasible rate preference" variant: φ_b = 2φ_a
with the same Π, where the fluid ideal is still (1, 1) because capacity
must not be wasted.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Tuple

from ..core.runner import run_scenario
from ..core.scenario import FlowSpec, InterfaceSpec, Scenario, TrafficSpec
from ..fairness.waterfill import Allocation, weighted_maxmin
from ..schedulers.base import MultiInterfaceScheduler
from ..units import mbps

#: Measurement window: skip the first seconds of DRR transient.
WARMUP = 2.0
DURATION = 30.0


def scenario_a() -> Scenario:
    """Figure 1(a): a single 2 Mb/s interface shared by two flows."""
    return Scenario(
        name="fig1a",
        interfaces=(InterfaceSpec("if1", mbps(2)),),
        flows=(FlowSpec("a"), FlowSpec("b")),
        duration=DURATION,
    )


def scenario_b() -> Scenario:
    """Figure 1(b): two 1 Mb/s interfaces, both flows willing to use both."""
    return Scenario(
        name="fig1b",
        interfaces=(InterfaceSpec("if1", mbps(1)), InterfaceSpec("if2", mbps(1))),
        flows=(FlowSpec("a"), FlowSpec("b")),
        duration=DURATION,
    )


def scenario_c() -> Scenario:
    """Figure 1(c): flow b restricted to interface 2."""
    return Scenario(
        name="fig1c",
        interfaces=(InterfaceSpec("if1", mbps(1)), InterfaceSpec("if2", mbps(1))),
        flows=(FlowSpec("a"), FlowSpec("b", interfaces=("if2",))),
        duration=DURATION,
    )


def scenario_c_weighted() -> Scenario:
    """§1 variant: φ_b = 2 φ_a, interface preference unchanged.

    The rate preference (0.67, 1.33) is infeasible under Π; the paper's
    design choice gives flow b its constrained 1 Mb/s and hands the rest
    to flow a rather than wasting capacity.
    """
    return Scenario(
        name="fig1c-weighted",
        interfaces=(InterfaceSpec("if1", mbps(1)), InterfaceSpec("if2", mbps(1))),
        flows=(FlowSpec("a", weight=1.0), FlowSpec("b", weight=2.0, interfaces=("if2",))),
        duration=DURATION,
    )


ALL_SCENARIOS: Dict[str, Callable[[], Scenario]] = {
    "fig1a": scenario_a,
    "fig1b": scenario_b,
    "fig1c": scenario_c,
    "fig1c-weighted": scenario_c_weighted,
}

#: The allocations the paper quotes, in bits/s.
PAPER_EXPECTATIONS: Dict[str, Dict[str, Dict[str, float]]] = {
    "fig1c": {
        "per-interface WFQ": {"a": mbps(1.5), "b": mbps(0.5)},
        "miDRR": {"a": mbps(1.0), "b": mbps(1.0)},
    },
    "fig1b": {
        "per-interface WFQ": {"a": mbps(1.0), "b": mbps(1.0)},
        "miDRR": {"a": mbps(1.0), "b": mbps(1.0)},
    },
    "fig1a": {
        "per-interface WFQ": {"a": mbps(1.0), "b": mbps(1.0)},
        "miDRR": {"a": mbps(1.0), "b": mbps(1.0)},
    },
    "fig1c-weighted": {
        "miDRR": {"a": mbps(1.0), "b": mbps(1.0)},
    },
}


def measured_rates(
    scenario: Scenario,
    scheduler_factory: Callable[[], MultiInterfaceScheduler],
) -> Dict[str, float]:
    """Run and return steady-state rates over the post-warmup window."""
    result = run_scenario(scenario, scheduler_factory)
    return result.rates(WARMUP, scenario.duration)


def fluid_reference(scenario: Scenario) -> Allocation:
    """The exact weighted max-min allocation for the scenario."""
    flows = {
        spec.flow_id: (spec.weight, spec.interfaces) for spec in scenario.flows
    }
    return weighted_maxmin(flows, scenario.capacities())
