"""Experiments E7/E8 — Figures 10 and 11: HTTP proxy fair scheduling.

Setup: three HTTP flows over two interfaces whose capacity fluctuates
during the run. Flow *a* uses only interface 1, flow *c* only
interface 2, flow *b* may use both; all weights equal. The expected
behaviour (the paper's Figure 10): flows a and c track their own
interface's current speed, while flow b always matches the *faster*
flow — it clusters with whichever interface is currently faster
(Figure 11) and shares it equally.

Capacity trace (chosen to flip the faster interface twice, as the
paper's operational-WiFi run does): interface 1 starts fast, drops
below interface 2 mid-run, then recovers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..fairness.clusters import EmpiricalCluster, extract_clusters
from ..httpproxy.client import RepeatingDownloader
from ..httpproxy.proxy import SchedulingHttpProxy
from ..httpproxy.server import HttpOriginServer
from ..httpproxy.transport import DownlinkChannel
from ..net.interface import CapacityStep
from ..schedulers.midrr import MiDrrScheduler
from ..sim.simulator import Simulator
from ..units import mbps

DURATION = 40.0

#: Capacity phases: (start, end, if1 rate, if2 rate) in Mb/s. Interface
#: 1 is faster in phases 1 and 3, interface 2 in phase 2 — mirroring
#: the paper's alternating-cluster timeline (Figure 11).
CAPACITY_PHASES: Tuple[Tuple[float, float, float, float], ...] = (
    (0.0, 11.0, 8.0, 2.0),
    (11.0, 18.0, 2.0, 6.0),
    (18.0, 29.0, 8.0, 2.0),
    (29.0, DURATION, 2.0, 6.0),
)

#: Object each flow repeatedly downloads.
OBJECT_URL = "/stream"
OBJECT_BYTES = 2 * 1024 * 1024


@dataclass
class Fig10Result:
    """Everything measured during the HTTP proxy run."""

    proxy: SchedulingHttpProxy
    sim: Simulator
    downloaders: Dict[str, RepeatingDownloader]

    def goodput(self, flow_id: str, start: float, end: float) -> float:
        """Average goodput (bits/s) over a window."""
        return self.proxy.stats.rate_in_window(flow_id, start, end)

    def timeseries(self, flow_id: str, bin_width: float = 1.0) -> List:
        """The Figure 10 per-flow goodput series."""
        return self.proxy.goodput_timeseries(flow_id, bin_width, end=DURATION)

    def clusters(self, start: float, end: float) -> List[EmpiricalCluster]:
        """Measured clusters over a window (Figure 11).

        The proxy schedules at chunk granularity, so the two-interface
        flow picks up a few percent of stray service on the slower
        link (the paper itself calls the HTTP scheduler "very coarse
        grained"). A 15 % activity threshold separates the paper's
        clusters from that noise.
        """
        matrix = self.proxy.stats.pair_service_in_window(start, end)
        weights = {flow_id: 1.0 for flow_id in ("a", "b", "c")}
        return extract_clusters(
            matrix, weights, window=end - start, min_edge_fraction=0.15
        )

    def integrity_failures(self) -> int:
        """Spliced-content mismatches across all downloads (must be 0)."""
        return sum(d.integrity_failures for d in self.downloaders.values())


def expected_rates(phase: Tuple[float, float, float, float]) -> Dict[str, float]:
    """Fluid max-min for one capacity phase (bits/s).

    With a confined to if1 and c to if2, the bottleneck analysis gives
    the slower interface's flow its full (slower) capacity and splits
    the faster interface between its own flow and b.
    """
    _, _, rate1, rate2 = phase
    c1, c2 = mbps(rate1), mbps(rate2)
    slow, fast = sorted((c1, c2))
    level_all = (c1 + c2) / 3
    if slow >= level_all:
        # Degenerate: everything equalizes.
        return {"a": level_all, "b": level_all, "c": level_all}
    if c1 <= c2:
        return {"a": c1, "b": fast / 2, "c": fast / 2}
    return {"a": fast / 2, "b": fast / 2, "c": c2}


def run(
    seed: int = 0,
    chunk_bytes: int = 64 * 1024,
    pipeline_depth: int = 4,
    rtt: float = 0.04,
) -> Fig10Result:
    """Run the Figure 10 experiment."""
    sim = Simulator()
    server = HttpOriginServer()
    server.put_synthetic(OBJECT_URL, OBJECT_BYTES)
    proxy = SchedulingHttpProxy(
        sim, scheduler=MiDrrScheduler(quantum_base=chunk_bytes), chunk_bytes=chunk_bytes
    )

    start1, start2 = CAPACITY_PHASES[0][2], CAPACITY_PHASES[0][3]
    channel1 = DownlinkChannel(
        sim, "if1", server, mbps(start1), rtt=rtt, pipeline_depth=pipeline_depth
    )
    channel2 = DownlinkChannel(
        sim, "if2", server, mbps(start2), rtt=rtt, pipeline_depth=pipeline_depth
    )
    steps1 = [
        CapacityStep(start, mbps(rate1))
        for start, _, rate1, _ in CAPACITY_PHASES[1:]
    ]
    steps2 = [
        CapacityStep(start, mbps(rate2))
        for start, _, _, rate2 in CAPACITY_PHASES[1:]
    ]
    channel1.apply_capacity_schedule(steps1)
    channel2.apply_capacity_schedule(steps2)
    proxy.add_channel(channel1)
    proxy.add_channel(channel2)

    proxy.add_flow("a", interfaces=["if1"])
    proxy.add_flow("b")
    proxy.add_flow("c", interfaces=["if2"])

    downloaders = {
        flow_id: RepeatingDownloader(sim, proxy, server, flow_id, OBJECT_URL)
        for flow_id in ("a", "b", "c")
    }
    for downloader in downloaders.values():
        downloader.start()
    sim.run(until=DURATION)
    return Fig10Result(proxy=proxy, sim=sim, downloaders=downloaders)
