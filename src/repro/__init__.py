"""repro — a reproduction of "Scheduling Packets over Multiple
Interfaces while Respecting User Preferences" (Yap et al., CoNEXT 2013).

The package implements the paper's miDRR scheduler together with every
substrate its evaluation needs: a discrete-event network simulator,
classic fair-queueing baselines, an exact weighted max-min reference
solver with rate-cluster extraction, a virtual-interface bridge with
real header rewriting, an HTTP/1.1 byte-range scheduling proxy, and a
smartphone flow-concurrency workload model.

Quickstart::

    from repro import FlowSpec, InterfaceSpec, Scenario, TrafficSpec
    from repro import MiDrrScheduler, run_scenario
    from repro.units import mbps

    scenario = Scenario(
        interfaces=(
            InterfaceSpec("if1", mbps(1)),
            InterfaceSpec("if2", mbps(1)),
        ),
        flows=(
            FlowSpec("a"),                       # willing to use any interface
            FlowSpec("b", interfaces=("if2",)),  # pinned to if2
        ),
        duration=30.0,
    )
    result = run_scenario(scenario, MiDrrScheduler)
    print(result.rates(5, 30))   # ~1 Mb/s each (the paper's Figure 1(c))
"""

from .core.device import MobileDevice
from .core.runner import ExperimentResult, run_scenario
from .core.scenario import FlowSpec, InterfaceSpec, Scenario, TrafficSpec
from .core.engine import SchedulingEngine
from .fairness.conformance import run_conformance
from .errors import (
    ConfigurationError,
    FairnessError,
    FaultError,
    HeaderError,
    HttpError,
    PreferenceError,
    ReproError,
    SchedulingError,
    SimulationError,
    WatchdogError,
)
from .fairness.waterfill import Allocation, weighted_maxmin
from .faults.chaos import ChaosReport, build_default_chaos, run_chaos
from .faults.processes import (
    CapacityCollapse,
    ChecksumVerifier,
    GilbertElliottFlapper,
    PacketCorruptionInjector,
    PacketLossInjector,
    PreferenceChurner,
)
from .faults.timeline import FaultEvent, FaultTimeline
from .health.invariants import MiDrrInvariantChecker
from .health.watchdog import Alert, Watchdog
from .net.flow import Flow
from .obs import (
    MetricsRegistry,
    SnapshotProcess,
    instrument_engine,
    instrument_watchdog,
)
from .net.interface import CapacityStep, Interface
from .net.packet import Packet
from .prefs.policy import AnyInterface, DevicePolicy, Except, Only, Prefer
from .prefs.preferences import PreferenceSet
from .schedulers.drr import DrrScheduler
from .schedulers.midrr import MiDrrScheduler
from .schedulers.per_interface import PerInterfaceScheduler, StaticSplitScheduler
from .schedulers.wfq import WfqScheduler
from .sim.simulator import Simulator

__version__ = "1.0.0"

__all__ = [
    "Alert",
    "Allocation",
    "AnyInterface",
    "CapacityCollapse",
    "CapacityStep",
    "ChaosReport",
    "ChecksumVerifier",
    "ConfigurationError",
    "DevicePolicy",
    "DrrScheduler",
    "Except",
    "ExperimentResult",
    "FairnessError",
    "FaultError",
    "FaultEvent",
    "FaultTimeline",
    "Flow",
    "FlowSpec",
    "GilbertElliottFlapper",
    "HeaderError",
    "HttpError",
    "Interface",
    "InterfaceSpec",
    "MetricsRegistry",
    "MiDrrInvariantChecker",
    "MiDrrScheduler",
    "MobileDevice",
    "Only",
    "Packet",
    "PacketCorruptionInjector",
    "PacketLossInjector",
    "PerInterfaceScheduler",
    "Prefer",
    "PreferenceChurner",
    "PreferenceError",
    "PreferenceSet",
    "ReproError",
    "Scenario",
    "SchedulingEngine",
    "SchedulingError",
    "SimulationError",
    "Simulator",
    "SnapshotProcess",
    "StaticSplitScheduler",
    "TrafficSpec",
    "Watchdog",
    "WatchdogError",
    "WfqScheduler",
    "build_default_chaos",
    "instrument_engine",
    "instrument_watchdog",
    "run_chaos",
    "run_conformance",
    "run_scenario",
    "weighted_maxmin",
    "__version__",
]
