"""Command-line interface: regenerate any paper figure from a terminal.

Usage::

    midrr fig1            # Figure 1 motivating allocations
    midrr fig6            # Figures 6 + 8 (rates and clusters)
    midrr fig7            # Figure 7 concurrency CDF
    midrr fig9            # Figure 9 scheduling overhead
    midrr fig10           # Figures 10 + 11 (HTTP proxy)
    midrr ideal           # E9: Figure 4 ideal proxy vs HTTP proxy
    midrr fct             # E13: completion times under churn
    midrr all             # every figure
    midrr chaos --seed 7 --duration 60        # seeded fault-injection run
    midrr audit --seed 7 --duration 30        # chaos + inline fairness auditing
    midrr slo --seed 7 --duration 30          # scheduler-family latency-SLO table
    midrr fleet --devices 1000 --workers 4    # sharded fleet run + merged report
    midrr bench core                          # hot-path baseline -> BENCH_core.json
    midrr bench smoke --check-regression      # fast sanity + perf gate
    midrr bench obs                           # metrics-overhead comparison
    midrr obs --flows 100 --out obs.jsonl     # instrumented run + JSONL snapshots
    midrr obs --selftest                      # registry + JSONL round-trip check
    midrr run scenario.json --scheduler wfq   # replay a stored scenario
    midrr checkpoint scenario.json --until 3 --out ckpt.json
    midrr resume ckpt.json                    # replay from the snapshot
    midrr solve --interface if1=3e6 --interface if2=10e6 \\
                --flow a:1:if1 --flow b:2:if1,if2 --flow c:1:if2
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from .analysis.report import render_comparison, render_rate_table, render_table
from .analysis.slo import SCHEDULER_FAMILY, run_latency_slo
from .core.runner import run_scenario
from .core.scenario import Scenario
from .errors import ReproError
from .experiments import fct, fig1, fig6, fig7, fig9, fig10, inbound_ideal
from .faults.chaos import ChaosRun, run_chaos
from .fleet import EXECUTORS, run_fleet
from .health.watchdog import Watchdog
from .obs import (
    MetricsRegistry,
    SnapshotProcess,
    instrument_engine,
    instrument_watchdog,
    render_final_report,
)
from .obs.selftest import run_selftest
from .perf import (
    DEFAULT_CONFIGS,
    DEFAULT_FLEET_DEVICES,
    DEFAULT_FLEET_WORKERS,
    DEFAULT_FLOW_COUNTS,
    DEFAULT_INTERFACE_COUNTS,
    DEFAULT_OVERHEAD_TARGET_PACKETS,
    DEFAULT_TARGET_PACKETS,
    OVERHEAD_NOISE_CEILING,
    REGRESSION_THRESHOLD,
    build_core_scenario,
    calibrate,
    check_fleet_regression,
    check_regression,
    committed_baseline_cell,
    find_cell,
    render_bench_table,
    render_overhead_table,
    run_cell,
    run_core_bench,
    run_auditor_overhead,
    run_fleet_cell,
    run_metrics_overhead,
    validate_bench_document,
    write_bench_document,
)
from .sim.events import QUEUE_BACKENDS
from .trace import WORKLOAD_KINDS, DeviceWorkload
from .recovery import (
    RecoverableScenarioRun,
    load_checkpoint,
    save_checkpoint,
)
from .schedulers.edf import EdfScheduler
from .schedulers.midrr import MiDrrScheduler
from .schedulers.per_interface import PerInterfaceScheduler, StaticSplitScheduler
from .schedulers.qaware import QAwareScheduler
from .fairness.waterfill import weighted_maxmin
from .units import format_rate


def _print(text: str) -> None:
    print(text)
    print()


def cmd_fig1(args: argparse.Namespace) -> None:
    """Figure 1: compare schedulers on the motivating scenarios."""
    schedulers = {
        "miDRR": MiDrrScheduler,
        "per-interface WFQ": PerInterfaceScheduler.wfq,
        "per-interface DRR": PerInterfaceScheduler.drr,
        "FIFO striping": PerInterfaceScheduler.fifo,
        "static split": StaticSplitScheduler,
    }
    for name, build in fig1.ALL_SCENARIOS.items():
        scenario = build()
        flow_order = [spec.flow_id for spec in scenario.flows]
        rates = {
            label: fig1.measured_rates(scenario, factory)
            for label, factory in schedulers.items()
        }
        reference = fig1.fluid_reference(scenario)
        rates["fluid max-min (reference)"] = {
            flow_id: reference.rate(flow_id) for flow_id in flow_order
        }
        _print(render_rate_table(rates, flow_order, title=f"== {name} =="))


def cmd_fig6(args: argparse.Namespace) -> None:
    """Figures 6 and 8: dynamic fair scheduling and clusters."""
    result = fig6.run()
    rows = []
    for phase, expected in fig6.PAPER_PHASE_RATES.items():
        measured = fig6.phase_rates(result)[phase]
        for flow_id, paper_value in expected.items():
            rows.append(
                [
                    phase,
                    flow_id,
                    f"{measured[flow_id]:.2f} Mb/s",
                    f"{paper_value:.2f} Mb/s",
                ]
            )
    _print(
        render_table(
            ["phase", "flow", "measured", "paper"], rows, title="== Figure 6(b) =="
        )
    )
    _print(
        render_table(
            ["flow", "completed (measured)", "completed (paper)"],
            [
                ["a", f"{result.completions.get('a', float('nan')):.1f} s", "66 s"],
                ["b", f"{result.completions.get('b', float('nan')):.1f} s", "85 s"],
            ],
            title="== flow completion times ==",
        )
    )
    cluster_rows = []
    for phase, clusters in fig6.phase_clusters(result).items():
        for cluster in clusters:
            cluster_rows.append(
                [
                    phase,
                    ",".join(sorted(cluster.flows)),
                    ",".join(sorted(cluster.interfaces)),
                    f"{cluster.normalized_rate / 1e6:.2f} Mb/s/weight",
                ]
            )
    _print(
        render_table(
            ["phase", "flows", "interfaces", "level"],
            cluster_rows,
            title="== Figure 8 clusters ==",
        )
    )
    if args.zoom:
        series = result.timeseries("a", bin_width=0.5)[:10]
        rows = [[f"{t:.2f}", f"{v / 1e6:.2f} Mb/s"] for t, v in series]
        _print(
            render_table(
                ["time", "flow a rate"],
                rows,
                title="== Figure 6(c): first 5 s transient ==",
            )
        )


def cmd_fig7(args: argparse.Namespace) -> None:
    """Figure 7: concurrency CDF."""
    result = fig7.run(seed=args.seed)
    rows = [[n, f"{p:.3f}"] for n, p in result.cdf() if n <= 16]
    _print(render_table(["concurrent flows N", "P[≤N | active]"], rows,
                        title="== Figure 7 CDF (truncated at 16) =="))
    _print(
        render_table(
            ["statistic", "measured", "paper"],
            [
                ["P[N ≥ 7 | active]", f"{result.fraction_7_or_more:.3f}", "0.10"],
                ["max concurrent", str(result.max_concurrent), "35"],
                ["flows generated", str(result.num_flows), "-"],
            ],
            title="== summary ==",
        )
    )


def cmd_fig9(args: argparse.Namespace) -> None:
    """Figure 9: scheduling decision overhead."""
    results = fig9.run()
    rows = [
        [
            r.num_interfaces,
            f"{r.median_us():.2f} µs",
            f"{r.p99_us():.2f} µs",
            f"{r.mean_flows_examined():.2f}",
        ]
        for r in results.values()
    ]
    _print(
        render_table(
            ["interfaces", "median decision", "p99 decision", "mean flows examined"],
            rows,
            title="== Figure 9 (Python-scale; paper: <2.5 µs in kernel C) ==",
        )
    )
    flow_sweep = fig9.flow_count_sweep()
    rows = [
        [r.num_flows, f"{r.median_us():.2f} µs"] for r in flow_sweep.values()
    ]
    _print(
        render_table(
            ["flows", "median decision"],
            rows,
            title="== independence from flow count (8 interfaces) ==",
        )
    )


def cmd_fig10(args: argparse.Namespace) -> None:
    """Figures 10 and 11: HTTP proxy goodput and clusters."""
    result = fig10.run(seed=args.seed)
    rows = []
    for phase in fig10.CAPACITY_PHASES:
        start, end, rate1, rate2 = phase
        expected = fig10.expected_rates(phase)
        for flow_id in ("a", "b", "c"):
            measured = result.goodput(flow_id, start + 2, end - 0.5)
            rows.append(
                [
                    f"{start:.0f}–{end:.0f} s",
                    f"{rate1:g}/{rate2:g}",
                    flow_id,
                    format_rate(measured),
                    format_rate(expected[flow_id]),
                ]
            )
    _print(
        render_table(
            ["phase", "if1/if2 Mb/s", "flow", "goodput", "fluid reference"],
            rows,
            title="== Figure 10 ==",
        )
    )
    cluster_rows = []
    for phase in fig10.CAPACITY_PHASES:
        start, end, _, _ = phase
        for cluster in result.clusters(start + 2, end - 0.5):
            cluster_rows.append(
                [
                    f"{start:.0f}–{end:.0f} s",
                    ",".join(sorted(cluster.flows)),
                    ",".join(sorted(cluster.interfaces)),
                    format_rate(cluster.normalized_rate),
                ]
            )
    _print(
        render_table(
            ["window", "flows", "interfaces", "level"],
            cluster_rows,
            title="== Figure 11 clusters ==",
        )
    )
    print(f"content integrity failures: {result.integrity_failures()}")


def cmd_ideal(args: argparse.Namespace) -> None:
    """E9 extension: ideal in-network proxy vs the HTTP proxy."""
    result = inbound_ideal.run(seed=args.seed)
    rows = []
    for window in result.fluid:
        for flow_id in ("a", "b", "c"):
            rows.append(
                [
                    f"{window[0]:.0f}–{window[1]:.0f} s",
                    flow_id,
                    format_rate(result.fluid[window][flow_id]),
                    format_rate(result.ideal[window][flow_id]),
                    format_rate(result.http[window][flow_id]),
                ]
            )
    _print(
        render_table(
            ["window", "flow", "fluid", "ideal proxy", "HTTP proxy"],
            rows,
            title="== E9: Figure 4 ideal vs Figure 5 HTTP ==",
        )
    )
    print(
        f"worst deviation from fluid: ideal "
        f"{result.worst_deviation('ideal'):.1%}, HTTP "
        f"{result.worst_deviation('http'):.1%}"
    )


def cmd_fct(args: argparse.Namespace) -> None:
    """E13 extension: flow completion times under smartphone churn."""
    results = fct.run(seed=args.seed, with_elephant=not args.light)
    rows = [
        [
            label,
            f"{result.median():.2f} s",
            f"{result.p90():.2f} s",
            f"{result.completed}/{result.offered}",
        ]
        for label, result in results.items()
    ]
    regime = "light load" if args.light else "with background elephant"
    _print(
        render_table(
            ["scheduler", "median FCT", "p90 FCT", "completed"],
            rows,
            title=f"== E13: flow completion times ({regime}) ==",
        )
    )


def cmd_chaos(args: argparse.Namespace) -> None:
    """Run the seeded chaos scenario and print the fault/recovery report.

    Exits with status 2 if the invariant checker recorded any violation
    during the run — the signal CI watches for.
    """
    report = run_chaos(
        seed=args.seed, duration=args.duration, with_churn=not args.no_churn
    )
    _print(report.to_text())
    if report.invariant_violations:
        print(
            f"error: {len(report.invariant_violations)} invariant "
            "violation(s) during chaos run",
            file=sys.stderr,
        )
        raise SystemExit(2)


def cmd_audit(args: argparse.Namespace) -> None:
    """Run the chaos scenario with the inline fairness auditor attached.

    Prints the drift summary (measured rates vs the live fluid
    optimum), the incremental-solver statistics, and any fairness
    alerts. With ``--strict`` the command exits 2 if any drift alert
    was raised. Everything printed is derived from the simulated
    clock, so the output is byte-identical for a given seed.
    """
    run = ChaosRun(
        seed=args.seed,
        duration=args.duration,
        with_churn=not args.no_churn,
        queue_backend=args.backend,
        with_auditor=True,
        audit_period=args.period,
    )
    run.run()
    auditor = run.auditor
    solver = auditor.solver
    allocation = solver.allocation
    lines = [
        f"== fairness audit: seed={args.seed} duration={args.duration:g}s "
        f"period={args.period:g}s window={auditor.window:g}s ==",
        "",
        f"ticks={auditor.ticks} audits={auditor.audits_total} "
        f"drift_last={auditor.drift_last:.4f} drift_peak={auditor.drift_peak:.4f}",
        f"solver: {solver.deltas_total} deltas, "
        f"{solver.incremental_solves} incremental / {solver.full_solves} full "
        f"({solver.incremental_ratio:.0%} incremental, "
        f"{solver.fence_fallbacks} fence fallbacks), "
        f"{len(allocation.clusters)} clusters now",
        "",
        f"{'flow':<8} {'weight':>7} {'fluid Mb/s':>11} {'measured Mb/s':>14}",
    ]
    stats = run.engine.stats
    window_start = max(0.0, args.duration - auditor.window)
    for flow_id in sorted(run.engine.flows):
        expected = float(allocation.rates.get(flow_id, 0))
        measured = stats.rate_in_window(flow_id, window_start, args.duration)
        weight = run.engine.flows[flow_id].weight
        lines.append(
            f"{flow_id:<8} {weight:>7.2f} {expected / 1e6:>11.3f} "
            f"{measured / 1e6:>14.3f}"
        )
    lines.append("")
    if auditor.alerts:
        lines.append(
            f"{len(auditor.alerts)} fairness alert(s), "
            f"{auditor.alerts_suppressed} suppressed:"
        )
        lines.extend(f"  {alert}" for alert in auditor.alerts)
    else:
        lines.append("no fairness drift detected")
    _print("\n".join(lines))
    if args.strict and auditor.alerts:
        print(
            f"error: {len(auditor.alerts)} fairness drift alert(s)",
            file=sys.stderr,
        )
        raise SystemExit(2)


def cmd_slo(args: argparse.Namespace) -> None:
    """Run the latency-SLO report across the scheduler family.

    With ``--check-determinism`` the report is recomputed on the other
    event-queue backend and the command exits 2 unless both hashes are
    byte-identical — the family-wide decision-determinism gate.
    """
    schedulers = args.schedulers if args.schedulers else None
    report = run_latency_slo(
        seed=args.seed,
        duration=args.duration,
        schedulers=schedulers,
        queue_backend=args.backend,
        with_churn=not args.no_churn,
    )
    _print(report.to_text())
    if not args.check_determinism:
        return
    other = "calendar" if args.backend == "heap" else "heap"
    twin = run_latency_slo(
        seed=args.seed,
        duration=args.duration,
        schedulers=schedulers,
        queue_backend=other,
        with_churn=not args.no_churn,
    )
    if twin.report_hash() != report.report_hash():
        print(
            f"error: SLO report hash diverges between {args.backend} and "
            f"{other} backends",
            file=sys.stderr,
        )
        raise SystemExit(2)
    print(f"SLO report hash identical on {args.backend} and {other} backends")


def _parse_counts(text: str, option: str) -> List[int]:
    try:
        counts = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"{option} needs comma-separated integers, got {text!r}")
    if not counts or any(count <= 0 for count in counts):
        raise SystemExit(f"{option} needs positive integers, got {text!r}")
    return counts


def _parse_bench_configs(args: argparse.Namespace) -> List[tuple]:
    """The (backend, batching) sweep requested by --backend/--batching."""
    backends = list(QUEUE_BACKENDS) if args.backend == "all" else [args.backend]
    modes = {
        "off": [False],
        "on": [True],
        "auto": ["auto"],
        "both": [False, True],
    }[args.batching]
    return [(backend, mode) for backend in backends for mode in modes]


def cmd_bench_core(args: argparse.Namespace) -> None:
    """Run the seeded hot-path macro-benchmark and write BENCH_core.json.

    The workload (event/packet/decision counts) is deterministic per
    seed; only wall-clock rates vary between machines. ``--backend`` /
    ``--batching`` narrow the per-cell configuration sweep; the default
    covers the full heap/calendar × batching on/off matrix, and
    ``--batching auto`` takes the per-cell calibrated choice (recorded
    under ``auto_batching``). ``--fleet-devices`` / ``--fleet-workers``
    size the devices × workers fleet scaling section (``--no-fleet``
    drops it). ``--pypy`` re-runs the same grid under ``pypy3`` (when
    installed) into a sibling document; the lane's outcome — ran,
    failed, or skipped and why — is recorded under the main document's
    ``pypy`` key either way.
    """
    document = run_core_bench(
        flow_counts=_parse_counts(args.flows, "--flows"),
        interface_counts=_parse_counts(args.interfaces, "--interfaces"),
        seed=args.seed,
        target_packets=args.target_packets,
        progress=lambda message: print(message, file=sys.stderr),
        configs=_parse_bench_configs(args),
        fleet_device_counts=(
            () if args.no_fleet else _parse_counts(args.fleet_devices, "--fleet-devices")
        ),
        fleet_worker_counts=(
            () if args.no_fleet else _parse_counts(args.fleet_workers, "--fleet-workers")
        ),
    )
    _print(render_bench_table(document))
    if args.pypy:
        document["pypy"] = _run_pypy_lane(args)
    write_bench_document(document, args.out)
    print(f"wrote {args.out}")


def _run_pypy_lane(args: argparse.Namespace) -> Dict[str, object]:
    """Optional PyPy comparison lane for ``bench core --pypy``.

    Runs the identical grid under ``pypy3`` into ``<out>.pypy.json``.
    The lane is advisory: a missing interpreter or a failed run prints
    a note instead of failing the command. Either way the returned
    status dict lands in the main document's ``pypy`` key, so the
    committed trajectory distinguishes "not run (and why)" from "ran
    and did not regress".
    """
    import shutil
    import subprocess

    pypy = shutil.which("pypy3")
    if pypy is None:
        print("pypy3 not found on PATH; skipping the PyPy lane", file=sys.stderr)
        return {"status": "skipped", "reason": "pypy3 not found on PATH"}
    out = f"{args.out}.pypy.json"
    command = [
        pypy,
        "-m",
        "repro.cli",
        "bench",
        "core",
        "--seed", str(args.seed),
        "--flows", args.flows,
        "--interfaces", args.interfaces,
        "--target-packets", str(args.target_packets),
        "--backend", args.backend,
        "--batching", args.batching,
        "--no-fleet",
        "--out", out,
    ]
    print(f"running PyPy lane -> {out} ...", file=sys.stderr)
    completed = subprocess.run(command)
    if completed.returncode != 0:
        print(
            f"PyPy lane failed with exit code {completed.returncode}",
            file=sys.stderr,
        )
        return {"status": "failed", "exit_code": completed.returncode, "out": out}
    return {"status": "ran", "out": out}


def cmd_bench_smoke(args: argparse.Namespace) -> None:
    """Fast bench sanity: a miniature grid plus an optional perf gate.

    Always runs a small grid through the full sweep and validates the
    document shape (seconds of wall time). With ``--check-regression``
    it additionally measures the committed baseline's gated cell
    (F=1000, I=8 by default) and exits 2 if packets/sec fell more than
    20% below ``BENCH_core.json`` — unless the
    ``MIDRR_SKIP_BENCH_REGRESSION`` environment variable is set (CI
    machines with unpredictable load can opt out without editing the
    test suite).
    """
    import os

    document = run_core_bench(
        flow_counts=[10],
        interface_counts=[2],
        seed=args.seed,
        target_packets=400,
        configs=DEFAULT_CONFIGS,
    )
    problems = validate_bench_document(document)
    if problems:
        for problem in problems:
            print(f"bench smoke: {problem}", file=sys.stderr)
        raise SystemExit(2)
    print("bench smoke: miniature grid ok")
    # Family-wide decision determinism: the latency-SLO report hashes
    # every scheduler's deadline/fairness outcome, so one short run per
    # backend proves the whole family makes identical decisions on both
    # event-queue implementations.
    family_hashes = {
        backend: run_latency_slo(
            seed=args.seed, duration=20.0, queue_backend=backend
        ).report_hash()
        for backend in ("heap", "calendar")
    }
    if len(set(family_hashes.values())) != 1:
        print(
            "bench smoke: scheduler-family SLO hash diverges across "
            f"backends: {family_hashes}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    print("bench smoke: scheduler-family decisions identical on both backends")
    if not args.check_regression:
        return
    if os.environ.get("MIDRR_SKIP_BENCH_REGRESSION"):
        print(
            "bench smoke: MIDRR_SKIP_BENCH_REGRESSION set; skipping the "
            "regression gate"
        )
        return
    # Inline-auditor gate: attaching the fairness auditor must keep
    # the chaos run's decisions byte-identical (run_auditor_overhead
    # raises on signature divergence) and cost less than the telemetry
    # overhead budget.
    print("bench smoke: gating fairness-auditor overhead ...", file=sys.stderr)
    auditor_cell = run_auditor_overhead(seed=args.seed, repeats=3)
    if not auditor_cell["within_budget"]:
        print(
            "bench smoke: REGRESSION fairness auditor overhead "
            f"{auditor_cell['overhead_fraction']:.1%} exceeds the "
            f"{auditor_cell['budget_fraction']:.0%} telemetry budget",
            file=sys.stderr,
        )
        raise SystemExit(2)
    print(
        "bench smoke: auditor decisions identical, overhead "
        f"{auditor_cell['overhead_fraction']:.1%} within the "
        f"{auditor_cell['budget_fraction']:.0%} budget"
    )
    try:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"bench smoke: cannot read {args.baseline}: {error}", file=sys.stderr)
        raise SystemExit(2)
    # Divide out machine/interpreter speed drift: re-run the same
    # deterministic micro-benchmark the baseline recorded and scale the
    # floors by how much slower this host is right now.
    load_factor = 1.0
    baseline_calibration = baseline.get("calibration_seconds")
    if baseline_calibration:
        load_factor = max(1.0, calibrate() / float(baseline_calibration))
        if load_factor > 1.05:
            print(
                f"bench smoke: host reads {load_factor:.2f}x slower than "
                "at baseline time; floors scaled accordingly",
                file=sys.stderr,
            )
    gated = []
    for backend, batching in DEFAULT_CONFIGS:
        print(
            f"bench smoke: gating F={args.gate_flows} I={args.gate_interfaces} "
            f"{backend}{'+batch' if batching else ''} ...",
            file=sys.stderr,
        )
        base = find_cell(
            baseline, args.gate_flows, args.gate_interfaces, backend, batching
        )
        floor = (
            float(base["packets_per_sec"])
            * (1.0 - REGRESSION_THRESHOLD)
            / load_factor
            if base is not None
            else 0.0
        )
        # Best of three, at 4x the baseline packet count: the gate
        # measures the machine's capability, not its instantaneous
        # load. Longer runs average over the sub-second load windows
        # shared hosts exhibit (and amortize warmup, which only adds
        # safe headroom over a baseline measured on short runs); a
        # config counts as regressed only when no attempt clears the
        # floor.
        best = None
        for _attempt in range(3):
            cell = run_cell(
                args.gate_flows,
                args.gate_interfaces,
                seed=baseline.get("seed", 0),
                target_packets=4
                * baseline.get("target_packets", DEFAULT_TARGET_PACKETS),
                backend=backend,
                batching=batching,
            )
            if best is None or cell["packets_per_sec"] > best["packets_per_sec"]:
                best = cell
            if best["packets_per_sec"] >= floor:
                break
        gated.append(best)
    failures = check_regression(
        {"grid": gated},
        baseline,
        flows=args.gate_flows,
        interfaces=args.gate_interfaces,
        load_factor=load_factor,
    )
    if failures:
        for failure in failures:
            print(f"bench smoke: REGRESSION {failure}", file=sys.stderr)
        raise SystemExit(2)
    print("bench smoke: no hot-path regression vs " + args.baseline)
    # Fleet gate: one devices × workers cell against the committed
    # fleet section. Pre-fleet baselines have no such section and the
    # gate degrades to a note rather than a failure.
    if not baseline.get("fleet"):
        print("bench smoke: baseline has no fleet section; skipping the fleet gate")
        return
    print(
        f"bench smoke: gating fleet devices={args.gate_fleet_devices} "
        f"workers={args.gate_fleet_workers} ...",
        file=sys.stderr,
    )
    best_fleet = None
    for _attempt in range(2):
        cell = run_fleet_cell(
            args.gate_fleet_devices,
            args.gate_fleet_workers,
            seed=baseline.get("seed", 0),
        )
        if (
            best_fleet is None
            or cell["packets_per_sec"] > best_fleet["packets_per_sec"]
        ):
            best_fleet = cell
        failures = check_fleet_regression(
            {"fleet": [best_fleet]},
            baseline,
            devices=args.gate_fleet_devices,
            workers=args.gate_fleet_workers,
            load_factor=load_factor,
        )
        if not failures:
            break
    if failures:
        for failure in failures:
            print(f"bench smoke: REGRESSION {failure}", file=sys.stderr)
        raise SystemExit(2)
    print("bench smoke: no fleet regression vs " + args.baseline)


def cmd_bench_obs(args: argparse.Namespace) -> None:
    """Measure the packets/s cost of attaching the full obs stack.

    Runs the same seeded cell bare and instrumented, prints both rates
    plus the committed BENCH_core baseline when one is on disk, and —
    with ``--strict`` — exits 2 if the overhead exceeds the 5% budget.
    """
    print(
        f"bench obs: F={args.flows} I={args.interfaces} "
        f"x{args.repeats} repeat(s) per variant ...",
        file=sys.stderr,
    )
    report = run_metrics_overhead(
        num_flows=args.flows,
        num_interfaces=args.interfaces,
        seed=args.seed,
        target_packets=args.target_packets,
        repeats=args.repeats,
    )
    committed = None
    try:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            committed = committed_baseline_cell(
                json.load(handle), args.flows, args.interfaces
            )
    except (OSError, ValueError):
        committed = None
    _print(render_overhead_table(report, committed))
    failed = False
    if not report["telemetry_within_budget"]:
        failed = True
        print(
            "warning: within-run telemetry share "
            f"{report['telemetry_fraction']:.1%} exceeds the "
            f"{report['budget_fraction']:.0%} budget",
            file=sys.stderr,
        )
    if not report["within_budget"]:
        # End-to-end wall-clock delta: informational on busy hosts
        # (see docs/observability.md), a hard failure only past the
        # documented noise ceiling.
        failed = failed or (
            report["overhead_fraction"] >= OVERHEAD_NOISE_CEILING
        )
        print(
            "warning: metrics overhead "
            f"{report['overhead_fraction']:.1%} exceeds the "
            f"{report['budget_fraction']:.0%} budget",
            file=sys.stderr,
        )
    if failed and args.strict:
        raise SystemExit(2)


def cmd_obs(args: argparse.Namespace) -> None:
    """Run a fully instrumented scenario and export JSONL snapshots.

    With ``--selftest`` it instead exercises the registry and the JSONL
    round-trip in isolation, exiting 2 on any problem — the CI smoke
    mode.
    """
    if args.selftest:
        problems = run_selftest(args.out or "")
        if problems:
            for problem in problems:
                print(f"error: {problem}", file=sys.stderr)
            raise SystemExit(2)
        print("obs selftest: ok")
        return
    if args.scenario:
        with open(args.scenario, "r", encoding="utf-8") as handle:
            scenario = Scenario.from_dict(json.load(handle))
    else:
        scenario = build_core_scenario(
            args.flows,
            args.interfaces,
            seed=args.seed,
            target_packets=args.target_packets,
        )
    period = args.period if args.period else scenario.duration / 20
    registry = MetricsRegistry()
    captured = {}

    def on_engine(sim, engine):
        instrumentation = instrument_engine(engine, registry)
        watchdog = Watchdog(sim, engine)
        instrument_watchdog(watchdog, registry)
        watchdog.start()
        snapshots = SnapshotProcess(
            sim,
            registry,
            period=period,
            pre_sample=[instrumentation.sample],
        )
        snapshots.start()
        captured["snapshots"] = snapshots

    run_scenario(scenario, SCHEDULER_CHOICES[args.scheduler], on_engine=on_engine)
    snapshots = captured["snapshots"]
    snapshots.sample_now()
    if args.out:
        written = snapshots.write_jsonl(args.out)
        print(f"wrote {written} snapshot(s) to {args.out}", file=sys.stderr)
    _print(
        render_final_report(
            registry,
            title=f"== obs: {scenario.name} ({len(snapshots.snapshots)} snapshots) ==",
        )
    )


def cmd_fleet(args: argparse.Namespace) -> None:
    """Simulate a sharded fleet of devices and print the merged report.

    Each of ``--devices`` devices runs an independent engine + miDRR
    scheduler with a seed derived from ``(--seed, device_id)``;
    ``--workers`` OS processes consume the shards (``--executor
    serial`` keeps everything in-process for debugging). The merged
    fleet report — population delay percentiles, per-interface
    utilization, the Jain fairness proxy and a determinism hash —
    prints as a table and optionally lands in ``--report`` (JSON) and
    ``--shard-log`` (per-shard JSONL payloads).
    """
    workload = DeviceWorkload(
        kind=args.workload,
        duration=args.duration,
        num_interfaces=args.interfaces,
        num_flows=args.flows,
    )
    batching = {"off": False, "on": True, "auto": "auto"}[args.batching]
    report = run_fleet(
        args.devices,
        workload,
        fleet_seed=args.seed,
        workers=args.workers,
        shards=args.shards,
        executor=args.executor,
        backend=args.backend,
        batching=batching,
        report_path=args.report,
        shard_log_path=args.shard_log,
        progress=lambda done, total: print(
            f"fleet: {done}/{total} shard(s) done", file=sys.stderr
        ),
    )
    totals = report["totals"]
    run_info = report["run"]
    delay = report["delay"]
    rows = [
        ["devices", f"{report['fleet']['devices']:,}"],
        ["workload", workload.kind],
        ["executor", run_info["executor"]],
        ["workers", run_info["workers"]],
        ["shards", run_info["shards"]],
        ["batching", "on" if report["fleet"]["batching"] else "off"],
        ["packets", f"{totals['packets']:,}"],
        ["drops", f"{totals['drops']:,}"],
        ["flows done", f"{totals['flows_completed']:,}/{totals['flows']:,}"],
        ["wall", f"{run_info['wall_seconds']:.2f} s"],
        ["packets/s", f"{run_info['packets_per_sec']:,.0f}"],
        ["devices/s", f"{run_info['devices_per_sec']:,.1f}"],
    ]
    if delay["count"]:
        rows.extend(
            [
                ["delay p50", f"{delay['p50'] * 1000:.2f} ms"],
                ["delay p95", f"{delay['p95'] * 1000:.2f} ms"],
                ["delay p99", f"{delay['p99'] * 1000:.2f} ms"],
            ]
        )
    for interface_id, info in sorted(report["interfaces"].items()):
        rows.append(
            [f"{interface_id} util", f"{info['utilization']:.1%}"]
        )
    if report["fairness"]["jain_index"] is not None:
        rows.append(["jain index", f"{report['fairness']['jain_index']:.3f}"])
    rows.append(["report hash", report["report_hash"][:16] + "..."])
    _print(
        render_table(
            ["metric", "value"],
            rows,
            title=f"== fleet: {report['fleet']['devices']} device(s), "
            f"seed {report['fleet']['fleet_seed']} ==",
        )
    )
    if args.report:
        print(f"wrote fleet report to {args.report}")
    if args.shard_log:
        print(f"wrote shard payloads to {args.shard_log}")


SCHEDULER_CHOICES = {
    "midrr": MiDrrScheduler,
    "midrr-counter": lambda: MiDrrScheduler(exclusion="counter"),
    "fifo": PerInterfaceScheduler.fifo,
    "wfq": PerInterfaceScheduler.wfq,
    "drr": PerInterfaceScheduler.drr,
    "static": StaticSplitScheduler,
    "edf": EdfScheduler,
    "qaware": QAwareScheduler,
}


def cmd_run(args: argparse.Namespace) -> None:
    """Run a scenario JSON document under a chosen scheduler."""
    with open(args.scenario, "r", encoding="utf-8") as handle:
        scenario = Scenario.from_dict(json.load(handle))
    factory = SCHEDULER_CHOICES[args.scheduler]
    result = run_scenario(scenario, factory)
    start = args.warmup
    end = scenario.duration
    rates = result.rates(start, end)
    reference = result.reference_allocation()
    expected = {spec.flow_id: reference.rate(spec.flow_id) for spec in scenario.flows}
    _print(
        render_comparison(
            rates,
            expected,
            title=(
                f"== {scenario.name}: measured over ({start:g}, {end:g}] s "
                f"under {args.scheduler} vs fluid max-min =="
            ),
        )
    )
    if result.completions:
        rows = [
            [flow_id, f"{when:.2f} s"]
            for flow_id, when in sorted(result.completions.items())
        ]
        _print(render_table(["flow", "completed"], rows, title="== completions =="))


def cmd_checkpoint(args: argparse.Namespace) -> None:
    """Run a scenario partway and save a versioned checkpoint file."""
    with open(args.scenario, "r", encoding="utf-8") as handle:
        scenario = Scenario.from_dict(json.load(handle))
    if args.until <= 0 or args.until > scenario.duration:
        raise SystemExit(
            f"--until must be in (0, {scenario.duration:g}], got {args.until:g}"
        )
    factory = SCHEDULER_CHOICES[args.scheduler]
    run = RecoverableScenarioRun(scenario, factory)
    while not run.finished and run.sim.now < args.until:
        if not run.step():
            break
    save_checkpoint(args.out, run.checkpoint())
    print(
        f"checkpointed {scenario.name!r} at t={run.sim.now:.3f}s "
        f"({run.sim.events_processed} events, "
        f"{run.decisions_made} scheduling decisions) -> {args.out}"
    )


def cmd_resume(args: argparse.Namespace) -> None:
    """Restore a checkpoint file and replay to the scenario horizon.

    The scheduler must match the one the checkpoint was taken under —
    restore refuses a kind mismatch, just like it refuses a corrupted
    or version-skewed file.
    """
    state = load_checkpoint(args.checkpoint)
    factory = SCHEDULER_CHOICES[args.scheduler]
    run = RecoverableScenarioRun.restore(state, factory)
    resumed_at = run.sim.now
    run.run_to_completion()
    scenario = run.scenario
    print(
        f"resumed {scenario.name!r} at t={resumed_at:.3f}s, "
        f"ran to t={run.sim.now:.3f}s "
        f"({run.decisions_made} scheduling decisions total)"
    )
    rows = [
        [
            spec.flow_id,
            format_rate(
                run.engine.stats.bytes_sent(spec.flow_id) * 8 / scenario.duration
            ),
        ]
        for spec in scenario.flows
    ]
    _print(render_table(["flow", "mean rate"], rows, title="== service =="))
    if run.completions:
        rows = [
            [flow_id, f"{when:.2f} s"]
            for flow_id, when in sorted(run.completions.items())
        ]
        _print(render_table(["flow", "completed"], rows, title="== completions =="))


def cmd_solve(args: argparse.Namespace) -> None:
    """Solve a max-min instance given on the command line."""
    capacities: Dict[str, float] = {}
    for item in args.interface:
        name, _, rate = item.partition("=")
        if not rate:
            raise SystemExit(f"--interface needs name=rate, got {item!r}")
        capacities[name] = float(rate)
    flows: Dict[str, tuple] = {}
    for item in args.flow:
        parts = item.split(":")
        if len(parts) != 3:
            raise SystemExit(f"--flow needs id:weight:ifaces, got {item!r}")
        flow_id, weight, interfaces = parts
        willing = None if interfaces == "*" else interfaces.split(",")
        flows[flow_id] = (float(weight), willing)
    allocation = weighted_maxmin(flows, capacities)
    rows = [
        [flow_id, format_rate(allocation.rate(flow_id))] for flow_id in flows
    ]
    _print(render_table(["flow", "max-min rate"], rows, title="== allocation =="))
    cluster_rows = [
        [
            ",".join(sorted(c.flows)),
            ",".join(sorted(c.interfaces)),
            format_rate(float(c.level)),
        ]
        for c in allocation.clusters
    ]
    _print(render_table(["flows", "interfaces", "level/weight"], cluster_rows,
                        title="== clusters =="))


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="midrr",
        description="Reproduce figures from the miDRR paper (CoNEXT 2013).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig1", help="Figure 1 motivating allocations")
    p.set_defaults(func=cmd_fig1)

    p = sub.add_parser("fig6", help="Figures 6 + 8")
    p.add_argument("--zoom", action="store_true", help="include the 6(c) transient")
    p.set_defaults(func=cmd_fig6)

    p = sub.add_parser("fig7", help="Figure 7 concurrency CDF")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_fig7)

    p = sub.add_parser("fig9", help="Figure 9 overhead CDF")
    p.set_defaults(func=cmd_fig9)

    p = sub.add_parser("fig10", help="Figures 10 + 11 (HTTP proxy)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_fig10)

    p = sub.add_parser("ideal", help="E9: ideal proxy vs HTTP proxy")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_ideal)

    p = sub.add_parser("fct", help="E13: completion times under churn")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--light", action="store_true", help="omit the elephant")
    p.set_defaults(func=cmd_fct)

    p = sub.add_parser("chaos", help="seeded fault-injection run + report")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duration", type=float, default=60.0)
    p.add_argument(
        "--no-churn", action="store_true", help="disable weight churn"
    )
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "audit", help="chaos run with inline fairness-drift auditing"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duration", type=float, default=30.0)
    p.add_argument(
        "--period", type=float, default=1.0, help="audit tick period (s)"
    )
    p.add_argument(
        "--backend",
        choices=sorted(QUEUE_BACKENDS),
        default="heap",
        help="event-queue backend (default: heap)",
    )
    p.add_argument("--no-churn", action="store_true")
    p.add_argument(
        "--strict", action="store_true",
        help="exit 2 if any fairness drift alert was raised",
    )
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser(
        "slo", help="latency-SLO report: scheduler family under chaos"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duration", type=float, default=30.0)
    p.add_argument(
        "--backend",
        choices=sorted(QUEUE_BACKENDS),
        default="heap",
        help="event-queue backend (default: heap)",
    )
    p.add_argument(
        "--scheduler",
        dest="schedulers",
        action="append",
        choices=sorted(SCHEDULER_FAMILY),
        metavar="NAME",
        help="restrict the family (repeatable; default: all of "
        f"{', '.join(SCHEDULER_FAMILY)})",
    )
    p.add_argument("--no-churn", action="store_true")
    p.add_argument(
        "--check-determinism",
        action="store_true",
        help="re-run on the other backend and exit 2 unless the report "
        "hashes are byte-identical",
    )
    p.set_defaults(func=cmd_slo)

    p = sub.add_parser("bench", help="reproducible performance baselines")
    bench_sub = p.add_subparsers(dest="bench_command", required=True)
    core = bench_sub.add_parser(
        "core", help="hot-path macro-benchmark (writes BENCH_core.json)"
    )
    core.add_argument("--seed", type=int, default=0)
    core.add_argument("--out", default="BENCH_core.json")
    core.add_argument(
        "--flows",
        default=",".join(str(count) for count in DEFAULT_FLOW_COUNTS),
        metavar="F1,F2,...",
    )
    core.add_argument(
        "--interfaces",
        default=",".join(str(count) for count in DEFAULT_INTERFACE_COUNTS),
        metavar="I1,I2,...",
    )
    core.add_argument(
        "--target-packets", type=int, default=DEFAULT_TARGET_PACKETS
    )
    core.add_argument(
        "--backend",
        choices=list(QUEUE_BACKENDS) + ["auto", "all"],
        default="all",
        help="event-queue backend sweep; 'auto' microbenchmarks and "
        "picks one, 'all' sweeps both (default: all)",
    )
    core.add_argument(
        "--batching",
        choices=["off", "on", "auto", "both"],
        default="both",
        help="fused service quanta sweep; 'auto' calibrates per cell "
        "and records the choice (default: both)",
    )
    core.add_argument(
        "--pypy", action="store_true",
        help="also run the grid under pypy3 (outcome recorded in the "
        "document's 'pypy' key, including skips)",
    )
    core.add_argument(
        "--fleet-devices",
        default=",".join(str(count) for count in DEFAULT_FLEET_DEVICES),
        metavar="D1,D2,...",
        help="device counts for the fleet scaling section",
    )
    core.add_argument(
        "--fleet-workers",
        default=",".join(str(count) for count in DEFAULT_FLEET_WORKERS),
        metavar="W1,W2,...",
        help="worker counts for the fleet scaling section",
    )
    core.add_argument(
        "--no-fleet", action="store_true",
        help="skip the fleet scaling section",
    )
    core.set_defaults(func=cmd_bench_core)
    smoke = bench_sub.add_parser(
        "smoke", help="fast bench sanity + optional perf regression gate"
    )
    smoke.add_argument("--seed", type=int, default=0)
    smoke.add_argument(
        "--check-regression", action="store_true",
        help="fail (exit 2) on >20%% packets/s loss vs the baseline "
        "(set MIDRR_SKIP_BENCH_REGRESSION to skip)",
    )
    smoke.add_argument("--baseline", default="BENCH_core.json")
    smoke.add_argument("--gate-flows", type=int, default=1000)
    smoke.add_argument("--gate-interfaces", type=int, default=8)
    smoke.add_argument(
        "--gate-fleet-devices", type=int, default=DEFAULT_FLEET_DEVICES[0]
    )
    smoke.add_argument("--gate-fleet-workers", type=int, default=1)
    smoke.set_defaults(func=cmd_bench_smoke)
    obs_bench = bench_sub.add_parser(
        "obs", help="metrics-overhead comparison (bare vs instrumented)"
    )
    obs_bench.add_argument("--seed", type=int, default=0)
    obs_bench.add_argument("--flows", type=int, default=1000)
    obs_bench.add_argument("--interfaces", type=int, default=8)
    obs_bench.add_argument(
        "--target-packets", type=int, default=DEFAULT_OVERHEAD_TARGET_PACKETS
    )
    obs_bench.add_argument(
        "--repeats", type=int, default=5,
        help="paired rounds; the median round's ratio is reported",
    )
    obs_bench.add_argument("--baseline", default="BENCH_core.json")
    obs_bench.add_argument(
        "--strict", action="store_true",
        help="exit 2 when overhead exceeds the budget",
    )
    obs_bench.set_defaults(func=cmd_bench_obs)

    p = sub.add_parser(
        "fleet", help="sharded multi-device fleet simulation + merged report"
    )
    p.add_argument("--devices", type=int, default=1000)
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--report", help="write the merged fleet report JSON here")
    p.add_argument(
        "--shard-log", help="write per-shard result payloads as JSONL here"
    )
    p.add_argument(
        "--executor", choices=list(EXECUTORS), default="process",
        help="'serial' runs every shard in-process (debugging/tests)",
    )
    p.add_argument(
        "--shards", type=int, default=0,
        help="shard count override (default: automatic, workers-independent)",
    )
    p.add_argument(
        "--workload", choices=list(WORKLOAD_KINDS), default="smartphone"
    )
    p.add_argument(
        "--duration", type=float, default=30.0,
        help="simulated seconds per device",
    )
    p.add_argument("--interfaces", type=int, default=2)
    p.add_argument(
        "--flows", type=int, default=8,
        help="flows per device (bulk workload only)",
    )
    p.add_argument(
        "--backend", choices=list(QUEUE_BACKENDS) + ["auto"], default="heap"
    )
    p.add_argument(
        "--batching", choices=["off", "on", "auto"], default="off",
        help="'auto' calibrates once at the coordinator and applies the "
        "same choice to every device",
    )
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser(
        "obs", help="instrumented run with JSONL snapshots + final report"
    )
    p.add_argument(
        "--selftest", action="store_true",
        help="registry + JSONL round-trip self-check (exit 2 on problems)",
    )
    p.add_argument("--scenario", help="Scenario JSON file (default: seeded bench cell)")
    p.add_argument("--scheduler", choices=sorted(SCHEDULER_CHOICES), default="midrr")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--flows", type=int, default=100)
    p.add_argument("--interfaces", type=int, default=4)
    p.add_argument(
        "--target-packets", type=int, default=DEFAULT_TARGET_PACKETS
    )
    p.add_argument(
        "--period", type=float, default=0.0,
        help="snapshot period in virtual seconds (default: duration/20)",
    )
    p.add_argument("--out", help="write snapshots to this JSONL file")
    p.set_defaults(func=cmd_obs)

    p = sub.add_parser("run", help="run a scenario JSON file")
    p.add_argument("scenario", help="path to a Scenario.to_dict() JSON document")
    p.add_argument(
        "--scheduler",
        choices=sorted(SCHEDULER_CHOICES),
        default="midrr",
    )
    p.add_argument("--warmup", type=float, default=2.0)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "checkpoint", help="run a scenario partway and save a checkpoint"
    )
    p.add_argument("scenario", help="path to a Scenario.to_dict() JSON document")
    p.add_argument(
        "--scheduler", choices=sorted(SCHEDULER_CHOICES), default="midrr"
    )
    p.add_argument(
        "--until", type=float, required=True,
        help="virtual time to stop and checkpoint at",
    )
    p.add_argument("--out", default="checkpoint.json")
    p.set_defaults(func=cmd_checkpoint)

    p = sub.add_parser(
        "resume", help="restore a checkpoint and replay to the horizon"
    )
    p.add_argument("checkpoint", help="path to a checkpoint file")
    p.add_argument(
        "--scheduler", choices=sorted(SCHEDULER_CHOICES), default="midrr",
        help="must match the scheduler the checkpoint was taken under",
    )
    p.set_defaults(func=cmd_resume)

    p = sub.add_parser("all", help="run every figure")
    p.set_defaults(func=cmd_all)

    p = sub.add_parser("solve", help="solve a max-min instance")
    p.add_argument("--interface", action="append", default=[], metavar="NAME=RATE")
    p.add_argument(
        "--flow", action="append", default=[], metavar="ID:WEIGHT:IF1,IF2|*"
    )
    p.set_defaults(func=cmd_solve)
    return parser


def cmd_all(args: argparse.Namespace) -> None:
    """Run every figure in sequence."""
    namespace = argparse.Namespace(zoom=True, seed=0)
    for command in (cmd_fig1, cmd_fig6, cmd_fig7, cmd_fig9, cmd_fig10):
        command(namespace)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``midrr`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
