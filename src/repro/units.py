"""Unit helpers: rates, sizes and time.

Internally the library uses SI base units everywhere:

* time — seconds (``float``)
* data — bytes (``int``) for packet sizes, bits for rates
* rate — bits per second (``float``)

These helpers exist so scenario code can say ``mbps(3)`` instead of
``3_000_000.0`` and so reports can render values readably.
"""

from __future__ import annotations

#: Bits per byte, named to avoid magic ``8`` constants in rate math.
BITS_PER_BYTE = 8

#: Conventional Ethernet MTU in bytes; default maximum packet size.
ETHERNET_MTU = 1500

#: Microseconds in one second.
US_PER_S = 1_000_000.0

#: Nanoseconds in one second.
NS_PER_S = 1_000_000_000.0


def kbps(value: float) -> float:
    """Return *value* kilobits/second in bits/second."""
    return float(value) * 1e3


def mbps(value: float) -> float:
    """Return *value* megabits/second in bits/second."""
    return float(value) * 1e6


def gbps(value: float) -> float:
    """Return *value* gigabits/second in bits/second."""
    return float(value) * 1e9


def kib(value: float) -> int:
    """Return *value* kibibytes in bytes."""
    return int(value * 1024)


def mib(value: float) -> int:
    """Return *value* mebibytes in bytes."""
    return int(value * 1024 * 1024)


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a byte count to bits."""
    return num_bytes * BITS_PER_BYTE

def bits_to_bytes(num_bits: float) -> float:
    """Convert a bit count to bytes."""
    return num_bits / BITS_PER_BYTE


def transmission_time(size_bytes: float, rate_bps: float) -> float:
    """Seconds needed to serialize ``size_bytes`` at ``rate_bps``.

    Raises :class:`ValueError` for non-positive rates because a zero
    rate would silently produce ``inf`` and hang a simulation.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps!r}")
    return bytes_to_bits(size_bytes) / rate_bps


def format_rate(rate_bps: float) -> str:
    """Render a rate in the most natural SI unit (e.g. ``'3.00 Mb/s'``)."""
    magnitude = abs(rate_bps)
    if magnitude >= 1e9:
        return f"{rate_bps / 1e9:.2f} Gb/s"
    if magnitude >= 1e6:
        return f"{rate_bps / 1e6:.2f} Mb/s"
    if magnitude >= 1e3:
        return f"{rate_bps / 1e3:.2f} kb/s"
    return f"{rate_bps:.2f} b/s"


def format_bytes(num_bytes: float) -> str:
    """Render a byte count readably (e.g. ``'1.50 MiB'``)."""
    magnitude = abs(num_bytes)
    if magnitude >= 1024 ** 3:
        return f"{num_bytes / 1024 ** 3:.2f} GiB"
    if magnitude >= 1024 ** 2:
        return f"{num_bytes / 1024 ** 2:.2f} MiB"
    if magnitude >= 1024:
        return f"{num_bytes / 1024:.2f} KiB"
    return f"{int(num_bytes)} B"


def format_duration(seconds: float) -> str:
    """Render a duration readably (e.g. ``'2.50 us'``, ``'66.0 s'``)."""
    magnitude = abs(seconds)
    if magnitude >= 1.0:
        return f"{seconds:.1f} s"
    if magnitude >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    if magnitude >= 1e-6:
        return f"{seconds * 1e6:.2f} us"
    return f"{seconds * 1e9:.1f} ns"
