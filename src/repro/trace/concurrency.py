"""Concurrency analysis of flow-interval traces (Figure 7).

Given a list of :class:`~repro.trace.smartphone.FlowInterval`, compute
the time-weighted distribution of the number of simultaneously open
flows, restricted — as the paper does — to *active periods* ("when
there is at least one ongoing flow").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigurationError
from .smartphone import FlowInterval


@dataclass(frozen=True)
class ConcurrencyStats:
    """Time-weighted concurrency distribution over active periods."""

    #: ``{concurrency_level: seconds spent at that level}`` for N ≥ 1.
    time_at_level: Dict[int, float]

    @property
    def active_time(self) -> float:
        """Total seconds with at least one ongoing flow."""
        return sum(self.time_at_level.values())

    @property
    def max_concurrent(self) -> int:
        """Largest concurrency level observed."""
        return max(self.time_at_level) if self.time_at_level else 0

    def fraction_at_least(self, level: int) -> float:
        """P[N ≥ level | active] — the paper reports this for level 7."""
        active = self.active_time
        if active <= 0:
            return 0.0
        covered = sum(
            seconds for n, seconds in self.time_at_level.items() if n >= level
        )
        return covered / active

    def cdf(self) -> List[Tuple[int, float]]:
        """``[(n, P[N ≤ n | active]), ...]`` for plotting Figure 7."""
        active = self.active_time
        if active <= 0:
            return []
        points = []
        cumulative = 0.0
        for level in range(1, self.max_concurrent + 1):
            cumulative += self.time_at_level.get(level, 0.0)
            points.append((level, cumulative / active))
        return points

    def quantile(self, q: float) -> int:
        """Smallest n with P[N ≤ n | active] ≥ q."""
        if not 0 < q <= 1:
            raise ConfigurationError(f"quantile must be in (0, 1], got {q}")
        for level, probability in self.cdf():
            if probability >= q - 1e-12:
                return level
        return self.max_concurrent


def concurrency_stats(intervals: Sequence[FlowInterval]) -> ConcurrencyStats:
    """Sweep-line computation of time spent at each concurrency level."""
    if not intervals:
        return ConcurrencyStats(time_at_level={})
    events: List[Tuple[float, int]] = []
    for interval in intervals:
        events.append((interval.start, +1))
        events.append((interval.end, -1))
    # Ends sort before starts at equal timestamps so a back-to-back
    # flow handoff does not spuriously count as concurrency 2.
    events.sort(key=lambda item: (item[0], item[1]))
    time_at_level: Dict[int, float] = {}
    level = 0
    previous_time = events[0][0]
    for time, delta in events:
        if time > previous_time and level >= 1:
            time_at_level[level] = time_at_level.get(level, 0.0) + (
                time - previous_time
            )
        previous_time = time
        level += delta
        if level < 0:
            raise ConfigurationError("negative concurrency: overlapping end events")
    return ConcurrencyStats(time_at_level=time_at_level)
