"""Generative smartphone traffic model (Figure 7 substrate).

The paper instruments the authors' own Android phones for a week and
reports the distribution of the number of *concurrent flows* during
active periods: 10 % of the time there are 7 or more ongoing flows, and
the maximum observed is 35.

We cannot use the authors' personal logs, so this module generates
synthetic device traces from an app-behaviour model and reproduces the
published statistics. The model is deliberately simple and inspectable:

* The device alternates between *sessions* (user interacting) and idle
  gaps, both exponentially distributed.
* During a session, apps launch as a Poisson process. Each app is drawn
  from a small catalogue (browser, video, music, sync, voip, ...)
  whose entries define how many parallel flows the app opens (web pages
  open many short connections; a music stream holds one long one) and
  the flow-duration distribution.
* Background apps (email sync, push notifications) fire flows during
  sessions as well, modelling the long tail of short flows.

The default parameters were calibrated so the *active-period*
concurrency CDF matches the paper's two published statistics; the
calibration is asserted in the test suite and the Figure 7 bench prints
the full CDF next to those targets.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

#: One week, the paper's instrumentation period.
WEEK_SECONDS = 7 * 24 * 3600.0


@dataclass(frozen=True)
class AppProfile:
    """Traffic behaviour of one app category."""

    name: str
    #: Relative launch probability within a session.
    popularity: float
    #: Number of parallel flows opened per activity burst: (min, max).
    flows_per_burst: Tuple[int, int]
    #: Mean flow duration in seconds (exponentially distributed).
    mean_flow_duration: float
    #: Mean number of bursts per app launch.
    mean_bursts: float = 1.0
    #: Mean gap between bursts in seconds.
    mean_burst_gap: float = 5.0


#: A catalogue loosely following Falaki et al. (IMC '10), the smartphone
#: traffic study the paper cites: browsing dominates, with many short
#: parallel connections; media apps hold few long flows.
DEFAULT_APPS: Tuple[AppProfile, ...] = (
    AppProfile("browser", 0.40, (2, 12), 8.0, mean_bursts=4.0, mean_burst_gap=12.0),
    AppProfile("social", 0.22, (1, 6), 6.0, mean_bursts=3.0, mean_burst_gap=15.0),
    AppProfile("video", 0.10, (1, 3), 90.0, mean_bursts=1.5, mean_burst_gap=30.0),
    AppProfile("music", 0.08, (1, 2), 180.0),
    AppProfile("voip", 0.05, (1, 2), 240.0),
    AppProfile("mail_sync", 0.10, (1, 4), 4.0, mean_bursts=2.0),
    AppProfile("app_update", 0.05, (2, 8), 20.0),
)


#: Median transfer size per app category, bytes (order-of-magnitude
#: figures in the spirit of Falaki et al., IMC '10: browsing moves tens
#: of kB per connection, media moves megabytes).
APP_MEDIAN_BYTES: Dict[str, int] = {
    "browser": 60_000,
    "social": 30_000,
    "video": 4_000_000,
    "music": 2_000_000,
    "voip": 500_000,
    "mail_sync": 15_000,
    "app_update": 1_500_000,
    "background": 8_000,
}


@dataclass(frozen=True)
class FlowInterval:
    """One flow's lifetime within the device trace."""

    start: float
    end: float
    app: str

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError("flow interval must have positive length")

    @property
    def duration(self) -> float:
        """Seconds the flow was open."""
        return self.end - self.start

    def transfer_bytes(self, rng: random.Random) -> int:
        """A plausible transfer size for this flow.

        Log-normal around the app category's median (σ = 1, so the
        heavy tail spans roughly two orders of magnitude), floored at
        one packet.
        """
        median = APP_MEDIAN_BYTES.get(self.app, 20_000)
        size = rng.lognormvariate(math.log(median), 1.0)
        return max(1500, int(size))


@dataclass(frozen=True)
class DeviceTraceConfig:
    """Knobs for the generative model (defaults are calibrated)."""

    duration: float = WEEK_SECONDS
    #: Mean user session length, seconds.
    mean_session: float = 300.0
    #: Mean idle gap between sessions, seconds.
    mean_gap: float = 1500.0
    #: App launches per second during a session. Calibrated so that
    #: P[N ≥ 7 | active] ≈ 0.10, the paper's published statistic.
    launch_rate: float = 0.0105
    #: Background flows per second during a session.
    background_rate: float = 0.01
    #: Mean background flow duration, seconds.
    mean_background_duration: float = 30.0
    apps: Tuple[AppProfile, ...] = DEFAULT_APPS
    #: Hard cap mirroring OS connection limits; the paper observed 35.
    max_concurrent: int = 35


class SmartphoneTraceGenerator:
    """Generates :class:`FlowInterval` traces from the app model."""

    def __init__(self, config: Optional[DeviceTraceConfig] = None, seed: int = 0) -> None:
        self.config = config if config is not None else DeviceTraceConfig()
        self._rng = random.Random(seed)
        total = sum(app.popularity for app in self.config.apps)
        if total <= 0:
            raise ConfigurationError("app popularities must sum to a positive value")
        self._weights = [app.popularity / total for app in self.config.apps]

    def _pick_app(self) -> AppProfile:
        return self._rng.choices(self.config.apps, weights=self._weights, k=1)[0]

    def generate(self) -> List[FlowInterval]:
        """Produce one device-week of flow intervals."""
        config = self.config
        rng = self._rng
        flows: List[FlowInterval] = []
        now = 0.0
        while now < config.duration:
            session_length = rng.expovariate(1.0 / config.mean_session)
            session_end = min(now + session_length, config.duration)
            self._fill_session(now, session_end, flows)
            now = session_end + rng.expovariate(1.0 / config.mean_gap)
        return self._enforce_cap(flows)

    def _fill_session(
        self, start: float, end: float, flows: List[FlowInterval]
    ) -> None:
        config = self.config
        rng = self._rng
        # App launches.
        t = start + rng.expovariate(config.launch_rate)
        while t < end:
            app = self._pick_app()
            num_bursts = max(1, round(rng.expovariate(1.0 / app.mean_bursts)))
            burst_time = t
            for _ in range(num_bursts):
                if burst_time >= end:
                    break
                count = rng.randint(*app.flows_per_burst)
                for _ in range(count):
                    duration = rng.expovariate(1.0 / app.mean_flow_duration)
                    flows.append(
                        FlowInterval(
                            start=burst_time,
                            end=burst_time + max(duration, 0.05),
                            app=app.name,
                        )
                    )
                burst_time += rng.expovariate(1.0 / app.mean_burst_gap)
            t += rng.expovariate(config.launch_rate)
        # Background flows.
        t = start + rng.expovariate(config.background_rate)
        while t < end:
            duration = rng.expovariate(1.0 / config.mean_background_duration)
            flows.append(
                FlowInterval(start=t, end=t + max(duration, 0.05), app="background")
            )
            t += rng.expovariate(config.background_rate)

    def _enforce_cap(self, flows: List[FlowInterval]) -> List[FlowInterval]:
        """Drop flows that would exceed the device's concurrency cap.

        Mirrors the OS/socket limits that bound the paper's observed
        maximum at 35: flows arriving while the cap is reached are
        rejected (in reality they would queue or fail).
        """
        cap = self.config.max_concurrent
        events: List[Tuple[float, int, FlowInterval]] = []
        for interval in flows:
            events.append((interval.start, 1, interval))
        events.sort(key=lambda item: (item[0], item[1]))
        active: List[FlowInterval] = []
        kept: List[FlowInterval] = []
        for time, _, interval in events:
            active = [f for f in active if f.end > time]
            if len(active) < cap:
                active.append(interval)
                kept.append(interval)
        return kept
