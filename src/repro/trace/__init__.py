"""Smartphone workload model, concurrency analysis, fleet workloads."""

from .concurrency import ConcurrencyStats, concurrency_stats
from .fleet_workloads import (
    WORKLOAD_KINDS,
    DeviceWorkload,
    build_device_scenario,
)
from .smartphone import (
    DEFAULT_APPS,
    WEEK_SECONDS,
    AppProfile,
    DeviceTraceConfig,
    FlowInterval,
    SmartphoneTraceGenerator,
)

__all__ = [
    "AppProfile",
    "ConcurrencyStats",
    "DEFAULT_APPS",
    "DeviceTraceConfig",
    "DeviceWorkload",
    "FlowInterval",
    "SmartphoneTraceGenerator",
    "WEEK_SECONDS",
    "WORKLOAD_KINDS",
    "build_device_scenario",
    "concurrency_stats",
]
