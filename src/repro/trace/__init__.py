"""Smartphone workload model and concurrency analysis (Figure 7)."""

from .concurrency import ConcurrencyStats, concurrency_stats
from .smartphone import (
    DEFAULT_APPS,
    WEEK_SECONDS,
    AppProfile,
    DeviceTraceConfig,
    FlowInterval,
    SmartphoneTraceGenerator,
)

__all__ = [
    "AppProfile",
    "ConcurrencyStats",
    "DEFAULT_APPS",
    "DeviceTraceConfig",
    "FlowInterval",
    "SmartphoneTraceGenerator",
    "WEEK_SECONDS",
    "concurrency_stats",
]
