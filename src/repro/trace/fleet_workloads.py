"""Per-device workload factories for the fleet runner.

The fleet coordinator (:mod:`repro.fleet`) simulates thousands of
independent devices; each one needs a complete
:class:`~repro.core.scenario.Scenario` that is a *pure function* of
``(workload spec, device_id, device_seed)`` so any device can be re-run
standalone, byte-identically, outside the fleet. This module provides
that function.

Two workload kinds are supported:

* ``"smartphone"`` — drives the generative app-behaviour model from
  :mod:`repro.trace.smartphone` with a densified configuration (fleet
  runs simulate seconds, not the paper's device-week), converting each
  generated :class:`FlowInterval` into a bounded bulk transfer whose
  size is drawn from the app category's log-normal.  Devices differ
  realistically: some are idle for the whole window, some juggle a
  dozen concurrent flows.
* ``"bulk"`` — a fixed cell of continuously backlogged flows with
  heterogeneous weights and interface restrictions (the paper's
  evaluation workload).  Every device does identical work, which makes
  this the right kind for throughput benchmarking.

Determinism contract: every random draw below comes from
``random.Random`` instances seeded via :func:`derive_seed` from the
*device* seed — never from global state or wall clock — so the same
``(workload, device_id, device_seed)`` triple always yields an
identical scenario document on every platform.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.scenario import FlowSpec, InterfaceSpec, Scenario, TrafficSpec
from ..errors import ConfigurationError
from ..sim.randomness import derive_seed
from .smartphone import DeviceTraceConfig, SmartphoneTraceGenerator

#: Workload kinds understood by :func:`build_device_scenario`.
WORKLOAD_KINDS = ("smartphone", "bulk")

#: Apps whose flows the user is actively waiting on get a heavier φ —
#: mirroring the paper's premise that preferences differ across flows.
_APP_WEIGHTS: Dict[str, float] = {
    "video": 2.0,
    "voip": 2.0,
    "browser": 1.5,
}

#: Per-packet latency budgets (seconds) by app category. Interactive
#: apps carry tight deadlines so fleet runs exercise the engine's
#: deadline-miss accounting; background/bulk apps stay elastic (None).
_APP_DEADLINES: Dict[str, float] = {
    "voip": 0.050,
    "video": 0.150,
    "browser": 0.300,
}


@dataclass(frozen=True)
class DeviceWorkload:
    """Declarative description of one device's simulated workload.

    The same spec is shared by every device in a fleet; per-device
    variation comes exclusively from the device seed.
    """

    kind: str = "smartphone"
    #: Simulated seconds per device. Fleet runs are short windows —
    #: population statistics come from device count, not duration.
    duration: float = 30.0
    num_interfaces: int = 2
    #: Rate of the fastest interface; interface ``i`` runs at
    #: ``rate / (i + 1)`` (WiFi faster than cellular, etc.).
    interface_rate_bps: float = 10_000_000.0
    packet_size: int = 1500
    # -- smartphone knobs (densified relative to the Figure 7 defaults
    #    so a 30 s window actually contains traffic) --
    mean_session: float = 20.0
    mean_gap: float = 10.0
    launch_rate: float = 0.2
    background_rate: float = 0.05
    max_concurrent: int = 35
    # -- bulk knobs --
    num_flows: int = 8

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ConfigurationError(
                f"unknown workload kind {self.kind!r}; "
                f"expected one of {WORKLOAD_KINDS}"
            )
        if self.duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration}"
            )
        if self.num_interfaces < 1:
            raise ConfigurationError(
                f"num_interfaces must be ≥ 1, got {self.num_interfaces}"
            )
        if self.interface_rate_bps <= 0:
            raise ConfigurationError(
                f"interface_rate_bps must be positive, got {self.interface_rate_bps}"
            )
        if self.packet_size <= 0:
            raise ConfigurationError(
                f"packet_size must be positive, got {self.packet_size}"
            )
        if self.num_flows < 1:
            raise ConfigurationError(
                f"num_flows must be ≥ 1, got {self.num_flows}"
            )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe spec, embedded verbatim in fleet reports."""
        return {
            "kind": self.kind,
            "duration": self.duration,
            "num_interfaces": self.num_interfaces,
            "interface_rate_bps": self.interface_rate_bps,
            "packet_size": self.packet_size,
            "mean_session": self.mean_session,
            "mean_gap": self.mean_gap,
            "launch_rate": self.launch_rate,
            "background_rate": self.background_rate,
            "max_concurrent": self.max_concurrent,
            "num_flows": self.num_flows,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DeviceWorkload":
        """Reconstruct a spec produced by :meth:`to_dict`."""
        try:
            return cls(**data)  # type: ignore[arg-type]
        except TypeError as exc:
            raise ConfigurationError(
                f"malformed device workload document: {exc}"
            ) from exc


def _interfaces(workload: DeviceWorkload) -> Tuple[InterfaceSpec, ...]:
    return tuple(
        InterfaceSpec(
            interface_id=f"if{index}",
            rate_bps=workload.interface_rate_bps / (index + 1),
        )
        for index in range(workload.num_interfaces)
    )


def _smartphone_flows(
    workload: DeviceWorkload, device_seed: int
) -> Tuple[FlowSpec, ...]:
    config = DeviceTraceConfig(
        duration=workload.duration,
        mean_session=workload.mean_session,
        mean_gap=workload.mean_gap,
        launch_rate=workload.launch_rate,
        background_rate=workload.background_rate,
        max_concurrent=workload.max_concurrent,
    )
    intervals = SmartphoneTraceGenerator(
        config, seed=derive_seed(device_seed, "trace")
    ).generate()
    size_rng = random.Random(derive_seed(device_seed, "bytes"))
    flows = []
    for index, interval in enumerate(intervals):
        flows.append(
            FlowSpec(
                flow_id=f"f{index}:{interval.app}",
                weight=_APP_WEIGHTS.get(interval.app, 1.0),
                traffic=TrafficSpec(
                    kind="bulk",
                    total_bytes=interval.transfer_bytes(size_rng),
                    packet_size=workload.packet_size,
                    deadline=_APP_DEADLINES.get(interval.app),
                ),
                start_time=interval.start,
            )
        )
    return tuple(flows)


def _bulk_flows(workload: DeviceWorkload) -> Tuple[FlowSpec, ...]:
    interface_ids = tuple(f"if{index}" for index in range(workload.num_interfaces))
    flows = []
    for index in range(workload.num_flows):
        # Alternate unrestricted flows with single-interface ones, the
        # preference structure the paper's evaluation exercises.
        restricted: Optional[Tuple[str, ...]] = None
        if index % 2 == 1:
            restricted = (interface_ids[index % workload.num_interfaces],)
        flows.append(
            FlowSpec(
                flow_id=f"bulk{index}",
                weight=float(index % 3 + 1),
                interfaces=restricted,
                traffic=TrafficSpec(
                    kind="bulk",
                    total_bytes=None,
                    packet_size=workload.packet_size,
                ),
            )
        )
    return tuple(flows)


def build_device_scenario(
    workload: DeviceWorkload, device_id: str, device_seed: int
) -> Scenario:
    """Materialize one device's scenario from the shared workload spec.

    Pure and deterministic: same arguments, same scenario — the
    property the fleet's per-device reproducibility guarantee rests on.
    An idle smartphone device (no app launches inside the window) is a
    legitimate outcome and yields a scenario with zero flows.
    """
    if not device_id:
        raise ConfigurationError("device_id must be non-empty")
    if workload.kind == "smartphone":
        flows = _smartphone_flows(workload, device_seed)
    else:
        flows = _bulk_flows(workload)
    return Scenario(
        interfaces=_interfaces(workload),
        flows=flows,
        duration=workload.duration,
        seed=device_seed,
        name=f"device:{device_id}",
    )
