"""Per-interface NAT / header rewriting.

The paper's bridge presents applications with a *virtual* interface
holding "an arbitrarily chosen address and then rewriting the packet
headers appropriately before transmission" [20]. This module does that
rewriting on real bytes: outbound packets get the chosen physical
interface's source address (and a translated source port so return
traffic can be demultiplexed); inbound packets are rewritten back to
the virtual address before delivery to the application.

TCP/UDP checksums are recomputed after rewriting, exactly as a kernel
NAT must.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import HeaderError
from ..net.addresses import Ipv4Address
from ..net.headers import IPPROTO_TCP, IPPROTO_UDP, Ipv4Header, TcpHeader, UdpHeader
from ..net.packet import FiveTuple
from .classifier import parse_five_tuple

#: First port used for NAT translations.
NAT_PORT_BASE = 20000

#: Ports wrap after this many bindings.
NAT_PORT_SPAN = 40000


@dataclass(frozen=True)
class NatBinding:
    """One active translation."""

    original: FiveTuple
    translated: FiveTuple
    interface_id: str


class NatTable:
    """Address/port translation state for one bridge."""

    def __init__(self, virtual_address: Ipv4Address) -> None:
        self.virtual_address = virtual_address
        self._by_original: Dict[Tuple[str, FiveTuple], NatBinding] = {}
        self._by_translated: Dict[FiveTuple, NatBinding] = {}
        self._next_port = NAT_PORT_BASE

    def _allocate_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        if self._next_port >= NAT_PORT_BASE + NAT_PORT_SPAN:
            self._next_port = NAT_PORT_BASE
        return port

    def bind(
        self,
        five_tuple: FiveTuple,
        interface_id: str,
        interface_address: Ipv4Address,
    ) -> NatBinding:
        """Get (or create) the binding for *five_tuple* on an interface.

        Distinct interfaces get distinct bindings for the same original
        tuple — the same application flow can be split across physical
        paths and still demultiplex correctly on return.
        """
        key = (interface_id, five_tuple)
        binding = self._by_original.get(key)
        if binding is not None:
            return binding
        translated = FiveTuple(
            src=interface_address,
            dst=five_tuple.dst,
            src_port=self._allocate_port(),
            dst_port=five_tuple.dst_port,
            protocol=five_tuple.protocol,
        )
        binding = NatBinding(
            original=five_tuple, translated=translated, interface_id=interface_id
        )
        self._by_original[key] = binding
        self._by_translated[translated] = binding
        return binding

    def lookup_return(self, reverse_tuple: FiveTuple) -> Optional[NatBinding]:
        """Find the binding matching *inbound* traffic.

        Inbound packets carry the reverse of the translated tuple
        (dst = interface address/port).
        """
        return self._by_translated.get(reverse_tuple.reversed())

    def __len__(self) -> int:
        return len(self._by_translated)


def rewrite_outbound(
    ip_bytes: bytes,
    binding: NatBinding,
) -> bytes:
    """Rewrite a raw outbound IPv4 packet per *binding*.

    Replaces the source address/port with the translated ones and
    recomputes the IPv4 and transport checksums.
    """
    five_tuple, ip_header = parse_five_tuple(ip_bytes)
    if five_tuple != binding.original:
        raise HeaderError(
            f"packet tuple {five_tuple} does not match binding {binding.original}"
        )
    translated = binding.translated
    new_ip = ip_header.with_addresses(src=translated.src)
    payload = ip_bytes[Ipv4Header.LENGTH:]
    if ip_header.protocol == IPPROTO_TCP:
        tcp = TcpHeader.unpack(payload)
        body = payload[TcpHeader.LENGTH:]
        new_tcp = TcpHeader(
            src_port=translated.src_port,
            dst_port=tcp.dst_port,
            seq=tcp.seq,
            ack=tcp.ack,
            flags=tcp.flags,
            window=tcp.window,
            urgent=tcp.urgent,
        )
        transport_bytes = new_tcp.pack(new_ip.src, new_ip.dst, body)
    else:
        udp = UdpHeader.unpack(payload)
        body = payload[UdpHeader.LENGTH:]
        new_udp = UdpHeader(
            src_port=translated.src_port,
            dst_port=udp.dst_port,
            length=udp.length,
        )
        transport_bytes = new_udp.pack(new_ip.src, new_ip.dst, body)
    return new_ip.pack() + transport_bytes + body


def rewrite_inbound(
    ip_bytes: bytes,
    binding: NatBinding,
    virtual_address: Ipv4Address,
) -> bytes:
    """Rewrite a raw inbound IPv4 packet back to the virtual address."""
    five_tuple, ip_header = parse_five_tuple(ip_bytes)
    expected = binding.translated.reversed()
    if five_tuple != expected:
        raise HeaderError(
            f"inbound tuple {five_tuple} does not match binding reverse {expected}"
        )
    original = binding.original
    new_ip = ip_header.with_addresses(dst=virtual_address)
    payload = ip_bytes[Ipv4Header.LENGTH:]
    if ip_header.protocol == IPPROTO_TCP:
        tcp = TcpHeader.unpack(payload)
        body = payload[TcpHeader.LENGTH:]
        new_tcp = TcpHeader(
            src_port=tcp.src_port,
            dst_port=original.src_port,
            seq=tcp.seq,
            ack=tcp.ack,
            flags=tcp.flags,
            window=tcp.window,
            urgent=tcp.urgent,
        )
        transport_bytes = new_tcp.pack(new_ip.src, new_ip.dst, body)
    else:
        udp = UdpHeader.unpack(payload)
        body = payload[UdpHeader.LENGTH:]
        new_udp = UdpHeader(
            src_port=udp.src_port,
            dst_port=original.src_port,
            length=udp.length,
        )
        transport_bytes = new_udp.pack(new_ip.src, new_ip.dst, body)
    return new_ip.pack() + transport_bytes + body
