"""Virtual-interface bridge: classifier, NAT rewriting and the bridge
engine (the paper's Linux kernel bridge, Figure 3)."""

from .bridge import MiDrrBridge, VirtualInterface
from .classifier import FlowClassifier, MatchRule, parse_five_tuple
from .nat import NatBinding, NatTable, rewrite_inbound, rewrite_outbound

__all__ = [
    "FlowClassifier",
    "MatchRule",
    "MiDrrBridge",
    "NatBinding",
    "NatTable",
    "VirtualInterface",
    "parse_five_tuple",
    "rewrite_inbound",
    "rewrite_outbound",
]
