"""Flow classification for the virtual-interface bridge.

The paper's kernel bridge must map each packet emitted by an
application to a *flow* (the unit preferences apply to). The classifier
parses real header bytes into a :class:`FiveTuple` and resolves it to a
flow id through a rule table, mirroring how a mobile OS maps sockets or
applications onto policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import HeaderError
from ..net.addresses import Ipv4Address
from ..net.headers import IPPROTO_TCP, IPPROTO_UDP, Ipv4Header, TcpHeader, UdpHeader
from ..net.packet import FiveTuple


def parse_five_tuple(ip_bytes: bytes) -> Tuple[FiveTuple, Ipv4Header]:
    """Extract the five-tuple from a raw IPv4 packet.

    Returns the tuple and the parsed IPv4 header. Raises
    :class:`HeaderError` for non-TCP/UDP or malformed packets.
    """
    ip_header = Ipv4Header.unpack(ip_bytes)
    payload = ip_bytes[Ipv4Header.LENGTH:]
    if ip_header.protocol == IPPROTO_TCP:
        transport = TcpHeader.unpack(payload)
        ports = (transport.src_port, transport.dst_port)
    elif ip_header.protocol == IPPROTO_UDP:
        udp = UdpHeader.unpack(payload)
        ports = (udp.src_port, udp.dst_port)
    else:
        raise HeaderError(
            f"cannot classify protocol {ip_header.protocol} (need TCP or UDP)"
        )
    five_tuple = FiveTuple(
        src=ip_header.src,
        dst=ip_header.dst,
        src_port=ports[0],
        dst_port=ports[1],
        protocol=ip_header.protocol,
    )
    return five_tuple, ip_header


@dataclass(frozen=True)
class MatchRule:
    """A classification rule: optional field matches → flow id.

    ``None`` fields are wildcards. Rules are evaluated in insertion
    order; first match wins (like iptables).
    """

    flow_id: str
    src: Optional[Ipv4Address] = None
    dst: Optional[Ipv4Address] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    protocol: Optional[int] = None

    def matches(self, five_tuple: FiveTuple) -> bool:
        """Does *five_tuple* satisfy every non-wildcard field?"""
        return (
            (self.src is None or self.src == five_tuple.src)
            and (self.dst is None or self.dst == five_tuple.dst)
            and (self.src_port is None or self.src_port == five_tuple.src_port)
            and (self.dst_port is None or self.dst_port == five_tuple.dst_port)
            and (self.protocol is None or self.protocol == five_tuple.protocol)
        )


class FlowClassifier:
    """Orders rules and memoizes exact five-tuple lookups."""

    def __init__(self, default_flow_id: Optional[str] = None) -> None:
        self._rules: List[MatchRule] = []
        self._default = default_flow_id
        self._cache: Dict[FiveTuple, Optional[str]] = {}

    def add_rule(self, rule: MatchRule) -> None:
        """Append a rule (first match wins)."""
        self._rules.append(rule)
        self._cache.clear()

    def classify(self, five_tuple: FiveTuple) -> Optional[str]:
        """Resolve a five-tuple to a flow id (or the default)."""
        if five_tuple in self._cache:
            return self._cache[five_tuple]
        result = self._default
        for rule in self._rules:
            if rule.matches(five_tuple):
                result = rule.flow_id
                break
        self._cache[five_tuple] = result
        return result

    def classify_packet(self, ip_bytes: bytes) -> Optional[str]:
        """Classify raw IPv4 bytes end to end."""
        five_tuple, _ = parse_five_tuple(ip_bytes)
        return self.classify(five_tuple)

    def __len__(self) -> int:
        return len(self._rules)
