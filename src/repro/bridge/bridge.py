"""The virtual-interface bridge (the paper's Figure 3, in simulation).

Applications see a single :class:`VirtualInterface` with an arbitrary
IPv4 address. The :class:`MiDrrBridge` classifies each raw packet into
a flow, queues it under that flow's preferences, and lets the bound
multi-interface scheduler (miDRR, or any baseline) decide which
*physical* interface transmits it. At transmission time the packet's
headers are rewritten to the chosen interface's address via NAT, and
inbound return traffic is rewritten back — all on real header bytes
with valid checksums, as the 1,010-line C bridge does in the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError, HeaderError
from ..net.addresses import Ipv4Address
from ..net.flow import Flow
from ..net.interface import Interface
from ..net.packet import Packet
from ..schedulers.base import MultiInterfaceScheduler
from ..sim.simulator import Simulator
from ..core.engine import SchedulingEngine
from .classifier import FlowClassifier, parse_five_tuple
from .nat import NatTable, rewrite_inbound, rewrite_outbound

#: Callback invoked with inbound packets after reverse NAT.
InboundHandler = Callable[[bytes], None]


class VirtualInterface:
    """The single interface applications send through."""

    def __init__(self, address: Ipv4Address, bridge: "MiDrrBridge") -> None:
        self.address = address
        self._bridge = bridge
        self.packets_accepted = 0
        self.packets_rejected = 0

    def send(self, ip_bytes: bytes) -> bool:
        """Submit one raw IPv4 packet from the application side.

        Returns ``False`` when the packet could not be classified to a
        flow with a policy (it is then dropped, as the paper's bridge
        forwards only managed traffic).
        """
        accepted = self._bridge.submit(ip_bytes)
        if accepted:
            self.packets_accepted += 1
        else:
            self.packets_rejected += 1
        return accepted


class MiDrrBridge(SchedulingEngine):
    """A scheduling engine that speaks raw IPv4 on both edges."""

    def __init__(
        self,
        sim: Simulator,
        scheduler: MultiInterfaceScheduler,
        virtual_address: Ipv4Address,
        classifier: Optional[FlowClassifier] = None,
    ) -> None:
        super().__init__(sim, scheduler)
        self.virtual = VirtualInterface(virtual_address, self)
        self.classifier = classifier if classifier is not None else FlowClassifier()
        self.nat = NatTable(virtual_address)
        self._addresses: Dict[str, Ipv4Address] = {}
        self._inbound_handlers: List[InboundHandler] = []
        self.outbound_rewrites = 0
        self.inbound_rewrites = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_physical_interface(
        self, interface: Interface, address: Ipv4Address
    ) -> None:
        """Register a physical interface with its own IPv4 address."""
        self._addresses[interface.interface_id] = address
        self.add_interface(interface)

    def interface_address(self, interface_id: str) -> Ipv4Address:
        """The address assigned to *interface_id*."""
        try:
            return self._addresses[interface_id]
        except KeyError:
            raise ConfigurationError(f"unknown interface {interface_id!r}") from None

    # ------------------------------------------------------------------
    # Outbound path
    # ------------------------------------------------------------------
    def submit(self, ip_bytes: bytes) -> bool:
        """Classify and enqueue one application packet."""
        five_tuple, _ = parse_five_tuple(ip_bytes)
        flow_id = self.classifier.classify(five_tuple)
        if flow_id is None:
            return False
        flow = self.flows.get(flow_id)
        if flow is None:
            return False
        packet = Packet(
            flow_id=flow_id,
            size_bytes=len(ip_bytes),
            created_at=self._sim.now,
            five_tuple=five_tuple,
            wire_bytes=ip_bytes,
        )
        return flow.offer(packet)

    def _supply_packet(self, interface: Interface) -> Optional[Packet]:
        """Scheduler decision plus NAT rewriting at transmit time."""
        packet = super()._supply_packet(interface)
        if packet is None or packet.wire_bytes is None:
            return packet
        assert packet.five_tuple is not None
        binding = self.nat.bind(
            packet.five_tuple,
            interface.interface_id,
            self.interface_address(interface.interface_id),
        )
        packet.wire_bytes = rewrite_outbound(packet.wire_bytes, binding)
        self.outbound_rewrites += 1
        return packet

    # ------------------------------------------------------------------
    # Inbound path
    # ------------------------------------------------------------------
    def on_inbound(self, handler: InboundHandler) -> None:
        """Register a callback receiving reverse-translated packets."""
        self._inbound_handlers.append(handler)

    def receive_inbound(self, ip_bytes: bytes) -> bool:
        """Process a packet arriving on any physical interface.

        Looks up the NAT binding, rewrites the destination back to the
        virtual address and delivers to the application side. Returns
        ``False`` for packets with no binding (dropped, like a real NAT
        would for unsolicited traffic).
        """
        five_tuple, _ = parse_five_tuple(ip_bytes)
        binding = self.nat.lookup_return(five_tuple)
        if binding is None:
            return False
        rewritten = rewrite_inbound(ip_bytes, binding, self.nat.virtual_address)
        self.inbound_rewrites += 1
        for handler in self._inbound_handlers:
            handler(rewritten)
        return True
