"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly.

    Examples: scheduling an event in the past, running a simulator that
    was already stopped, or re-entrant calls into :meth:`Simulator.run`.
    """


class ConfigurationError(ReproError):
    """A scenario, scheduler or substrate was configured inconsistently.

    Examples: a flow with an empty interface-preference set, a negative
    weight, or an interface with non-positive capacity.
    """


class PreferenceError(ConfigurationError):
    """An interface/rate preference is malformed or violated."""


class SchedulingError(ReproError):
    """A scheduler reached an inconsistent internal state."""


class HeaderError(ReproError):
    """A wire-format header could not be parsed or serialized."""


class HttpError(ReproError):
    """An HTTP/1.1 message or range transaction is malformed."""


class FairnessError(ReproError):
    """A fair-allocation solver failed or produced an invalid result."""


class FaultError(ReproError):
    """A fault-injection process was configured or driven incorrectly.

    Examples: a Gilbert–Elliott flapper with non-positive dwell times,
    a corruption injector asked to corrupt a packet without wire bytes,
    or a chaos schedule that references an unknown interface.
    """


class WatchdogError(ReproError):
    """The health watchdog was misconfigured, or — in strict mode — a
    runtime invariant it monitors was violated."""


class CheckpointError(ReproError):
    """A run-state checkpoint could not be taken or restored.

    Examples: an event whose callback is not registered with the
    checkpoint codec, or restoring a snapshot into a run built from a
    different scenario.
    """


class CheckpointCorruptError(CheckpointError):
    """A checkpoint document failed its integrity check (bad checksum,
    truncated payload, or a structurally invalid document)."""


class CheckpointVersionError(CheckpointError):
    """A checkpoint document carries an unsupported schema version."""


class RecoveryError(ReproError):
    """The recovery supervisor hit an unrecoverable condition.

    Example: the crash-loop circuit breaker opened after repeated
    restarts without forward progress.
    """
