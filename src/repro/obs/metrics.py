"""Metric primitives and the registry that names them.

Four metric kinds cover everything the engine, schedulers, interfaces
and the health layer need to expose:

* :class:`Counter` — a monotonically increasing total (packets sent,
  flags cleared, alerts raised).
* :class:`Gauge` — a point-in-time level, either set explicitly or
  bound to a zero-argument callback that is evaluated lazily at
  collection time (queue occupancy, deficit backlog, utilization).
  Callback gauges are the backbone of the "sample, don't intercept"
  instrumentation style: the hot path keeps its plain integer
  counters and the registry reads them only when a snapshot is taken.
* :class:`Histogram` — fixed, caller-chosen bucket bounds with exact
  per-bucket counts (decision work, queue-occupancy distributions).
* :class:`QuantileSketch` — a log-bucketed streaming sketch for
  long-tailed positive values (decision latency): O(1) per
  observation, bounded relative error set by the bucket growth
  factor, mergeable across sketches.

:class:`MetricsRegistry` is the namespace: components create metrics
by dotted name (``engine.packets_sent_total``), creation is
idempotent, and ``collect()`` renders every metric to a JSON-safe
dict — the payload :class:`~repro.obs.snapshot.SnapshotProcess`
writes out as JSONL.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

#: Default bucket growth factor for :class:`QuantileSketch`; bucket
#: edges grow geometrically by this ratio, so quantile estimates carry
#: at most ~``(growth - 1) / 2`` relative error (2.5% at 1.05).
DEFAULT_SKETCH_GROWTH = 1.05

#: Quantiles reported in metric snapshots.
SNAPSHOT_QUANTILES = (0.5, 0.9, 0.99)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "_value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        """The current total."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be non-negative) to the total."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r}: cannot decrease by {amount}"
            )
        self._value += amount

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe rendering for snapshots."""
        return {"type": self.kind, "value": self._value}


class Gauge:
    """A point-in-time level, explicit or callback-backed.

    A gauge constructed with ``fn`` evaluates the callback on every
    read, so instrumentation can expose existing component counters
    (``interface.bytes_sent``, scheduler deficit sums) without adding
    any work to the paths that maintain them.
    """

    __slots__ = ("name", "help", "_value", "_fn")

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._fn = fn

    @property
    def callback_backed(self) -> bool:
        """``True`` when the gauge reads through a callback."""
        return self._fn is not None

    @property
    def value(self) -> float:
        """The current level (evaluates the callback if bound)."""
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def set(self, value: float) -> None:
        """Set the level explicitly (illegal on callback gauges)."""
        if self._fn is not None:
            raise ConfigurationError(
                f"gauge {self.name!r} is callback-backed; cannot set()"
            )
        self._value = float(value)

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe rendering for snapshots."""
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket histogram with exact counts.

    ``bounds`` are inclusive upper edges in increasing order; an
    implicit overflow bucket catches everything above the last edge.
    """

    __slots__ = ("name", "help", "_bounds", "_counts", "_count", "_sum", "_min", "_max")

    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float], help: str = "") -> None:
        edges = [float(bound) for bound in bounds]
        if not edges or any(upper <= lower for upper, lower in zip(edges[1:], edges)):
            raise ConfigurationError(
                f"histogram {name!r}: bounds must be non-empty and increasing"
            )
        self.name = name
        self.help = help
        self._bounds = edges
        self._counts = [0] * (len(edges) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of observed values."""
        return self._sum

    @property
    def bounds(self) -> Tuple[float, ...]:
        """The inclusive upper bucket edges."""
        return tuple(self._bounds)

    def bucket_counts(self) -> List[int]:
        """Per-bucket counts; the final entry is the overflow bucket."""
        return list(self._counts)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._counts[bisect_left(self._bounds, value)] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def observe_many(self, value: float, count: int) -> None:
        """Record *count* observations of the same *value* in O(log B).

        The batched path snapshot drains use: folding a
        ``Counter``-aggregated backlog of identical values costs one
        bucket update per distinct value instead of one per sample.
        """
        if count < 0:
            raise ConfigurationError(
                f"histogram {self.name!r}: cannot observe {count} samples"
            )
        if count == 0:
            return
        self._counts[bisect_left(self._bounds, value)] += count
        self._count += count
        self._sum += value * count
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def merge(self, other: "Histogram") -> None:
        """Fold *other*'s observations into this histogram.

        Both histograms must share the same bucket bounds — merging is
        then exact (per-bucket integer addition), which is what lets
        per-shard occupancy/work distributions aggregate into fleet
        totals without any re-binning error.
        """
        if other._bounds != self._bounds:
            raise ConfigurationError(
                f"cannot merge histograms with bounds {self._bounds} "
                f"and {other._bounds}"
            )
        self._counts = [
            mine + theirs for mine, theirs in zip(self._counts, other._counts)
        ]
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile by interpolating within a bucket."""
        if not 0 <= q <= 1:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        target = q * self._count
        cumulative = 0
        lower = self._min
        for index, bucket_count in enumerate(self._counts):
            upper = (
                self._bounds[index] if index < len(self._bounds) else self._max
            )
            if bucket_count:
                cumulative += bucket_count
                if cumulative >= target:
                    upper = min(upper, self._max)
                    lower = max(min(lower, upper), self._min)
                    fraction = 1 - (cumulative - target) / bucket_count
                    return lower + (upper - lower) * fraction
                lower = upper
        return self._max

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe rendering for snapshots."""
        payload: Dict[str, object] = {
            "type": self.kind,
            "count": self._count,
            "sum": self._sum,
            "bounds": list(self._bounds),
            "counts": list(self._counts),
        }
        if self._count:
            payload["min"] = self._min
            payload["max"] = self._max
            for q in SNAPSHOT_QUANTILES:
                payload[f"p{int(q * 100)}"] = self.quantile(q)
        return payload


class QuantileSketch:
    """A log-bucketed streaming quantile sketch for positive values.

    Observations land in geometric buckets ``[g^k, g^(k+1))`` where
    ``g`` is the growth factor; a quantile query returns the geometric
    midpoint of the bucket holding the target rank, so the relative
    error is bounded by the bucket width — no per-sample storage, O(1)
    updates, and sketches with the same growth merge exactly. Values
    ``<= 0`` are counted in a dedicated zero bucket (reported as 0.0).
    """

    __slots__ = ("name", "help", "_growth", "_log_growth", "_buckets", "_zero",
                 "_count", "_sum", "_min", "_max")

    kind = "sketch"

    def __init__(
        self, name: str, help: str = "", growth: float = DEFAULT_SKETCH_GROWTH
    ) -> None:
        if growth <= 1.0:
            raise ConfigurationError(
                f"sketch {name!r}: growth must exceed 1, got {growth}"
            )
        self.name = name
        self.help = help
        self._growth = growth
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def growth(self) -> float:
        """The geometric bucket growth factor."""
        return self._growth

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of observed values."""
        return self._sum

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= 0:
            self._zero += 1
            return
        key = math.floor(math.log(value) / self._log_growth)
        self._buckets[key] = self._buckets.get(key, 0) + 1

    def merge(self, other: "QuantileSketch") -> None:
        """Fold *other*'s observations into this sketch (same growth)."""
        if other._growth != self._growth:
            raise ConfigurationError(
                f"cannot merge sketches with growths {self._growth} "
                f"and {other._growth}"
            )
        self._count += other._count
        self._sum += other._sum
        self._zero += other._zero
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        for key, bucket_count in other._buckets.items():
            self._buckets[key] = self._buckets.get(key, 0) + bucket_count

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (bounded relative error)."""
        if not 0 <= q <= 1:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        return self._quantile_from(sorted(self._buckets.items()), q)

    def _quantile_from(
        self, items: List[Tuple[int, int]], q: float
    ) -> float:
        """The *q*-quantile given pre-sorted ``(key, count)`` buckets."""
        target = q * self._count
        cumulative = self._zero
        if cumulative >= target and self._zero:
            return 0.0
        for key, bucket_count in items:
            cumulative += bucket_count
            if cumulative >= target:
                midpoint = self._growth ** (key + 0.5)
                return min(max(midpoint, self._min), self._max)
        return self._max

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe rendering for snapshots (summary, not buckets)."""
        payload: Dict[str, object] = {
            "type": self.kind,
            "count": self._count,
            "sum": self._sum,
        }
        if self._count:
            payload["min"] = self._min
            payload["max"] = self._max
            # Sort the buckets once for all reported quantiles;
            # quantile() re-sorts per call, which adds up at snapshot
            # cadence.
            items = sorted(self._buckets.items())
            for q in SNAPSHOT_QUANTILES:
                payload[f"p{int(q * 100)}"] = self._quantile_from(items, q)
        return payload


class MetricsRegistry:
    """A namespace of metrics with idempotent creation.

    ``counter("a.b")`` either creates the metric or returns the
    existing one; asking for an existing name with a different kind is
    a configuration error. ``collect()`` renders every metric by name.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str):
        """Look up a metric by name."""
        metric = self._metrics.get(name)
        if metric is None:
            raise ConfigurationError(f"unknown metric {name!r}")
        return metric

    def _register(self, name: str, kind: str, factory):
        if not name:
            raise ConfigurationError("metric name must be non-empty")
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {kind}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a :class:`Counter`."""
        return self._register(name, "counter", lambda: Counter(name, help))

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        """Get or create a :class:`Gauge` (optionally callback-backed)."""
        return self._register(name, "gauge", lambda: Gauge(name, help, fn=fn))

    def histogram(
        self, name: str, bounds: Sequence[float], help: str = ""
    ) -> Histogram:
        """Get or create a fixed-bucket :class:`Histogram`."""
        return self._register(
            name, "histogram", lambda: Histogram(name, bounds, help)
        )

    def sketch(
        self, name: str, help: str = "", growth: float = DEFAULT_SKETCH_GROWTH
    ) -> QuantileSketch:
        """Get or create a :class:`QuantileSketch`."""
        return self._register(
            name, "sketch", lambda: QuantileSketch(name, help, growth=growth)
        )

    def collect(self) -> Dict[str, Dict[str, object]]:
        """Render every metric to a JSON-safe ``{name: payload}`` dict."""
        return {
            name: metric.snapshot()
            for name, metric in sorted(self._metrics.items())
        }

    def describe(self) -> Dict[str, Tuple[str, str]]:
        """``{name: (kind, help)}`` for catalog/report rendering."""
        return {
            name: (metric.kind, metric.help)
            for name, metric in sorted(self._metrics.items())
        }

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Dict[str, object]]:
        """Serialize every metric's internals so telemetry survives a
        restart.

        Callback-backed gauges are skipped: they read live component
        state and recompute correctly the moment the restored run's
        components are rebuilt.
        """
        state: Dict[str, Dict[str, object]] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Counter):
                state[name] = {"kind": "counter", "value": metric._value}
            elif isinstance(metric, Gauge):
                if metric.callback_backed:
                    continue
                state[name] = {"kind": "gauge", "value": metric._value}
            elif isinstance(metric, Histogram):
                state[name] = {
                    "kind": "histogram",
                    "bounds": list(metric._bounds),
                    "counts": list(metric._counts),
                    "count": metric._count,
                    "sum": metric._sum,
                    "min": metric._min,
                    "max": metric._max,
                }
            elif isinstance(metric, QuantileSketch):
                state[name] = {
                    "kind": "sketch",
                    "growth": metric._growth,
                    "buckets": {str(key): count for key, count in metric._buckets.items()},
                    "zero": metric._zero,
                    "count": metric._count,
                    "sum": metric._sum,
                    "min": metric._min,
                    "max": metric._max,
                }
        return state

    def restore_state(self, state: Dict[str, Dict[str, object]]) -> None:
        """Overwrite (creating where needed) metrics from a snapshot.

        Metrics the snapshot knows but the current registry has not
        re-registered yet are created from the recorded shape (bounds,
        growth); help text is re-attached when instrumentation
        re-registers them, since creation is idempotent.
        """
        for name, doc in state.items():
            kind = doc["kind"]
            if kind == "counter":
                self.counter(name)._value = doc["value"]
            elif kind == "gauge":
                metric = self._metrics.get(name)
                if metric is None:
                    metric = self.gauge(name)
                if not metric.callback_backed:
                    metric._value = doc["value"]
            elif kind == "histogram":
                metric = self.histogram(name, doc["bounds"])
                metric._counts = list(doc["counts"])
                metric._count = doc["count"]
                metric._sum = doc["sum"]
                metric._min = doc["min"]
                metric._max = doc["max"]
            elif kind == "sketch":
                metric = self.sketch(name, growth=doc["growth"])
                metric._buckets = {
                    int(key): count for key, count in doc["buckets"].items()
                }
                metric._zero = doc["zero"]
                metric._count = doc["count"]
                metric._sum = doc["sum"]
                metric._min = doc["min"]
                metric._max = doc["max"]
            else:
                raise ConfigurationError(
                    f"metric snapshot {name!r} has unknown kind {kind!r}"
                )

    # ------------------------------------------------------------------
    # Cross-process aggregation
    # ------------------------------------------------------------------
    def merge_state(self, state: Dict[str, Dict[str, object]]) -> None:
        """Fold another registry's :meth:`snapshot_state` into this one.

        The fleet coordinator's primitive: every worker ships its shard
        registry as the JSON-safe ``snapshot_state()`` payload and the
        coordinator folds the shards into one fleet registry. Merge
        semantics per kind:

        * **counter** — totals add (packets sent on shard A plus shard
          B is the fleet total).
        * **gauge** — levels add; per-shard gauges are population
          aggregates (backlog bytes, flow counts), so the fleet level
          is their sum. Callback-backed gauges cannot be merged into
          (they read live local state) and raise.
        * **histogram** — exact per-bucket addition (same bounds
          required).
        * **sketch** — exact bucket-count addition (same growth
          required); quantiles of the merged sketch equal quantiles of
          a single sketch fed the union stream.

        Merging is commutative and associative (the hypothesis suite
        pins this), so shard arrival order never changes the fleet
        report. Metrics absent here are created from the incoming
        shape, exactly like :meth:`restore_state`.
        """
        for name, doc in state.items():
            kind = doc["kind"]
            if kind == "counter":
                self.counter(name)._value += doc["value"]
            elif kind == "gauge":
                metric = self.gauge(name)
                if metric.callback_backed:
                    raise ConfigurationError(
                        f"gauge {name!r} is callback-backed; cannot merge "
                        "shard state into live local telemetry"
                    )
                metric._value += doc["value"]
            elif kind == "histogram":
                incoming = Histogram(name, doc["bounds"])
                incoming._counts = list(doc["counts"])
                incoming._count = doc["count"]
                incoming._sum = doc["sum"]
                incoming._min = doc["min"]
                incoming._max = doc["max"]
                self.histogram(name, doc["bounds"]).merge(incoming)
            elif kind == "sketch":
                incoming = QuantileSketch(name, growth=doc["growth"])
                incoming._buckets = {
                    int(key): count for key, count in doc["buckets"].items()
                }
                incoming._zero = doc["zero"]
                incoming._count = doc["count"]
                incoming._sum = doc["sum"]
                incoming._min = doc["min"]
                incoming._max = doc["max"]
                self.sketch(name, growth=doc["growth"]).merge(incoming)
            else:
                raise ConfigurationError(
                    f"metric state {name!r} has unknown kind {kind!r}"
                )
