"""Observability: metrics, periodic snapshots, and instrumentation.

``repro.obs`` is the telemetry layer the ROADMAP's production-scale
north star needs: counters, gauges, streaming histograms and quantile
sketches behind a :class:`MetricsRegistry`; a
:class:`SnapshotProcess` that samples the registry on the *virtual*
clock and exports JSONL; and :func:`instrument_engine` /
:func:`instrument_watchdog` / :func:`instrument_auditor`, which
wire a running
:class:`~repro.core.engine.SchedulingEngine`, its scheduler and
interfaces, and the health watchdog into a registry without
perturbing the hot path (see ``docs/observability.md`` for the metric
catalog and measured overhead).
"""

from .instrument import (
    DECISION_LATENCY_SAMPLE_EVERY,
    EngineInstrumentation,
    instrument_auditor,
    instrument_engine,
    instrument_watchdog,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
)
from .snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    SnapshotProcess,
    read_jsonl,
    render_final_report,
    write_jsonl,
)

__all__ = [
    "Counter",
    "DECISION_LATENCY_SAMPLE_EVERY",
    "EngineInstrumentation",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QuantileSketch",
    "SNAPSHOT_SCHEMA_VERSION",
    "SnapshotProcess",
    "instrument_auditor",
    "instrument_engine",
    "instrument_watchdog",
    "read_jsonl",
    "render_final_report",
    "write_jsonl",
]
