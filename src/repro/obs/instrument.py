"""Wire an engine (and friends) into a :class:`MetricsRegistry`.

The instrumentation style is deliberately *sampling-first*: the hot
path (arrival → activation → select → transmit) already maintains
plain integer counters on the components themselves (``Interface.
bytes_sent``, ``MiDrrScheduler.flags_set_total``, flow backlogs), so
almost every metric here is a callback gauge that reads those
counters only when a snapshot is taken. Zero listeners, zero dict
lookups, zero overhead between snapshots.

The two exceptions, both cheap and both off the per-packet path:

* **decision latency** — a wrapper installed via
  :meth:`~repro.core.engine.SchedulingEngine.set_decision_probe`
  times every ``sample_every``-th ``select()`` with
  ``time.perf_counter``; the other calls pay one integer decrement.
* **rare lifecycle events** — flow completions and quarantine
  transitions feed counters through the engine's existing listener
  hooks (these fire a handful of times per run, not per packet).

Distribution metrics (decision work, per-flow queue occupancy) are
ingested at snapshot time by :meth:`EngineInstrumentation.sample`,
which :class:`~repro.obs.snapshot.SnapshotProcess` calls as a
pre-sample hook.
"""

from __future__ import annotations

from collections import Counter
from time import perf_counter
from typing import Callable, Optional

from ..core.engine import SchedulingEngine
from ..errors import ConfigurationError
from ..health.auditor import FairnessAuditor
from ..health.watchdog import Watchdog
from ..net.interface import Interface
from ..net.packet import Packet
from .metrics import MetricsRegistry

#: Default sampling stride for decision-latency timing: one timed
#: ``select()`` per this many decisions.
DECISION_LATENCY_SAMPLE_EVERY = 64

#: Bucket bounds for the decision-work histogram (flows examined per
#: decision; Figure 9's "extra search time" distribution).
DECISION_WORK_BOUNDS = (0, 1, 2, 4, 8, 16, 32, 64, 128)

#: Bucket bounds (bytes) for the sampled per-flow occupancy histogram.
OCCUPANCY_BOUNDS = (0, 1_500, 15_000, 150_000, 1_500_000, 15_000_000)

#: Max flows whose occupancy is observed per snapshot. A rotating
#: cursor walks the flow table so successive snapshots cover different
#: flows; without the cap, sampling 1000+ flows per tick dominates the
#: telemetry cost and blows the <5% overhead budget.
OCCUPANCY_SAMPLE_MAX = 256


class EngineInstrumentation:
    """The registry wiring for one :class:`SchedulingEngine`.

    Create via :func:`instrument_engine`. Call :meth:`sample` (or let
    a :class:`~repro.obs.snapshot.SnapshotProcess` pre-sample hook
    call it) to ingest distribution telemetry; call :meth:`detach` to
    remove the decision probe.
    """

    def __init__(
        self,
        engine: SchedulingEngine,
        registry: MetricsRegistry,
        sample_every: int = DECISION_LATENCY_SAMPLE_EVERY,
    ) -> None:
        if sample_every <= 0:
            raise ConfigurationError(
                f"sample_every must be positive, got {sample_every}"
            )
        self.engine = engine
        self.registry = registry
        self._sample_every = sample_every
        self._examined_drained = 0
        self._occupancy_cursor = 0
        self._wire_engine()
        self._wire_interfaces()
        self._wire_scheduler()
        self._install_decision_probe()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _wire_engine(self) -> None:
        engine = self.engine
        registry = self.registry
        stats = engine.stats
        registry.gauge(
            "engine.flows",
            "Registered flows (includes quarantined)",
            fn=lambda: engine.num_flows,
        )
        registry.gauge(
            "engine.quarantined_flows",
            "Flows parked because their whole Π-set is down",
            fn=lambda: engine.num_quarantined,
        )
        # Plain (set-at-sample) gauges: summing the whole flow table
        # through a callback on every collect() is the single biggest
        # telemetry cost at F=1000, so sample() refreshes both in the
        # same pass that feeds the occupancy histogram.
        registry.gauge(
            "engine.backlogged_flows",
            "Flows with at least one queued packet (refreshed by sample())",
        )
        registry.gauge(
            "engine.backlog_bytes",
            "Total bytes queued across all flow backlogs "
            "(refreshed by sample())",
        )
        registry.gauge(
            "engine.packets_sent_total",
            "Packets delivered across all interfaces",
            fn=lambda: sum(
                interface.packets_sent
                for interface in engine.interfaces.values()
            ),
        )
        registry.gauge(
            "engine.bytes_sent_total",
            "Bytes delivered across all interfaces",
            fn=lambda: sum(
                interface.bytes_sent
                for interface in engine.interfaces.values()
            ),
        )
        registry.gauge(
            "engine.dropped_packets_total",
            "Packets discarded by flow backlogs (queue overflow)",
            fn=lambda: sum(stats.drops_by_flow().values()),
        )
        # Event-engine telemetry: backend identity, queue depth, lazy-
        # cancel compactions and fused-quanta counters. All callback
        # gauges over counters the hot path already maintains.
        sim = engine.sim
        registry.gauge(
            "sim.events_processed_total",
            "Events dispatched by the simulator",
            fn=lambda: sim.events_processed,
        )
        registry.gauge(
            f"sim.queue.{sim.queue_backend}.pending",
            "Events still queued (including lazily-cancelled ones)",
            fn=lambda: sim.pending_events,
        )
        registry.gauge(
            f"sim.queue.{sim.queue_backend}.compactions_total",
            "Event-queue compaction passes (lazy-cancel GC)",
            fn=lambda: sim.queue.compactions_total,
        )
        registry.gauge(
            "engine.batching_enabled",
            "1 while fused service quanta are active",
            fn=lambda: 1.0 if engine.batching else 0.0,
        )
        registry.gauge(
            "engine.batches_started_total",
            "Fused transmission windows begun",
            fn=lambda: sum(
                interface.batches_started
                for interface in engine.interfaces.values()
            ),
        )
        registry.gauge(
            "engine.batches_aborted_total",
            "Fused windows that fell back to per-packet events",
            fn=lambda: sum(
                interface.batches_aborted
                for interface in engine.interfaces.values()
            ),
        )
        registry.gauge(
            "engine.packets_batched_total",
            "Packets whose service ran inside a fused window",
            fn=lambda: sum(
                interface.packets_batched
                for interface in engine.interfaces.values()
            ),
        )
        # Deadline-SLO and admission telemetry: counters the engine's
        # send-completion path already maintains, plus a miss-latency
        # sketch fed by the (rare) deadline-miss listener.
        registry.gauge(
            "engine.deadline_packets_total",
            "Transmitted packets that carried a deadline",
            fn=lambda: engine.deadline_packets_total,
        )
        registry.gauge(
            "engine.deadline_misses_total",
            "Deadline-carrying packets delivered late",
            fn=lambda: engine.deadline_misses_total,
        )
        registry.gauge(
            "engine.shed_flows",
            "Flows currently excluded by admission control",
            fn=lambda: engine.num_shed,
        )
        registry.gauge(
            "engine.admission_rejected_total",
            "Flows turned away at admission",
            fn=lambda: engine.admission_rejected_total,
        )
        registry.gauge(
            "engine.admission_shed_total",
            "Admitted flows evicted by a later admission review",
            fn=lambda: engine.admission_shed_total,
        )
        miss_sketch = registry.sketch(
            "engine.deadline_miss_lateness_seconds",
            "Lateness of deadline misses (p99 miss latency)",
        )
        engine.on_deadline_miss(
            lambda flow, packet, lateness: miss_sketch.observe(lateness)
        )
        completed = registry.counter(
            "engine.flows_completed_total", "Flow transfers finished"
        )
        engine.on_flow_completed(lambda flow: completed.inc())
        entered = registry.counter(
            "engine.quarantine_entered_total", "Flows parked (Π-set dark)"
        )
        resumed = registry.counter(
            "engine.quarantine_resumed_total", "Flows resumed from quarantine"
        )
        engine.on_quarantine_change(
            lambda flow, parked: (entered if parked else resumed).inc()
        )

    def _wire_interfaces(self) -> None:
        # Interfaces registered later are not auto-instrumented; call
        # instrument_engine after topology setup (the runner hook does).
        for interface_id, interface in self.engine.interfaces.items():
            self._wire_interface(interface_id, interface)

    def _wire_interface(self, interface_id: str, interface: Interface) -> None:
        registry = self.registry
        prefix = f"iface.{interface_id}"
        registry.gauge(
            f"{prefix}.utilization",
            "Fraction of elapsed time spent transmitting",
            fn=interface.utilization,
        )
        registry.gauge(
            f"{prefix}.bytes_sent_total",
            "Bytes transmitted",
            fn=lambda i=interface: i.bytes_sent,
        )
        registry.gauge(
            f"{prefix}.packets_sent_total",
            "Packets transmitted",
            fn=lambda i=interface: i.packets_sent,
        )
        registry.gauge(
            f"{prefix}.rate_bps",
            "Current line rate",
            fn=lambda i=interface: i.rate_bps,
        )
        registry.gauge(
            f"{prefix}.up",
            "1 while administratively up",
            fn=lambda i=interface: 1.0 if i.up else 0.0,
        )
        registry.gauge(
            f"{prefix}.down_time",
            "Cumulative seconds spent down",
            fn=lambda i=interface: i.down_time,
        )
        scheduler = self.engine.scheduler
        states = getattr(scheduler, "_states", None)
        if states is not None and interface_id in states:
            registry.gauge(
                f"{prefix}.active_flows",
                "Backlogged willing flows in this interface's round",
                fn=lambda s=states[interface_id]: len(s.active),
            )

    def _wire_scheduler(self) -> None:
        registry = self.registry
        scheduler = self.engine.scheduler
        if hasattr(scheduler, "deficit_backlog"):
            registry.gauge(
                "sched.deficit_backlog",
                "Total granted, unspent deficit (bytes)",
                fn=scheduler.deficit_backlog,
            )
        if hasattr(scheduler, "pending_flags"):
            registry.gauge(
                "sched.pending_flags",
                "(flow, interface) pairs with a pending skip",
                fn=scheduler.pending_flags,
            )
        if hasattr(scheduler, "flags_set_total"):
            registry.gauge(
                "sched.flags_set_total",
                "Rule-1 service-flag sets",
                fn=lambda s=scheduler: s.flags_set_total,
            )
            registry.gauge(
                "sched.flags_cleared_total",
                "Rule-2 skip consumptions",
                fn=lambda s=scheduler: s.flags_cleared_total,
            )
        if hasattr(scheduler, "decision_flows_examined"):
            registry.gauge(
                "sched.decisions_total",
                "select() calls made",
                fn=lambda s=scheduler: len(s.decision_flows_examined),
            )
            registry.histogram(
                "sched.decision_work",
                DECISION_WORK_BOUNDS,
                "Flows examined per decision (drained at snapshots)",
            )
        if hasattr(scheduler, "turns_taken"):
            registry.gauge(
                "sched.turns_total",
                "Service turns granted",
                fn=lambda s=scheduler: sum(s.turns_taken.values()),
            )
        if hasattr(scheduler, "projected_load"):
            registry.gauge(
                "sched.admission_projected_load",
                "Declared load over observed capacity (EDF AC)",
                fn=scheduler.projected_load,
            )
            registry.gauge(
                "sched.admissions_total",
                "Flows admitted by the admission controller",
                fn=lambda s=scheduler: s.admissions_total,
            )
            registry.gauge(
                "sched.admission_rejected_total",
                "Flows rejected by the admission controller",
                fn=lambda s=scheduler: s.admission_rejected_total,
            )
            registry.gauge(
                "sched.admission_shed_total",
                "Shed verdicts issued by the admission controller",
                fn=lambda s=scheduler: s.admission_shed_total,
            )
        if hasattr(scheduler, "steers_total"):
            registry.gauge(
                "sched.steers_total",
                "Queue-aware steering decisions (QAware)",
                fn=lambda s=scheduler: s.steers_total,
            )
            registry.gauge(
                "sched.steals_total",
                "Work-conservation steals across interfaces (QAware)",
                fn=lambda s=scheduler: s.steals_total,
            )
        registry.histogram(
            "flows.occupancy_bytes",
            OCCUPANCY_BOUNDS,
            "Per-flow backlog bytes, sampled at each snapshot",
        )

    def _install_decision_probe(self) -> None:
        scheduler = self.engine.scheduler
        select = scheduler.select
        sketch = self.registry.sketch(
            "engine.decision_latency_seconds",
            "Wall-clock select() latency (sampled every "
            f"{self._sample_every} decisions)",
        )
        # The engine routes only every Nth decision here (the stride
        # lives on the supply path as a plain countdown), so this frame
        # exists solely for the decisions that are actually timed.
        def probe(interface: Interface) -> Optional[Packet]:
            started = perf_counter()
            packet = select(interface.interface_id)
            sketch.observe(perf_counter() - started)
            return packet

        self.engine.set_decision_probe(probe, every=self._sample_every)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def sample(self, now: float) -> None:
        """Ingest distribution telemetry; a snapshot pre-sample hook."""
        scheduler = self.engine.scheduler
        examined = getattr(scheduler, "decision_flows_examined", None)
        if examined is not None:
            histogram = self.registry.get("sched.decision_work")
            drained = Counter(examined[self._examined_drained:])
            for value, count in drained.items():
                histogram.observe_many(value, count)
            self._examined_drained = len(examined)
        # One pass over the flow table feeds three metrics: the two
        # backlog aggregates (every flow) and the occupancy histogram
        # (a rotating window of at most OCCUPANCY_SAMPLE_MAX flows).
        # The list comprehension plus sum()/count() keeps the per-flow
        # work in C; at F=1000 this pass runs 20× per bench cell and a
        # Python-level loop here alone costs ~1% packets/s.
        occupancy = self.registry.get("flows.occupancy_bytes")
        queued_bytes = [
            flow.backlog_bytes for flow in self.engine.iter_flows()
        ]
        total = len(queued_bytes)
        self.registry.get("engine.backlogged_flows").set(
            total - queued_bytes.count(0)
        )
        self.registry.get("engine.backlog_bytes").set(sum(queued_bytes))
        if total:
            window = min(total, OCCUPANCY_SAMPLE_MAX)
            start = self._occupancy_cursor % total
            self._occupancy_cursor = start + window
            chosen = queued_bytes[start:start + window]
            if len(chosen) < window:
                chosen += queued_bytes[: window - len(chosen)]
            for value, count in Counter(chosen).items():
                occupancy.observe_many(value, count)

    def detach(self) -> None:
        """Remove the decision probe (gauges keep working)."""
        self.engine.set_decision_probe(None)


def instrument_engine(
    engine: SchedulingEngine,
    registry: Optional[MetricsRegistry] = None,
    sample_every: int = DECISION_LATENCY_SAMPLE_EVERY,
) -> EngineInstrumentation:
    """Instrument *engine* (and its scheduler/interfaces) into a registry.

    Call after topology setup so every interface is covered; returns
    the :class:`EngineInstrumentation` whose :meth:`~EngineInstrumentation.sample`
    method should run as a snapshot pre-sample hook.
    """
    return EngineInstrumentation(
        engine,
        registry if registry is not None else MetricsRegistry(),
        sample_every=sample_every,
    )


def instrument_watchdog(watchdog: Watchdog, registry: MetricsRegistry) -> None:
    """Expose a watchdog's health telemetry through *registry*."""
    registry.gauge(
        "health.ticks", "Watchdog sampling ticks", fn=lambda: watchdog.ticks
    )
    registry.gauge(
        "health.alerts_total",
        "Alerts raised (all kinds)",
        fn=lambda: len(watchdog.alerts),
    )
    total_by_kind = registry.counter(
        "health.alerts_raised_total", "Alerts raised since instrumentation"
    )

    def _count(alert) -> None:
        total_by_kind.inc()
        registry.counter(
            f"health.alerts.{alert.kind}_total", f"{alert.kind} alerts"
        ).inc()

    watchdog.on_alert(_count)


def instrument_auditor(auditor: FairnessAuditor, registry: MetricsRegistry) -> None:
    """Expose a fairness auditor's telemetry through *registry*.

    Gauges are callback-backed (sampled at snapshot time, like the
    engine gauges); per-alert counters increment as alerts fire.
    """
    registry.gauge(
        "fairness.audits_total",
        "Completed drift audits (quiescent-window ticks)",
        fn=lambda: auditor.audits_total,
    )
    registry.gauge(
        "fairness.drift_max",
        "Max normalized |measured - fluid optimum| at the last audit",
        fn=lambda: auditor.drift_last,
    )
    registry.gauge(
        "fairness.drift_peak",
        "Max normalized drift across the run",
        fn=lambda: auditor.drift_peak,
    )
    registry.gauge(
        "fairness.cluster_count",
        "Rate clusters in the live max-min allocation",
        fn=lambda: len(auditor.solver.allocation.clusters),
    )
    registry.gauge(
        "fairness.alerts_total",
        "Fairness-drift alerts raised",
        fn=lambda: len(auditor.alerts),
    )
    registry.gauge(
        "fairness.incremental_solves_total",
        "Deltas resolved by the warm-started suffix solve",
        fn=lambda: auditor.solver.incremental_solves,
    )
    registry.gauge(
        "fairness.full_solves_total",
        "Deltas that fell back to a from-scratch solve",
        fn=lambda: auditor.solver.full_solves,
    )
    registry.gauge(
        "fairness.incremental_solve_ratio",
        "Share of deltas resolved without a full re-solve",
        fn=lambda: auditor.solver.incremental_ratio,
    )
    raised = registry.counter(
        "fairness.alerts_raised_total",
        "Fairness alerts raised since instrumentation",
    )
    auditor.on_alert(lambda alert: raised.inc())
