"""The ``midrr obs --selftest`` routine: registry + JSONL round-trip.

A deterministic, dependency-free exercise of the whole observability
stack: create one metric of every kind, drive them from simulated
events, snapshot on the virtual clock, write JSONL, read it back and
verify the round-trip is lossless. Returns a list of problems — empty
means healthy — so CI can run it as a smoke check without parsing
output.
"""

from __future__ import annotations

import os
import tempfile
from typing import List

from ..sim.simulator import Simulator
from .metrics import MetricsRegistry
from .snapshot import SnapshotProcess, read_jsonl


def run_selftest(path: str = "") -> List[str]:
    """Exercise registry, snapshots and the JSONL round-trip.

    *path*, when given, receives the JSONL artifact; otherwise a
    temporary file is used and removed. Returns the list of problems
    found (empty when everything checks out).
    """
    problems: List[str] = []
    registry = MetricsRegistry()
    counter = registry.counter("selftest.events_total", "events counted")
    level = registry.gauge("selftest.level", "explicit level")
    backing = {"value": 0.0}
    registry.gauge(
        "selftest.callback_level",
        "callback-backed level",
        fn=lambda: backing["value"],
    )
    histogram = registry.histogram(
        "selftest.sizes", (10, 100, 1000), "observed sizes"
    )
    sketch = registry.sketch("selftest.latency", "observed latencies")

    sim = Simulator()
    snapshots = SnapshotProcess(sim, registry, period=1.0)

    def activity(step: int) -> None:
        counter.inc()
        level.set(step)
        backing["value"] = step * 2.0
        histogram.observe(step * 7.0)
        sketch.observe(0.001 * (step + 1))

    for step in range(10):
        sim.schedule(float(step), activity, step)
    snapshots.start()
    sim.run(until=10.0)
    snapshots.stop()

    if counter.value != 10:
        problems.append(f"counter miscounted: {counter.value} != 10")
    if histogram.count != 10 or sketch.count != 10:
        problems.append("distribution metrics missed observations")
    median = sketch.quantile(0.5)
    if not 0.004 <= median <= 0.007:
        problems.append(f"sketch median implausible: {median}")
    if len(snapshots.snapshots) != 10:
        problems.append(
            f"expected 10 snapshots, took {len(snapshots.snapshots)}"
        )
    final = registry.collect()
    if final["selftest.callback_level"]["value"] != 18.0:
        problems.append("callback gauge did not track its backing value")

    cleanup = False
    if not path:
        handle = tempfile.NamedTemporaryFile(
            suffix=".jsonl", delete=False, mode="w"
        )
        handle.close()
        path = handle.name
        cleanup = True
    try:
        written = snapshots.write_jsonl(path)
        restored = read_jsonl(path)
        if written != len(snapshots.snapshots):
            problems.append("write_jsonl reported a wrong line count")
        if restored != snapshots.snapshots:
            problems.append("JSONL round-trip was not lossless")
    except Exception as exc:  # pragma: no cover - defensive
        problems.append(f"JSONL round-trip failed: {exc}")
    finally:
        if cleanup:
            os.unlink(path)
    return problems
