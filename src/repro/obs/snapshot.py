"""Periodic metric snapshots on the simulation clock, exported as JSONL.

:class:`SnapshotProcess` rides the event heap as a
:class:`~repro.sim.process.PeriodicProcess`: every ``period`` virtual
seconds it runs any registered pre-sample hooks (instrumentation uses
these to drain component telemetry into histograms), collects the
registry, and appends one record::

    {"t": 12.5, "seq": 25, "metrics": {"engine.packets_sent_total": ...}}

Records accumulate in memory and can be written as one-object-per-line
JSONL with :meth:`SnapshotProcess.write_jsonl` / :func:`write_jsonl`;
:func:`read_jsonl` round-trips them back. Because sampling happens on
the *virtual* clock, a seeded run produces the identical snapshot
sequence on every machine — only wall-clock-derived metrics (decision
latency) vary.
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Callable, Dict, List, Optional

from ..analysis.report import render_table
from ..errors import ConfigurationError
from ..sim.process import PeriodicProcess
from ..sim.simulator import Simulator
from .metrics import MetricsRegistry

#: Schema version stamped into every snapshot record. Version 2 added
#: the optional ``shard_id`` / ``device_id`` provenance labels so fleet
#: snapshots stay attributable after cross-process merge; version-1
#: records (no labels) remain readable.
SNAPSHOT_SCHEMA_VERSION = 2


class SnapshotProcess:
    """Samples a :class:`MetricsRegistry` periodically on the sim clock.

    *shard_id* / *device_id*, when given, label every record this
    process emits: a fleet run mixes snapshot streams from thousands of
    devices across worker processes, and an unlabelled record would be
    unattributable the moment two streams share a file.
    """

    def __init__(
        self,
        sim: Simulator,
        registry: MetricsRegistry,
        period: float = 1.0,
        pre_sample: Optional[List[Callable[[float], None]]] = None,
        shard_id: Optional[int] = None,
        device_id: Optional[str] = None,
    ) -> None:
        if period <= 0:
            raise ConfigurationError(f"period must be positive, got {period}")
        self._sim = sim
        self._registry = registry
        self._period = period
        self._shard_id = shard_id
        self._device_id = device_id
        self._pre_sample: List[Callable[[float], None]] = list(pre_sample or [])
        self._process = PeriodicProcess(sim, period, self._tick)
        self.snapshots: List[Dict[str, object]] = []
        #: Wall-clock seconds spent inside :meth:`sample_now` (hooks +
        #: collect + record build) — the snapshot stack's own cost,
        #: measured from within the run so the overhead bench can
        #: report a host-noise-free telemetry share.
        self.telemetry_seconds = 0.0

    @property
    def period(self) -> float:
        """Sampling period in virtual seconds."""
        return self._period

    @property
    def running(self) -> bool:
        """``True`` between :meth:`start` and :meth:`stop`."""
        return self._process.running

    def add_pre_sample(self, hook: Callable[[float], None]) -> None:
        """Register a hook run before each collection (gets ``now``)."""
        self._pre_sample.append(hook)

    def start(self) -> None:
        """Begin sampling. Idempotent."""
        self._process.start()

    def stop(self) -> None:
        """Stop sampling. Idempotent."""
        self._process.stop()

    def sample_now(self) -> Dict[str, object]:
        """Take one snapshot immediately (also used by each tick)."""
        started = perf_counter()
        now = self._sim.now
        for hook in self._pre_sample:
            hook(now)
        record: Dict[str, object] = {
            "t": now,
            "seq": len(self.snapshots),
            "schema_version": SNAPSHOT_SCHEMA_VERSION,
            "metrics": self._registry.collect(),
        }
        if self._shard_id is not None:
            record["shard_id"] = self._shard_id
        if self._device_id is not None:
            record["device_id"] = self._device_id
        self.snapshots.append(record)
        self.telemetry_seconds += perf_counter() - started
        return record

    def _tick(self, now: float) -> None:
        self.sample_now()

    def write_jsonl(self, path: str) -> int:
        """Write accumulated snapshots as JSONL; returns the line count."""
        return write_jsonl(path, self.snapshots)


def write_jsonl(path: str, snapshots: List[Dict[str, object]]) -> int:
    """Write snapshot records one-per-line; returns the line count."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in snapshots:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    return len(snapshots)


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Read snapshot records written by :func:`write_jsonl`.

    Accepts every schema up to :data:`SNAPSHOT_SCHEMA_VERSION`:
    version-1 records simply carry no ``shard_id`` / ``device_id``
    labels (readers must treat the labels as optional). A record from
    a *newer* schema than this build understands is refused — its
    semantics are unknown.
    """
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{line_number}: invalid snapshot line: {exc}"
                ) from exc
            if not isinstance(record, dict) or "metrics" not in record:
                raise ConfigurationError(
                    f"{path}:{line_number}: not a snapshot record"
                )
            version = record.get("schema_version", 1)
            if not isinstance(version, int) or version > SNAPSHOT_SCHEMA_VERSION:
                raise ConfigurationError(
                    f"{path}:{line_number}: snapshot schema {version!r} is "
                    f"newer than this build understands "
                    f"(max {SNAPSHOT_SCHEMA_VERSION})"
                )
            records.append(record)
    return records


def _format_value(payload: Dict[str, object]) -> str:
    kind = payload.get("type")
    if kind in ("counter", "gauge"):
        value = payload.get("value", 0.0)
        if isinstance(value, float) and value == int(value):
            return f"{int(value):,}"
        return f"{value:,.4g}"
    count = payload.get("count", 0)
    if not count:
        return "n=0"
    parts = [f"n={count}"]
    for key in ("p50", "p99", "max"):
        if key in payload:
            parts.append(f"{key}={payload[key]:.4g}")
    return " ".join(parts)


def render_final_report(
    registry: MetricsRegistry, title: str = "== observability report =="
) -> str:
    """An ASCII summary of every registered metric (CLI output)."""
    rows = []
    described = registry.describe()
    collected = registry.collect()
    for name in registry.names():
        kind, _ = described[name]
        rows.append([name, kind, _format_value(collected[name])])
    return render_table(["metric", "kind", "value"], rows, title=title)
