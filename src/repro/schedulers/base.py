"""Scheduler interfaces.

Two levels exist:

* :class:`SingleInterfaceScheduler` — the classical problem: one output
  link, many flows, answer "which packet next?". DRR, WFQ, RR and FIFO
  implement this.
* :class:`MultiInterfaceScheduler` — the paper's problem: several
  output links, a preference matrix Π and weights φ. miDRR and the
  per-interface baselines implement this. The engine calls
  :meth:`MultiInterfaceScheduler.select` whenever an interface is free.

Both levels operate on shared :class:`~repro.net.flow.Flow` objects;
packets are taken from the flow's queue with :meth:`Flow.pull` so that
traffic sources can refill backlogs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Tuple

from ..errors import CheckpointError, SchedulingError
from ..net.flow import Flow
from ..net.packet import Packet


class SingleInterfaceScheduler(ABC):
    """Chooses the next packet for one output link."""

    def __init__(self) -> None:
        self._flows: Dict[str, Flow] = {}

    # ------------------------------------------------------------------
    # Flow management
    # ------------------------------------------------------------------
    def add_flow(self, flow: Flow) -> None:
        """Start scheduling *flow*. Idempotent for the same object."""
        existing = self._flows.get(flow.flow_id)
        if existing is flow:
            return
        if existing is not None:
            raise SchedulingError(
                f"a different Flow object with id {flow.flow_id!r} is registered"
            )
        self._flows[flow.flow_id] = flow
        self._on_flow_added(flow)

    def remove_flow(self, flow_id: str) -> None:
        """Stop scheduling *flow_id* (flow ended or policy changed)."""
        flow = self._flows.pop(flow_id, None)
        if flow is not None:
            self._on_flow_removed(flow)

    def flows(self) -> List[Flow]:
        """Registered flows in registration order."""
        return list(self._flows.values())

    def has_flow(self, flow_id: str) -> bool:
        """Whether *flow_id* is registered."""
        return flow_id in self._flows

    def notify_backlogged(self, flow: Flow) -> None:
        """Tell the scheduler *flow* just went from empty to backlogged."""
        if flow.flow_id in self._flows:
            self._on_backlogged(flow)

    # Subclass hooks ----------------------------------------------------
    def _on_flow_added(self, flow: Flow) -> None:
        """Per-scheduler bookkeeping for a new flow."""

    def _on_flow_removed(self, flow: Flow) -> None:
        """Per-scheduler bookkeeping for a departed flow."""

    def _on_backlogged(self, flow: Flow) -> None:
        """Per-scheduler bookkeeping for an empty→backlogged transition."""

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Serialize this scheduler's mutable state to a JSON-safe dict.

        The snapshot never holds object references — flows appear as
        ids, to be resolved by :meth:`restore_state` against the flow
        table of the run being restored into.
        """
        return {
            "kind": type(self).__name__,
            "flow_order": list(self._flows),
            "state": self._snapshot_state(),
        }

    def restore_state(
        self, snapshot: Dict[str, object], flows: Dict[str, Flow]
    ) -> None:
        """Overwrite this scheduler's mutable state from *snapshot*.

        The scheduler must already be wired the way the snapshotted one
        was at build time (flows added through :meth:`add_flow`, so any
        listener registration has happened); this replaces membership
        and per-flow bookkeeping wholesale.
        """
        kind = snapshot.get("kind")
        if kind != type(self).__name__:
            raise CheckpointError(
                f"snapshot is for scheduler kind {kind!r}, "
                f"not {type(self).__name__!r}"
            )
        self._flows = {}
        for flow_id in snapshot["flow_order"]:
            flow = flows.get(flow_id)
            if flow is None:
                raise CheckpointError(
                    f"snapshot references unknown flow {flow_id!r}"
                )
            self._flows[flow_id] = flow
        self._restore_state(snapshot["state"])

    # Subclass hooks ----------------------------------------------------
    def _snapshot_state(self) -> Dict[str, object]:
        """Per-scheduler mutable state as a JSON-safe dict."""
        return {}

    def _restore_state(self, state: Dict[str, object]) -> None:
        """Overwrite per-scheduler state from :meth:`_snapshot_state`."""

    # ------------------------------------------------------------------
    # The scheduling decision
    # ------------------------------------------------------------------
    @abstractmethod
    def next_packet(self) -> Optional[Packet]:
        """Return the next packet to transmit, or ``None`` to idle.

        Must be work-conserving: only return ``None`` when no
        registered flow is backlogged.
        """


class MultiInterfaceScheduler(ABC):
    """Chooses the next packet for each of several output links."""

    def __init__(self) -> None:
        self._flows: Dict[str, Flow] = {}
        self._interface_ids: List[str] = []
        # Willing-interface index: flow_id -> ((prefs_version,
        # topology_version), willing tuple in registration order).
        # Validated lazily so a direct Flow.restrict_to() — with no
        # notification — can never serve a stale set.
        self._topology_version = 0
        self._willing_cache: Dict[str, Tuple[Tuple[int, int], Tuple[str, ...]]] = {}
        # Batched-quanta registry: flow_id -> the Interface currently
        # holding a fused transmission window for that flow. Shared by
        # reference with every interface (the engine wires it up), so
        # scheduler decision paths can abort a batch the instant a
        # foreign interaction would read state the batch defers. Empty
        # — and one falsy test per decision — when batching is off.
        self.batched_flows: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register_interface(self, interface_id: str) -> None:
        """Declare an output link. Must precede ``select`` for it."""
        if interface_id in self._interface_ids:
            raise SchedulingError(f"interface {interface_id!r} already registered")
        self._interface_ids.append(interface_id)
        self._topology_version += 1
        self._on_interface_added(interface_id)

    def interface_ids(self) -> List[str]:
        """Registered interfaces, in registration order."""
        return list(self._interface_ids)

    def willing_interfaces(self, flow: Flow) -> Tuple[str, ...]:
        """The interfaces *flow* is willing to use, in registration order.

        This is the precomputed ``Π_i`` row every hot-path loop iterates
        instead of testing ``willing_to_use`` against each registered
        interface. The tuple is cached per flow and revalidated against
        ``Flow.prefs_version`` and the scheduler's topology version, so
        preference edits and late interface registration invalidate it
        without any explicit notification.
        """
        version = (flow.prefs_version, self._topology_version)
        cached = self._willing_cache.get(flow.flow_id)
        if cached is not None and cached[0] == version:
            return cached[1]
        willing = tuple(
            interface_id
            for interface_id in self._interface_ids
            if flow.willing_to_use(interface_id)
        )
        self._willing_cache[flow.flow_id] = (version, willing)
        return willing

    # ------------------------------------------------------------------
    # Flow management
    # ------------------------------------------------------------------
    def add_flow(self, flow: Flow) -> None:
        """Start scheduling *flow* on its willing interfaces."""
        existing = self._flows.get(flow.flow_id)
        if existing is flow:
            return
        if existing is not None:
            raise SchedulingError(
                f"a different Flow object with id {flow.flow_id!r} is registered"
            )
        if not self.willing_interfaces(flow):
            del self._willing_cache[flow.flow_id]
            raise SchedulingError(
                f"flow {flow.flow_id!r} is unwilling to use every registered "
                "interface; it could never be served"
            )
        self._flows[flow.flow_id] = flow
        self._on_flow_added(flow)

    def remove_flow(self, flow_id: str) -> None:
        """Stop scheduling *flow_id*."""
        # Backstop for callers that bypass the engine: a removed flow
        # must not keep a fused transmission window (the engine aborts
        # earlier, while its own tables still resolve the flow).
        if self.batched_flows:
            owner = self.batched_flows.get(flow_id)
            if owner is not None:
                owner.abort_batch()
        flow = self._flows.pop(flow_id, None)
        if flow is not None:
            self._willing_cache.pop(flow_id, None)
            self._on_flow_removed(flow)

    def flows(self) -> List[Flow]:
        """Registered flows in registration order."""
        return list(self._flows.values())

    def has_flow(self, flow_id: str) -> bool:
        """Whether *flow_id* is registered."""
        return flow_id in self._flows

    def get_flow(self, flow_id: str) -> Flow:
        """Look up a registered flow."""
        flow = self._flows.get(flow_id)
        if flow is None:
            raise SchedulingError(f"unknown flow {flow_id!r}")
        return flow

    def notify_backlogged(self, flow: Flow) -> None:
        """Tell the scheduler *flow* just went from empty to backlogged.

        This call is the activation contract, not a hint: schedulers
        keep event-driven active sets and do **not** rescan the flow
        table per decision, so a registered flow that re-backlogs
        without this notification stays invisible to ``select`` until
        the next add/notify touches it. The engine emits it on every
        empty→backlogged arrival; direct users (benchmarks, tests) must
        do the same after offering packets to a drained flow.
        """
        if flow.flow_id in self._flows:
            self._on_backlogged(flow)

    # Subclass hooks ----------------------------------------------------
    def _on_interface_added(self, interface_id: str) -> None:
        """Per-scheduler bookkeeping for a new interface."""

    def _on_flow_added(self, flow: Flow) -> None:
        """Per-scheduler bookkeeping for a new flow."""

    def _on_flow_removed(self, flow: Flow) -> None:
        """Per-scheduler bookkeeping for a departed flow."""

    def _on_backlogged(self, flow: Flow) -> None:
        """Per-scheduler bookkeeping for an empty→backlogged transition."""

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Serialize this scheduler's mutable state to a JSON-safe dict.

        Flows are recorded by id and resolved at restore time; the
        willing-interface cache is deliberately absent (it is a pure
        cache, rebuilt lazily from ``prefs_version``/topology).
        """
        return {
            "kind": type(self).__name__,
            "interfaces": list(self._interface_ids),
            "flow_order": list(self._flows),
            "state": self._snapshot_state(),
        }

    def restore_state(
        self, snapshot: Dict[str, object], flows: Dict[str, Flow]
    ) -> None:
        """Overwrite this scheduler's mutable state from *snapshot*.

        The scheduler must already have the snapshot's interfaces
        registered (in the same order) — restore rebuilds run state,
        not topology.
        """
        kind = snapshot.get("kind")
        if kind != type(self).__name__:
            raise CheckpointError(
                f"snapshot is for scheduler kind {kind!r}, "
                f"not {type(self).__name__!r}"
            )
        if list(snapshot["interfaces"]) != self._interface_ids:
            raise CheckpointError(
                f"snapshot interfaces {snapshot['interfaces']!r} do not "
                f"match registered interfaces {self._interface_ids!r}"
            )
        self._flows = {}
        for flow_id in snapshot["flow_order"]:
            flow = flows.get(flow_id)
            if flow is None:
                raise CheckpointError(
                    f"snapshot references unknown flow {flow_id!r}"
                )
            self._flows[flow_id] = flow
        self._willing_cache.clear()
        self._restore_state(snapshot["state"])

    # Subclass hooks ----------------------------------------------------
    def _snapshot_state(self) -> Dict[str, object]:
        """Per-scheduler mutable state as a JSON-safe dict."""
        return {}

    def _restore_state(self, state: Dict[str, object]) -> None:
        """Overwrite per-scheduler state from :meth:`_snapshot_state`."""

    # ------------------------------------------------------------------
    # The scheduling decision
    # ------------------------------------------------------------------
    @abstractmethod
    def select(self, interface_id: str) -> Optional[Packet]:
        """Pick the next packet for *interface_id*, or ``None`` to idle.

        Must respect Π (never return a packet of an unwilling flow) and
        be work-conserving per interface.
        """
