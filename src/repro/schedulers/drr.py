"""Deficit Round Robin (Shreedhar & Varghese, SIGCOMM '95).

This is the paper's Algorithm 3.1 in event-driven form: each call to
:meth:`DrrScheduler.next_packet` corresponds to "interface j is free to
send another packet".

State per flow: a quantum ``Q_i = quantum_base × φ_i`` and a deficit
counter ``DC_i``. A *service turn* grants the quantum; the flow then
sends head-of-line packets while the deficit covers them. When the flow
empties, its deficit resets to zero (Algorithm 3.1), which is what
bounds ``0 ≤ DC_i < MaxSize`` (the paper's Lemma 3).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from ..errors import ConfigurationError, SchedulingError
from ..net.flow import Flow
from ..net.packet import Packet
from .base import SingleInterfaceScheduler

#: Default quantum in bytes; at least one MTU so every turn can send.
DEFAULT_QUANTUM = 1500


class DrrScheduler(SingleInterfaceScheduler):
    """Classic single-interface DRR with weighted quanta."""

    def __init__(self, quantum_base: int = DEFAULT_QUANTUM) -> None:
        super().__init__()
        if quantum_base <= 0:
            raise ConfigurationError(
                f"quantum_base must be positive, got {quantum_base}"
            )
        self._quantum_base = quantum_base
        # Insertion-ordered active list; OrderedDict gives O(1) membership
        # tests plus stable round-robin order.
        self._active: "OrderedDict[str, None]" = OrderedDict()
        self._deficit: Dict[str, float] = {}
        self._current: Optional[str] = None
        self.turns_taken: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def quantum(self, flow: Flow) -> float:
        """``Q_i`` — the per-turn byte allowance for *flow*."""
        return self._quantum_base * flow.weight

    def deficit(self, flow_id: str) -> float:
        """Current ``DC_i`` (0 for unknown flows)."""
        return self._deficit.get(flow_id, 0.0)

    def _on_flow_added(self, flow: Flow) -> None:
        self._deficit.setdefault(flow.flow_id, 0.0)
        self.turns_taken.setdefault(flow.flow_id, 0)
        if flow.backlogged:
            self._active[flow.flow_id] = None

    def _on_flow_removed(self, flow: Flow) -> None:
        self._active.pop(flow.flow_id, None)
        self._deficit.pop(flow.flow_id, None)
        if self._current == flow.flow_id:
            self._current = None

    def _on_backlogged(self, flow: Flow) -> None:
        if flow.flow_id not in self._active:
            self._active[flow.flow_id] = None

    def _deactivate(self, flow_id: str) -> None:
        """Flow emptied: reset deficit and drop from the active list."""
        self._active.pop(flow_id, None)
        self._deficit[flow_id] = 0.0
        if self._current == flow_id:
            self._current = None

    def _rotate_to_next(self) -> Optional[str]:
        """Advance the round-robin cursor to the next active flow."""
        if not self._active:
            return None
        flow_id, _ = self._active.popitem(last=False)
        self._active[flow_id] = None  # move to the back of the round
        return flow_id

    # ------------------------------------------------------------------
    # Algorithm 3.1
    # ------------------------------------------------------------------
    def next_packet(self) -> Optional[Packet]:
        # Reconcile the active list with reality: sources may have
        # refilled queues since we last looked.
        for flow in self._flows.values():
            if flow.backlogged and flow.flow_id not in self._active:
                self._active[flow.flow_id] = None

        if not self._active:
            return None

        # Continue the current flow's turn while its deficit covers the
        # head-of-line packet.
        guard = 0
        max_iterations = 2 * len(self._active) + 64
        while True:
            guard += 1
            if guard > max_iterations and self._largest_quantum() <= 0:
                raise SchedulingError("DRR made no progress")  # pragma: no cover
            if self._current is None:
                flow_id = self._rotate_to_next()
                if flow_id is None:
                    return None
                self._current = flow_id
                self._deficit[flow_id] += self.quantum(self._flows[flow_id])
                self.turns_taken[flow_id] = self.turns_taken.get(flow_id, 0) + 1

            flow = self._flows.get(self._current)
            if flow is None or not flow.backlogged:
                # Stale cursor (flow drained between decisions).
                if flow is not None:
                    self._deactivate(flow.flow_id)
                else:
                    self._current = None
                if not self._active:
                    return None
                continue

            head_size = flow.queue.head_size()
            assert head_size is not None
            if head_size <= self._deficit[flow.flow_id]:
                self._deficit[flow.flow_id] -= head_size
                packet = flow.pull()
                if not flow.backlogged:
                    self._deactivate(flow.flow_id)
                return packet

            # Deficit exhausted: the turn ends, move on. The deficit is
            # carried over (that is the "deficit" in DRR).
            self._current = None

    def _largest_quantum(self) -> float:
        return max((self.quantum(f) for f in self._flows.values()), default=0.0)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _snapshot_state(self) -> Dict[str, object]:
        return {
            "quantum_base": self._quantum_base,
            "active": list(self._active),
            "deficit": dict(self._deficit),
            "current": self._current,
            "turns_taken": dict(self.turns_taken),
        }

    def _restore_state(self, state: Dict[str, object]) -> None:
        if state["quantum_base"] != self._quantum_base:
            raise SchedulingError(
                f"snapshot quantum_base {state['quantum_base']!r} does not "
                f"match {self._quantum_base!r}"
            )
        self._active = OrderedDict((flow_id, None) for flow_id in state["active"])
        self._deficit = dict(state["deficit"])
        self._current = state["current"]
        self.turns_taken = dict(state["turns_taken"])
