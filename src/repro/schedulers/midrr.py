"""miDRR — multiple-interface Deficit Round Robin (the paper, §3).

Each interface runs classic DRR over the backlogged flows willing to
use it (``F_j ∩ B``), with one addition: a boolean **service flag**
``SF_ij`` per (flow, interface). The two flag rules (paper §3.1):

1. When interface *k* serves flow *i*, it sets ``SF_ij = 1 ∀ j ≠ k``.
2. When interface *j* considers flow *i* and finds ``SF_ij = 1``, it
   clears the flag and skips the flow *without granting quantum*
   (Algorithm 3.2, MIDRR-CHECK-NEXT).

The flag tells interface *j* "flow *i* was served elsewhere since you
last considered it", i.e. its rate is already at least your round rate,
so serving it would push the allocation away from max-min fairness.
This one bit per (flow, interface) is the paper's entire coordination
mechanism, replacing any exchange of measured rates.

Implementation notes
--------------------
* ``flag_on`` selects when rule 1 fires: ``"turn"`` (at the start of a
  service turn, as in the Algorithm 3.2 pseudocode — the default) or
  ``"packet"`` (on every transmitted packet, as a literal reading of
  the prose). Both converge to the max-min allocation; the ablation
  bench A1/A2 compares them.
* ``deficit_scope`` selects whether the deficit counter is kept per
  (flow, interface) (``"flow_interface"`` — the default) or shared per
  flow (``"flow"``). The paper's symbol table writes a single ``DC_i``,
  but its prose says *"each interface implementing DRR independently"*,
  which implies per-interface counters — and the shared reading is in
  fact unsound: when a flow is served by two interfaces at once, the
  second interface keeps refilling the shared pool, the first
  interface's service turn never closes, and every other flow at that
  interface starves (a concrete instance is pinned in
  ``tests/test_sched_midrr_properties.py`` and measured in ablation
  bench A1). We therefore default to the independent reading.
* Work conservation: the skip loop clears flags as it passes, so within
  one decision a second visit to the same flow finds the flag clear —
  an interface never idles while any willing flow is backlogged.
* Activation is **event-driven**: the per-interface active lists are
  maintained exclusively by ``notify_backlogged`` / ``add_flow`` /
  drain bookkeeping, and ``select`` never rescans the flow table. A
  decision therefore costs O(flows actually considered), independent
  of the total flow count; activating a flow costs O(|Π_i|) via the
  base class's cached :meth:`~MultiInterfaceScheduler.willing_interfaces`
  index. Callers that bypass the engine must honour the
  ``notify_backlogged`` contract (see its docstring).
* ``decision_flows_examined`` records, per decision, how many flows the
  interface had to consider before finding one to serve. Figure 9's
  "extra search time" is exactly this quantity.

A known limitation of the published 1-bit mechanism (found by this
reproduction's property tests, see DESIGN.md §"Deviation found"): when
one flow's cluster spans several interfaces — the flow must aggregate
them all — and a *faster* flow is also willing to use those interfaces,
the skip loop cannot distinguish "flagged by my same-cluster sibling
interface" from "flagged because the flow is served by a faster
cluster". After a full wrap clears every flag, the round-robin cursor
can hand a turn to the faster flow, leaking it capacity that exact
max-min fairness assigns to the aggregating flow (e.g. measured 1.33
vs 2.0 Mb/s on a 4-interface instance). All of the paper's own
scenarios are reproduced exactly; the leak needs the adversarial
topology above. ``exclusion="counter"`` generalizes the flag to a
saturating skip counter (still O(1) state per (flow, interface)):
each remote service turn earns one future skip, so a flow served by a
much faster cluster accumulates skips faster than the round-robin can
drain them and stays excluded. The counter variant restores exact
max-min on every instance our property tests generate while remaining
bit-identical to the paper's algorithm on its published scenarios.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError, SchedulingError
from ..net.flow import Flow
from ..net.packet import Packet
from .base import MultiInterfaceScheduler
from .drr import DEFAULT_QUANTUM

#: Valid values for the ``flag_on`` knob.
FLAG_MODES = ("turn", "packet")

#: Valid values for the ``deficit_scope`` knob.
DEFICIT_SCOPES = ("flow", "flow_interface")

#: Valid values for the ``exclusion`` knob.
EXCLUSION_MODES = ("flag", "counter")

#: Saturation cap for ``exclusion="counter"``; bounds both the state
#: (6 bits) and the skip-loop wrap count.
COUNTER_CAP = 64


class _InterfaceState:
    """Per-interface DRR state: active round list and cursor."""

    __slots__ = ("active", "current", "turn_open")

    def __init__(self) -> None:
        # Insertion-ordered set of backlogged willing flow ids.
        self.active: "OrderedDict[str, None]" = OrderedDict()
        # Flow whose service turn is in progress, if any.
        self.current: Optional[str] = None
        # True while `current` still has granted deficit to spend.
        self.turn_open: bool = False


class MiDrrScheduler(MultiInterfaceScheduler):
    """The paper's miDRR scheduler (Table 1, Algorithms 3.1 + 3.2)."""

    def __init__(
        self,
        quantum_base: int = DEFAULT_QUANTUM,
        flag_on: str = "turn",
        deficit_scope: str = "flow_interface",
        exclusion: str = "flag",
    ) -> None:
        super().__init__()
        if quantum_base <= 0:
            raise ConfigurationError(
                f"quantum_base must be positive, got {quantum_base}"
            )
        if flag_on not in FLAG_MODES:
            raise ConfigurationError(
                f"flag_on must be one of {FLAG_MODES}, got {flag_on!r}"
            )
        if deficit_scope not in DEFICIT_SCOPES:
            raise ConfigurationError(
                f"deficit_scope must be one of {DEFICIT_SCOPES}, got {deficit_scope!r}"
            )
        if exclusion not in EXCLUSION_MODES:
            raise ConfigurationError(
                f"exclusion must be one of {EXCLUSION_MODES}, got {exclusion!r}"
            )
        self._quantum_base = quantum_base
        self._flag_on = flag_on
        self._deficit_scope = deficit_scope
        self._exclusion = exclusion
        self._states: Dict[str, _InterfaceState] = {}
        # Service flags SF_ij, keyed (flow_id, interface_id). With
        # exclusion="flag" values are 0/1 (the paper's boolean); with
        # "counter" they saturate at COUNTER_CAP.
        self._service_flags: Dict[Tuple[str, str], int] = {}
        # Deficit counters; key is flow_id ("flow" scope) or
        # (flow_id, interface_id) ("flow_interface" scope). Both this
        # dict and _service_flags hold entries only for live keys:
        # drained flows are popped by _deactivate, removed flows by
        # _on_flow_removed (the health layer asserts this).
        self._deficit: Dict[object, float] = {}
        # Telemetry: per-decision flow-consideration counts (Figure 9).
        # Each select() appends exactly one entry: the number of flow
        # considerations the decision performed — every cursor advance
        # in MIDRR-CHECK-NEXT plus, when the decision resumes a service
        # turn carried over from the previous decision, one for the
        # resumed flow. A decision that serves straight from a resumed
        # turn therefore records 1; an idle interface records 0.
        self.decision_flows_examined: List[int] = []
        # Telemetry: service turns granted per flow (Lemmas 5/6 tests).
        self.turns_taken: Dict[str, int] = {}
        # Telemetry: rule-1 flag sets and rule-2 flag clears (skip
        # consumptions). Plain integers so the hot path pays one
        # increment; repro.obs samples them into registry gauges.
        self.flags_set_total = 0
        self.flags_cleared_total = 0
        # Live count of nonzero service flags (pending_flags()); kept
        # in step at every flag transition and flow removal.
        self._pending_flags_count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def quantum_base(self) -> int:
        """Base quantum in bytes; ``Q_i = quantum_base × φ_i``."""
        return self._quantum_base

    def quantum(self, flow: Flow) -> float:
        """``Q_i`` for *flow*."""
        return self._quantum_base * flow.weight

    @property
    def exclusion(self) -> str:
        """The exclusion mechanism: ``"flag"`` (paper) or ``"counter"``."""
        return self._exclusion

    def service_flag(self, flow_id: str, interface_id: str) -> bool:
        """Current ``SF_ij`` as a boolean (False when unset/unknown)."""
        return bool(self._service_flags.get((flow_id, interface_id), 0))

    def skip_credit(self, flow_id: str, interface_id: str) -> int:
        """Pending skips for ``exclusion="counter"`` (0/1 for "flag")."""
        return self._service_flags.get((flow_id, interface_id), 0)

    def deficit(self, flow_id: str, interface_id: Optional[str] = None) -> float:
        """Current deficit counter for *flow_id*.

        With ``deficit_scope="flow_interface"``, passing an
        *interface_id* returns that interface's counter; omitting it
        returns the sum across interfaces (total granted, unspent
        service for the flow).
        """
        if self._deficit_scope == "flow":
            return self._deficit.get(flow_id, 0.0)
        if interface_id is None:
            return sum(
                value
                for key, value in self._deficit.items()
                if isinstance(key, tuple) and key[0] == flow_id
            )
        return self._deficit.get((flow_id, interface_id), 0.0)

    def deficit_backlog(self) -> float:
        """Total granted, unspent deficit across all live counters.

        The aggregate "how much service is owed" level the telemetry
        layer samples; bounded by ``Q_max × flows × interfaces`` when
        the deficit-reset invariant holds (the health checker's claim).
        """
        return sum(self._deficit.values())

    def pending_flags(self) -> int:
        """Number of (flow, interface) pairs with a pending skip.

        Maintained incrementally at flag set/clear/removal so telemetry
        can read it every snapshot without scanning the flag table.
        """
        return self._pending_flags_count

    def _deficit_key(self, flow_id: str, interface_id: str) -> object:
        if self._deficit_scope == "flow":
            return flow_id
        return (flow_id, interface_id)

    # ------------------------------------------------------------------
    # Topology / flow bookkeeping
    # ------------------------------------------------------------------
    def _on_interface_added(self, interface_id: str) -> None:
        self._states[interface_id] = _InterfaceState()
        for flow in self._flows.values():
            if flow.willing_to_use(interface_id) and flow.backlogged:
                self._states[interface_id].active[flow.flow_id] = None

    def _on_flow_added(self, flow: Flow) -> None:
        self.turns_taken.setdefault(flow.flow_id, 0)
        # "Service flags for new flows are initiated at zero" (Table 1).
        # Only willing interfaces get a key: a flag at an unwilling
        # interface is never set by rule 1 nor read by rule 2, and the
        # getters default a missing key to zero.
        for interface_id in self.willing_interfaces(flow):
            key = (flow.flow_id, interface_id)
            if self._service_flags.get(key, 0):
                self._pending_flags_count -= 1
            self._service_flags[key] = 0
        if flow.backlogged:
            self._activate(flow)

    def _on_flow_removed(self, flow: Flow) -> None:
        for interface_id, state in self._states.items():
            state.active.pop(flow.flow_id, None)
            if state.current == flow.flow_id:
                state.current = None
                state.turn_open = False
            if self._service_flags.pop((flow.flow_id, interface_id), 0):
                self._pending_flags_count -= 1
            self._deficit.pop((flow.flow_id, interface_id), None)
        self._deficit.pop(flow.flow_id, None)

    def _on_backlogged(self, flow: Flow) -> None:
        self._activate(flow)

    def _activate(self, flow: Flow) -> None:
        """Join the round at every willing interface — O(|Π_i|)."""
        flow_id = flow.flow_id
        states = self._states
        for interface_id in self.willing_interfaces(flow):
            active = states[interface_id].active
            if flow_id not in active:
                active[flow_id] = None

    def _deactivate(self, flow_id: str, interface_id: str) -> None:
        """Flow drained: reset deficits, drop from every active list.

        Algorithm 3.1 resets ``DC_i`` when the backlog empties; with
        per-interface counters that means every interface's counter for
        the flow. Resetting is implemented by popping the key — a
        missing counter reads as zero everywhere — so the deficit dict
        stays sized by the *currently backlogged* flows rather than
        accumulating a key per flow ever served (state leak).
        """
        if self._deficit_scope == "flow":
            self._deficit.pop(flow_id, None)
        else:
            # All interfaces, not just currently-willing ones: a
            # preference narrowing after the quantum was granted must
            # not strand the counter.
            for other_interface in self._interface_ids:
                self._deficit.pop((flow_id, other_interface), None)
        for state in self._states.values():
            state.active.pop(flow_id, None)
            if state.current == flow_id:
                state.current = None
                state.turn_open = False

    # ------------------------------------------------------------------
    # Flag maintenance (the paper's two rules)
    # ------------------------------------------------------------------
    def _mark_served(self, flow: Flow, serving_interface: str) -> None:
        """Rule 1: set ``SF_ij`` at every other willing interface.

        With ``exclusion="flag"`` this is the paper's boolean set; with
        ``"counter"`` each remote service earns one future skip, up to
        :data:`COUNTER_CAP`. Runs once per service turn (or per packet
        with ``flag_on="packet"``), so it iterates the flow's cached
        willing list — O(|Π_i|) — rather than every interface.
        """
        flow_id = flow.flow_id
        flags = self._service_flags
        if self._exclusion == "flag":
            for interface_id in self.willing_interfaces(flow):
                if interface_id != serving_interface:
                    key = (flow_id, interface_id)
                    if not flags.get(key, 0):
                        self.flags_set_total += 1
                        self._pending_flags_count += 1
                    flags[key] = 1
        else:
            for interface_id in self.willing_interfaces(flow):
                if interface_id != serving_interface:
                    key = (flow_id, interface_id)
                    previous = flags.get(key, 0)
                    if not previous:
                        self._pending_flags_count += 1
                    flags[key] = min(COUNTER_CAP, previous + 1)
                    self.flags_set_total += 1

    # ------------------------------------------------------------------
    # Algorithm 3.1 with Algorithm 3.2 spliced in
    # ------------------------------------------------------------------
    def select(self, interface_id: str) -> Optional[Packet]:
        state = self._states.get(interface_id)
        if state is None:
            raise SchedulingError(f"unknown interface {interface_id!r}")

        if not state.active:
            self.decision_flows_examined.append(0)
            return None

        # A decision that resumes a service turn carried over from the
        # previous decision considers that flow first — count it. (The
        # pre-fix code only credited this consideration when the
        # resumed flow was served immediately, so a decision that found
        # it drained and moved on under-counted by one.)
        examined = 1 if state.turn_open else 0
        # A resumed turn may read (and pull from) a flow whose future
        # service is fused into a batch on another interface; the batch
        # must fall back to per-packet history first so this decision
        # sees the queue and deficit state the unbatched run would.
        # (batched_flows is empty — and the check one falsy test —
        # whenever batching is off.)
        if self.batched_flows and state.turn_open and state.current is not None:
            owner = self.batched_flows.get(state.current)
            if owner is not None and owner.interface_id != interface_id:
                owner.abort_batch()
        deficits = self._deficit
        # Outer loop: service turns. Each iteration either transmits a
        # packet or closes a turn; deficits grow monotonically across
        # rotations so the loop terminates.
        while True:
            if not state.turn_open:
                flow_id, scanned = self._check_next(interface_id, state)
                examined += scanned
                if flow_id is None:
                    self.decision_flows_examined.append(examined)
                    return None
                state.current = flow_id
                state.turn_open = True
                flow = self._flows[flow_id]
                key = self._deficit_key(flow_id, interface_id)
                deficits[key] = deficits.get(key, 0.0) + self.quantum(flow)
                self.turns_taken[flow_id] = self.turns_taken.get(flow_id, 0) + 1
                if self._flag_on == "turn":
                    self._mark_served(flow, interface_id)

            flow = self._flows.get(state.current) if state.current else None
            if flow is None or not flow.backlogged:
                # Drained between decisions (e.g. another interface
                # consumed the backlog): close the turn.
                if flow is not None:
                    self._deactivate(flow.flow_id, interface_id)
                state.current = None
                state.turn_open = False
                if not state.active:
                    self.decision_flows_examined.append(examined)
                    return None
                continue
            if not flow.willing_to_use(interface_id):
                # Live preference change (Π edited mid-run): this
                # interface must stop serving the flow immediately.
                state.active.pop(flow.flow_id, None)
                state.current = None
                state.turn_open = False
                if not state.active:
                    self.decision_flows_examined.append(examined)
                    return None
                continue

            key = self._deficit_key(flow.flow_id, interface_id)
            head_size = flow.queue.head_size()
            assert head_size is not None
            if head_size <= deficits.get(key, 0.0):
                deficits[key] -= head_size
                packet = flow.pull()
                if self._flag_on == "packet":
                    self._mark_served(flow, interface_id)
                if not flow.backlogged:
                    self._deactivate(flow.flow_id, interface_id)
                self.decision_flows_examined.append(examined)
                return packet

            # Quantum spent: the turn ends, deficit carries over.
            state.current = None
            state.turn_open = False

    # ------------------------------------------------------------------
    # Batched service quanta
    # ------------------------------------------------------------------
    def plan_batch(self, interface_id: str) -> Optional[Tuple[Flow, int]]:
        """How much of the just-served flow's turn is already decided?

        Called by the engine immediately after :meth:`select` returned
        a packet for *interface_id*. Returns ``(flow, extra)`` when the
        next *extra* head-of-line packets of the still-open turn are
        **forced**: select would serve them unconditionally, because a
        resumed turn only checks liveness, willingness and the deficit
        — never service flags — and every interaction that could change
        those inputs (preference change, rate change, outage, a foreign
        decision touching the flow, flow removal, checkpoint) aborts
        the batch first. Returns ``None`` when nothing is provably
        forced.

        The plan stops one packet short of the backlog (``extra <=
        len(queue) - 1``) so the queue never empties while the batch
        replays: refill sources then never trigger an empty->backlogged
        activation — the only packet-arrival path that schedules — at
        a rewound clock. ``flag_on="packet"`` is excluded because each
        replayed packet would mutate foreign-visible flags with
        tie-orderings a fused event cannot reproduce; ``"turn"`` sets
        flags only at the grant, which has already happened.
        """
        if self._flag_on != "turn":
            return None
        state = self._states.get(interface_id)
        if state is None or not state.turn_open or state.current is None:
            return None
        flow = self._flows.get(state.current)
        if flow is None or not flow.backlogged:
            return None
        budget = self._deficit.get(self._deficit_key(flow.flow_id, interface_id), 0.0)
        limit = len(flow.queue) - 1
        if limit < 1:
            return None
        extra = 0
        for packet in flow.queue:
            size = packet.size_bytes
            if extra >= limit or size > budget:
                break
            # Mirror select's float arithmetic exactly: the replayed
            # deficit subtractions must reproduce these comparisons.
            budget -= size
            extra += 1
        if extra < 1:
            return None
        return flow, extra

    def forced_resume(self, interface_id: str) -> Optional[Packet]:
        """Replay one planned resumed-turn decision without the scan.

        Semantically identical to :meth:`select` on the resumed-turn
        serve path for a decision :meth:`plan_batch` proved forced —
        one flow considered, deficit decremented by the head size, head
        pulled — minus the checks the plan already discharged. The
        engine substitutes :meth:`select` itself whenever a decision
        probe is installed, so traces and instrumentation always see
        the full path.
        """
        state = self._states[interface_id]
        flow = self._flows[state.current]
        key = self._deficit_key(flow.flow_id, interface_id)
        head_size = flow.queue.head_size()
        self._deficit[key] -= head_size
        packet = flow.pull()
        if not flow.backlogged:
            self._deactivate(flow.flow_id, interface_id)
        self.decision_flows_examined.append(1)
        return packet

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _snapshot_state(self) -> Dict[str, object]:
        # decision_flows_examined is deliberately absent: it is
        # unbounded per-decision telemetry (Figure 9) and restarts
        # empty after a restore.
        return {
            "config": {
                "quantum_base": self._quantum_base,
                "flag_on": self._flag_on,
                "deficit_scope": self._deficit_scope,
                "exclusion": self._exclusion,
            },
            "interfaces": {
                interface_id: {
                    "active": list(state.active),
                    "current": state.current,
                    "turn_open": state.turn_open,
                }
                for interface_id, state in self._states.items()
            },
            "service_flags": [
                [flow_id, interface_id, value]
                for (flow_id, interface_id), value in self._service_flags.items()
            ],
            "deficit": [
                [key, None, value] if isinstance(key, str) else [key[0], key[1], value]
                for key, value in self._deficit.items()
            ],
            "turns_taken": dict(self.turns_taken),
            "flags_set_total": self.flags_set_total,
            "flags_cleared_total": self.flags_cleared_total,
            "pending_flags_count": self._pending_flags_count,
        }

    def _restore_state(self, state: Dict[str, object]) -> None:
        config = state["config"]
        mine = {
            "quantum_base": self._quantum_base,
            "flag_on": self._flag_on,
            "deficit_scope": self._deficit_scope,
            "exclusion": self._exclusion,
        }
        if config != mine:
            raise SchedulingError(
                f"snapshot miDRR config {config!r} does not match {mine!r}"
            )
        self._states = {}
        for interface_id, iface_state in state["interfaces"].items():
            restored = _InterfaceState()
            for flow_id in iface_state["active"]:
                restored.active[flow_id] = None
            restored.current = iface_state["current"]
            restored.turn_open = bool(iface_state["turn_open"])
            self._states[interface_id] = restored
        self._service_flags = {
            (flow_id, interface_id): value
            for flow_id, interface_id, value in state["service_flags"]
        }
        self._deficit = {}
        for flow_id, interface_id, value in state["deficit"]:
            key = flow_id if interface_id is None else (flow_id, interface_id)
            self._deficit[key] = value
        self.decision_flows_examined = []
        self.turns_taken = dict(state["turns_taken"])
        self.flags_set_total = state["flags_set_total"]
        self.flags_cleared_total = state["flags_cleared_total"]
        self._pending_flags_count = state["pending_flags_count"]

    def _check_next(
        self, interface_id: str, state: _InterfaceState
    ) -> Tuple[Optional[str], int]:
        """Algorithm 3.2: advance the cursor past flagged flows.

        Returns ``(flow_id, flows_examined)``. Clears (or decrements)
        each flag it skips over (rule 2). With boolean flags at most one
        full rotation can consist purely of skips, so the scan is
        bounded by ``2 × len(active)``; counters saturate at
        :data:`COUNTER_CAP`, bounding the scan likewise.
        """
        examined = 0
        rotations = 0
        per_flow_budget = 2 if self._exclusion == "flag" else COUNTER_CAP + 2
        limit = per_flow_budget * len(state.active) + 1
        while state.active and rotations < limit:
            flow_id, _ = state.active.popitem(last=False)
            flow = self._flows.get(flow_id)
            if (
                flow is None
                or not flow.backlogged
                or not flow.willing_to_use(interface_id)
            ):
                # Stale entry (flow gone, drained, or its Π changed):
                # drop it without re-appending.
                rotations += 1
                continue
            state.active[flow_id] = None  # back of the round
            examined += 1
            rotations += 1
            flag_key = (flow_id, interface_id)
            pending = self._service_flags.get(flag_key, 0)
            if pending:
                # Rule 2: consume one skip without granting quantum.
                remaining = 0 if self._exclusion == "flag" else pending - 1
                self._service_flags[flag_key] = remaining
                if not remaining:
                    self._pending_flags_count -= 1
                self.flags_cleared_total += 1
                continue
            # About to hand this flow the turn: if its future service is
            # batched on another interface, materialize that history
            # first (the skip path above needs no abort — rule-1 flags
            # are set at turn grant, before any batch starts, so the
            # flag state a skip reads is already batch-independent).
            if self.batched_flows:
                owner = self.batched_flows.get(flow_id)
                if owner is not None and owner.interface_id != interface_id:
                    owner.abort_batch()
            return flow_id, examined
        return None, examined
