"""Naive multi-interface baselines.

These reproduce the schedulers the paper shows are *insufficient*:

* :class:`PerInterfaceScheduler` — run an independent single-interface
  scheduler (WFQ or DRR) on every interface over the shared backlogs of
  all willing flows. This is "prior work": it meets interface
  preferences and is work-conserving, but fails rate preferences — in
  Figure 1(c) it gives flow *a* 1.5 Mb/s and flow *b* 0.5 Mb/s instead
  of the max-min fair (1, 1).
* :class:`StaticSplitScheduler` — pin each flow to exactly one willing
  interface (weighted-least-loaded at admission) and run DRR per
  interface. Simple, but wastes capacity and cannot aggregate
  bandwidth across interfaces.

Both schedulers derive inner-scheduler membership from Π, so a live
preference edit (``Flow.restrict_to``) must revalidate it: membership
is re-synced lazily against ``Flow.prefs_version`` (the same contract
``base.willing_interfaces`` uses), driven by a per-flow dirty mark set
from the flow's preference-change listener. A flow restricted away
from an interface leaves that inner scheduler before the next decision
(Π respect); a flow widened onto a new interface joins it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from ..errors import SchedulingError
from ..net.flow import Flow
from ..net.packet import Packet
from .base import MultiInterfaceScheduler, SingleInterfaceScheduler
from .drr import DrrScheduler
from .wfq import WfqScheduler

#: Factory producing one fresh single-interface scheduler per interface.
SchedulerFactory = Callable[[], SingleInterfaceScheduler]


class _ChurnSyncMixin:
    """Lazy membership revalidation against ``Flow.prefs_version``.

    Subclasses call :meth:`_hook_prefs` when a flow is added,
    :meth:`_drop_sync_state` when it is removed, :meth:`_sync_dirty`
    at the top of every decision, and implement :meth:`_sync_flow` to
    reconcile their derived membership with the flow's current Π row.
    The dirty registry is an insertion-ordered dict so multi-flow sync
    order never depends on string hashing.
    """

    def _init_churn_sync(self) -> None:
        self._applied_prefs: Dict[str, int] = {}
        self._dirty: Dict[str, None] = {}

    def _hook_prefs(self, flow: Flow) -> None:
        if flow.flow_id in self._applied_prefs:
            # Re-added (e.g. quarantine resume): listener already wired.
            self._applied_prefs[flow.flow_id] = flow.prefs_version
            return
        self._applied_prefs[flow.flow_id] = flow.prefs_version
        flow.on_prefs_change(self._prefs_edited)

    def _prefs_edited(self, flow: Flow) -> None:
        # Listeners outlive membership (Flow offers no unregister), so
        # only currently-registered flows get marked.
        if flow.flow_id in self._flows:
            self._dirty[flow.flow_id] = None

    def _drop_sync_state(self, flow_id: str) -> None:
        self._dirty.pop(flow_id, None)

    def _sync_dirty(self) -> None:
        while self._dirty:
            flow_id = next(iter(self._dirty))
            del self._dirty[flow_id]
            flow = self._flows.get(flow_id)
            if flow is None:
                continue
            if self._applied_prefs.get(flow_id) == flow.prefs_version:
                continue
            self._sync_flow(flow)
            self._applied_prefs[flow_id] = flow.prefs_version

    def _sync_flow(self, flow: Flow) -> None:
        raise NotImplementedError

    def _reset_sync_state(self) -> None:
        """Post-restore: snapshots are taken synced (see subclasses)."""
        self._dirty.clear()
        self._applied_prefs = {
            flow_id: flow.prefs_version for flow_id, flow in self._flows.items()
        }


class PerInterfaceScheduler(_ChurnSyncMixin, MultiInterfaceScheduler):
    """Independent single-interface schedulers over shared backlogs."""

    def __init__(self, factory: SchedulerFactory) -> None:
        super().__init__()
        self._factory = factory
        self._inner: Dict[str, SingleInterfaceScheduler] = {}
        # Applied membership per flow: which inners currently hold it.
        self._member: Dict[str, Set[str]] = {}
        self._init_churn_sync()

    @classmethod
    def wfq(cls) -> "PerInterfaceScheduler":
        """The paper's per-interface WFQ baseline."""
        return cls(WfqScheduler)

    @classmethod
    def drr(cls, quantum_base: int = 1500) -> "PerInterfaceScheduler":
        """The paper's "naive DRR on each interface" baseline."""
        return cls(lambda: DrrScheduler(quantum_base=quantum_base))

    @classmethod
    def fifo(cls) -> "PerInterfaceScheduler":
        """Aggregate FIFO striping: no fairness machinery at all.

        Whichever interface frees up first takes the globally oldest
        eligible packet — the behaviour of naive packet striping (a
        pull-side join-shortest-queue). Π still holds (unwilling
        interfaces never see the flow), but heavy flows crowd out light
        ones entirely; the conformance battery shows what that costs.
        """
        from .fifo import FifoScheduler

        return cls(FifoScheduler)

    def _on_interface_added(self, interface_id: str) -> None:
        self._inner[interface_id] = self._factory()
        # Flows added before this interface appeared join it now.
        for flow in self._flows.values():
            if flow.willing_to_use(interface_id):
                self._inner[interface_id].add_flow(flow)
                self._member[flow.flow_id].add(interface_id)

    def _on_flow_added(self, flow: Flow) -> None:
        member: Set[str] = set()
        for interface_id in self.willing_interfaces(flow):
            self._inner[interface_id].add_flow(flow)
            member.add(interface_id)
        self._member[flow.flow_id] = member
        self._hook_prefs(flow)

    def _on_flow_removed(self, flow: Flow) -> None:
        for inner in self._inner.values():
            inner.remove_flow(flow.flow_id)
        self._member.pop(flow.flow_id, None)
        self._drop_sync_state(flow.flow_id)

    def _sync_flow(self, flow: Flow) -> None:
        """Reconcile inner membership with the flow's current Π row."""
        willing = set(self.willing_interfaces(flow))
        member = self._member.setdefault(flow.flow_id, set())
        for interface_id in member - willing:
            self._inner[interface_id].remove_flow(flow.flow_id)
        for interface_id in willing - member:
            inner = self._inner[interface_id]
            inner.add_flow(flow)
            if flow.backlogged:
                inner.notify_backlogged(flow)
        self._member[flow.flow_id] = willing

    def _on_backlogged(self, flow: Flow) -> None:
        if self._dirty:
            self._sync_dirty()
        for interface_id in self._member.get(flow.flow_id, ()):
            self._inner[interface_id].notify_backlogged(flow)

    def select(self, interface_id: str) -> Optional[Packet]:
        if self._dirty:
            self._sync_dirty()
        inner = self._inner.get(interface_id)
        if inner is None:
            raise SchedulingError(f"unknown interface {interface_id!r}")
        return inner.next_packet()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _snapshot_state(self) -> Dict[str, object]:
        # Sync first so the snapshot's inner membership matches every
        # flow's current prefs_version — restore then rebuilds the
        # applied-version table from the flows themselves.
        self._sync_dirty()
        return {
            "inner": {
                interface_id: inner.snapshot_state()
                for interface_id, inner in self._inner.items()
            }
        }

    def _restore_state(self, state: Dict[str, object]) -> None:
        for interface_id, snapshot in state["inner"].items():
            inner = self._inner.get(interface_id)
            if inner is None:
                raise SchedulingError(
                    f"snapshot references unknown interface {interface_id!r}"
                )
            inner.restore_state(snapshot, self._flows)
        self._member = {
            flow_id: {
                interface_id
                for interface_id, inner in self._inner.items()
                if inner.has_flow(flow_id)
            }
            for flow_id in self._flows
        }
        self._reset_sync_state()


class StaticSplitScheduler(_ChurnSyncMixin, MultiInterfaceScheduler):
    """Pin each flow to one willing interface; DRR per interface.

    Assignment picks the willing interface with the smallest total
    pinned weight (ties broken by registration order), a reasonable
    admission-time heuristic a mobile OS might use.

    Pin-once contract: assignment happens **at admission only**. An
    interface registered after a flow was admitted is never considered
    for that flow retroactively — it starts at zero pinned weight and
    therefore wins the next admission (asserted in
    :meth:`_on_interface_added`); this wasted-capacity behaviour is
    exactly what the conformance battery shows static splitting costs.
    The single exception is a live preference edit that removes the
    pinned interface from the flow's Π row: serving on would violate Π,
    so the flow is re-pinned among its new willing set as if it were a
    fresh admission.
    """

    def __init__(self, quantum_base: int = 1500) -> None:
        super().__init__()
        self._quantum_base = quantum_base
        self._inner: Dict[str, DrrScheduler] = {}
        self._pinned_weight: Dict[str, float] = {}
        self._assignment: Dict[str, str] = {}
        self._init_churn_sync()

    @property
    def assignment(self) -> Dict[str, str]:
        """Current flow → interface pinning."""
        return dict(self._assignment)

    def _on_interface_added(self, interface_id: str) -> None:
        self._inner[interface_id] = DrrScheduler(quantum_base=self._quantum_base)
        # Pin-once: existing flows keep their assignment. The new
        # interface joins the admission pool at zero pinned weight, so
        # it is the least-loaded candidate for the *next* admission.
        assert interface_id not in self._pinned_weight
        self._pinned_weight[interface_id] = 0.0

    def _pin(self, flow: Flow) -> None:
        willing = self.willing_interfaces(flow)
        target = min(willing, key=lambda j: self._pinned_weight[j])
        self._assignment[flow.flow_id] = target
        self._pinned_weight[target] += flow.weight
        self._inner[target].add_flow(flow)
        if flow.backlogged:
            self._inner[target].notify_backlogged(flow)

    def _unpin(self, flow: Flow) -> None:
        target = self._assignment.pop(flow.flow_id, None)
        if target is not None:
            self._pinned_weight[target] -= flow.weight
            self._inner[target].remove_flow(flow.flow_id)

    def _on_flow_added(self, flow: Flow) -> None:
        self._pin(flow)
        self._hook_prefs(flow)

    def _on_flow_removed(self, flow: Flow) -> None:
        self._unpin(flow)
        self._drop_sync_state(flow.flow_id)

    def _sync_flow(self, flow: Flow) -> None:
        """Re-pin only when the pinned interface left the flow's Π row."""
        target = self._assignment.get(flow.flow_id)
        if target is not None and flow.willing_to_use(target):
            return
        self._unpin(flow)
        self._pin(flow)

    def _on_backlogged(self, flow: Flow) -> None:
        if self._dirty:
            self._sync_dirty()
        target = self._assignment.get(flow.flow_id)
        if target is not None:
            self._inner[target].notify_backlogged(flow)

    def select(self, interface_id: str) -> Optional[Packet]:
        if self._dirty:
            self._sync_dirty()
        inner = self._inner.get(interface_id)
        if inner is None:
            raise SchedulingError(f"unknown interface {interface_id!r}")
        return inner.next_packet()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _snapshot_state(self) -> Dict[str, object]:
        # Sync first: see PerInterfaceScheduler._snapshot_state.
        self._sync_dirty()
        return {
            "pinned_weight": dict(self._pinned_weight),
            "assignment": dict(self._assignment),
            "inner": {
                interface_id: inner.snapshot_state()
                for interface_id, inner in self._inner.items()
            },
        }

    def _restore_state(self, state: Dict[str, object]) -> None:
        self._pinned_weight = dict(state["pinned_weight"])
        self._assignment = dict(state["assignment"])
        for interface_id, snapshot in state["inner"].items():
            inner = self._inner.get(interface_id)
            if inner is None:
                raise SchedulingError(
                    f"snapshot references unknown interface {interface_id!r}"
                )
            inner.restore_state(snapshot, self._flows)
        self._reset_sync_state()
