"""Naive multi-interface baselines.

These reproduce the schedulers the paper shows are *insufficient*:

* :class:`PerInterfaceScheduler` — run an independent single-interface
  scheduler (WFQ or DRR) on every interface over the shared backlogs of
  all willing flows. This is "prior work": it meets interface
  preferences and is work-conserving, but fails rate preferences — in
  Figure 1(c) it gives flow *a* 1.5 Mb/s and flow *b* 0.5 Mb/s instead
  of the max-min fair (1, 1).
* :class:`StaticSplitScheduler` — pin each flow to exactly one willing
  interface (weighted-least-loaded at admission) and run DRR per
  interface. Simple, but wastes capacity and cannot aggregate
  bandwidth across interfaces.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import SchedulingError
from ..net.flow import Flow
from ..net.packet import Packet
from .base import MultiInterfaceScheduler, SingleInterfaceScheduler
from .drr import DrrScheduler
from .wfq import WfqScheduler

#: Factory producing one fresh single-interface scheduler per interface.
SchedulerFactory = Callable[[], SingleInterfaceScheduler]


class PerInterfaceScheduler(MultiInterfaceScheduler):
    """Independent single-interface schedulers over shared backlogs."""

    def __init__(self, factory: SchedulerFactory) -> None:
        super().__init__()
        self._factory = factory
        self._inner: Dict[str, SingleInterfaceScheduler] = {}

    @classmethod
    def wfq(cls) -> "PerInterfaceScheduler":
        """The paper's per-interface WFQ baseline."""
        return cls(WfqScheduler)

    @classmethod
    def drr(cls, quantum_base: int = 1500) -> "PerInterfaceScheduler":
        """The paper's "naive DRR on each interface" baseline."""
        return cls(lambda: DrrScheduler(quantum_base=quantum_base))

    @classmethod
    def fifo(cls) -> "PerInterfaceScheduler":
        """Aggregate FIFO striping: no fairness machinery at all.

        Whichever interface frees up first takes the globally oldest
        eligible packet — the behaviour of naive packet striping (a
        pull-side join-shortest-queue). Π still holds (unwilling
        interfaces never see the flow), but heavy flows crowd out light
        ones entirely; the conformance battery shows what that costs.
        """
        from .fifo import FifoScheduler

        return cls(FifoScheduler)

    def _on_interface_added(self, interface_id: str) -> None:
        self._inner[interface_id] = self._factory()
        # Flows added before this interface appeared join it now.
        for flow in self._flows.values():
            if flow.willing_to_use(interface_id):
                self._inner[interface_id].add_flow(flow)

    def _on_flow_added(self, flow: Flow) -> None:
        for interface_id, inner in self._inner.items():
            if flow.willing_to_use(interface_id):
                inner.add_flow(flow)

    def _on_flow_removed(self, flow: Flow) -> None:
        for inner in self._inner.values():
            inner.remove_flow(flow.flow_id)

    def _on_backlogged(self, flow: Flow) -> None:
        for interface_id, inner in self._inner.items():
            if flow.willing_to_use(interface_id):
                inner.notify_backlogged(flow)

    def select(self, interface_id: str) -> Optional[Packet]:
        inner = self._inner.get(interface_id)
        if inner is None:
            raise SchedulingError(f"unknown interface {interface_id!r}")
        return inner.next_packet()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _snapshot_state(self) -> Dict[str, object]:
        return {
            "inner": {
                interface_id: inner.snapshot_state()
                for interface_id, inner in self._inner.items()
            }
        }

    def _restore_state(self, state: Dict[str, object]) -> None:
        for interface_id, snapshot in state["inner"].items():
            inner = self._inner.get(interface_id)
            if inner is None:
                raise SchedulingError(
                    f"snapshot references unknown interface {interface_id!r}"
                )
            inner.restore_state(snapshot, self._flows)


class StaticSplitScheduler(MultiInterfaceScheduler):
    """Pin each flow to one willing interface; DRR per interface.

    Assignment picks the willing interface with the smallest total
    pinned weight (ties broken by registration order), a reasonable
    admission-time heuristic a mobile OS might use.
    """

    def __init__(self, quantum_base: int = 1500) -> None:
        super().__init__()
        self._quantum_base = quantum_base
        self._inner: Dict[str, DrrScheduler] = {}
        self._pinned_weight: Dict[str, float] = {}
        self._assignment: Dict[str, str] = {}

    @property
    def assignment(self) -> Dict[str, str]:
        """Current flow → interface pinning."""
        return dict(self._assignment)

    def _on_interface_added(self, interface_id: str) -> None:
        self._inner[interface_id] = DrrScheduler(quantum_base=self._quantum_base)
        self._pinned_weight[interface_id] = 0.0

    def _on_flow_added(self, flow: Flow) -> None:
        willing = [j for j in self.interface_ids() if flow.willing_to_use(j)]
        target = min(willing, key=lambda j: self._pinned_weight[j])
        self._assignment[flow.flow_id] = target
        self._pinned_weight[target] += flow.weight
        self._inner[target].add_flow(flow)

    def _on_flow_removed(self, flow: Flow) -> None:
        target = self._assignment.pop(flow.flow_id, None)
        if target is not None:
            self._pinned_weight[target] -= flow.weight
            self._inner[target].remove_flow(flow.flow_id)

    def _on_backlogged(self, flow: Flow) -> None:
        target = self._assignment.get(flow.flow_id)
        if target is not None:
            self._inner[target].notify_backlogged(flow)

    def select(self, interface_id: str) -> Optional[Packet]:
        inner = self._inner.get(interface_id)
        if inner is None:
            raise SchedulingError(f"unknown interface {interface_id!r}")
        return inner.next_packet()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _snapshot_state(self) -> Dict[str, object]:
        return {
            "pinned_weight": dict(self._pinned_weight),
            "assignment": dict(self._assignment),
            "inner": {
                interface_id: inner.snapshot_state()
                for interface_id, inner in self._inner.items()
            },
        }

    def _restore_state(self, state: Dict[str, object]) -> None:
        self._pinned_weight = dict(state["pinned_weight"])
        self._assignment = dict(state["assignment"])
        for interface_id, snapshot in state["inner"].items():
            inner = self._inner.get(interface_id)
            if inner is None:
                raise SchedulingError(
                    f"snapshot references unknown interface {interface_id!r}"
                )
            inner.restore_state(snapshot, self._flows)
