"""FIFO and round-robin single-interface schedulers.

These are the trivial baselines: FIFO ignores both kinds of preference;
packet-by-packet round robin provides equal *packet* rates (so it is
unfair for mixed packet sizes — the motivation for DRR).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from ..net.flow import Flow
from ..net.packet import Packet
from .base import SingleInterfaceScheduler


class FifoScheduler(SingleInterfaceScheduler):
    """Serve packets strictly in arrival order across all flows.

    Maintains a queue of flow references ordered by arrival of each
    packet, so interleavings match a shared drop-tail queue.
    """

    def __init__(self) -> None:
        super().__init__()
        self._arrival_order: Deque[str] = deque()

    def _on_flow_added(self, flow: Flow) -> None:
        # Register future arrivals; pre-existing backlog is ordered by
        # flow registration, which is the best FIFO can reconstruct.
        for _ in range(len(flow.queue)):
            self._arrival_order.append(flow.flow_id)
        flow.on_arrival(self._record_arrival)

    def _record_arrival(self, flow: Flow, packet: Packet) -> None:
        if self.has_flow(flow.flow_id):
            self._arrival_order.append(flow.flow_id)

    def next_packet(self) -> Optional[Packet]:
        while self._arrival_order:
            flow_id = self._arrival_order.popleft()
            if not self.has_flow(flow_id):
                continue
            flow = self._flows[flow_id]
            if flow.backlogged:
                return flow.pull()
        return None

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _snapshot_state(self) -> Dict[str, object]:
        return {"arrival_order": list(self._arrival_order)}

    def _restore_state(self, state: Dict[str, object]) -> None:
        self._arrival_order = deque(state["arrival_order"])


class RoundRobinScheduler(SingleInterfaceScheduler):
    """One packet per backlogged flow per round (Nagle fair queueing)."""

    def __init__(self) -> None:
        super().__init__()
        self._ring: Deque[str] = deque()

    def _on_flow_added(self, flow: Flow) -> None:
        self._ring.append(flow.flow_id)

    def _on_flow_removed(self, flow: Flow) -> None:
        try:
            self._ring.remove(flow.flow_id)
        except ValueError:
            pass

    def next_packet(self) -> Optional[Packet]:
        for _ in range(len(self._ring)):
            flow_id = self._ring[0]
            self._ring.rotate(-1)
            flow = self._flows.get(flow_id)
            if flow is not None and flow.backlogged:
                return flow.pull()
        return None

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _snapshot_state(self) -> Dict[str, object]:
        return {"ring": list(self._ring)}

    def _restore_state(self, state: Dict[str, object]) -> None:
        self._ring = deque(state["ring"])
