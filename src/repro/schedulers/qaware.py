"""QAware-style queue-aware interface steering.

Inspired by "QAware: A Cross-Layer Approach to MPTCP Scheduling"
(arXiv 1808.04390): instead of splitting flows statically or round-
robining, score each willing interface by its **current queue
occupancy and service rate** and steer the flow to the interface with
the minimum estimated completion time

    score(j) = (assigned_backlog_bytes(j) + flow_backlog_bytes) * 8
               / rate_bps(j)

i.e. "how long until this flow's queued bytes would leave through j if
it joined j's line now". The assignment is recomputed at every
empty→backlogged activation, so steering tracks live queue depths and
interface rates (the engine wires :meth:`observe_interface`) without
per-packet churn. Ties break by interface registration order.

Within one interface, assigned flows are served FIFO in assignment
order. ``select`` is work-conserving: when an interface's own line is
empty it steals the first willing backlogged flow assigned elsewhere —
under-utilized fast links drain their slower neighbours' lines rather
than idling.

Without observed interfaces all rates read 1.0, so the score reduces
to pure queue-depth balancing and the scheduler runs standalone in
tests and conformance harnesses.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from ..errors import SchedulingError
from ..net.flow import Flow
from ..net.packet import Packet
from .base import MultiInterfaceScheduler


class QAwareScheduler(MultiInterfaceScheduler):
    """Steer each flow to its minimum-completion-time willing interface."""

    def __init__(self) -> None:
        super().__init__()
        # Current steering decision: flow_id -> interface_id.
        self._assignment: Dict[str, str] = {}
        # Per-interface service line, in assignment order.
        self._lines: Dict[str, "OrderedDict[str, None]"] = {}
        # Live interfaces for rates: wired by the engine through
        # observe_interface(); never snapshotted (topology is rebuilt
        # at restore time).
        self._rate_sources: Dict[str, object] = {}
        # Telemetry.
        self.decision_flows_examined: List[int] = []
        self.steers_total = 0
        self.steals_total = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def observe_interface(self, interface: object) -> None:
        """Engine hook: read live service rate from *interface*."""
        self._rate_sources[interface.interface_id] = interface

    def interface_rate_bps(self, interface_id: str) -> float:
        """The rate used in scoring (1.0 when unobserved)."""
        source = self._rate_sources.get(interface_id)
        if source is None:
            return 1.0
        return float(source.rate_bps)

    def queue_depth_bytes(self, interface_id: str) -> int:
        """Backlog bytes of flows currently assigned to *interface_id*."""
        line = self._lines.get(interface_id)
        if line is None:
            raise SchedulingError(f"unknown interface {interface_id!r}")
        flows = self._flows
        return sum(
            flows[flow_id].backlog_bytes for flow_id in line if flow_id in flows
        )

    def assignment(self) -> Dict[str, str]:
        """Current flow → interface steering (a copy)."""
        return dict(self._assignment)

    # ------------------------------------------------------------------
    # Topology / flow bookkeeping
    # ------------------------------------------------------------------
    def _on_interface_added(self, interface_id: str) -> None:
        self._lines[interface_id] = OrderedDict()
        # Existing backlogged flows stay where they are; the new
        # interface competes from the next activation on — and the
        # steal path can already drain into it meanwhile.

    def _on_flow_added(self, flow: Flow) -> None:
        if flow.backlogged:
            self._steer(flow)

    def _on_flow_removed(self, flow: Flow) -> None:
        self._unassign(flow.flow_id)

    def _on_backlogged(self, flow: Flow) -> None:
        self._steer(flow)

    def _unassign(self, flow_id: str) -> None:
        interface_id = self._assignment.pop(flow_id, None)
        if interface_id is not None:
            line = self._lines.get(interface_id)
            if line is not None:
                line.pop(flow_id, None)

    def _steer(self, flow: Flow) -> None:
        """(Re)assign *flow* to its minimum-completion-time interface."""
        willing = self.willing_interfaces(flow)
        if not willing:
            self._unassign(flow.flow_id)
            return
        backlog = flow.backlog_bytes
        best_id: Optional[str] = None
        best_score = float("inf")
        for interface_id in willing:
            depth = self.queue_depth_bytes(interface_id)
            line = self._lines[interface_id]
            if flow.flow_id in line:
                # Don't double-count the flow's own queued bytes.
                depth -= backlog
            score = (depth + backlog) * 8 / self.interface_rate_bps(interface_id)
            if score < best_score:
                best_score = score
                best_id = interface_id
        if self._assignment.get(flow.flow_id) != best_id:
            self._unassign(flow.flow_id)
            self._assignment[flow.flow_id] = best_id
            self._lines[best_id][flow.flow_id] = None
            self.steers_total += 1

    # ------------------------------------------------------------------
    # The scheduling decision
    # ------------------------------------------------------------------
    def select(self, interface_id: str) -> Optional[Packet]:
        line = self._lines.get(interface_id)
        if line is None:
            raise SchedulingError(f"unknown interface {interface_id!r}")
        examined = 0
        for flow_id in list(line):
            flow = self._flows.get(flow_id)
            if flow is None or not flow.backlogged:
                # Stale entry (flow gone or drained): drop it.
                self._unassign(flow_id)
                continue
            if not flow.willing_to_use(interface_id):
                # Live Π edit: this interface must stop serving the
                # flow; re-steer it among its new willing set.
                self._steer(flow)
                continue
            examined += 1
            self.decision_flows_examined.append(examined)
            return self._serve(flow, interface_id)
        # Own line empty: steal the first willing backlogged flow
        # assigned to another interface (work conservation).
        for flow_id, assigned_to in list(self._assignment.items()):
            if assigned_to == interface_id:
                continue
            flow = self._flows.get(flow_id)
            if flow is None or not flow.backlogged:
                continue
            examined += 1
            if not flow.willing_to_use(interface_id):
                continue
            self._unassign(flow_id)
            self._assignment[flow_id] = interface_id
            line[flow_id] = None
            self.steals_total += 1
            self.decision_flows_examined.append(examined)
            return self._serve(flow, interface_id)
        self.decision_flows_examined.append(examined)
        return None

    def _serve(self, flow: Flow, interface_id: str) -> Packet:
        # A foreign fused window defers this flow's pulls; materialize
        # it before reading the queue (no-op when batching is off).
        if self.batched_flows:
            owner = self.batched_flows.get(flow.flow_id)
            if owner is not None and owner.interface_id != interface_id:
                owner.abort_batch()
        packet = flow.pull()
        if not flow.backlogged:
            self._unassign(flow.flow_id)
        return packet

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _snapshot_state(self) -> Dict[str, object]:
        return {
            "lines": {
                interface_id: list(line)
                for interface_id, line in self._lines.items()
            },
            "assignment": dict(self._assignment),
            "steers_total": self.steers_total,
            "steals_total": self.steals_total,
        }

    def _restore_state(self, state: Dict[str, object]) -> None:
        self._lines = {}
        for interface_id, flow_ids in state["lines"].items():
            line: "OrderedDict[str, None]" = OrderedDict()
            for flow_id in flow_ids:
                line[flow_id] = None
            self._lines[interface_id] = line
        self._assignment = dict(state["assignment"])
        self.steers_total = state["steers_total"]
        self.steals_total = state["steals_total"]
        self.decision_flows_examined = []
