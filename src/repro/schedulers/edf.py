"""EDF — earliest-deadline-first scheduling with admission control.

:class:`EdfScheduler` serves, on each free interface, the backlogged
willing flow whose head-of-line packet has the earliest deadline.
Packets without a deadline sort last (infinitely patient) and fall back
to global arrival order (``seqno``), so elastic traffic degrades to
FIFO striping and the scheduler stays work-conserving.

Admission control is modeled on sfctss's
``GreedyShortestDeadlineFirstScheduler``: a low and a high projected-load
threshold. A new flow declaring demand (``Flow.nominal_rate_bps``) is
**rejected** when admitting it would push projected load past the low
threshold; when the already-admitted load alone exceeds the high
threshold (capacity collapsed under the admitted set), the most
recently admitted declared flows are **shed** until load returns below
it. Elastic flows (no declared rate) count zero demand and are always
admitted — deadline scheduling then arbitrates whatever load they
bring. Projected load is measured against the total rate of the
currently-up interfaces the scheduler has observed (the engine wires
:meth:`observe_interface`); with no observed capacity the controller is
inert and admits everything, so the scheduler runs standalone in tests
and conformance harnesses.

The engine consumes verdicts through the optional ``review_admission``
hook and keeps rejected/shed flows parked outside the scheduler.

Like miDRR, activation is event-driven: per-interface active sets are
maintained by ``notify_backlogged``/``add_flow``/drain bookkeeping and
``select`` never rescans the flow table.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError, SchedulingError
from ..net.flow import Flow
from ..net.packet import Packet
from .base import MultiInterfaceScheduler

_INFINITY = float("inf")


@dataclass(frozen=True)
class AdmissionVerdict:
    """Outcome of one admission review.

    ``action`` is ``"admit"``, ``"reject"`` or ``"shed"`` (the candidate
    was admitted but existing flows had to be evicted to stay under the
    high threshold). ``shed`` lists the evicted flow ids, most recently
    admitted first.
    """

    flow_id: str
    admitted: bool
    action: str
    projected_load: float
    shed: Tuple[str, ...] = ()


class EdfScheduler(MultiInterfaceScheduler):
    """Earliest-deadline-first over willing flows, with low/high AC."""

    def __init__(
        self,
        admission_control_threshold_low: float = 0.8,
        admission_control_threshold_high: float = 1.1,
    ) -> None:
        super().__init__()
        if admission_control_threshold_low <= 0:
            raise ConfigurationError(
                "admission_control_threshold_low must be positive, "
                f"got {admission_control_threshold_low}"
            )
        if not admission_control_threshold_low < admission_control_threshold_high:
            raise ConfigurationError(
                "admission thresholds must satisfy low < high, got "
                f"low={admission_control_threshold_low} "
                f"high={admission_control_threshold_high}"
            )
        self._ac_low = admission_control_threshold_low
        self._ac_high = admission_control_threshold_high
        # Per-interface insertion-ordered sets of backlogged willing
        # flow ids (the EDF candidate pool; order only breaks exact
        # key ties, which (deadline, seqno) makes impossible — it is
        # kept deterministic for snapshot fidelity).
        self._active: Dict[str, "OrderedDict[str, None]"] = {}
        # Declared demand (bits/s) per admitted flow, in admission
        # order — shedding pops from the back (latest admitted first).
        self._declared: "OrderedDict[str, float]" = OrderedDict()
        # Live interfaces for capacity: wired by the engine through
        # observe_interface(); never snapshotted (topology is rebuilt
        # at restore time).
        self._capacity_sources: Dict[str, object] = {}
        # Telemetry (admission gauges; repro.obs samples these).
        self.admissions_total = 0
        self.admission_rejected_total = 0
        self.admission_shed_total = 0
        self.decision_flows_examined: List[int] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def admission_control_threshold_low(self) -> float:
        """Reject new declared-demand flows above this projected load."""
        return self._ac_low

    @property
    def admission_control_threshold_high(self) -> float:
        """Shed admitted flows when load alone exceeds this."""
        return self._ac_high

    def observe_interface(self, interface: object) -> None:
        """Engine hook: read live capacity from *interface* from now on."""
        self._capacity_sources[interface.interface_id] = interface

    def total_capacity_bps(self) -> Optional[float]:
        """Aggregate rate of observed, currently-up interfaces.

        ``None`` when no interface has been observed — admission
        control is then inert (standalone/test use).
        """
        if not self._capacity_sources:
            return None
        return sum(
            interface.rate_bps
            for interface in self._capacity_sources.values()
            if getattr(interface, "up", True)
        )

    def declared_load_bps(self) -> float:
        """Total declared demand of admitted flows (bits/s)."""
        return sum(self._declared.values())

    def projected_load(self) -> float:
        """Current declared load over capacity (0.0 when inert)."""
        capacity = self.total_capacity_bps()
        if not capacity:
            return 0.0
        return self.declared_load_bps() / capacity

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def review_admission(self, flow: Flow) -> AdmissionVerdict:
        """Score *flow* against the low/high thresholds.

        Pure decision: the engine applies the verdict (shedding via
        :meth:`remove_flow`, then :meth:`add_flow` on admit), so demand
        bookkeeping stays in the add/remove hooks.
        """
        capacity = self.total_capacity_bps()
        demand = flow.nominal_rate_bps or 0.0
        if not capacity:
            return AdmissionVerdict(
                flow_id=flow.flow_id,
                admitted=True,
                action="admit",
                projected_load=0.0,
            )
        shed: List[str] = []
        base = self.declared_load_bps()
        # High threshold: the admitted set alone no longer fits (the
        # capacity under it collapsed). Evict latest-admitted declared
        # flows until it does. No bookkeeping is touched here — the
        # engine evicts through remove_flow, which pops the demand.
        if base / capacity > self._ac_high:
            for victim, victim_demand in reversed(list(self._declared.items())):
                if base / capacity <= self._ac_high:
                    break
                shed.append(victim)
                base -= victim_demand
        projected = (base + demand) / capacity
        if demand > 0.0 and projected > self._ac_low:
            self.admission_rejected_total += 1
            self.admission_shed_total += len(shed)
            return AdmissionVerdict(
                flow_id=flow.flow_id,
                admitted=False,
                action="reject",
                projected_load=projected,
                shed=tuple(shed),
            )
        self.admissions_total += 1
        self.admission_shed_total += len(shed)
        return AdmissionVerdict(
            flow_id=flow.flow_id,
            admitted=True,
            action="shed" if shed else "admit",
            projected_load=projected,
            shed=tuple(shed),
        )

    # ------------------------------------------------------------------
    # Topology / flow bookkeeping
    # ------------------------------------------------------------------
    def _on_interface_added(self, interface_id: str) -> None:
        self._active[interface_id] = OrderedDict()
        for flow in self._flows.values():
            if flow.backlogged and flow.willing_to_use(interface_id):
                self._active[interface_id][flow.flow_id] = None

    def _on_flow_added(self, flow: Flow) -> None:
        if flow.nominal_rate_bps:
            self._declared[flow.flow_id] = float(flow.nominal_rate_bps)
        if flow.backlogged:
            self._activate(flow)

    def _on_flow_removed(self, flow: Flow) -> None:
        self._declared.pop(flow.flow_id, None)
        for active in self._active.values():
            active.pop(flow.flow_id, None)

    def _on_backlogged(self, flow: Flow) -> None:
        self._activate(flow)

    def _activate(self, flow: Flow) -> None:
        flow_id = flow.flow_id
        for interface_id in self.willing_interfaces(flow):
            active = self._active[interface_id]
            if flow_id not in active:
                active[flow_id] = None

    def _deactivate(self, flow_id: str) -> None:
        for active in self._active.values():
            active.pop(flow_id, None)

    # ------------------------------------------------------------------
    # The scheduling decision
    # ------------------------------------------------------------------
    def select(self, interface_id: str) -> Optional[Packet]:
        active = self._active.get(interface_id)
        if active is None:
            raise SchedulingError(f"unknown interface {interface_id!r}")
        best_flow: Optional[Flow] = None
        best_key: Tuple[float, int] = (_INFINITY, 0)
        examined = 0
        for flow_id in list(active):
            flow = self._flows.get(flow_id)
            if (
                flow is None
                or not flow.backlogged
                or not flow.willing_to_use(interface_id)
            ):
                # Stale entry (flow gone, drained elsewhere, or its Π
                # changed): drop without serving.
                del active[flow_id]
                continue
            examined += 1
            head = flow.queue.head()
            deadline = head.deadline if head.deadline is not None else _INFINITY
            key = (deadline, head.seqno)
            if best_flow is None or key < best_key:
                best_flow = flow
                best_key = key
        self.decision_flows_examined.append(examined)
        if best_flow is None:
            return None
        # A foreign fused window defers this flow's pulls; materialize
        # it before reading the queue (no-op when batching is off).
        if self.batched_flows:
            owner = self.batched_flows.get(best_flow.flow_id)
            if owner is not None and owner.interface_id != interface_id:
                owner.abort_batch()
        packet = best_flow.pull()
        if not best_flow.backlogged:
            self._deactivate(best_flow.flow_id)
        return packet

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _snapshot_state(self) -> Dict[str, object]:
        return {
            "config": {
                "ac_low": self._ac_low,
                "ac_high": self._ac_high,
            },
            "active": {
                interface_id: list(active)
                for interface_id, active in self._active.items()
            },
            "declared": [
                [flow_id, demand] for flow_id, demand in self._declared.items()
            ],
            "admissions_total": self.admissions_total,
            "admission_rejected_total": self.admission_rejected_total,
            "admission_shed_total": self.admission_shed_total,
        }

    def _restore_state(self, state: Dict[str, object]) -> None:
        config = state["config"]
        mine = {"ac_low": self._ac_low, "ac_high": self._ac_high}
        if config != mine:
            raise SchedulingError(
                f"snapshot EDF config {config!r} does not match {mine!r}"
            )
        self._active = {}
        for interface_id, flow_ids in state["active"].items():
            restored: "OrderedDict[str, None]" = OrderedDict()
            for flow_id in flow_ids:
                restored[flow_id] = None
            self._active[interface_id] = restored
        self._declared = OrderedDict(
            (flow_id, demand) for flow_id, demand in state["declared"]
        )
        self.admissions_total = state["admissions_total"]
        self.admission_rejected_total = state["admission_rejected_total"]
        self.admission_shed_total = state["admission_shed_total"]
        self.decision_flows_examined = []
