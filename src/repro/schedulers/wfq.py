"""Weighted Fair Queueing (packetized GPS approximation).

The paper's baseline ("prior work suggests... apply WFQ independently on
each interface"). We implement the self-clocked flavour (SCFQ,
Golestani '94): the virtual time is the finish tag of the packet most
recently selected for service, which avoids simulating the fluid GPS
reference while giving each continuously backlogged flow its weighted
fair share — all this reproduction needs from the baseline.

Tags: on arrival of packet *p* of length *L* to flow *i*::

    S_p = max(V, F_i)          # start tag
    F_p = S_p + L / φ_i        # finish tag, stored per flow

The scheduler always transmits the backlogged head-of-line packet with
the smallest finish tag and advances ``V`` to that tag.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..net.flow import Flow
from ..net.packet import Packet
from .base import SingleInterfaceScheduler


class WfqScheduler(SingleInterfaceScheduler):
    """Self-clocked weighted fair queueing over shared flow backlogs.

    Finish tags are computed lazily for head-of-line packets (rather
    than on arrival) so several per-interface WFQ instances can share
    one flow backlog — required by the paper's per-interface baseline,
    where whichever interface serves first takes the head packet.
    """

    def __init__(self) -> None:
        super().__init__()
        self._virtual_time = 0.0
        self._last_finish: Dict[str, float] = {}
        # Tag of the current head packet per flow, keyed by packet seqno
        # so a head consumed by *another* scheduler invalidates the tag.
        self._head_tags: Dict[str, tuple] = {}
        # Rotates the scan origin so equal finish tags alternate between
        # flows instead of always favouring registration order. (With
        # shared backlogs and equal weights, ties are the common case.)
        self._tie_rotation = 0

    @property
    def virtual_time(self) -> float:
        """Current virtual time ``V`` (monotone non-decreasing)."""
        return self._virtual_time

    def _on_flow_removed(self, flow: Flow) -> None:
        self._last_finish.pop(flow.flow_id, None)
        self._head_tags.pop(flow.flow_id, None)

    def _head_finish_tag(self, flow: Flow) -> Optional[float]:
        """Finish tag of *flow*'s head-of-line packet, if backlogged."""
        head = flow.queue.head()
        if head is None:
            self._head_tags.pop(flow.flow_id, None)
            return None
        cached = self._head_tags.get(flow.flow_id)
        if cached is not None and cached[0] == head.seqno:
            return cached[1]
        start = max(self._virtual_time, self._last_finish.get(flow.flow_id, 0.0))
        finish = start + head.size_bytes / flow.weight
        self._head_tags[flow.flow_id] = (head.seqno, finish)
        return finish

    def next_packet(self) -> Optional[Packet]:
        flows = list(self._flows.values())
        if not flows:
            return None
        origin = self._tie_rotation % len(flows)
        best_flow: Optional[Flow] = None
        best_tag = float("inf")
        for offset in range(len(flows)):
            flow = flows[(origin + offset) % len(flows)]
            tag = self._head_finish_tag(flow)
            if tag is not None and tag < best_tag:
                best_tag = tag
                best_flow = flow
        if best_flow is None:
            # No selection, no rotation: an idle interface polling must
            # not perturb future tie-breaks (the decision stream would
            # otherwise depend on how often empty selects happen).
            return None
        self._tie_rotation += 1
        self._virtual_time = best_tag
        self._last_finish[best_flow.flow_id] = best_tag
        self._head_tags.pop(best_flow.flow_id, None)
        return best_flow.pull()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _snapshot_state(self) -> Dict[str, object]:
        return {
            "virtual_time": self._virtual_time,
            "last_finish": dict(self._last_finish),
            "head_tags": {
                flow_id: [tag[0], tag[1]]
                for flow_id, tag in self._head_tags.items()
            },
            "tie_rotation": self._tie_rotation,
        }

    def _restore_state(self, state: Dict[str, object]) -> None:
        self._virtual_time = state["virtual_time"]
        self._last_finish = dict(state["last_finish"])
        self._head_tags = {
            flow_id: (tag[0], tag[1])
            for flow_id, tag in state["head_tags"].items()
        }
        self._tie_rotation = state["tie_rotation"]
