"""Packet schedulers: classic single-interface algorithms, naive
multi-interface baselines, and the paper's miDRR."""

from .base import MultiInterfaceScheduler, SingleInterfaceScheduler
from .drr import DEFAULT_QUANTUM, DrrScheduler
from .edf import AdmissionVerdict, EdfScheduler
from .fifo import FifoScheduler, RoundRobinScheduler
from .midrr import (
    COUNTER_CAP,
    DEFICIT_SCOPES,
    EXCLUSION_MODES,
    FLAG_MODES,
    MiDrrScheduler,
)
from .per_interface import (
    PerInterfaceScheduler,
    SchedulerFactory,
    StaticSplitScheduler,
)
from .qaware import QAwareScheduler
from .wfq import WfqScheduler

__all__ = [
    "AdmissionVerdict",
    "COUNTER_CAP",
    "DEFAULT_QUANTUM",
    "DEFICIT_SCOPES",
    "EXCLUSION_MODES",
    "DrrScheduler",
    "EdfScheduler",
    "FLAG_MODES",
    "FifoScheduler",
    "MiDrrScheduler",
    "MultiInterfaceScheduler",
    "PerInterfaceScheduler",
    "QAwareScheduler",
    "RoundRobinScheduler",
    "SchedulerFactory",
    "SingleInterfaceScheduler",
    "StaticSplitScheduler",
    "WfqScheduler",
]
