"""Packet schedulers: classic single-interface algorithms, naive
multi-interface baselines, and the paper's miDRR."""

from .base import MultiInterfaceScheduler, SingleInterfaceScheduler
from .drr import DEFAULT_QUANTUM, DrrScheduler
from .fifo import FifoScheduler, RoundRobinScheduler
from .midrr import (
    COUNTER_CAP,
    DEFICIT_SCOPES,
    EXCLUSION_MODES,
    FLAG_MODES,
    MiDrrScheduler,
)
from .per_interface import (
    PerInterfaceScheduler,
    SchedulerFactory,
    StaticSplitScheduler,
)
from .wfq import WfqScheduler

__all__ = [
    "COUNTER_CAP",
    "DEFAULT_QUANTUM",
    "DEFICIT_SCOPES",
    "EXCLUSION_MODES",
    "DrrScheduler",
    "FLAG_MODES",
    "FifoScheduler",
    "MiDrrScheduler",
    "MultiInterfaceScheduler",
    "PerInterfaceScheduler",
    "RoundRobinScheduler",
    "SchedulerFactory",
    "SingleInterfaceScheduler",
    "StaticSplitScheduler",
    "WfqScheduler",
]
