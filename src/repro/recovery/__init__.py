"""Crash-safe checkpoint/restore for simulation runs.

The recovery subsystem makes a run's complete state — virtual clock,
pending event queue, RNG streams, scheduler deficits and service flags,
flow queues, interface up/down state and measurement sinks — into a
versioned, checksummed document that can be written to disk and
restored into a freshly built process such that the continuation is
*byte-identical* to the uninterrupted run (same scheduling decisions,
same measurements, same tie-breaks).

Layers, bottom up:

* :mod:`repro.recovery.checkpoint` — the on-disk envelope: schema
  version, SHA-256 checksum over a canonical JSON rendering, typed
  errors for corruption and version skew.
* :mod:`repro.recovery.codec` — serializing the live event queue:
  every pending callback is a bound method of a *registered* object,
  recorded as ``(owner name, method name, encoded args)`` and re-bound
  against the rebuilt object graph on restore.
* :mod:`repro.recovery.runner` — :class:`RecoverableScenarioRun`, a
  scenario harness whose full state round-trips through
  ``checkpoint()`` / ``restore()`` and which records the decision
  trace used by the crash-equivalence tests.
* :mod:`repro.recovery.supervisor` — :class:`RecoverySupervisor`,
  which drives a run in checkpointed segments, restores after injected
  crashes with capped exponential backoff, and trips a crash-loop
  circuit breaker when restarts stop making progress.
"""

from .checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    compute_checksum,
    load_checkpoint,
    save_checkpoint,
    unwrap_state,
    wrap_state,
)
from .codec import CheckpointContext, decode_events, encode_events
from .runner import DecisionTraceRecorder, RecoverableScenarioRun
from .supervisor import RecoverySupervisor

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointContext",
    "DecisionTraceRecorder",
    "RecoverableScenarioRun",
    "RecoverySupervisor",
    "compute_checksum",
    "decode_events",
    "encode_events",
    "load_checkpoint",
    "save_checkpoint",
    "unwrap_state",
    "wrap_state",
]
